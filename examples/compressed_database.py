"""Conditional plans in a compressed database (Section 7).

"In compressed databases, the cost of acquiring attributes may include the
cost of decompression, which can be very high.  Conditional plans can
reduce the amount of decompression required to execute a query."

This example models a columnar store where each column is compressed with
a different codec: metadata columns are stored as plain integers (free to
read), while measure columns sit behind heavy per-value decompression.
Predicates over measures can often be decided *without decompressing*
anything, because the cheap dictionary-encoded dimensions (region, product
tier) are correlated with the measures — exactly the acquisitional
structure of the paper, with "decompression CPU" in place of "sensor
energy".

The example also demonstrates the boolean-query extension: the analyst's
alert condition is a disjunction, which the exhaustive planner optimizes
directly.

Run:  python examples/compressed_database.py
"""

import numpy as np

from repro import (
    And,
    Attribute,
    BooleanQuery,
    ConjunctiveQuery,
    EmpiricalDistribution,
    ExhaustivePlanner,
    GreedyConditionalPlanner,
    Leaf,
    NaivePlanner,
    OptimalSequentialPlanner,
    Or,
    RangePredicate,
    Schema,
    SplitPointPolicy,
    empirical_cost,
)
from repro.core import dataset_execution


def make_sales_table(n_rows: int = 30_000, seed: int = 2) -> np.ndarray:
    """A synthetic sales fact table with dimension/measure correlations."""
    rng = np.random.default_rng(seed)
    region = rng.integers(1, 5, n_rows)  # dictionary-encoded, free
    tier = rng.integers(1, 4, n_rows)  # product tier, free

    # Revenue: premium tiers and region 4 sell high; 8 buckets.
    revenue_level = 1.5 + 1.2 * tier + 1.5 * (region == 4)
    revenue = np.clip(
        np.round(revenue_level + rng.normal(0, 1.0, n_rows)), 1, 8
    ).astype(np.int64)

    # Units: inversely related to tier (premium sells fewer units).
    units_level = 6.5 - 1.4 * tier
    units = np.clip(
        np.round(units_level + rng.normal(0, 1.0, n_rows)), 1, 8
    ).astype(np.int64)

    # Discount: deep discounts cluster in region 2's channel.
    discount_level = 2.0 + 3.0 * (region == 2)
    discount = np.clip(
        np.round(discount_level + rng.normal(0, 1.2, n_rows)), 1, 8
    ).astype(np.int64)

    return np.stack([region, tier, revenue, units, discount], axis=1)


def main() -> None:
    # Costs are per-value decompression times (microseconds): the
    # dimensions are plain-stored, the measures heavily compressed.
    schema = Schema(
        [
            Attribute("region", 4, cost=0.1),
            Attribute("tier", 3, cost=0.1),
            Attribute("revenue", 8, cost=60.0),  # delta + entropy coded
            Attribute("units", 8, cost=35.0),  # bit-packed
            Attribute("discount", 8, cost=80.0),  # dictionary + rle chain
        ]
    )
    table = make_sales_table()
    train, live = table[:15_000], table[15_000:]
    distribution = EmpiricalDistribution(schema, train)

    # -- Part 1: a conjunctive audit query ------------------------------
    audit = ConjunctiveQuery(
        schema,
        [
            RangePredicate("revenue", 6, 8),  # high revenue
            RangePredicate("units", 1, 3),  # few units
            RangePredicate("discount", 5, 8),  # deep discount
        ],
    )
    print(f"audit query: {audit.describe()}\n")
    naive = NaivePlanner(distribution).plan(audit)
    heuristic = GreedyConditionalPlanner(
        distribution, OptimalSequentialPlanner(distribution), max_splits=6
    ).plan(audit)
    naive_cost = empirical_cost(naive.plan, live, schema)
    heuristic_cost = empirical_cost(heuristic.plan, live, schema)
    print("decompression time per row (held-out partition):")
    print(f"  naive column order    : {naive_cost:7.1f} us")
    print(f"  conditional plan      : {heuristic_cost:7.1f} us")
    print(f"  speedup               : {naive_cost / heuristic_cost:7.2f}x\n")
    print(heuristic.plan.pretty())

    # -- Part 2: a disjunctive alert via the boolean extension ----------
    # Alert: (high revenue AND deep discount) OR (premium-priced bucket
    # moving high units) — margin anomalies either way.
    alert = BooleanQuery(
        schema,
        Or(
            And(
                Leaf(RangePredicate("revenue", 7, 8)),
                Leaf(RangePredicate("discount", 6, 8)),
            ),
            And(
                Leaf(RangePredicate("revenue", 7, 8)),
                Leaf(RangePredicate("units", 7, 8)),
            ),
        ),
    )
    print(f"\nalert condition: {alert.describe()}")
    # Exhaustive planning is exponential; keep the candidate splits coarse
    # (the predicate decision boundaries are always added automatically).
    policy = SplitPointPolicy.equal_width(schema, [2, 1, 1, 1, 1])
    optimal = ExhaustivePlanner(distribution, split_policy=policy).plan(alert)
    outcome = dataset_execution(optimal.plan, live, schema)
    truth = np.fromiter(
        (alert.evaluate(row) for row in live), dtype=bool, count=len(live)
    )
    assert np.array_equal(outcome.verdicts, truth)
    acquire_all = sum(
        schema[index].cost for index in set(alert.attribute_indices)
    )
    print(
        f"decompression per row: {outcome.mean_cost:.1f} us "
        f"(decompress-everything would cost {acquire_all:.1f} us); "
        f"alerts fired on {outcome.pass_fraction:.1%} of rows"
    )


if __name__ == "__main__":
    main()
