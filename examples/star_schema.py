"""Conditional plans for star-schema queries (Section 7).

"Our techniques can also be applied to traditional database query
processing... star queries containing only key-foreign key join predicates
can be thought of as expensive 'selections' on the relation at the center
of the star (the fact table), and conditional plans can be used to exploit
correlations between the dimension tables."

This example models an orders fact table.  Each dimension predicate is an
expensive *probe* — a key-foreign-key lookup into a dimension table (index
walk + page fetch, costed in microseconds) — while the fact row's own
columns (channel, weekday bucket) are free.  The channel is strongly
correlated with which dimension probe will disqualify an order:

- web orders ship from the central warehouse (region probe passes) but are
  dominated by small-ticket items (price-tier probe fails);
- wholesale orders are big-ticket (tier passes) but route to regional
  depots (region probe fails for the queried region).

A conditional plan reads the free channel column and probes the dimension
most likely to reject first — classic per-tuple join reordering that a
static plan cannot express.

Run:  python examples/star_schema.py
"""

import numpy as np

from repro import (
    Attribute,
    ConjunctiveQuery,
    EmpiricalDistribution,
    GreedyConditionalPlanner,
    NaivePlanner,
    OptimalSequentialPlanner,
    PlanExecutor,
    RangePredicate,
    Schema,
    empirical_cost,
)
from repro.core import attribute_acquisition_rates


def make_orders(n_rows: int = 40_000, seed: int = 5) -> np.ndarray:
    """Orders with channel-dependent dimension attributes.

    The "dimension attributes" are the values a probe *would* return —
    the planner treats the probe cost as the acquisition cost.
    """
    rng = np.random.default_rng(seed)
    channel = rng.integers(1, 4, n_rows)  # 1=web, 2=retail, 3=wholesale
    weekday = rng.integers(1, 8, n_rows)

    # Dimension: customer price tier (1..6).  Web skews low, wholesale high.
    tier_center = np.select(
        [channel == 1, channel == 2, channel == 3], [2.0, 3.5, 5.2]
    )
    tier = np.clip(
        np.round(tier_center + rng.normal(0, 0.8, n_rows)), 1, 6
    ).astype(np.int64)

    # Dimension: shipping region (1..8). Web ships from region 1-2;
    # wholesale fans out to depots 4-8; retail is local (2-5).
    region_low = np.select([channel == 1, channel == 2, channel == 3], [1, 2, 4])
    region_high = np.select([channel == 1, channel == 2, channel == 3], [2, 5, 8])
    region = (
        region_low
        + (rng.random(n_rows) * (region_high - region_low + 1)).astype(np.int64)
    ).astype(np.int64)

    # Dimension: product family (1..10), weekday-skewed (weekend = leisure).
    weekend = weekday >= 6
    family = np.where(
        weekend,
        rng.integers(6, 11, n_rows),
        rng.integers(1, 8, n_rows),
    ).astype(np.int64)

    return np.stack([channel, weekday, tier, region, family], axis=1)


def main() -> None:
    # Costs: fact-row columns are in the tuple already (0.1 us); each
    # dimension predicate costs a key-foreign-key probe.
    schema = Schema(
        [
            Attribute("channel", 3, cost=0.1),
            Attribute("weekday", 7, cost=0.1),
            Attribute("tier", 6, cost=120.0),  # customer dim probe
            Attribute("region", 8, cost=150.0),  # warehouse dim probe
            Attribute("family", 10, cost=200.0),  # product dim probe
        ]
    )
    orders = make_orders()
    train, live = orders[:20_000], orders[20_000:]
    distribution = EmpiricalDistribution(schema, train)

    # The star query: big-ticket leisure goods shipped from the central
    # warehouses — a cross-dimension conjunction.
    query = ConjunctiveQuery(
        schema,
        [
            RangePredicate("tier", 4, 6),  # big-ticket customers
            RangePredicate("region", 1, 3),  # central warehouses
            RangePredicate("family", 6, 10),  # leisure products
        ],
    )
    print(f"star query: {query.describe()}\n")

    naive = NaivePlanner(distribution).plan(query)
    heuristic = GreedyConditionalPlanner(
        distribution, OptimalSequentialPlanner(distribution), max_splits=6
    ).plan(query)

    naive_cost = empirical_cost(naive.plan, live, schema)
    heuristic_cost = empirical_cost(heuristic.plan, live, schema)
    print("dimension-probe time per fact row (held-out partition):")
    print(f"  static probe order    : {naive_cost:7.1f} us")
    print(f"  conditional plan      : {heuristic_cost:7.1f} us")
    print(f"  speedup               : {naive_cost / heuristic_cost:7.2f}x\n")

    print("the conditional plan:")
    print(heuristic.plan.pretty())

    assert PlanExecutor(schema).verify(heuristic.plan, query, live).correct

    rates = attribute_acquisition_rates(heuristic.plan, live, schema)
    print("\nfraction of fact rows probing each dimension:")
    for name in ("tier", "region", "family"):
        print(f"  {name:<8}: {rates[name]:.2f}  (static plans probe the first-ordered dimension on 100%)")


if __name__ == "__main__":
    main()
