"""Lab monitoring: the paper's Figure 9 scenario.

Query: *find readings that are bright, cool, and dry* — someone working in
the lab at night.  None of the three predicates is very selective on its
own, but their conjunction is rare, and all three expensive sensors are
strongly correlated with the cheap ``hour`` and ``nodeid`` attributes.

The script trains on the first half of an Intel-Lab-style trace, plans with
Naive / CorrSeq / Heuristic-k, prints the conditional plan tree (compare
with the paper's Figure 9: hour first, then nodeid in the afternoon zone),
and costs everything on the held-out second half.

Run:  python examples/lab_monitoring.py
"""

import numpy as np

from repro import (
    ConjunctiveQuery,
    CorrSeqPlanner,
    EmpiricalDistribution,
    GreedyConditionalPlanner,
    NaivePlanner,
    PlanExecutor,
    RangePredicate,
    empirical_cost,
)
from repro.data import generate_lab_dataset, time_split


def bright_cool_dry_query(lab) -> ConjunctiveQuery:
    """Bright (upper light bins), cool (lower temp), dry (lower humidity)."""
    schema = lab.schema
    light_k = schema["light"].domain_size
    temp_k = schema["temp"].domain_size
    humidity_k = schema["humidity"].domain_size
    return ConjunctiveQuery(
        schema,
        [
            RangePredicate("light", light_k // 2 + 1, light_k),
            RangePredicate("temp", 1, temp_k // 2),
            RangePredicate("humidity", 1, humidity_k // 2),
        ],
    )


def main() -> None:
    lab = generate_lab_dataset(n_readings=120_000, n_motes=12, seed=7)
    train, test = time_split(lab.data, 0.5)
    distribution = EmpiricalDistribution(lab.schema, train)

    query = bright_cool_dry_query(lab)
    print(f"query: SELECT * WHERE {query.describe()}")
    match_rate = np.mean([query.evaluate(row) for row in test[::25]])
    print(f"fraction of test tuples matching: {match_rate:.3f}\n")

    naive = NaivePlanner(distribution).plan(query)
    corrseq = CorrSeqPlanner(distribution).plan(query)
    planners = {"Naive": naive, "CorrSeq": corrseq}
    for splits in (5, 10):
        planners[f"Heuristic-{splits}"] = GreedyConditionalPlanner(
            distribution, CorrSeqPlanner(distribution), max_splits=splits
        ).plan(query)

    print(f"{'planner':<14} {'train-model':>12} {'test-measured':>14} {'vs Naive':>9}")
    naive_test = empirical_cost(naive.plan, test, lab.schema)
    executor = PlanExecutor(lab.schema)
    for name, result in planners.items():
        test_cost = empirical_cost(result.plan, test, lab.schema)
        assert executor.verify(result.plan, query, test).correct
        print(
            f"{name:<14} {result.expected_cost:12.1f} {test_cost:14.1f} "
            f"{naive_test / test_cost:8.2f}x"
        )

    print("\nthe Heuristic-10 conditional plan (compare with paper Figure 9):")
    print(planners["Heuristic-10"].plan.pretty())


if __name__ == "__main__":
    main()
