"""Quickstart: build a conditional plan that exploits a correlated cheap
attribute, and watch it beat the classical predicate ordering.

This is the paper's Figure 2 scenario end to end:

- ``hour`` is nearly free to read; ``temp`` and ``light`` are expensive;
- the temperature predicate almost always fails at night, the light
  predicate almost always fails during the day;
- so the best plan *observes hour first* and flips the predicate order.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    Attribute,
    ConjunctiveQuery,
    EmpiricalDistribution,
    ExhaustivePlanner,
    GreedyConditionalPlanner,
    OptimalSequentialPlanner,
    PlanExecutor,
    RangePredicate,
    Schema,
    SplitPointPolicy,
    empirical_cost,
)


def make_history(n_rows: int = 20_000, seed: int = 0) -> np.ndarray:
    """Historical readings: hour of day drives both sensors."""
    rng = np.random.default_rng(seed)
    hour = rng.integers(1, 25, n_rows)  # 1..24
    day = (hour >= 8) & (hour <= 19)
    # Discretized to 8 bins each; daytime is warm and bright.
    temp = np.where(day, rng.integers(5, 9, n_rows), rng.integers(1, 5, n_rows))
    light = np.where(day, rng.integers(5, 9, n_rows), rng.integers(1, 4, n_rows))
    return np.stack([hour, temp, light], axis=1).astype(np.int64)


def main() -> None:
    # 1. Describe the acquisitional table: domains and acquisition costs.
    schema = Schema(
        [
            Attribute("hour", 24, cost=1.0),  # cheap metadata
            Attribute("temp", 8, cost=100.0),  # expensive sensor
            Attribute("light", 8, cost=100.0),  # expensive sensor
        ]
    )

    # 2. Fit the probability model on historical data (the basestation's
    #    job in the paper's architecture, Section 2.5).
    history = make_history()
    train, test = history[:10_000], history[10_000:]
    distribution = EmpiricalDistribution(schema, train)

    # 3. Pose a conjunctive range query: warm AND dark (rare overall, but
    #    each predicate individually passes about half the time).
    query = ConjunctiveQuery(
        schema,
        [RangePredicate("temp", 5, 8), RangePredicate("light", 1, 4)],
    )
    print(f"query: SELECT * WHERE {query.describe()}\n")

    # 4. Plan with and without conditioning.
    sequential = OptimalSequentialPlanner(distribution).plan(query)
    conditional = GreedyConditionalPlanner(
        distribution,
        OptimalSequentialPlanner(distribution),
        max_splits=5,
    ).plan(query)
    # The exhaustive planner is exponential in domain sizes (Section 3.2),
    # so restrict its candidate split points (Section 4.3's SPSF knob).
    optimal = ExhaustivePlanner(
        distribution,
        split_policy=SplitPointPolicy.equal_width(schema, [4, 2, 2]),
    ).plan(query)

    print("expected cost per tuple (training model):")
    print(f"  best sequential order : {sequential.expected_cost:8.2f}")
    print(f"  heuristic conditional : {conditional.expected_cost:8.2f}")
    print(f"  exhaustive optimal    : {optimal.expected_cost:8.2f}\n")

    print("the conditional plan:")
    print(conditional.plan.pretty())
    print()

    # 5. Execute on held-out data and verify answers never change.
    executor = PlanExecutor(schema)
    report = executor.verify(conditional.plan, query, test)
    assert report.correct, "conditional plans must never change answers"

    sequential_test = empirical_cost(sequential.plan, test, schema)
    conditional_test = empirical_cost(conditional.plan, test, schema)
    print("measured cost per tuple on held-out data:")
    print(f"  best sequential order : {sequential_test:8.2f}")
    print(f"  heuristic conditional : {conditional_test:8.2f}")
    print(f"  speedup               : {sequential_test / conditional_test:8.2f}x")


if __name__ == "__main__":
    main()
