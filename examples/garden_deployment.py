"""Garden deployment: wide queries over a correlated mote network, plus the
sensor-network energy accounting the plans exist to optimize.

Reproduces the Section 6.2 setting — 22-predicate queries over Garden-11 —
then goes one step further than the paper: it deploys the competing plans in
the discrete-epoch network simulator and reports per-mote energy including
plan dissemination (the Section 2.4 trade-off), and answers an EXISTS query
across the fleet with early termination (Section 7).

Run:  python examples/garden_deployment.py
"""

import numpy as np

from repro import (
    EmpiricalDistribution,
    ExistentialQuery,
    GreedyConditionalPlanner,
    GreedySequentialPlanner,
    Mote,
    NaivePlanner,
    PlanExecutor,
    SensorNetworkSimulator,
    empirical_cost,
)
from repro.data import garden_queries, generate_garden_dataset, time_split


def main() -> None:
    garden = generate_garden_dataset(n_motes=11, n_epochs=12_000, seed=3)
    train, test = time_split(garden.data, 0.5)
    distribution = EmpiricalDistribution(garden.schema, train)
    print(
        f"garden network: {garden.n_motes} motes, "
        f"{len(garden.schema)} attributes total\n"
    )

    # -- Part 1: the paper's 22-predicate planning comparison ------------
    query = garden_queries(garden, 1, seed=5)[0]
    print(f"query: {len(query)} identical range predicates across all motes")

    naive = NaivePlanner(distribution).plan(query)
    corrseq = GreedySequentialPlanner(distribution).plan(query)
    heuristic = GreedyConditionalPlanner(
        distribution, GreedySequentialPlanner(distribution), max_splits=10
    ).plan(query)

    executor = PlanExecutor(garden.schema)
    print(f"{'planner':<14} {'test cost/tuple':>16} {'gain vs Naive':>14}")
    naive_cost = empirical_cost(naive.plan, test, garden.schema)
    for name, result in (
        ("Naive", naive),
        ("CorrSeq", corrseq),
        ("Heuristic-10", heuristic),
    ):
        assert executor.verify(result.plan, query, test).correct
        cost = empirical_cost(result.plan, test, garden.schema)
        print(f"{name:<14} {cost:16.1f} {naive_cost / cost:13.2f}x")

    # -- Part 2: network energy accounting --------------------------------
    # Each epoch every mote evaluates the (network-wide) plan over the
    # network state; dissemination cost charges zeta(P) bytes per mote.
    epochs = 500
    motes = [Mote(mote_id, test[:epochs]) for mote_id in range(1, 4)]
    simulator = SensorNetworkSimulator(
        garden.schema, motes, radio_cost_per_byte=0.5, result_bytes=16
    )
    print("\nsimulated deployment (3 basestation-relay motes, 500 epochs):")
    print(
        f"{'plan':<14} {'acquisition':>12} {'dissemination':>14} "
        f"{'results':>8} {'total':>12}"
    )
    for name, result in (("Naive", naive), ("Heuristic-10", heuristic)):
        report = simulator.run(result.plan)
        acquisition = sum(report.acquisition_energy.values())
        dissemination = sum(report.dissemination_energy.values())
        results_energy = sum(report.result_energy.values())
        print(
            f"{name:<14} {acquisition:12.0f} {dissemination:14.1f} "
            f"{results_energy:8.1f} {report.total_energy:12.0f}"
        )

    # -- Part 3: EXISTS across the fleet (Section 7) ----------------------
    # Is any mote in direct sun right now (temperature in the top bins)?
    # Polling motes in descending historical match rate stops at the
    # first hit, so highly-exposed motes shield the rest of the fleet.
    per_mote_schema, per_mote_data = garden.project(
        ["hour", "m1_temp", "m1_voltage", "m1_humidity"]
    )
    fleet = []
    for mote_id in range(1, garden.n_motes + 1):
        _schema, columns = garden.project(
            ["hour", f"m{mote_id}_temp", f"m{mote_id}_voltage", f"m{mote_id}_humidity"]
        )
        fleet.append(Mote(mote_id, columns[len(train):][:epochs]))
    from repro.core import ConjunctiveQuery, RangePredicate

    # Threshold at roughly the 85th percentile of mote 1's training temps.
    threshold = int(np.percentile(per_mote_data[: len(train), 1], 85))
    hot = ConjunctiveQuery(
        per_mote_schema,
        [
            RangePredicate(
                "m1_temp", threshold, per_mote_schema["m1_temp"].domain_size
            )
        ],
    )
    local_dist = EmpiricalDistribution(per_mote_schema, per_mote_data[: len(train)])
    local_plan = NaivePlanner(local_dist).plan(hot).plan
    fleet_sim = SensorNetworkSimulator(
        per_mote_schema, fleet, radio_cost_per_byte=0.5
    )
    report = fleet_sim.run_existential(local_plan, ExistentialQuery(hot))
    worst_case = epochs * garden.n_motes
    print(
        f"\nEXISTS(hot mote): {report.matches}/{epochs} epochs matched; "
        f"acquisitions {report.acquisitions_performed} "
        f"(exhaustive polling would need {worst_case})"
    )


if __name__ == "__main__":
    main()
