"""Adaptive conditional planning over a drifting data stream (Section 7).

A continuous query runs for weeks; the correlations the plan was built on
decay — in this script, the building's HVAC schedule changes mid-stream, so
"warm" flips from a daytime to a round-the-clock phenomenon.  The
:class:`~repro.execution.AdaptiveStreamExecutor` maintains a sliding window
of recent tuples, replans periodically, and replans *early* when the
observed cost runs ahead of the plan's own prediction (drift detection).

Run:  python examples/streaming_adaptive.py
"""

import numpy as np

from repro import (
    AdaptiveStreamExecutor,
    Attribute,
    ConjunctiveQuery,
    CorrSeqPlanner,
    EmpiricalDistribution,
    GreedyConditionalPlanner,
    NaivePlanner,
    RangePredicate,
    Schema,
    dataset_execution,
)


def make_stream(n_rows: int, hvac_always_on: bool, seed: int) -> np.ndarray:
    """hour (cheap) predicts temp and co2 (expensive) — unless HVAC policy
    changes, which redraws the correlation between hour and temperature."""
    rng = np.random.default_rng(seed)
    hour = rng.integers(1, 25, n_rows)
    day = (hour >= 8) & (hour <= 19)
    if hvac_always_on:
        warm = np.ones(n_rows, dtype=bool)  # heated around the clock
    else:
        warm = day
    temp = np.where(warm, rng.integers(5, 9, n_rows), rng.integers(1, 5, n_rows))
    occupied = day & (rng.random(n_rows) < 0.8)
    co2 = np.where(occupied, rng.integers(5, 9, n_rows), rng.integers(1, 5, n_rows))
    return np.stack([hour, temp, co2], axis=1).astype(np.int64)


def main() -> None:
    schema = Schema(
        [
            Attribute("hour", 24, cost=1.0),
            Attribute("temp", 8, cost=100.0),
            Attribute("co2", 8, cost=100.0),
        ]
    )
    query = ConjunctiveQuery(
        schema,
        [RangePredicate("temp", 5, 8), RangePredicate("co2", 1, 4)],
    )
    print(f"continuous query: {query.describe()}\n")

    # Two regimes: night-setback HVAC, then an always-on retrofit.
    stream = np.vstack(
        [
            make_stream(12_000, hvac_always_on=False, seed=0),
            make_stream(12_000, hvac_always_on=True, seed=1),
        ]
    )

    executor = AdaptiveStreamExecutor(
        schema,
        query,
        planner_factory=lambda dist: GreedyConditionalPlanner(
            dist, CorrSeqPlanner(dist), max_splits=5
        ),
        window=4_000,
        replan_interval=2_000,
        drift_threshold=1.3,
    )
    report = executor.process(stream)

    # A static plan trained once on the first regime, never refreshed.
    static_dist = EmpiricalDistribution(schema, stream[:4_000])
    static_plan = GreedyConditionalPlanner(
        static_dist, CorrSeqPlanner(static_dist), max_splits=5
    ).plan(query).plan
    static_costs = dataset_execution(static_plan, stream, schema).costs
    naive_plan = NaivePlanner(static_dist).plan(query).plan
    naive_costs = dataset_execution(naive_plan, stream, schema).costs

    print("mean acquisition cost per tuple, by stream phase:")
    print(f"{'phase':<26} {'adaptive':>9} {'static':>9} {'naive':>9}")
    phases = [
        ("regime 1 (settled)", slice(6_000, 12_000)),
        ("regime 2 (just flipped)", slice(12_000, 14_000)),
        ("regime 2 (settled)", slice(18_000, 24_000)),
    ]
    for label, window in phases:
        print(
            f"{label:<26} {report.costs[window].mean():9.1f} "
            f"{static_costs[window].mean():9.1f} "
            f"{naive_costs[window].mean():9.1f}"
        )

    drift_events = [e for e in report.replans if e.reason == "drift"]
    print(
        f"\nreplans: {len(report.replans)} total, "
        f"{len(drift_events)} triggered by drift detection"
    )
    if drift_events:
        first = drift_events[0]
        print(
            f"first drift replan at tuple {first.position} "
            f"(regime flipped at 12000)"
        )


if __name__ == "__main__":
    main()
