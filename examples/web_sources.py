"""Acquisitional query processing over wide-area web sources (Section 7).

The paper notes its techniques apply beyond sensor networks: "on the web,
the latency to acquire individual data items can be quite high, and the
data may exhibit correlations that can be exploited using conditional
plans."  This example models a flight-status aggregator that must decide,
per flight, whether to page an operations team:

    SELECT * FROM flights
    WHERE delay_minutes >= 30        (slow airline API,   ~900 ms)
      AND gate_changed = yes         (slow airport API,   ~700 ms)
      AND connections_at_risk >= 2   (slow itinerary API, ~1200 ms)

Cheap local attributes — scheduled hour bucket, origin-airport weather flag
from a cached feed, airline id — strongly predict which expensive lookup
will disqualify a flight, so a conditional plan pays for milliseconds of
local reads to skip seconds of remote calls.

Costs are per-attribute latencies in milliseconds; the "expected cost" of a
plan is therefore the expected *latency* per flight.  A board-aware source
also models shared-connection costs: the two airport-hosted attributes
share a connection handshake (the Section 7 "complex acquisition costs").

Run:  python examples/web_sources.py
"""

import numpy as np

from repro import (
    Attribute,
    ConjunctiveQuery,
    EmpiricalDistribution,
    GreedyConditionalPlanner,
    NaivePlanner,
    OptimalSequentialPlanner,
    PlanExecutor,
    RangePredicate,
    Schema,
    SensorBoardSource,
    empirical_cost,
)


def make_flight_history(n_rows: int = 30_000, seed: int = 1) -> np.ndarray:
    """Historical flight records with realistic correlation structure."""
    rng = np.random.default_rng(seed)
    # Cheap attributes.
    hour_bucket = rng.integers(1, 7, n_rows)  # 4-hour buckets
    bad_weather = (rng.random(n_rows) < 0.35).astype(np.int64) + 1  # 1=no, 2=yes
    airline = rng.integers(1, 5, n_rows)

    # Delays: in bad weather virtually every flight slips past 30 minutes;
    # in good weather delays are rare (evening rush and airline 3 add a
    # little).  Discretized to 8 buckets of 15 minutes.
    delay_risk = np.where(
        bad_weather == 2,
        0.92,
        0.06 + 0.10 * np.isin(hour_bucket, (4, 5)) + 0.10 * (airline == 3),
    )
    delayed = rng.random(n_rows) < delay_risk
    delay = np.where(
        delayed, rng.integers(3, 9, n_rows), rng.integers(1, 3, n_rows)
    )

    # Gate changes: storms force reshuffles; calm days rarely do.
    gate_risk = np.where(
        bad_weather == 2, 0.85, 0.08 + 0.12 * np.isin(hour_bucket, (4, 5))
    )
    gate_changed = (rng.random(n_rows) < gate_risk).astype(np.int64) + 1

    # Connections at risk: mostly itinerary-driven (independent of weather),
    # somewhat worse late in the day.
    connection_base = 0.8 + 0.7 * (hour_bucket >= 4)
    connections = np.clip(
        np.round(connection_base + rng.normal(0, 1.0, n_rows)), 1, 5
    ).astype(np.int64)

    return np.stack(
        [hour_bucket, bad_weather, airline, delay, gate_changed, connections],
        axis=1,
    )


def main() -> None:
    # Costs are round-trip latencies in milliseconds.
    schema = Schema(
        [
            Attribute("hour_bucket", 6, cost=0.1),
            Attribute("bad_weather", 2, cost=5.0),  # cached feed
            Attribute("airline", 4, cost=0.1),
            Attribute("delay", 8, cost=900.0),  # airline API
            Attribute("gate_changed", 2, cost=700.0),  # airport API
            Attribute("connections", 5, cost=1200.0),  # itinerary API
        ]
    )
    history = make_flight_history()
    train, test = history[:15_000], history[15_000:]
    distribution = EmpiricalDistribution(schema, train)

    query = ConjunctiveQuery(
        schema,
        [
            RangePredicate("delay", 3, 8),  # >= 30 minutes
            RangePredicate("gate_changed", 2, 2),
            RangePredicate("connections", 2, 5),
        ],
    )
    print(f"alerting query: {query.describe()}\n")

    naive = NaivePlanner(distribution).plan(query)
    heuristic = GreedyConditionalPlanner(
        distribution, OptimalSequentialPlanner(distribution), max_splits=6
    ).plan(query)

    naive_latency = empirical_cost(naive.plan, test, schema)
    heuristic_latency = empirical_cost(heuristic.plan, test, schema)
    print("expected remote latency per flight (held-out traffic):")
    print(f"  naive static order    : {naive_latency:7.0f} ms")
    print(f"  conditional plan      : {heuristic_latency:7.0f} ms")
    print(f"  speedup               : {naive_latency / heuristic_latency:7.2f}x\n")

    print("the conditional plan:")
    print(heuristic.plan.pretty())

    executor = PlanExecutor(schema)
    assert executor.verify(heuristic.plan, query, test).correct

    # Shared-connection cost model: delay and gate status are both served
    # by the airport's system — the TCP/TLS handshake is paid once.
    shared = {
        schema.index_of("delay"): "airport-gateway",
        schema.index_of("gate_changed"): "airport-gateway",
    }
    total = 0.0
    for row in test[:2_000]:
        source = SensorBoardSource(
            schema,
            row,
            boards=shared,
            power_up_cost=400.0,  # handshake
            per_read_cost=300.0,  # request once connected
        )
        total += executor.execute_source(heuristic.plan, source).cost
    print(
        "\nwith a shared airport-gateway connection (handshake paid once): "
        f"{total / 2_000:.0f} ms per flight"
    )


if __name__ == "__main__":
    main()
