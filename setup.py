"""Setup shim: metadata lives in pyproject.toml.

Kept so ``pip install -e . --no-use-pep517`` works on machines without the
``wheel`` package (PEP 517 editable installs require bdist_wheel).
"""
from setuptools import setup

setup()
