"""Serving-layer throughput: plan cache on vs off under a Zipf workload.

Production workloads repeat a small set of query shapes with heavy skew;
the serving layer's fingerprint cache turns the per-request planning cost
into a one-time cost per shape.  This benchmark drives the same
Zipf-distributed request stream (>= 20 distinct Garden shapes, skew 1.1)
through two `AcquisitionalService` instances — one with the plan cache
disabled, one with it enabled — and reports queries/second for each.

The acceptance bar is a >= 5x throughput gain with the cache on.  A
trajectory of (requests served, elapsed seconds, q/s) checkpoints is
written to ``BENCH_service.json`` alongside the final stats snapshots.

The planner here is CorrSeq (Section 3.3's correlation-aware sequential
planner): its per-shape planning cost is milliseconds rather than the
seconds Heuristic-5 spends searching conditioning splits, which keeps the
cache-off arm of the comparison tractable in CI.  The cache's *relative*
benefit only grows with a costlier planner.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.data import (
    garden_queries,
    generate_garden_dataset,
    query_text,
    time_split,
    zipf_draws,
)
from repro.engine import AcquisitionalEngine
from repro.planning import CorrSeqPlanner
from repro.service import AcquisitionalService

from common import print_table

N_SHAPES = 24  # distinct query shapes (acceptance floor: 20)
N_REQUESTS = 800
ZIPF_SKEW = 1.1
ROWS_PER_REQUEST = 48
CHECKPOINT_EVERY = 100
REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"


def build_setting():
    garden = generate_garden_dataset(n_motes=5, n_epochs=4_000, seed=3)
    train, test = time_split(garden.data, 0.5)
    shapes: list[str] = []
    seed = 0
    # garden_queries draws random shapes; keep sampling until we have
    # N_SHAPES distinct fingerprint-able texts.
    while len(shapes) < N_SHAPES:
        for query in garden_queries(garden, N_SHAPES, seed=seed):
            text = query_text(query)
            if text not in shapes:
                shapes.append(text)
            if len(shapes) == N_SHAPES:
                break
        seed += 1
    return garden, train, test, shapes


def make_service(garden, train, *, cache_enabled: bool) -> AcquisitionalService:
    engine = AcquisitionalEngine(
        garden.schema,
        train,
        planner_factory=lambda distribution: CorrSeqPlanner(distribution),
    )
    return AcquisitionalService(
        engine,
        cache_capacity=N_SHAPES,
        cache_policy="lfu",
        cache_enabled=cache_enabled,
    )


def run_workload(
    service: AcquisitionalService,
    shapes: list[str],
    draws: np.ndarray,
    test: np.ndarray,
) -> dict:
    """Serve the request stream, recording a throughput trajectory."""
    trajectory = []
    start = time.perf_counter()
    for served, shape_index in enumerate(draws, start=1):
        text = shapes[shape_index]
        offset = (served * ROWS_PER_REQUEST) % (len(test) - ROWS_PER_REQUEST)
        service.execute(text, test[offset : offset + ROWS_PER_REQUEST])
        if served % CHECKPOINT_EVERY == 0 or served == len(draws):
            elapsed = time.perf_counter() - start
            trajectory.append(
                {
                    "requests": served,
                    "elapsed_seconds": round(elapsed, 4),
                    "queries_per_second": round(served / elapsed, 2),
                }
            )
    elapsed = time.perf_counter() - start
    return {
        "queries_per_second": len(draws) / elapsed,
        "elapsed_seconds": elapsed,
        "trajectory": trajectory,
        "stats": service.stats(),
    }


def test_cache_delivers_5x_throughput(benchmark):
    garden, train, test, shapes = build_setting()
    draws = zipf_draws(N_REQUESTS, N_SHAPES, skew=ZIPF_SKEW, seed=42)
    assert len(set(draws.tolist())) >= 10  # the tail is exercised too

    cold = run_workload(
        make_service(garden, train, cache_enabled=False), shapes, draws, test
    )

    warm_service = make_service(garden, train, cache_enabled=True)
    warm = run_workload(warm_service, shapes, draws, test)
    # Timed arm: steady-state serving with every shape already cached.
    benchmark(
        lambda: warm_service.execute(shapes[0], test[:ROWS_PER_REQUEST])
    )

    speedup = warm["queries_per_second"] / cold["queries_per_second"]
    cache = warm["stats"]["cache"]
    print_table(
        "Serving throughput: Zipf(%.1f) over %d Garden shapes"
        % (ZIPF_SKEW, N_SHAPES),
        ["configuration", "q/s", "plans built", "hit rate"],
        [
            [
                "cache off",
                cold["queries_per_second"],
                cold["stats"]["counters"]["plans_built"],
                "-",
            ],
            [
                "cache on (lfu)",
                warm["queries_per_second"],
                warm["stats"]["counters"]["plans_built"],
                f"{cache['hit_rate']:.2f}",
            ],
        ],
    )
    print(f"speedup: {speedup:.1f}x (acceptance bar: 5x)")

    report = {
        "benchmark": "service_throughput",
        "workload": {
            "dataset": "garden-5",
            "shapes": N_SHAPES,
            "requests": N_REQUESTS,
            "zipf_skew": ZIPF_SKEW,
            "rows_per_request": ROWS_PER_REQUEST,
            "planner": "corr-seq",
        },
        "speedup": round(speedup, 2),
        "cache_off": {
            "queries_per_second": round(cold["queries_per_second"], 2),
            "trajectory": cold["trajectory"],
        },
        "cache_on": {
            "queries_per_second": round(warm["queries_per_second"], 2),
            "trajectory": warm["trajectory"],
            "stats": warm["stats"],
        },
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"trajectory written to {REPORT_PATH}")

    # The cache-off arm replans every request; the cache plans each
    # *requested* shape exactly once and serves the rest from the cache
    # (a deep-tail shape may never be drawn at all).
    assert cold["stats"]["counters"]["plans_built"] == N_REQUESTS
    requested = {
        warm_service.fingerprint(shapes[index])
        for index in set(draws.tolist())
    }
    assert warm["stats"]["counters"]["plans_built"] == len(requested)
    assert cache["hit_rate"] >= 0.9
    assert warm["stats"]["latency"]["planning"]["p50_ms_window"] >= 0.0
    assert speedup >= 5.0
