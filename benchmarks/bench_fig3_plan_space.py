"""Figure 3 / Section 2.2: the plan-enumeration example.

Figure 3 walks through the space of conditional plans for the query
``X1 = 1 AND X2 = 1`` over three binary attributes and reads expected
costs off the trees with Equation 3 (the paper prints the expansion for
"Plan 11", which observes X3 first).  This benchmark enumerates every
root-attribute choice, evaluates the paper's Plan-(11)-style cost
expansion by hand against the library's Equation 3 implementation, and
confirms the headline of the example: when the cheap third attribute
skews the other two, observing it first wins.
"""

import numpy as np
import pytest

from repro.core import (
    Attribute,
    ConditionNode,
    ConjunctiveQuery,
    RangePredicate,
    RangeVector,
    Schema,
    SequentialNode,
    SequentialStep,
    VerdictLeaf,
    expected_cost,
)
from repro.planning import ExhaustivePlanner
from repro.probability import EmpiricalDistribution

from common import print_table


def build_example(skew: float = 0.9, seed: int = 0):
    """Three binary attributes where X3 (cheap) predicts X1 and X2."""
    rng = np.random.default_rng(seed)
    n = 40_000
    x3 = rng.integers(1, 3, n)
    # X3=1 makes X2=2 likely (the paper's 'X3=1 increases P(X2=2)' case,
    # which lets the plan skip acquiring X1); X3=2 makes X1=2 likely.
    x2 = np.where(
        x3 == 1,
        np.where(rng.random(n) < skew, 2, 1),
        rng.integers(1, 3, n),
    )
    x1 = np.where(
        x3 == 2,
        np.where(rng.random(n) < skew, 2, 1),
        rng.integers(1, 3, n),
    )
    data = np.stack([x1, x2, x3], axis=1).astype(np.int64)
    schema = Schema(
        [Attribute("x1", 2, 1.0), Attribute("x2", 2, 1.0), Attribute("x3", 2, 0.1)]
    )
    distribution = EmpiricalDistribution(schema, data)
    query = ConjunctiveQuery(
        schema, [RangePredicate("x1", 1, 1), RangePredicate("x2", 1, 1)]
    )
    return schema, distribution, query


def step(name: str, index: int) -> SequentialStep:
    return SequentialStep(
        predicate=RangePredicate(name, 1, 1), attribute_index=index
    )


def plan1() -> SequentialNode:
    """Figure 3's Plan (1): acquire X1 then X2, no conditioning."""
    return SequentialNode(steps=(step("x1", 0), step("x2", 1)))


def plan11() -> ConditionNode:
    """Figure 3's Plan (11): observe X3 first, order by its outcome."""
    return ConditionNode(
        attribute="x3",
        attribute_index=2,
        split_value=2,
        below=SequentialNode(steps=(step("x2", 1), step("x1", 0))),
        above=SequentialNode(steps=(step("x1", 0), step("x2", 1))),
    )


def hand_cost_plan11(distribution) -> float:
    """The paper's explicit expansion of C(Plan 11), computed by hand:

    C = C3 + P(X3<=1)(C2 + P(X2<=1 | X3<=1) C1)
           + P(X3>=2)(C1 + P(X1<=1 | X3>=2) C2)
    """
    schema = distribution.schema
    full = RangeVector.full(schema)
    p_x3_low = distribution.split_probability(2, 2, full)
    below, above = full.split(2, 2)
    p_x2_low_given = distribution.split_probability(1, 2, below)
    p_x1_low_given = distribution.split_probability(0, 2, above)
    c1, c2, c3 = schema.costs
    return (
        c3
        + p_x3_low * (c2 + p_x2_low_given * c1)
        + (1 - p_x3_low) * (c1 + p_x1_low_given * c2)
    )


def test_fig3_equation3_matches_hand_expansion(benchmark):
    _schema, distribution, _query = build_example()
    library_cost = benchmark(lambda: expected_cost(plan11(), distribution))
    assert library_cost == pytest.approx(hand_cost_plan11(distribution), rel=1e-12)


def test_fig3_observing_cheap_attribute_first_wins(benchmark):
    schema, distribution, query = build_example()
    cost_plan1 = expected_cost(plan1(), distribution)
    cost_plan11 = expected_cost(plan11(), distribution)
    optimal = benchmark(lambda: ExhaustivePlanner(distribution).plan(query))

    print_table(
        "Figure 3: candidate plans for X1=1 AND X2=1 over (X1, X2, X3)",
        ["plan", "expected cost"],
        [
            ["Plan (1): acquire X1 -> X2", cost_plan1],
            ["Plan (11): observe X3, then branch", cost_plan11],
            ["exhaustive optimum", optimal.expected_cost],
        ],
    )

    # The paper's point: plan (11)-style conditioning beats plan (1) when
    # X3 skews the other attributes, and the optimum is at least that good.
    assert cost_plan11 < cost_plan1
    assert optimal.expected_cost <= cost_plan11 + 1e-9


def test_fig3_grayed_regions_are_never_expanded(benchmark):
    """Figure 3 grays out subtrees below a failed predicate: the library
    encodes them as verdict leaves, and execution never acquires past
    them."""
    _schema, distribution, query = build_example()
    plan = ExhaustivePlanner(distribution).plan(query).plan
    # A tuple failing the first acquired predicate must stop immediately.
    def reads_on_failing_tuple() -> int:
        acquired: list[int] = []
        plan.evaluate([2, 2, 1], on_acquire=acquired.append)
        return len(acquired)

    assert benchmark(reads_on_failing_tuple) <= 2  # never all three
    for node in plan.iter_nodes():
        if isinstance(node, VerdictLeaf):
            assert node.verdict in (True, False)
