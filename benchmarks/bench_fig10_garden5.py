"""Figure 10: Garden-5 — cumulative gain of Heuristic over Naive and
CorrSeq.

The paper runs 90 ten-predicate queries (identical ranges over temperature
and humidity across all five motes) and plots two cumulative-frequency
curves: Heuristic's gain over Naive and over CorrSeq.  Findings to
reproduce: "Heuristic performs significantly better than both Naive and
CorrSeq for a large fraction of queries"; for some queries Heuristic is
slightly worse (train/test drift), but "the penalty in those cases is
negligible (less than 10%), whereas the gains for the rest are
significantly higher".
"""

import numpy as np

from repro.data import garden_queries
from repro.planning import (
    GreedyConditionalPlanner,
    GreedySequentialPlanner,
    NaivePlanner,
    SplitPointPolicy,
)

from common import (
    N_QUERIES_GARDEN,
    gains,
    garden_setting,
    print_cumulative,
    measured_cost,
)


def run_garden_comparison(n_motes: int, n_queries: int, max_splits: int):
    garden, _train, test, distribution = garden_setting(n_motes)
    # Paper setting: "The SPSF for Heuristic was set to 10^n, where n is
    # the number of attributes" — i.e. ~10 candidate points per attribute.
    policy = SplitPointPolicy.from_spsf(
        garden.schema, 10.0 ** len(garden.schema)
    )
    plain = garden_queries(garden, n_queries // 2, seed=5)
    negated = garden_queries(garden, n_queries - len(plain), seed=6, negated=True)
    queries = plain + negated

    naive_costs, corrseq_costs, heuristic_costs = [], [], []
    for query in queries:
        naive = NaivePlanner(distribution).plan(query)
        corrseq = GreedySequentialPlanner(distribution).plan(query)
        heuristic = GreedyConditionalPlanner(
            distribution,
            GreedySequentialPlanner(distribution),
            max_splits=max_splits,
            split_policy=policy,
        ).plan(query)
        naive_costs.append(measured_cost(naive.plan, test, garden.schema))
        corrseq_costs.append(measured_cost(corrseq.plan, test, garden.schema))
        heuristic_costs.append(measured_cost(heuristic.plan, test, garden.schema))
    return garden, queries, naive_costs, corrseq_costs, heuristic_costs


def assert_garden_shape(gain_naive, gain_corrseq) -> None:
    # A large fraction of queries benefit over Naive...
    assert np.mean(gain_naive >= 1.0 - 1e-9) >= 0.6
    assert gain_naive.mean() > 1.05
    # ...penalties, where they occur, are small (paper: < 10 %).
    assert gain_naive.min() > 0.85
    assert gain_corrseq.min() > 0.85


def test_fig10_garden5_cumulative_gains(benchmark):
    (
        garden,
        queries,
        naive_costs,
        corrseq_costs,
        heuristic_costs,
    ) = run_garden_comparison(n_motes=5, n_queries=N_QUERIES_GARDEN, max_splits=5)

    _garden, _train, _test, distribution = garden_setting(5)
    benchmark(
        lambda: GreedySequentialPlanner(distribution).plan(queries[0])
    )

    gain_naive = gains(naive_costs, heuristic_costs)
    gain_corrseq = gains(corrseq_costs, heuristic_costs)
    print_cumulative(
        f"Figure 10: Garden-5, Heuristic-5 gains over baselines "
        f"({len(queries)} ten-predicate queries)",
        {
            "vs Naive": gain_naive,
            "vs CorrSeq": gain_corrseq,
        },
    )
    print(
        f"vs Naive: mean {gain_naive.mean():.2f}x max {gain_naive.max():.2f}x; "
        f"vs CorrSeq: mean {gain_corrseq.mean():.2f}x max {gain_corrseq.max():.2f}x"
    )
    assert_garden_shape(gain_naive, gain_corrseq)
