"""Ablation 3: the plan-size trade-off (Section 2.4).

Bigger conditional plans execute cheaper but cost more to disseminate:
the paper's combined objective is ``C(P) + alpha * zeta(P)`` with
``alpha = (cost to transmit a byte) / (tuples processed in the query
lifetime)``.  This ablation sweeps the split budget k, reporting execution
cost, plan size zeta(P) in bytes, and the combined objective at several
query lifetimes — verifying the paper's intuition that short-lived queries
prefer small plans while "as the running time of a continuous query gets
large, the time spent in query execution will dominate the cost of
sending the plan".
"""

import numpy as np

from repro.core import combined_objective, simplify_plan
from repro.data import lab_queries
from repro.planning import CorrSeqPlanner, GreedyConditionalPlanner

from common import lab_standard_setting, measured_cost, print_table

SPLIT_BUDGETS = (0, 2, 5, 10, 20)
RADIO_COST_PER_BYTE = 25.0
LIFETIMES = (10, 1_000, 100_000)  # tuples processed over the query's life


def test_ablation_plan_size_tradeoff(benchmark):
    lab, _train, test, distribution = lab_standard_setting()
    query = lab_queries(lab, 1, seed=21)[0]

    plans = {}
    for budget in SPLIT_BUDGETS:
        result = GreedyConditionalPlanner(
            distribution, CorrSeqPlanner(distribution), max_splits=budget
        ).plan(query)
        plans[budget] = simplify_plan(result.plan)

    benchmark(
        lambda: GreedyConditionalPlanner(
            distribution, CorrSeqPlanner(distribution), max_splits=10
        ).plan(query)
    )

    rows = []
    objective = {lifetime: {} for lifetime in LIFETIMES}
    execution = {}
    for budget, plan in plans.items():
        execution[budget] = measured_cost(plan, test, lab.schema)
        row = [budget, plan.size_bytes(), execution[budget]]
        for lifetime in LIFETIMES:
            alpha = RADIO_COST_PER_BYTE / lifetime
            objective[lifetime][budget] = combined_objective(
                plan, distribution, alpha
            )
            row.append(objective[lifetime][budget])
        rows.append(row)

    print_table(
        "Ablation: split budget vs plan size vs combined objective "
        f"(radio cost {RADIO_COST_PER_BYTE}/byte)",
        ["k", "zeta(P) bytes", "exec cost"]
        + [f"obj@{lifetime}" for lifetime in LIFETIMES],
        rows,
    )

    sizes = [plans[budget].size_bytes() for budget in SPLIT_BUDGETS]
    # Plan size grows with the split budget...
    assert sizes[-1] > sizes[0]
    # ...execution cost does not get worse with more splits (training-
    # distribution monotonicity carries to test within tolerance)...
    assert execution[SPLIT_BUDGETS[-1]] <= execution[0] * 1.05
    # ...and the optimal budget shifts with lifetime: for a very short
    # query the smallest plan wins the combined objective; for a long one,
    # a larger plan does.
    short = objective[LIFETIMES[0]]
    long_lived = objective[LIFETIMES[-1]]
    best_short = min(short, key=short.get)
    best_long = min(long_lived, key=long_lived.get)
    print(
        f"\nbest split budget: lifetime={LIFETIMES[0]} -> k={best_short}; "
        f"lifetime={LIFETIMES[-1]} -> k={best_long}"
    )
    # Short-lived query: the dissemination term dominates, so the smallest
    # plan wins the combined objective outright.
    assert best_short == 0
    # Long-lived query: execution dominates, so the biggest (cheapest-to-
    # run) plan beats the unsplit plan, and the preferred budget can only
    # move up as the lifetime grows.
    largest = SPLIT_BUDGETS[-1]
    assert long_lived[largest] < long_lived[0]
    assert best_long >= best_short
    assert plans[best_long].size_bytes() > plans[best_short].size_bytes()
