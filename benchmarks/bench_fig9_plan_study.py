"""Figure 9 / Section 6.1.1: the detailed plan study.

The paper walks through one real plan for a lab query "looking for
instances that are bright, cool, and dry" — someone working in the lab at
night.  The generated plan conditions on hour first (early morning: sample
light first, since the lab is dark and the light predicate fails), brings
in nodeid in the afternoon (sensors 1-6 sit in a zone unused at night, so
darkness is highly correlated with hour there), and samples humidity first
late at night (the HVAC is off, so humidity tracks time of day).  Total
gain reported: about 20 % over Naive.

This bench regenerates that plan on our lab substrate, prints it, and
asserts the study's structural findings: the root conditions on a cheap
attribute (hour), the plan uses different predicate orders in different
branches, and the gain over Naive is positive and of the reported order.
"""

import numpy as np

from repro.core import ConditionNode, ConjunctiveQuery, RangePredicate, SequentialNode
from repro.planning import (
    CorrSeqPlanner,
    GreedyConditionalPlanner,
    NaivePlanner,
)

from common import lab_standard_setting, measured_cost, print_table


def bright_cool_dry(lab) -> ConjunctiveQuery:
    schema = lab.schema
    light_k = schema["light"].domain_size
    temp_k = schema["temp"].domain_size
    humidity_k = schema["humidity"].domain_size
    return ConjunctiveQuery(
        schema,
        [
            RangePredicate("light", light_k // 2 + 1, light_k),
            RangePredicate("temp", 1, temp_k // 2),
            RangePredicate("humidity", 1, humidity_k // 2),
        ],
    )


def leaf_orders(plan) -> set[tuple[str, ...]]:
    """Distinct predicate orders appearing at the plan's sequential leaves."""
    orders = set()
    for node in plan.iter_nodes():
        if isinstance(node, SequentialNode) and node.steps:
            orders.add(tuple(step.predicate.attribute for step in node.steps))
    return orders


def test_fig9_detailed_plan_study(benchmark):
    lab, _train, test, distribution = lab_standard_setting()
    query = bright_cool_dry(lab)

    naive = NaivePlanner(distribution).plan(query)
    heuristic = benchmark(
        lambda: GreedyConditionalPlanner(
            distribution, CorrSeqPlanner(distribution), max_splits=10
        ).plan(query)
    )

    naive_cost = measured_cost(naive.plan, test, lab.schema)
    heuristic_cost = measured_cost(heuristic.plan, test, lab.schema)
    print(f"\nquery: {query.describe()}")
    print("\nthe generated conditional plan:")
    print(heuristic.plan.pretty())
    print_table(
        "Figure 9 study: bright-cool-dry query",
        ["plan", "test cost", "gain over Naive"],
        [
            ["Naive", naive_cost, 1.0],
            ["Heuristic-10", heuristic_cost, naive_cost / heuristic_cost],
        ],
    )

    # Structural findings of the paper's study:
    root = heuristic.plan
    assert isinstance(root, ConditionNode), "plan must start with a split"
    cheap = {"hour", "nodeid", "voltage"}
    assert root.attribute in cheap, "root conditions on a cheap attribute"
    conditioned = {
        node.attribute
        for node in root.iter_nodes()
        if isinstance(node, ConditionNode)
    }
    print(f"\nconditioning attributes used: {sorted(conditioned)}")
    assert "hour" in conditioned, "time of day drives the plan"
    # Different branches use different predicate orders (per-tuple
    # adaptivity — the entire point of conditional plans).
    orders = leaf_orders(root)
    print(f"distinct leaf predicate orders: {len(orders)}")
    assert len(orders) >= 2
    # Gain of the reported order (paper: ~20 %; shapes vary with substrate).
    gain = naive_cost / heuristic_cost
    assert gain > 1.05, f"expected a clear gain over Naive, got {gain:.2f}x"
