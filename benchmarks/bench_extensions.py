"""Section 7 extensions: quantified.

The paper's "Applications and extensions" section sketches several
directions beyond the core evaluation; this repository implements them,
and this bench records what each is worth:

- **Existential queries**: answering EXISTS over the fleet by polling
  motes in descending historical match rate, stopping at the first hit —
  vs exhaustively polling everyone.
- **Disjunctive queries**: optimal conditional plans for OR-of-AND
  formulas (the general problem class of Section 3.1), vs decompressing /
  acquiring every referenced attribute.
- **Plan-size joint objective**: the SizeAwareConditionalPlanner's
  combined objective vs the best fixed split budget, across deployment
  lifetimes.
"""

import numpy as np

from repro.core import (
    And,
    Attribute,
    BooleanQuery,
    ConjunctiveQuery,
    ExistentialQuery,
    Leaf,
    Or,
    RangePredicate,
    Schema,
    combined_objective,
    dataset_execution,
)
from repro.execution import Mote, SensorNetworkSimulator
from repro.planning import (
    ExhaustivePlanner,
    GreedyConditionalPlanner,
    NaivePlanner,
    OptimalSequentialPlanner,
    SizeAwareConditionalPlanner,
    SplitPointPolicy,
)
from repro.probability import EmpiricalDistribution

from common import print_table


def test_extension_existential_polling(benchmark):
    """EXISTS with match-rate-ordered polling touches far fewer motes."""
    rng = np.random.default_rng(0)
    schema = Schema([Attribute("hour", 6, 1.0), Attribute("temp", 6, 100.0)])
    epochs = 400
    motes = []
    # Heterogeneous fleet: mote k matches with probability ~ k / 12.
    for mote_id in range(1, 9):
        rate = mote_id / 12.0
        hot = rng.random(epochs) < rate
        temp = np.where(hot, 6, rng.integers(1, 6, epochs))
        readings = np.stack(
            [rng.integers(1, 7, epochs), temp], axis=1
        ).astype(np.int64)
        motes.append(Mote(mote_id, readings))
    simulator = SensorNetworkSimulator(schema, motes, radio_cost_per_byte=0.0)

    query = ConjunctiveQuery(schema, [RangePredicate("temp", 6, 6)])
    history = np.vstack([mote.readings for mote in motes])
    distribution = EmpiricalDistribution(schema, history)
    plan = NaivePlanner(distribution).plan(query).plan

    ordered = simulator.run_existential(plan, ExistentialQuery(query))
    # Worst-case baseline: consult every mote every epoch.
    exhaustive_polls = epochs * len(motes)

    benchmark(
        lambda: simulator.run_existential(
            plan, ExistentialQuery(query), epochs=50
        )
    )

    print_table(
        "Extension: EXISTS over the fleet (8 motes, 400 epochs)",
        ["strategy", "acquisitions", "fraction of exhaustive"],
        [
            ["poll-all", exhaustive_polls, 1.0],
            [
                "ordered early-stop",
                ordered.acquisitions_performed,
                ordered.acquisitions_performed / exhaustive_polls,
            ],
        ],
    )
    # The best mote matches ~2/3 of epochs, so ordered polling should cut
    # acquisitions well below half of exhaustive.
    assert ordered.acquisitions_performed < exhaustive_polls * 0.6


def test_extension_disjunctive_queries(benchmark):
    """Conditional plans for OR-formulas beat acquire-everything."""
    rng = np.random.default_rng(1)
    n = 3000
    schema = Schema(
        [
            Attribute("mode", 2, 1.0),
            Attribute("x", 3, 50.0),
            Attribute("y", 3, 80.0),
            Attribute("z", 3, 30.0),
        ]
    )
    mode = rng.integers(1, 3, n)
    x = np.where(mode == 1, rng.integers(1, 3, n), rng.integers(2, 4, n))
    y = np.where(mode == 2, rng.integers(1, 3, n), rng.integers(2, 4, n))
    z = rng.integers(1, 4, n)
    data = np.stack([mode, x, y, z], axis=1).astype(np.int64)
    distribution = EmpiricalDistribution(schema, data)

    query = BooleanQuery(
        schema,
        Or(
            And(Leaf(RangePredicate("x", 3, 3)), Leaf(RangePredicate("y", 3, 3))),
            Leaf(RangePredicate("z", 3, 3)),
        ),
    )
    result = benchmark(lambda: ExhaustivePlanner(distribution).plan(query))
    outcome = dataset_execution(result.plan, data, schema)
    truth = np.fromiter(
        (query.evaluate(row) for row in data), dtype=bool, count=n
    )
    assert np.array_equal(outcome.verdicts, truth)
    acquire_all = 50.0 + 80.0 + 30.0
    print_table(
        "Extension: disjunctive query planning",
        ["strategy", "cost/tuple"],
        [
            ["acquire every referenced attribute", acquire_all],
            ["optimal conditional plan", outcome.mean_cost],
        ],
    )
    assert outcome.mean_cost < acquire_all * 0.75


def test_extension_size_aware_objective(benchmark):
    """The size-aware planner matches the best fixed budget at every
    lifetime — without being told the budget."""
    from tests.conftest import correlated_dataset

    schema, data = correlated_dataset(n_rows=4000, seed=9)
    distribution = EmpiricalDistribution(schema, data)
    query = ConjunctiveQuery(
        schema, [RangePredicate("a", 1, 2), RangePredicate("b", 3, 5)]
    )
    base = OptimalSequentialPlanner(distribution)
    radio = 25.0

    fixed_plans = {
        budget: GreedyConditionalPlanner(distribution, base, max_splits=budget)
        .plan(query)
        .plan
        for budget in (0, 1, 2, 4, 8)
    }
    rows = []
    for lifetime in (10, 1_000, 100_000):
        alpha = radio / lifetime
        size_aware = SizeAwareConditionalPlanner(
            distribution, base, alpha=alpha
        ).plan(query)
        own = combined_objective(size_aware.plan, distribution, alpha)
        best_fixed = min(
            combined_objective(plan, distribution, alpha)
            for plan in fixed_plans.values()
        )
        rows.append(
            [
                lifetime,
                size_aware.plan.condition_count(),
                own,
                best_fixed,
            ]
        )
        assert own <= best_fixed * 1.001, f"lifetime {lifetime}"

    benchmark(
        lambda: SizeAwareConditionalPlanner(
            distribution, base, alpha=radio / 1_000
        ).plan(query)
    )
    print_table(
        "Extension: size-aware planning vs best fixed split budget",
        ["lifetime (tuples)", "chosen splits", "own objective", "best fixed"],
        rows,
    )
