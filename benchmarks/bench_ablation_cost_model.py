"""Ablation 4: conditional acquisition costs (Section 7).

"The cost of acquiring a reading can be decomposed as the high cost of
powering up the board, plus a low cost for a reading of each sensor in the
board.  This can be simulated in our planning algorithms by making the
costs of acquiring attributes themselves conditional on the attributes
acquired so far."

This ablation builds a mote whose light and temperature sensors share a
board (power-up 90, per-read 10) while the acoustic sensor sits alone, and
compares three planning regimes, all *measured* under the true board
costs:

- flat-cost planning (the paper's base model, board structure invisible);
- board-aware planning (OptSeq with :class:`BoardAwareCostModel`);
- the oracle gap: how much of the flat planner's loss the board-aware
  planner recovers.

Expected shape: board-aware ordering groups board-mates, recovering most
of the gap whenever selectivities alone would split them.
"""

import numpy as np

from repro.core import (
    Attribute,
    BoardAwareCostModel,
    ConjunctiveQuery,
    RangePredicate,
    Schema,
    empirical_cost,
)
from repro.planning import OptimalSequentialPlanner
from repro.probability import EmpiricalDistribution

from common import print_table

BOARDS = {1: "weather", 2: "weather", 3: "acoustic"}
POWER_UP = 90.0
PER_READ = 10.0
N_QUERIES = 12


def make_setting(seed: int = 0):
    schema = Schema(
        [
            Attribute("id", 4, 1.0),
            Attribute("light", 6, POWER_UP + PER_READ),
            Attribute("temp", 6, POWER_UP + PER_READ),
            Attribute("sound", 6, POWER_UP + PER_READ),
        ]
    )
    rng = np.random.default_rng(seed)
    n = 8000
    data = np.stack(
        [
            rng.integers(1, 5, n),
            rng.integers(1, 7, n),
            rng.integers(1, 7, n),
            rng.integers(1, 7, n),
        ],
        axis=1,
    ).astype(np.int64)
    model = BoardAwareCostModel(
        schema, BOARDS, power_up_cost=POWER_UP, per_read_cost=PER_READ
    )
    return schema, data, model


def random_queries(schema, count: int, seed: int):
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(count):
        predicates = []
        for name in ("light", "temp", "sound"):
            domain = schema[name].domain_size
            width = int(rng.integers(2, domain - 1))
            left = int(rng.integers(1, domain - width + 1))
            predicates.append(RangePredicate(name, left, left + width))
        queries.append(ConjunctiveQuery(schema, predicates))
    return queries


def test_ablation_board_aware_planning(benchmark):
    schema, data, model = make_setting()
    half = len(data) // 2
    train, test = data[:half], data[half:]
    distribution = EmpiricalDistribution(schema, train)
    queries = random_queries(schema, N_QUERIES, seed=3)

    flat_costs, aware_costs = [], []
    grouped_by_aware = 0
    for query in queries:
        flat = OptimalSequentialPlanner(distribution).plan(query)
        aware = OptimalSequentialPlanner(distribution, cost_model=model).plan(
            query
        )
        flat_costs.append(empirical_cost(flat.plan, test, schema, model))
        aware_costs.append(empirical_cost(aware.plan, test, schema, model))
        order = [step.predicate.attribute for step in aware.plan.steps]
        if abs(order.index("light") - order.index("temp")) == 1:
            grouped_by_aware += 1

    benchmark(
        lambda: OptimalSequentialPlanner(distribution, cost_model=model).plan(
            queries[0]
        )
    )

    flat_mean = float(np.mean(flat_costs))
    aware_mean = float(np.mean(aware_costs))
    print_table(
        f"Ablation: board-aware vs flat-cost planning ({N_QUERIES} queries, "
        "measured under board costs)",
        ["planning costs", "mean test cost", "vs board-aware"],
        [
            ["flat (paper base model)", flat_mean, flat_mean / aware_mean],
            ["board-aware (Sec. 7)", aware_mean, 1.0],
        ],
    )
    print(
        f"board-aware plans keep weather sensors adjacent in "
        f"{grouped_by_aware}/{N_QUERIES} queries"
    )

    assert aware_mean <= flat_mean + 1e-9
    # With ~uniform selectivities the shared power-up should dominate
    # ordering for a majority of queries.
    assert grouped_by_aware >= N_QUERIES // 2
