"""Ablation 2: empirical counting vs the Chow-Liu graphical model under
shrinking training data (Section 7, "Graphical Models").

The paper warns that raw counting degrades after conditioning splits: "the
amount of data available to estimate probabilities decreases exponentially
with the number of splits ... our probability estimates will thus have
very high variance.  This can result in choosing arbitrary plans that may
turn out to be significantly worse in reality than on the training data",
and proposes graphical models as the compact, smoother alternative.

This ablation trains both probability models on progressively smaller
training prefixes and costs the resulting Heuristic-5 plans on a large
held-out window.  Expected shape: with plentiful data the two are
comparable; as training data shrinks the model-based planner degrades more
gracefully (and its plans' *predicted* costs stay closer to reality).
"""

import numpy as np

from repro.data import lab_queries
from repro.planning import CorrSeqPlanner, GreedyConditionalPlanner
from repro.probability import ChowLiuDistribution, EmpiricalDistribution

from common import lab_standard_setting, measured_cost, print_table

TRAIN_SIZES = (200, 1_000, 10_000)


def test_ablation_graphical_model_under_data_starvation(benchmark):
    lab, train, test, _distribution = lab_standard_setting()
    queries = lab_queries(lab, 10, seed=13)

    rows = []
    degradation = {}
    for label, build in (
        ("empirical", lambda data: EmpiricalDistribution(lab.schema, data)),
        (
            "chow-liu",
            lambda data: ChowLiuDistribution(lab.schema, data, smoothing=0.5),
        ),
    ):
        means = {}
        prediction_errors = {}
        for size in TRAIN_SIZES:
            distribution = build(train[:size])
            costs = []
            errors = []
            for query in queries:
                result = GreedyConditionalPlanner(
                    distribution, CorrSeqPlanner(distribution), max_splits=5
                ).plan(query)
                actual = measured_cost(result.plan, test, lab.schema)
                costs.append(actual)
                if actual > 0:
                    errors.append(abs(result.expected_cost - actual) / actual)
            means[size] = float(np.mean(costs))
            prediction_errors[size] = float(np.mean(errors))
            rows.append(
                [label, size, means[size], prediction_errors[size]]
            )
        degradation[label] = means[TRAIN_SIZES[0]] / means[TRAIN_SIZES[-1]]

    benchmark(
        lambda: ChowLiuDistribution(lab.schema, train[:1_000], smoothing=0.5)
    )

    print_table(
        "Ablation: probability model vs training-data volume "
        "(Heuristic-5, 10 lab queries)",
        ["model", "train rows", "mean test cost", "mean |predicted-actual|/actual"],
        rows,
    )
    print(
        "degradation (cost at 200 rows / cost at 10k rows): "
        + ", ".join(f"{k}: {v:.2f}x" for k, v in degradation.items())
    )

    # Both models must function at every size; the graphical model should
    # not degrade more than the raw counts when starved.
    assert degradation["chow-liu"] <= degradation["empirical"] * 1.10
