"""Ablation 1: the base sequential planner inside the heuristic.

Section 4.2.1 notes that GreedySplit can use "the GreedySeq algorithm, or
any other sequential planning algorithm" in place of OptSeq, trading
optimality of the leaf plans for polynomial planning time.  This ablation
compares OptSeq-based against GreedySeq-based Heuristic-5 on lab queries:
plan quality should be nearly identical (GreedySeq is 4-approximate and in
practice close), while planning time favours GreedySeq as the predicate
count grows.
"""

import time

import numpy as np

from repro.data import lab_queries
from repro.planning import (
    GreedyConditionalPlanner,
    GreedySequentialPlanner,
    OptimalSequentialPlanner,
)

from common import lab_standard_setting, measured_cost, print_table


def test_ablation_base_planner_quality_and_time(benchmark):
    lab, _train, test, distribution = lab_standard_setting()
    queries = lab_queries(lab, 12, seed=9)

    results = {"OptSeq base": [], "GreedySeq base": []}
    times = {"OptSeq base": 0.0, "GreedySeq base": 0.0}
    for query in queries:
        for label, base_factory in (
            ("OptSeq base", OptimalSequentialPlanner),
            ("GreedySeq base", GreedySequentialPlanner),
        ):
            start = time.perf_counter()
            result = GreedyConditionalPlanner(
                distribution, base_factory(distribution), max_splits=5
            ).plan(query)
            times[label] += time.perf_counter() - start
            results[label].append(measured_cost(result.plan, test, lab.schema))

    benchmark(
        lambda: GreedyConditionalPlanner(
            distribution, GreedySequentialPlanner(distribution), max_splits=5
        ).plan(queries[0])
    )

    rows = [
        [
            label,
            float(np.mean(values)),
            times[label],
        ]
        for label, values in results.items()
    ]
    print_table(
        "Ablation: base sequential planner inside Heuristic-5 (12 lab queries)",
        ["variant", "mean test cost", "total planning time (s)"],
        rows,
    )

    optseq_mean = float(np.mean(results["OptSeq base"]))
    greedy_mean = float(np.mean(results["GreedySeq base"]))
    # Quality parity within a few percent (paper: GreedySeq is the
    # pragmatic substitute for large queries).
    assert abs(greedy_mean - optseq_mean) / optseq_mean < 0.05
