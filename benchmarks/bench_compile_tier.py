"""Compile tier: columnar kernels vs the scalar tuple-at-a-time executor.

The compile tier's bargain is "prove once, run fast": each plan pays a
one-time lowering + translation-validation cost, after which the WHERE
clause runs as a handful of flat numpy mask ops instead of a per-tuple
tree walk.  This benchmark prices both sides of the bargain on the
PR's standard correlated workload:

- ``scalar``   — :class:`PlanExecutor`, the paper's per-tuple
  basestation loop (one tree walk per row);
- ``walker``   — :func:`dataset_execution`, the vectorized interpreting
  walker (informational: the compiled kernel must *match* it
  bit-for-bit and is expected to roughly tie or beat it);
- ``compiled`` — :func:`execute_compiled` over the proven kernel.

Acceptance: on every plan shape, the compiled tier must clear **5x**
the scalar executor's rows/second, and its cost vector and verdicts
must be bit-identical to the walker's.  Results — rows/second per arm,
speedups, and the one-time compile+proof cost — are written to
``BENCH_compile.json``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.compile import compile_plan, execute_compiled
from repro.core import (
    Attribute,
    ConjunctiveQuery,
    RangePredicate,
    Schema,
    dataset_execution,
)
from repro.execution import PlanExecutor
from repro.planning import (
    CorrSeqPlanner,
    GreedyConditionalPlanner,
    OptimalSequentialPlanner,
)
from repro.probability import EmpiricalDistribution

from common import print_table

N_ROWS_TRAIN = 3_000
N_ROWS_TEST = 4_000
# Arms are timed in alternating rounds and scored on aggregate elapsed
# time (same drift-cancelling discipline as the observability bench).
REPEATS = 5
# The vectorized arms finish a 4k-row batch in microseconds; an inner
# loop keeps each timed slice well above timer resolution.
INNER_VECTOR = 20
MIN_SPEEDUP = 5.0
REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_compile.json"


def build_setting():
    """A correlated 4-attribute workload and two plan shapes over it."""
    schema = Schema(
        [
            Attribute("mode", 4, 1.0),
            Attribute("a", 5, 100.0),
            Attribute("b", 5, 100.0),
            Attribute("c", 5, 50.0),
        ]
    )
    rng = np.random.default_rng(19)
    n = N_ROWS_TRAIN + N_ROWS_TEST
    mode = rng.integers(1, 5, n)
    a = np.where(mode <= 2, rng.integers(1, 3, n), rng.integers(3, 6, n))
    b = np.where(mode % 2 == 0, rng.integers(1, 3, n), rng.integers(3, 6, n))
    c = rng.integers(1, 6, n)
    data = np.stack([mode, a, b, c], axis=1).astype(np.int64)
    train, test = data[:N_ROWS_TRAIN], data[N_ROWS_TRAIN:]
    distribution = EmpiricalDistribution(schema, train, smoothing=0.5)
    query = ConjunctiveQuery(
        schema,
        [RangePredicate("a", 1, 2), RangePredicate("b", 3, 5)],
    )
    plans = {
        "sequential": OptimalSequentialPlanner(distribution)
        .plan(query)
        .plan,
        "conditional": GreedyConditionalPlanner(
            distribution, CorrSeqPlanner(distribution), max_splits=3
        )
        .plan(query)
        .plan,
    }
    return schema, distribution, test, plans


def test_compile_tier_speedup(benchmark):
    schema, distribution, test, plans = build_setting()

    # One-time cost: lower + prove each plan (TV008 armed).
    kernels = {}
    compile_seconds = {}
    for name, plan in plans.items():
        start = time.perf_counter()
        kernel, report = compile_plan(plan, schema, distribution=distribution)
        compile_seconds[name] = time.perf_counter() - start
        assert report.ok, f"{name}: {report.format()}"
        kernels[name] = kernel

    # Correctness before speed: bit-identical to the walker.
    for name, plan in plans.items():
        walker = dataset_execution(plan, test, schema)
        kernel_run = execute_compiled(kernels[name], test)
        assert np.array_equal(walker.verdicts, kernel_run.verdicts)
        assert np.array_equal(walker.costs, kernel_run.costs)

    executor = PlanExecutor(schema)
    elapsed = {
        name: {"scalar": 0.0, "walker": 0.0, "compiled": 0.0}
        for name in plans
    }
    for _round in range(REPEATS):
        for name, plan in plans.items():
            start = time.perf_counter()
            for row in test:
                executor.execute(plan, row)
            elapsed[name]["scalar"] += time.perf_counter() - start

            start = time.perf_counter()
            for _ in range(INNER_VECTOR):
                dataset_execution(plan, test, schema)
            elapsed[name]["walker"] += (
                time.perf_counter() - start
            ) / INNER_VECTOR

            start = time.perf_counter()
            for _ in range(INNER_VECTOR):
                execute_compiled(kernels[name], test)
            elapsed[name]["compiled"] += (
                time.perf_counter() - start
            ) / INNER_VECTOR

    total_rows = len(test) * REPEATS
    rows_per_second = {
        name: {arm: total_rows / seconds for arm, seconds in arms.items()}
        for name, arms in elapsed.items()
    }
    speedups = {
        name: {
            "vs_scalar": arms["compiled"] / arms["scalar"],
            "vs_walker": arms["compiled"] / arms["walker"],
        }
        for name, arms in rows_per_second.items()
    }

    # Timed arm for pytest-benchmark: the compiled hot path.
    hot = kernels["conditional"]
    benchmark(lambda: execute_compiled(hot, test))

    print_table(
        f"Compile tier: {len(test)} rows/batch, {REPEATS} rounds",
        ["plan", "arm", "rows/s", "vs scalar"],
        [
            [name, arm, rows_per_second[name][arm],
             f"{rows_per_second[name][arm] / rows_per_second[name]['scalar']:.1f}x"]
            for name in sorted(plans)
            for arm in ("scalar", "walker", "compiled")
        ],
    )

    report = {
        "benchmark": "compile_tier",
        "workload": {
            "rows_per_batch": len(test),
            "train_rows": N_ROWS_TRAIN,
            "repeats": REPEATS,
            "plans": sorted(plans),
        },
        "compile_seconds": {
            name: round(seconds, 6)
            for name, seconds in compile_seconds.items()
        },
        "rows_per_second": {
            name: {arm: round(value, 1) for arm, value in arms.items()}
            for name, arms in rows_per_second.items()
        },
        "speedup": {
            name: {
                "vs_scalar": round(values["vs_scalar"], 2),
                "vs_walker": round(values["vs_walker"], 2),
            }
            for name, values in speedups.items()
        },
        "acceptance": {
            "min_speedup_vs_scalar": MIN_SPEEDUP,
            "passed": all(
                values["vs_scalar"] >= MIN_SPEEDUP
                for values in speedups.values()
            ),
        },
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"report written to {REPORT_PATH}")

    for name, values in speedups.items():
        assert values["vs_scalar"] >= MIN_SPEEDUP, (
            f"{name}: compiled tier only {values['vs_scalar']:.1f}x over "
            f"the scalar executor (need {MIN_SPEEDUP:.0f}x)"
        )
