"""Sharded serving tier: throughput and latency vs worker count.

The sharded front door's gains on a concurrent workload come from two
multiplicative effects the single-process baseline cannot exploit:

- **request coalescing** — requests arriving in one acquisition epoch
  (a concurrent wave sharing a sensor-readings window) with the same
  canonical fingerprint execute once and fan out, so only unique
  (shape, window) pairs cost anything;
- **shard-local plan caches** — consistent-hash routing pins every shape
  to one shard, so each shard plans only its own shapes once.

This benchmark drives the same Zipf workload (24 Garden shapes, skew
1.1, 48-row windows, waves of 512 concurrent requests) through a
single-process `AcquisitionalService` baseline — one `execute()` per
request, warm cache, exactly how PR 4's serving layer is driven — and
through `ShardedServiceCluster` at 1/2/4/8 workers, recording
queries/second and per-request p50/p95/p99 latency for each worker
count into ``BENCH_service_sharded.json``.

Acceptance bar: >= 10x warm-cache q/s over the single-process baseline
at 8 workers.  On a single-core runner the factor is carried by
coalescing (wave size / distinct shapes ~ 21x headroom); on multi-core
machines shard parallelism multiplies on top.  The in-process backend
is used so the numbers isolate the serving-tier algorithms from
process-spawn artifacts; ``--backend process`` via the CLI exercises
the real multiprocessing path.
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path

import numpy as np

from repro.cluster import ClusterConfig, ShardConfig, ShardedServiceCluster
from repro.data import (
    garden_queries,
    generate_garden_dataset,
    query_text,
    time_split,
    zipf_draws,
)
from repro.engine import AcquisitionalEngine
from repro.planning import CorrSeqPlanner
from repro.service import AcquisitionalService

from common import print_table

N_SHAPES = 24
N_REQUESTS = 1024
WAVE_SIZE = 512
ZIPF_SKEW = 1.1
ROWS_PER_REQUEST = 48
WORKER_COUNTS = (1, 2, 4, 8)
REPORT_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_service_sharded.json"
)


def build_setting():
    garden = generate_garden_dataset(n_motes=5, n_epochs=4_000, seed=3)
    train, test = time_split(garden.data, 0.5)
    shapes: list[str] = []
    seed = 0
    while len(shapes) < N_SHAPES:
        for query in garden_queries(garden, N_SHAPES, seed=seed):
            text = query_text(query)
            if text not in shapes:
                shapes.append(text)
            if len(shapes) == N_SHAPES:
                break
        seed += 1
    return garden, train, test, shapes


def build_requests(shapes, test) -> list[tuple[str, np.ndarray]]:
    """Zipf draws in waves; each wave shares one readings window."""
    draws = zipf_draws(N_REQUESTS, N_SHAPES, skew=ZIPF_SKEW, seed=42)
    windows: dict[int, np.ndarray] = {}
    requests = []
    for position, shape_index in enumerate(draws):
        wave = position // WAVE_SIZE
        if wave not in windows:
            offset = (wave * ROWS_PER_REQUEST) % (len(test) - ROWS_PER_REQUEST)
            windows[wave] = test[offset : offset + ROWS_PER_REQUEST]
        requests.append((shapes[shape_index], windows[wave]))
    return requests


def run_baseline(garden, train, requests) -> dict:
    """Single-process serving: sequential execute(), warm plan cache."""
    engine = AcquisitionalEngine(
        garden.schema,
        train,
        planner_factory=lambda distribution: CorrSeqPlanner(distribution),
    )
    service = AcquisitionalService(
        engine, cache_capacity=N_SHAPES, cache_policy="lfu"
    )
    # Warm the plan cache: the acceptance bar compares *warm-cache*
    # steady state, so one-time planning cost is paid outside the
    # timed region in both arms.
    for text, readings in requests[:WAVE_SIZE]:
        service.execute(text, readings)
    latencies = []
    start = time.perf_counter()
    for text, readings in requests:
        began = time.perf_counter()
        service.execute(text, readings)
        latencies.append(time.perf_counter() - began)
    elapsed = time.perf_counter() - start
    return summarize(elapsed, latencies, extra={"stats": service.stats()})


def run_cluster(garden, train, requests, workers: int) -> dict:
    """The sharded tier at a given worker count, wave-concurrent."""

    async def main() -> dict:
        config = ClusterConfig(
            shard_config=ShardConfig(
                schema=garden.schema,
                history=train,
                planner="corr-seq",
                cache_capacity=N_SHAPES,
                cache_policy="lfu",
            ),
            shards=workers,
            backend="inproc",
            soft_limit=4 * WAVE_SIZE,
            hard_limit=8 * WAVE_SIZE,
        )
        latencies: list[float] = []

        async with ShardedServiceCluster(config) as cluster:
            # Same warm-up as the baseline: plan the shapes once on
            # their owning shards before the timed waves.
            await cluster.execute_many(requests[:WAVE_SIZE])
            start = time.perf_counter()
            for begin in range(0, len(requests), WAVE_SIZE):
                wave = requests[begin : begin + WAVE_SIZE]
                began = time.perf_counter()
                responses = await cluster.execute_many(wave)
                wave_elapsed = time.perf_counter() - began
                assert all(response.ok for response in responses)
                # Every request in a concurrent wave experiences the
                # wave's wall-clock time: they were issued together and
                # the last fan-out answers when the wave drains.
                latencies.extend([wave_elapsed] * len(responses))
            elapsed = time.perf_counter() - start
            front = cluster.front_door_stats()
        return summarize(
            elapsed,
            latencies,
            extra={
                "workers": workers,
                "coalescing": front["coalescing"],
                "live_shards": front["live_shards"],
            },
        )

    return asyncio.run(main())


def summarize(elapsed: float, latencies: list[float], extra: dict) -> dict:
    window = np.asarray(latencies, dtype=float) * 1e3
    return {
        "queries_per_second": round(len(latencies) / elapsed, 2),
        "elapsed_seconds": round(elapsed, 4),
        "latency_ms": {
            "p50": round(float(np.percentile(window, 50)), 4),
            "p95": round(float(np.percentile(window, 95)), 4),
            "p99": round(float(np.percentile(window, 99)), 4),
            "mean": round(float(window.mean()), 4),
        },
        **extra,
    }


def best_of(repeats: int, run) -> dict:
    """Best-of-N timing (as ``timeit`` does): noise only slows runs."""
    return max(
        (run() for _ in range(repeats)),
        key=lambda result: result["queries_per_second"],
    )


def test_sharded_tier_delivers_10x_over_single_process(benchmark):
    garden, train, test, shapes = build_setting()
    requests = build_requests(shapes, test)

    # The speedup ratio compares the baseline against the 8-worker
    # tier; measure both best-of-3 so scheduler noise on a shared
    # runner cannot fail the acceptance bar.
    baseline = best_of(3, lambda: run_baseline(garden, train, requests))
    by_workers = {
        workers: run_cluster(garden, train, requests, workers)
        for workers in WORKER_COUNTS
        if workers != 8
    }
    by_workers[8] = best_of(
        3, lambda: run_cluster(garden, train, requests, 8)
    )

    # pytest-benchmark timed arm: steady-state wave at 8 workers.
    benchmark(lambda: run_cluster(garden, train, requests[:WAVE_SIZE], 8))

    rows = [
        [
            "baseline (1 process)",
            baseline["queries_per_second"],
            baseline["latency_ms"]["p50"],
            baseline["latency_ms"]["p95"],
            baseline["latency_ms"]["p99"],
        ]
    ]
    for workers in WORKER_COUNTS:
        result = by_workers[workers]
        rows.append(
            [
                f"sharded x{workers}",
                result["queries_per_second"],
                result["latency_ms"]["p50"],
                result["latency_ms"]["p95"],
                result["latency_ms"]["p99"],
            ]
        )
    print_table(
        "Sharded serving tier: Zipf(%.1f) waves of %d over %d shapes"
        % (ZIPF_SKEW, WAVE_SIZE, N_SHAPES),
        ["configuration", "q/s", "p50 ms", "p95 ms", "p99 ms"],
        rows,
    )
    speedup = (
        by_workers[8]["queries_per_second"] / baseline["queries_per_second"]
    )
    print(f"speedup at 8 workers: {speedup:.1f}x (acceptance bar: 10x)")

    report = {
        "benchmark": "service_sharded",
        "workload": {
            "dataset": "garden-5",
            "shapes": N_SHAPES,
            "requests": N_REQUESTS,
            "wave_size": WAVE_SIZE,
            "zipf_skew": ZIPF_SKEW,
            "rows_per_request": ROWS_PER_REQUEST,
            "planner": "corr-seq",
            "backend": "inproc",
        },
        "baseline": baseline,
        "sharded": {str(workers): by_workers[workers] for workers in WORKER_COUNTS},
        "speedup_at_8_workers": round(speedup, 2),
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"curves written to {REPORT_PATH}")

    # Coalescing is the mechanism: far fewer dispatches than requests.
    # Counters include the warm-up wave (front stats are cumulative).
    total = N_REQUESTS + WAVE_SIZE
    eight = by_workers[8]["coalescing"]
    assert eight["dispatched_requests"] <= total // 8
    assert (
        eight["coalesced_requests"] + eight["dispatched_requests"] == total
    )
    assert speedup >= 10.0
