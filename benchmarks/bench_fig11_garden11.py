"""Figure 11: Garden-11 — 22-predicate queries over the full deployment.

Same protocol as Figure 10 but over all eleven motes (34 attributes,
22 predicates per query).  The paper reports that "the performance
improvement is even more significant in this case, with a factor of 4
improvement over Naive for some of the queries" — wider queries mean a
mis-ordered static plan wastes more acquisitions, so the gain *tail*
stretches right relative to Garden-5.
"""

import numpy as np

from common import N_QUERIES_GARDEN, gains, garden_setting, print_cumulative
from bench_fig10_garden5 import assert_garden_shape, run_garden_comparison


def test_fig11_garden11_cumulative_gains(benchmark):
    (
        garden,
        queries,
        naive_costs,
        corrseq_costs,
        heuristic_costs,
    ) = run_garden_comparison(
        n_motes=11, n_queries=max(8, N_QUERIES_GARDEN // 2), max_splits=5
    )
    assert all(len(query) == 22 for query in queries)

    from repro.planning import NaivePlanner

    _garden, _train, _test, distribution = garden_setting(11)
    benchmark(lambda: NaivePlanner(distribution).plan(queries[0]))

    gain_naive = gains(naive_costs, heuristic_costs)
    gain_corrseq = gains(corrseq_costs, heuristic_costs)
    print_cumulative(
        f"Figure 11: Garden-11, Heuristic-5 gains over baselines "
        f"({len(queries)} 22-predicate queries)",
        {
            "vs Naive": gain_naive,
            "vs CorrSeq": gain_corrseq,
        },
    )
    print(
        f"vs Naive: mean {gain_naive.mean():.2f}x max {gain_naive.max():.2f}x; "
        f"vs CorrSeq: mean {gain_corrseq.mean():.2f}x max {gain_corrseq.max():.2f}x"
    )

    assert_garden_shape(gain_naive, gain_corrseq)
    # Figure 11's headline: the gain tail is substantial — some queries
    # improve over Naive by well above the Garden-5 typical case.
    assert gain_naive.max() > 1.5
