"""Figure 2 / Section 2.1: the motivating two-predicate example.

The paper's worked example: query ``temp > 20C AND light < 100 Lux`` with
apriori selectivities 1/2 each and unit acquisition costs.  Either static
order costs 1.5 units; conditioning on the (free) time of day — where the
temp predicate holds with probability 1/10 at night and the light
predicate with probability 1/10 by day — yields the conditional plan of
Figure 2 with expected cost 1.1, "a savings of almost 27%".

This benchmark rebuilds that distribution exactly and checks both numbers
to three decimal places.
"""

import numpy as np
import pytest

from repro.core import (
    Attribute,
    ConditionNode,
    ConjunctiveQuery,
    RangePredicate,
    Schema,
)
from repro.planning import ExhaustivePlanner, OptimalSequentialPlanner
from repro.probability import EmpiricalDistribution

from common import print_table


def build_example():
    schema = Schema(
        [
            Attribute("hour", 2, 0.0),  # time of day: already known, free
            Attribute("temp", 2, 1.0),
            Attribute("light", 2, 1.0),
        ]
    )
    rows = []
    # hour=1 night, hour=2 day; value 2 means the predicate holds.
    for hour, temp_pass, light_pass in ((1, 0.1, 0.9), (2, 0.9, 0.1)):
        for temp_value, temp_weight in ((2, temp_pass), (1, 1 - temp_pass)):
            for light_value, light_weight in ((2, light_pass), (1, 1 - light_pass)):
                count = int(round(1000 * temp_weight * light_weight))
                rows.extend([[hour, temp_value, light_value]] * count)
    data = np.asarray(rows, dtype=np.int64)
    distribution = EmpiricalDistribution(schema, data)
    query = ConjunctiveQuery(
        schema, [RangePredicate("temp", 2, 2), RangePredicate("light", 2, 2)]
    )
    return schema, distribution, query


def test_fig2_conditional_plan_costs(benchmark):
    _schema, distribution, query = build_example()

    sequential = OptimalSequentialPlanner(distribution).plan(query)
    conditional = benchmark(lambda: ExhaustivePlanner(distribution).plan(query))

    print_table(
        "Figure 2: expected cost of the two-predicate example",
        ["plan", "expected cost", "paper"],
        [
            ["best static order", sequential.expected_cost, 1.5],
            ["conditional (on time of day)", conditional.expected_cost, 1.1],
        ],
    )
    savings = 1.0 - conditional.expected_cost / sequential.expected_cost
    print(f"savings: {savings:.1%} (paper: 'almost 27%')")

    # The paper's numbers, exactly.
    assert sequential.expected_cost == pytest.approx(1.5, abs=1e-3)
    assert conditional.expected_cost == pytest.approx(1.1, abs=1e-3)
    # And the optimal plan's first move is to look at the clock.
    assert isinstance(conditional.plan, ConditionNode)
    assert conditional.plan.attribute == "hour"
