"""Figure 8(c): cumulative frequency of performance gain on the lab data.

The paper plots, over its lab-query workload, the cumulative frequency of
each algorithm's gain over Naive: "the frequency at a particular
x-coordinate indicates the fraction of experiments that did at least that
well."  This bench reproduces the curve on the full six-attribute lab
table for CorrSeq and Heuristic-{5,10}, asserting the paper's qualitative
findings: conditional plans dominate the curve, most queries gain, and
losses (train/test drift) are small and rare.
"""

import numpy as np

from repro.data import lab_queries
from repro.planning import (
    CorrSeqPlanner,
    GreedyConditionalPlanner,
    NaivePlanner,
)

from common import (
    N_QUERIES_LAB,
    gains,
    lab_standard_setting,
    print_cumulative,
    measured_cost,
)


def test_fig8c_cumulative_gain_over_naive(benchmark):
    lab, _train, test, distribution = lab_standard_setting()
    queries = lab_queries(lab, N_QUERIES_LAB, seed=3)

    naive_costs, corrseq_costs = [], []
    heuristic_costs = {5: [], 10: []}
    for query in queries:
        naive = NaivePlanner(distribution).plan(query)
        naive_costs.append(measured_cost(naive.plan, test, lab.schema))
        corrseq = CorrSeqPlanner(distribution).plan(query)
        corrseq_costs.append(measured_cost(corrseq.plan, test, lab.schema))
        for budget in heuristic_costs:
            heuristic = GreedyConditionalPlanner(
                distribution, CorrSeqPlanner(distribution), max_splits=budget
            ).plan(query)
            heuristic_costs[budget].append(
                measured_cost(heuristic.plan, test, lab.schema)
            )

    benchmark(
        lambda: GreedyConditionalPlanner(
            distribution, CorrSeqPlanner(distribution), max_splits=5
        ).plan(queries[0])
    )

    series = {
        "CorrSeq": gains(naive_costs, corrseq_costs),
        "Heuristic-5": gains(naive_costs, heuristic_costs[5]),
        "Heuristic-10": gains(naive_costs, heuristic_costs[10]),
    }
    print_cumulative(
        f"Figure 8(c): cumulative frequency of gain over Naive "
        f"({N_QUERIES_LAB} lab queries)",
        series,
    )
    for name, values in series.items():
        print(
            f"{name}: mean gain {values.mean():.2f}x, "
            f"max {values.max():.2f}x, min {values.min():.2f}x"
        )

    h10 = series["Heuristic-10"]
    # Paper shape: conditional planning gains on a large fraction of
    # queries, penalties are small ("less than 10%") and rare.
    assert np.mean(h10 >= 1.0 - 1e-9) >= 0.5
    assert h10.mean() > 1.05
    assert h10.min() > 0.85
    # Heuristic-10 dominates (or matches) the pure sequential CorrSeq.
    assert h10.mean() >= series["CorrSeq"].mean() - 0.02
