"""Figure 12: the synthetic correlated dataset (Babu et al. generator).

Four parameter settings — (Gamma=1, n=10), (Gamma=3, n=10), (Gamma=1,
n=40), (Gamma=3, n=40) with 5/7/20/30 expensive predicates respectively —
sweeping the unconditional selectivity ``sel``.  The paper plots execution
cost vs ``sel`` for Naive, CorrSeq, Heuristic-5 and Heuristic-10 and
reports:

- conditional planning beats Naive and CorrSeq throughout, "in several
  cases by more than a factor of 2";
- at Gamma=1, Naive and CorrSeq produce nearly identical plans (each
  2-attribute group gives correlation-aware ordering almost nothing to
  exploit beyond marginals);
- Heuristic-5 and Heuristic-10 coincide at n=10 (few useful splits).
"""

import numpy as np

from repro.core import empirical_cost
from repro.data import generate_synthetic_dataset, time_split
from repro.planning import (
    GreedyConditionalPlanner,
    GreedySequentialPlanner,
    NaivePlanner,
)
from repro.probability import EmpiricalDistribution

from common import print_table

SETTINGS = (
    # (gamma, n_attributes) — predicate counts follow from the grouping.
    (1, 10),
    (3, 10),
    (1, 40),
    (3, 40),
)
SELECTIVITIES = (0.5, 0.7, 0.9)
N_ROWS = 8_000


def run_setting(gamma: int, n_attributes: int, selectivity: float):
    dataset = generate_synthetic_dataset(
        n_attributes, gamma, selectivity, n_rows=N_ROWS, seed=17
    )
    train, test = time_split(dataset.data, 0.5)
    distribution = EmpiricalDistribution(dataset.schema, train)
    query = dataset.query()

    results = {}
    naive = NaivePlanner(distribution).plan(query)
    results["Naive"] = empirical_cost(naive.plan, test, dataset.schema)
    corrseq = GreedySequentialPlanner(distribution).plan(query)
    results["CorrSeq"] = empirical_cost(corrseq.plan, test, dataset.schema)
    for budget in (5, 10):
        heuristic = GreedyConditionalPlanner(
            distribution,
            GreedySequentialPlanner(distribution),
            max_splits=budget,
        ).plan(query)
        results[f"Heuristic-{budget}"] = empirical_cost(
            heuristic.plan, test, dataset.schema
        )
    return len(query), results


def test_fig12_synthetic_sweep(benchmark):
    all_results: dict[tuple, dict[str, float]] = {}
    rows = []
    for gamma, n_attributes in SETTINGS:
        for selectivity in SELECTIVITIES:
            n_predicates, results = run_setting(gamma, n_attributes, selectivity)
            all_results[(gamma, n_attributes, selectivity)] = results
            rows.append(
                [
                    f"G={gamma} n={n_attributes} m={n_predicates}",
                    selectivity,
                    results["Naive"],
                    results["CorrSeq"],
                    results["Heuristic-5"],
                    results["Heuristic-10"],
                ]
            )
    print_table(
        "Figure 12: synthetic dataset, execution cost vs selectivity",
        ["setting", "sel", "Naive", "CorrSeq", "Heur-5", "Heur-10"],
        rows,
    )

    def representative_run():
        return run_setting(3, 10, 0.7)

    benchmark(representative_run)

    for (gamma, n_attributes, selectivity), results in all_results.items():
        label = f"G={gamma} n={n_attributes} sel={selectivity}"
        # Conditional planning always beats (or matches) both baselines.
        assert (
            results["Heuristic-10"] <= results["Naive"] * 1.02
        ), label
        assert (
            results["Heuristic-10"] <= results["CorrSeq"] * 1.05
        ), label
        if gamma == 1:
            # Naive and CorrSeq nearly coincide at Gamma=1.
            ratio = results["CorrSeq"] / results["Naive"]
            assert 0.9 <= ratio <= 1.1, label

    # "In several cases by more than a factor of 2" over Naive.
    best_gain = max(
        results["Naive"] / results["Heuristic-10"]
        for results in all_results.values()
    )
    print(f"\nbest Heuristic-10 gain over Naive across settings: {best_gain:.2f}x")
    assert best_gain > 2.0

    # Heuristic-5 ~= Heuristic-10 at n=10 (paper observation).
    for selectivity in SELECTIVITIES:
        for gamma in (1, 3):
            results = all_results[(gamma, 10, selectivity)]
            ratio = results["Heuristic-5"] / results["Heuristic-10"]
            assert 0.9 <= ratio <= 1.1
