"""Benchmark-suite configuration.

Benchmarks live outside the ``tests`` tree; run them with

    pytest benchmarks/ --benchmark-only

Each benchmark times a representative planning operation with
pytest-benchmark and prints the paper-style result table to stdout (use
``-s`` to see the tables inline; they are also printed under
``--benchmark-only`` because table generation happens inside the test
body, not in the timed callable).
"""

import sys
from pathlib import Path

# Make `common` importable regardless of where pytest is invoked from.
sys.path.insert(0, str(Path(__file__).resolve().parent))
