"""Observability overhead: profiling and tracing vs the bare serving path.

The observability layer promises to be free when off and cheap when on:
execution hot paths guard every per-node event behind one ``observer is
not None`` test, and profiling costs a handful of dict updates per node
*batch*.  This benchmark quantifies both claims on the PR-1 serving
workload — a Zipf-distributed request stream over Garden query shapes —
with three arms through identical :class:`AcquisitionalService`
configurations:

- ``off``       — profiling disabled, no tracer (the PR-1 baseline path);
- ``profiling`` — per-plan :class:`PlanProfile` + drift bookkeeping on;
- ``full``      — profiling plus a :class:`Tracer` streaming JSON lines
  to an in-memory buffer.

A second experiment measures **distributed tracing** on the sharded
tier: the same workload through an in-process 4-shard cluster with
``tracing`` off vs on (span propagation, per-shard span export, reply
piggybacking, front-door merge all included).

The acceptance bar for both: the instrumented arm must hold >= 90% of
the baseline's throughput (<10% overhead).  Results — queries/second
per arm and the overhead ratios — are written to
``BENCH_observability.json``.
"""

from __future__ import annotations

import asyncio
import io
import json
import time
from pathlib import Path

import numpy as np

from repro.data import (
    garden_queries,
    generate_garden_dataset,
    query_text,
    time_split,
    zipf_draws,
)
from repro.engine import AcquisitionalEngine
from repro.obs import Tracer
from repro.planning import CorrSeqPlanner
from repro.service import AcquisitionalService

from common import print_table

N_SHAPES = 16
N_REQUESTS = 600
ZIPF_SKEW = 1.1
ROWS_PER_REQUEST = 48
# Arms are timed in alternating rounds and scored on the *aggregate*
# elapsed time across all rounds.  Container-grade machines drift by
# >10% run to run, so a single paired comparison (or a best-of) is
# noise-fragile; interleaving the arms and summing cancels slow drift
# and leaves a stable ratio.
REPEATS = 6
REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_observability.json"


def build_setting():
    garden = generate_garden_dataset(n_motes=5, n_epochs=4_000, seed=3)
    train, test = time_split(garden.data, 0.5)
    shapes: list[str] = []
    seed = 0
    while len(shapes) < N_SHAPES:
        for query in garden_queries(garden, N_SHAPES, seed=seed):
            text = query_text(query)
            if text not in shapes:
                shapes.append(text)
            if len(shapes) == N_SHAPES:
                break
        seed += 1
    draws = zipf_draws(N_REQUESTS, N_SHAPES, skew=ZIPF_SKEW, seed=42)
    requests = [
        (
            shapes[shape],
            test[
                (position * ROWS_PER_REQUEST)
                % (len(test) - ROWS_PER_REQUEST) :
            ][:ROWS_PER_REQUEST],
        )
        for position, shape in enumerate(draws)
    ]
    return garden, train, requests


def make_service(garden, train, *, profiling: bool, tracing: bool):
    engine = AcquisitionalEngine(
        garden.schema,
        train,
        planner_factory=lambda distribution: CorrSeqPlanner(distribution),
    )
    tracer = Tracer(stream=io.StringIO()) if tracing else None
    return AcquisitionalService(
        engine,
        cache_capacity=N_SHAPES,
        cache_policy="lfu",
        profiling=profiling,
        tracer=tracer,
    )


def serving_pass(service, requests) -> float:
    """One timed pass over the workload (plan cache warmed untimed)."""
    for text, readings in requests[: N_SHAPES * 2]:
        service.execute(text, readings)
    start = time.perf_counter()
    for text, readings in requests:
        service.execute(text, readings)
    return time.perf_counter() - start


def measure_service_arms(garden, train, requests):
    """Aggregate q/s per service arm, arms interleaved round by round.

    Returns ``(qps, services)`` where ``qps`` maps arm name to
    aggregate queries/second over REPEATS rounds and ``services`` holds
    each arm's last service (for the did-it-really-profile asserts).
    """
    arms = {
        "off": {"profiling": False, "tracing": False},
        "profiling": {"profiling": True, "tracing": False},
        "full": {"profiling": True, "tracing": True},
    }
    elapsed = dict.fromkeys(arms, 0.0)
    services = {}
    for _round in range(REPEATS):
        for name, knobs in arms.items():
            service = make_service(garden, train, **knobs)
            elapsed[name] += serving_pass(service, requests)
            services[name] = service
    qps = {
        name: len(requests) * REPEATS / total
        for name, total in elapsed.items()
    }
    return qps, services


def measure_cluster_arms(garden, train, requests):
    """Aggregate off/traced q/s through an in-process 4-shard cluster.

    The traced arm pays the full distributed path: root spans at the
    front door, ``TraceContext`` propagation on every wire record,
    per-shard span export piggybacked on replies, and the front-door
    merge into a JSON-lines stream.  The in-process backend is the
    measurement vehicle on purpose — it runs the identical code path
    without multiprocessing queue costs drowning the signal.
    """
    from repro.cluster import ClusterConfig, ShardConfig, ShardedServiceCluster

    async def run_once(tracing: bool) -> tuple[float, object]:
        config = ClusterConfig(
            shard_config=ShardConfig(
                schema=garden.schema,
                history=train,
                cache_capacity=N_SHAPES,
                cache_policy="lfu",
            ),
            shards=4,
            backend="inproc",
            tracing=tracing,
        )
        tracer = Tracer(stream=io.StringIO(), name="fd") if tracing else None
        async with ShardedServiceCluster(config, tracer=tracer) as cluster:
            # Warm every shard's plan cache before the timed waves.
            await cluster.execute_many(requests[: N_SHAPES * 2])
            start = time.perf_counter()
            for begin in range(0, len(requests), 50):
                await cluster.execute_many(requests[begin : begin + 50])
            elapsed = time.perf_counter() - start
            return elapsed, cluster.tracer

    asyncio.run(run_once(False))  # one untimed warm-up of the machinery
    asyncio.run(run_once(True))
    total = {False: 0.0, True: 0.0}
    tracer = None
    for _round in range(REPEATS):
        elapsed, _ = asyncio.run(run_once(False))
        total[False] += elapsed
        elapsed, tracer = asyncio.run(run_once(True))
        total[True] += elapsed
    qps_off = len(requests) * REPEATS / total[False]
    qps_traced = len(requests) * REPEATS / total[True]
    return qps_off, qps_traced, tracer


def test_observability_overhead_is_bounded(benchmark):
    garden, train, requests = build_setting()

    service_qps, services = measure_service_arms(garden, train, requests)
    qps_off = service_qps["off"]
    qps_profiling = service_qps["profiling"]
    qps_full = service_qps["full"]
    profiled_service = services["profiling"]
    full_service = services["full"]
    qps_sharded_off, qps_sharded_traced, cluster_tracer = (
        measure_cluster_arms(garden, train, requests)
    )
    # Timed arm for pytest-benchmark: the profiling-on serving path.
    benchmark(
        lambda: profiled_service.execute(requests[0][0], requests[0][1])
    )

    profiling_ratio = qps_profiling / qps_off
    full_ratio = qps_full / qps_off
    sharded_ratio = qps_sharded_traced / qps_sharded_off
    print_table(
        "Observability overhead: Zipf(%.1f) over %d Garden shapes"
        % (ZIPF_SKEW, N_SHAPES),
        ["configuration", "q/s", "vs baseline"],
        [
            ["off (baseline)", qps_off, "1.00x"],
            ["profiling", qps_profiling, f"{profiling_ratio:.2f}x"],
            ["profiling+tracing", qps_full, f"{full_ratio:.2f}x"],
            ["sharded x4 (baseline)", qps_sharded_off, "1.00x"],
            ["sharded x4 + dist tracing", qps_sharded_traced, f"{sharded_ratio:.2f}x"],
        ],
    )

    # The profiling arm really profiled (and the tracers really traced).
    reports = profiled_service.drift_reports(min_tuples=1)
    assert reports, "profiling arm must accumulate per-plan profiles"
    assert full_service.tracer is not None
    assert full_service.tracer.emitted > N_REQUESTS
    assert cluster_tracer is not None
    assert cluster_tracer.emitted > N_REQUESTS

    report = {
        "benchmark": "observability_overhead",
        "workload": {
            "dataset": "garden-5",
            "shapes": N_SHAPES,
            "requests": N_REQUESTS,
            "zipf_skew": ZIPF_SKEW,
            "rows_per_request": ROWS_PER_REQUEST,
            "planner": "corr-seq",
            "repeats": REPEATS,
        },
        "queries_per_second": {
            "off": round(qps_off, 2),
            "profiling": round(qps_profiling, 2),
            "profiling_tracing": round(qps_full, 2),
            "sharded_off": round(qps_sharded_off, 2),
            "sharded_traced": round(qps_sharded_traced, 2),
        },
        "overhead": {
            "profiling_ratio": round(profiling_ratio, 4),
            "profiling_overhead_pct": round((1 - profiling_ratio) * 100, 2),
            "full_ratio": round(full_ratio, 4),
            "full_overhead_pct": round((1 - full_ratio) * 100, 2),
            "sharded_tracing_ratio": round(sharded_ratio, 4),
            "sharded_tracing_overhead_pct": round((1 - sharded_ratio) * 100, 2),
        },
        "acceptance": {
            "profiling_min_ratio": 0.90,
            "sharded_tracing_min_ratio": 0.90,
            "passed": profiling_ratio >= 0.90 and sharded_ratio >= 0.90,
        },
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"report written to {REPORT_PATH}")

    assert profiling_ratio >= 0.90, (
        f"profiling overhead too high: {qps_profiling:.0f} vs {qps_off:.0f} "
        f"q/s ({(1 - profiling_ratio) * 100:.1f}%)"
    )
    assert sharded_ratio >= 0.90, (
        f"distributed tracing overhead too high: {qps_sharded_traced:.0f} vs "
        f"{qps_sharded_off:.0f} q/s ({(1 - sharded_ratio) * 100:.1f}%)"
    )
