"""Observability overhead: profiling and tracing vs the bare serving path.

The observability layer promises to be free when off and cheap when on:
execution hot paths guard every per-node event behind one ``observer is
not None`` test, and profiling costs a handful of dict updates per node
*batch*.  This benchmark quantifies both claims on the PR-1 serving
workload — a Zipf-distributed request stream over Garden query shapes —
with three arms through identical :class:`AcquisitionalService`
configurations:

- ``off``       — profiling disabled, no tracer (the PR-1 baseline path);
- ``profiling`` — per-plan :class:`PlanProfile` + drift bookkeeping on;
- ``full``      — profiling plus a :class:`Tracer` streaming JSON lines
  to an in-memory buffer.

The acceptance bar: the profiling arm must hold >= 90% of the baseline's
throughput (<10% overhead).  Results — queries/second per arm and the
overhead ratios — are written to ``BENCH_observability.json``.
"""

from __future__ import annotations

import io
import json
import time
from pathlib import Path

import numpy as np

from repro.data import (
    garden_queries,
    generate_garden_dataset,
    query_text,
    time_split,
    zipf_draws,
)
from repro.engine import AcquisitionalEngine
from repro.obs import Tracer
from repro.planning import CorrSeqPlanner
from repro.service import AcquisitionalService

from common import print_table

N_SHAPES = 16
N_REQUESTS = 600
ZIPF_SKEW = 1.1
ROWS_PER_REQUEST = 48
REPEATS = 3  # arms are timed repeatedly; best run is scored
REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_observability.json"


def build_setting():
    garden = generate_garden_dataset(n_motes=5, n_epochs=4_000, seed=3)
    train, test = time_split(garden.data, 0.5)
    shapes: list[str] = []
    seed = 0
    while len(shapes) < N_SHAPES:
        for query in garden_queries(garden, N_SHAPES, seed=seed):
            text = query_text(query)
            if text not in shapes:
                shapes.append(text)
            if len(shapes) == N_SHAPES:
                break
        seed += 1
    draws = zipf_draws(N_REQUESTS, N_SHAPES, skew=ZIPF_SKEW, seed=42)
    requests = [
        (
            shapes[shape],
            test[
                (position * ROWS_PER_REQUEST)
                % (len(test) - ROWS_PER_REQUEST) :
            ][:ROWS_PER_REQUEST],
        )
        for position, shape in enumerate(draws)
    ]
    return garden, train, requests


def make_service(garden, train, *, profiling: bool, tracing: bool):
    engine = AcquisitionalEngine(
        garden.schema,
        train,
        planner_factory=lambda distribution: CorrSeqPlanner(distribution),
    )
    tracer = Tracer(stream=io.StringIO()) if tracing else None
    return AcquisitionalService(
        engine,
        cache_capacity=N_SHAPES,
        cache_policy="lfu",
        profiling=profiling,
        tracer=tracer,
    )


def measure_arm(garden, train, requests, *, profiling: bool, tracing: bool):
    """Best-of-REPEATS steady-state q/s (plans warmed before timing)."""
    best = 0.0
    for _repeat in range(REPEATS):
        service = make_service(garden, train, profiling=profiling, tracing=tracing)
        # Warm the plan cache so every arm times pure serving, not planning.
        for text, readings in requests[: N_SHAPES * 2]:
            service.execute(text, readings)
        start = time.perf_counter()
        for text, readings in requests:
            service.execute(text, readings)
        elapsed = time.perf_counter() - start
        best = max(best, len(requests) / elapsed)
    return best, service


def test_observability_overhead_is_bounded(benchmark):
    garden, train, requests = build_setting()

    qps_off, _ = measure_arm(garden, train, requests, profiling=False, tracing=False)
    qps_profiling, profiled_service = measure_arm(
        garden, train, requests, profiling=True, tracing=False
    )
    qps_full, full_service = measure_arm(
        garden, train, requests, profiling=True, tracing=True
    )
    # Timed arm for pytest-benchmark: the profiling-on serving path.
    benchmark(
        lambda: profiled_service.execute(requests[0][0], requests[0][1])
    )

    profiling_ratio = qps_profiling / qps_off
    full_ratio = qps_full / qps_off
    print_table(
        "Observability overhead: Zipf(%.1f) over %d Garden shapes"
        % (ZIPF_SKEW, N_SHAPES),
        ["configuration", "q/s", "vs off"],
        [
            ["off (baseline)", qps_off, "1.00x"],
            ["profiling", qps_profiling, f"{profiling_ratio:.2f}x"],
            ["profiling+tracing", qps_full, f"{full_ratio:.2f}x"],
        ],
    )

    # The profiling arm really profiled (and the tracer really traced).
    reports = profiled_service.drift_reports(min_tuples=1)
    assert reports, "profiling arm must accumulate per-plan profiles"
    assert full_service.tracer is not None
    assert full_service.tracer.emitted > N_REQUESTS

    report = {
        "benchmark": "observability_overhead",
        "workload": {
            "dataset": "garden-5",
            "shapes": N_SHAPES,
            "requests": N_REQUESTS,
            "zipf_skew": ZIPF_SKEW,
            "rows_per_request": ROWS_PER_REQUEST,
            "planner": "corr-seq",
            "repeats": REPEATS,
        },
        "queries_per_second": {
            "off": round(qps_off, 2),
            "profiling": round(qps_profiling, 2),
            "profiling_tracing": round(qps_full, 2),
        },
        "overhead": {
            "profiling_ratio": round(profiling_ratio, 4),
            "profiling_overhead_pct": round((1 - profiling_ratio) * 100, 2),
            "full_ratio": round(full_ratio, 4),
            "full_overhead_pct": round((1 - full_ratio) * 100, 2),
        },
        "acceptance": {
            "profiling_min_ratio": 0.90,
            "passed": profiling_ratio >= 0.90,
        },
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"report written to {REPORT_PATH}")

    assert profiling_ratio >= 0.90, (
        f"profiling overhead too high: {qps_profiling:.0f} vs {qps_off:.0f} "
        f"q/s ({(1 - profiling_ratio) * 100:.1f}%)"
    )
