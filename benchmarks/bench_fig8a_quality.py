"""Figure 8(a): Exhaustive vs Naive vs Heuristic-k on the lab dataset.

The paper compares, over 95 random three-predicate lab queries with ~50 %
per-predicate selectivity, the plans of the Naive optimizer, the exhaustive
optimal conditional planner, and the greedy heuristic with 0/5/10 splits —
reporting costs normalized to Exhaustive.  Findings to reproduce:

- every algorithm beats Naive;
- Heuristic-10's average (and worst case) sit very close to Exhaustive;
- Heuristic-0 (the bare sequential base plan) trails the conditional
  variants.

Exhaustive planning is exponential, so this bench runs on a projected
4-attribute lab table with reduced domains and a restricted split policy —
the same concession the paper makes ("the largest problems we could solve
were still several orders of magnitude smaller than ... our data sets").
"""

import numpy as np

from repro.core import ConjunctiveQuery, RangePredicate
from repro.planning import (
    ExhaustivePlanner,
    GreedyConditionalPlanner,
    NaivePlanner,
    OptimalSequentialPlanner,
    SplitPointPolicy,
)
from repro.probability import EmpiricalDistribution

from common import measured_cost, print_table
from common import lab_exhaustive_setting

SPLIT_BUDGETS = (0, 5, 10)
# Exhaustive planning dominates this bench's runtime; fewer queries than
# the lab CDF benches keep it tractable (the paper uses 95).
N_QUERIES_EXHAUSTIVE = 12


def planning_setting():
    lab, _schema, _train, _test, _distribution = lab_exhaustive_setting()
    schema, data = lab.project(["hour", "light", "temp", "humidity"])
    half = len(data) // 2
    train, test = data[:half], data[half:]
    return lab, schema, train, test, EmpiricalDistribution(schema, train)


def random_queries(lab, schema, train, count: int, seed: int):
    """Three-predicate queries in the paper's ~50 %-selectivity regime."""
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(count):
        predicates = []
        for name in ("light", "temp", "humidity"):
            column = train[:, schema.index_of(name)]
            domain = schema[name].domain_size
            width = max(1, min(int(round(2.0 * column.std())), domain - 1))
            left = int(rng.integers(1, domain - width + 1))
            predicates.append(RangePredicate(name, left, left + width))
        queries.append(ConjunctiveQuery(schema, predicates))
    return queries


def test_fig8a_heuristic_tracks_exhaustive(benchmark):
    _lab, schema, train, test, distribution = planning_setting()
    lab = _lab
    queries = random_queries(lab, schema, train, N_QUERIES_EXHAUSTIVE, seed=1)
    exhaustive_policy = SplitPointPolicy.equal_width(schema, [3, 2, 2, 2])

    costs: dict[str, list[float]] = {
        "Naive": [],
        "Exhaustive": [],
        **{f"Heuristic-{k}": [] for k in SPLIT_BUDGETS},
    }
    for query in queries:
        naive = NaivePlanner(distribution).plan(query)
        costs["Naive"].append(measured_cost(naive.plan, test, schema))
        exhaustive = ExhaustivePlanner(
            distribution, split_policy=exhaustive_policy
        ).plan(query)
        costs["Exhaustive"].append(measured_cost(exhaustive.plan, test, schema))
        for budget in SPLIT_BUDGETS:
            # Same SPSF for Heuristic and Exhaustive, as in the paper's
            # Figure 8(a) ("both ... running on the dataset with SPSF set
            # to 10^8").
            heuristic = GreedyConditionalPlanner(
                distribution,
                OptimalSequentialPlanner(distribution),
                max_splits=budget,
                split_policy=exhaustive_policy,
            ).plan(query)
            costs[f"Heuristic-{budget}"].append(
                measured_cost(heuristic.plan, test, schema)
            )

    # Time one representative exhaustive planning run.
    benchmark(
        lambda: ExhaustivePlanner(
            distribution, split_policy=exhaustive_policy
        ).plan(queries[0])
    )

    exhaustive_mean = float(np.mean(costs["Exhaustive"]))
    rows = []
    for name, values in costs.items():
        mean = float(np.mean(values))
        worst = float(np.max(np.asarray(values) / np.asarray(costs["Exhaustive"])))
        rows.append([name, mean, mean / exhaustive_mean, worst])
    print_table(
        f"Figure 8(a): average plan cost over {N_QUERIES_EXHAUSTIVE} lab "
        "queries (normalized to Exhaustive)",
        ["algorithm", "mean cost", "mean/exhaustive", "worst/exhaustive"],
        rows,
    )

    naive_mean = float(np.mean(costs["Naive"]))
    h0_mean = float(np.mean(costs["Heuristic-0"]))
    h10_mean = float(np.mean(costs["Heuristic-10"]))
    # Paper shape: all algorithms beat Naive; Heuristic-10 ~= Exhaustive
    # (test-set drift can put either side ahead by a hair).
    assert h0_mean <= naive_mean * 1.001
    assert h10_mean <= h0_mean * 1.001
    assert 0.90 <= h10_mean / exhaustive_mean <= 1.10, (
        "Heuristic-10 should closely track the exhaustive optimum"
    )
