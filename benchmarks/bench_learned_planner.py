"""Learned planner: cumulative regret vs the static and refit baselines.

The adversarial stream flips its killer predicate every segment, so no
static order is ever safe and the pre-learning "chi-square fired → refit
→ replan from scratch" loop is the strongest honest baseline.  Four
strategies run over byte-identical streams:

- ``oracle``           — clairvoyant per-segment optimal plans (lower
  bound, never attainable online);
- ``never-replan``     — one warm-up plan held forever;
- ``chi-square-refit`` — the adaptive executor's drift loop;
- ``bandit``           — the learned executor: selectivity-triggered
  exploration bursts, PAO order swaps, warm-started refits, and a
  hard-capped regret ledger.

Acceptance (asserted here and recorded in ``BENCH_learned.json``):

- on every seed the bandit beats never-replan, its ledger reconciles
  exactly, exploration respects the regret budget, and the final
  plan+provenance passes the verifier's ``LRN`` rules;
- the bandit beats the chi-square-refit baseline on the headline seed
  and in aggregate across all seeds (single seeds are noisy: one lucky
  refit landing exactly on a segment boundary can edge out any online
  learner, which is why the gate is majority + aggregate, not 100%).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.learn import BanditPlanner, adversarial_stream, run_learned_bench
from repro.probability import EmpiricalDistribution

from common import print_table

SEEDS = (0, 1, 2)
N_SEGMENTS = 6
SEGMENT_LENGTH = 500
REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_learned.json"


def test_learned_planner_regret(benchmark):
    reports = {seed: run_learned_bench(seed=seed) for seed in SEEDS}

    rows = []
    for seed, report in reports.items():
        for run in report.strategies:
            rows.append([seed, run.name, run.total_cost, run.replans])
    print_table(
        f"Learned planner: {N_SEGMENTS}x{SEGMENT_LENGTH} adversarial "
        f"tuples, seeds {SEEDS}",
        ["seed", "strategy", "total Eq.3 cost", "replans"],
        rows,
    )

    # Per-seed hard gates: the learned run must always dominate the
    # static plan and keep its own books in order.
    for seed, report in reports.items():
        gates = dict(report.gates)
        assert gates["bandit_beats_never_replan"], f"seed {seed}: {gates}"
        assert gates["ledger_conserved"], f"seed {seed}: {gates}"
        assert gates["exploration_within_budget"], f"seed {seed}: {gates}"
        assert gates["provenance_verified"], f"seed {seed}: {gates}"
        assert gates["verdicts_agree"], f"seed {seed}: {gates}"

    # Refit-baseline gates: headline seed, majority, and aggregate.
    headline = reports[SEEDS[0]]
    assert headline.gates["bandit_beats_chi_square_refit"], headline.gates
    refit_wins = sum(
        report.gates["bandit_beats_chi_square_refit"]
        for report in reports.values()
    )
    assert refit_wins * 2 > len(SEEDS), f"bandit won {refit_wins}/{len(SEEDS)}"
    bandit_total = sum(
        report.strategy("bandit").total_cost for report in reports.values()
    )
    refit_total = sum(
        report.strategy("chi-square-refit").total_cost
        for report in reports.values()
    )
    assert bandit_total < refit_total, (bandit_total, refit_total)

    # Timed arm: one-shot bandit planning (the serving-path hot cost).
    workload = adversarial_stream(
        n_segments=N_SEGMENTS, segment_length=SEGMENT_LENGTH, seed=SEEDS[0]
    )
    distribution = EmpiricalDistribution(
        workload.schema, workload.data[:SEGMENT_LENGTH], smoothing=0.5
    )
    planner = BanditPlanner(distribution)
    benchmark(lambda: planner.plan(workload.query))

    payload = {
        "benchmark": "learned_planner",
        "workload": {
            "kind": "adversarial",
            "segments": N_SEGMENTS,
            "segment_length": SEGMENT_LENGTH,
            "seeds": list(SEEDS),
        },
        "runs": {str(seed): report.as_dict() for seed, report in reports.items()},
        "acceptance": {
            "bandit_beats_never_replan_every_seed": True,
            "bandit_beats_refit_headline_seed": True,
            "bandit_refit_wins": f"{refit_wins}/{len(SEEDS)}",
            "bandit_total": round(bandit_total, 2),
            "chi_square_refit_total": round(refit_total, 2),
            "bandit_beats_refit_aggregate": bandit_total < refit_total,
            "passed": True,
        },
    }
    REPORT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"report written to {REPORT_PATH}")
