"""Shared infrastructure for the paper-reproduction benchmarks.

Each ``bench_*.py`` file regenerates one table or figure from the paper's
evaluation (Section 6).  The benchmarks print the same rows/series the
paper reports and assert the qualitative *shape* — who wins, by roughly
what factor — rather than absolute numbers (our substrate is a synthetic
trace and a Python implementation, not the authors' testbed; see
EXPERIMENTS.md for the paper-vs-measured record).

Scale note: the constants here are tuned so the full suite completes in
minutes on a laptop.  The paper's experiments use more queries (95 per lab
figure, 90 per garden figure) and more data; raising ``N_QUERIES_*`` and
the dataset sizes reproduces them at full scale.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.core import ConjunctiveQuery, Schema, empirical_cost
from repro.core.plan import PlanNode
from repro.data import (
    generate_garden_dataset,
    generate_lab_dataset,
    time_split,
)
from repro.probability import EmpiricalDistribution

# Paper scale: 95 lab queries, 90 garden queries.  Reduced for CI speed.
N_QUERIES_LAB = 24
N_QUERIES_GARDEN = 20


@lru_cache(maxsize=None)
def lab_exhaustive_setting():
    """A lab projection small enough for the exhaustive planner.

    Exhaustive planning is exponential in attribute count and domain size
    (Section 3.2) — the paper likewise reports that "the largest problems we
    could solve were still several orders of magnitude smaller than the
    smallest of our real-world data sets".  We project onto the two cheap
    conditioning attributes plus the three expensive sensors, with reduced
    domain resolution.
    """
    lab = generate_lab_dataset(
        n_readings=12_000,
        n_motes=8,
        seed=0,
        domain_sizes={"hour": 6, "light": 5, "temp": 5, "humidity": 5},
    )
    schema, data = lab.project(["nodeid", "hour", "light", "temp", "humidity"])
    train, test = time_split(data, 0.5)
    distribution = EmpiricalDistribution(schema, train)
    return lab, schema, train, test, distribution


@lru_cache(maxsize=None)
def lab_standard_setting():
    """The full six-attribute lab table at standard resolution."""
    lab = generate_lab_dataset(n_readings=100_000, n_motes=12, seed=0)
    train, test = time_split(lab.data, 0.5)
    distribution = EmpiricalDistribution(lab.schema, train)
    return lab, train, test, distribution


@lru_cache(maxsize=None)
def garden_setting(n_motes: int):
    """Garden-5 / Garden-11 with a time-window train/test split."""
    garden = generate_garden_dataset(n_motes=n_motes, n_epochs=10_000, seed=3)
    train, test = time_split(garden.data, 0.5)
    distribution = EmpiricalDistribution(garden.schema, train)
    return garden, train, test, distribution


def measured_cost(plan: PlanNode, test_data: np.ndarray, schema: Schema) -> float:
    """Measured (Equation 4) cost of a plan on the held-out window."""
    return empirical_cost(plan, test_data, schema)


def gains(numerators: list[float], denominators: list[float]) -> np.ndarray:
    """Per-query performance gain of one planner over another."""
    return np.asarray(numerators) / np.asarray(denominators)


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Aligned text table in the style of the paper's reported numbers."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(headers[i])), *(len(_fmt(row[i])) for row in rows))
        for i in range(len(headers))
    ]
    header_line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(header_line)
    print("-" * len(header_line))
    for row in rows:
        print("  ".join(_fmt(cell).ljust(w) for cell, w in zip(row, widths)))


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def print_cumulative(title: str, series: dict[str, np.ndarray]) -> None:
    """Text rendering of the paper's cumulative-frequency gain plots.

    For each series, prints the fraction of queries whose gain is at least
    each threshold — the same curve as Figures 8(c), 10, and 11.
    """
    thresholds = [0.9, 1.0, 1.1, 1.25, 1.5, 2.0, 3.0, 4.0]
    headers = ["gain >="] + [f"{t:g}" for t in thresholds]
    rows = []
    for name, values in series.items():
        row = [name] + [
            f"{float(np.mean(values >= t)):.2f}" for t in thresholds
        ]
        rows.append(row)
    print_table(title, headers, rows)


def query_signature(query: ConjunctiveQuery) -> str:
    return query.describe()
