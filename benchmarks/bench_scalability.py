"""Section 6.4: scalability of the planners.

The paper's claims (verified but not plotted, "due to space limitations"):

- the heuristic scales **linearly in dataset size**, **linearly in domain
  size**, and **exponentially (base 2) in the number of query predicates**
  (through the OptSeq base planner; with GreedySeq it is polynomial);
- the exhaustive algorithm is also linear in dataset size, **polynomial in
  domain size** and **exponential in query variables with base the domain
  size**.

This bench measures planning wall-time along each axis with
pytest-benchmark and asserts the growth *orders* (ratios between scale
points), not absolute times.
"""

import time

import numpy as np
import pytest

from repro.core import Attribute, ConjunctiveQuery, RangePredicate, Schema
from repro.planning import (
    ExhaustivePlanner,
    GreedyConditionalPlanner,
    GreedySequentialPlanner,
    OptimalSequentialPlanner,
)
from repro.probability import EmpiricalDistribution


def correlated_table(n_attributes: int, domain: int, n_rows: int, seed: int = 0):
    """A generic correlated table: attribute 0 is a cheap regime driver."""
    rng = np.random.default_rng(seed)
    regime = rng.integers(1, domain + 1, n_rows)
    columns = [regime]
    for _ in range(n_attributes - 1):
        noise = rng.integers(-1, 2, n_rows)
        columns.append(np.clip(regime + noise, 1, domain))
    data = np.stack(columns, axis=1).astype(np.int64)
    attributes = [Attribute("driver", domain, 1.0)] + [
        Attribute(f"x{i}", domain, 100.0) for i in range(1, n_attributes)
    ]
    return Schema(attributes), data


def query_over(schema: Schema, n_predicates: int) -> ConjunctiveQuery:
    domain = schema[1].domain_size
    names = [f"x{i}" for i in range(1, n_predicates + 1)]
    half = max(1, domain // 2)
    return ConjunctiveQuery(
        schema, [RangePredicate(name, 1, half) for name in names]
    )


def plan_seconds(planner_factory, schema, data, query) -> float:
    distribution = EmpiricalDistribution(schema, data)
    planner = planner_factory(distribution)
    start = time.perf_counter()
    planner.plan(query)
    return time.perf_counter() - start


def heuristic_factory(distribution):
    return GreedyConditionalPlanner(
        distribution, GreedySequentialPlanner(distribution), max_splits=5
    )


def test_scaling_heuristic_with_dataset_size(benchmark):
    schema, data = correlated_table(n_attributes=6, domain=6, n_rows=32_000)
    query = query_over(schema, 4)
    times = {}
    for rows in (4_000, 8_000, 16_000, 32_000):
        times[rows] = plan_seconds(heuristic_factory, schema, data[:rows], query)
    benchmark(lambda: plan_seconds(heuristic_factory, schema, data[:4_000], query))

    print("\nheuristic planning time vs dataset size:")
    for rows, seconds in times.items():
        print(f"  d={rows:6d}: {seconds * 1e3:7.1f} ms")
    # Linear in d: 8x the data should cost clearly less than ~quadratic
    # growth would (allow generous constant slack for numpy overheads).
    ratio = times[32_000] / max(times[4_000], 1e-9)
    assert ratio < 8 * 4, f"super-linear dataset scaling: {ratio:.1f}x for 8x rows"


def test_scaling_heuristic_with_predicates(benchmark):
    """With the GreedySeq base the heuristic is polynomial in m; the
    OptSeq base costs O(m * 2**m) per sequential plan."""
    schema, data = correlated_table(n_attributes=13, domain=4, n_rows=4_000)
    greedy_times = {}
    optimal_times = {}
    for n_predicates in (4, 8, 12):
        query = query_over(schema, n_predicates)
        greedy_times[n_predicates] = plan_seconds(
            heuristic_factory, schema, data, query
        )
        optimal_times[n_predicates] = plan_seconds(
            lambda dist: OptimalSequentialPlanner(dist), schema, data, query
        )
    benchmark(
        lambda: plan_seconds(
            lambda dist: OptimalSequentialPlanner(dist),
            schema,
            data,
            query_over(schema, 8),
        )
    )

    print("\nplanning time vs number of predicates:")
    print(f"  {'m':>3} {'heuristic(greedy base)':>24} {'OptSeq':>10}")
    for n_predicates in (4, 8, 12):
        print(
            f"  {n_predicates:>3} {greedy_times[n_predicates] * 1e3:>21.1f} ms"
            f" {optimal_times[n_predicates] * 1e3:>7.1f} ms"
        )
    # OptSeq's DP state count grows 2**m: m=12 over m=8 costs at least
    # ~2**4 more DP states; wall-clock should reflect clearly super-linear
    # growth while the greedy-based heuristic stays polynomial.
    optseq_growth = optimal_times[12] / max(optimal_times[8], 1e-9)
    greedy_growth = greedy_times[12] / max(greedy_times[8], 1e-9)
    assert optseq_growth > 3.0, f"OptSeq growth too small: {optseq_growth:.1f}"
    assert greedy_growth < optseq_growth, (
        "greedy-based heuristic must scale better than OptSeq"
    )


def test_scaling_exhaustive_with_domain_size(benchmark):
    """Exhaustive subproblem count grows polynomially (degree ~2n) in K."""
    times = {}
    subproblems = {}
    for domain in (2, 3, 4):
        schema, data = correlated_table(n_attributes=3, domain=domain, n_rows=2_000)
        query = query_over(schema, 2)
        distribution = EmpiricalDistribution(schema, data)
        planner = ExhaustivePlanner(distribution)
        start = time.perf_counter()
        result = planner.plan(query)
        times[domain] = time.perf_counter() - start
        subproblems[domain] = result.stats.subproblems
    schema, data = correlated_table(n_attributes=3, domain=3, n_rows=2_000)
    timed_distribution = EmpiricalDistribution(schema, data)
    benchmark(
        lambda: ExhaustivePlanner(timed_distribution).plan(query_over(schema, 2))
    )

    print("\nexhaustive search size vs domain size K (n=3 attributes):")
    for domain in (2, 3, 4):
        print(
            f"  K={domain}: {subproblems[domain]:6d} subproblems, "
            f"{times[domain] * 1e3:7.1f} ms"
        )
    # Subproblem count must grow super-linearly in K.
    assert subproblems[4] > subproblems[2] * 4


def test_scaling_exhaustive_with_attributes(benchmark):
    """Exhaustive growth in n is exponential with base ~K**2."""
    counts = {}
    for n_attributes in (2, 3, 4):
        schema, data = correlated_table(
            n_attributes=n_attributes, domain=3, n_rows=2_000, seed=1
        )
        query = query_over(schema, n_attributes - 1)
        distribution = EmpiricalDistribution(schema, data)
        result = ExhaustivePlanner(distribution).plan(query)
        counts[n_attributes] = result.stats.subproblems

    schema, data = correlated_table(n_attributes=3, domain=3, n_rows=2_000, seed=1)
    query = query_over(schema, 2)
    distribution = EmpiricalDistribution(schema, data)
    benchmark(lambda: ExhaustivePlanner(distribution).plan(query))

    print("\nexhaustive subproblems vs attribute count (K=3):")
    for n_attributes, count in counts.items():
        print(f"  n={n_attributes}: {count:8d} subproblems")
    growth_23 = counts[3] / max(counts[2], 1)
    growth_34 = counts[4] / max(counts[3], 1)
    assert growth_34 > 2.0, "adding an attribute must multiply the search"


def test_scaling_probability_cost_linear_in_rows(benchmark):
    """Section 5: per-subproblem probability computation is O(|D|)."""
    schema, data = correlated_table(n_attributes=5, domain=8, n_rows=64_000)
    from repro.core import RangeVector

    distribution_small = EmpiricalDistribution(schema, data[:8_000])
    distribution_large = EmpiricalDistribution(schema, data)

    def histogram_time(distribution) -> float:
        distribution.clear_caches()
        full = RangeVector.full(schema)
        start = time.perf_counter()
        for attribute_index in range(len(schema)):
            distribution.attribute_histogram(attribute_index, full)
        return time.perf_counter() - start

    small = min(histogram_time(distribution_small) for _ in range(5))
    large = min(histogram_time(distribution_large) for _ in range(5))
    benchmark(lambda: histogram_time(distribution_small))
    print(
        f"\nhistogram pass: 8k rows {small * 1e3:.2f} ms, "
        f"64k rows {large * 1e3:.2f} ms (8x data -> {large / small:.1f}x time)"
    )
    assert large / small < 8 * 3, "histogram pass must stay ~linear in |D|"
