"""Figure 8(b): the impact of restricting split points (SPSF).

The paper trains the Exhaustive planner at progressively smaller Split
Point Selection Factors and compares against Heuristic-5 running with a
large SPSF, finding that "Exhaustive with smaller SPSF's performs
substantially worse than Heuristic with large SPSF's": constraining the
candidate split points obscures the correlations the planner needs.

This bench sweeps the per-attribute split-point budget for Exhaustive on
the reduced lab table and reports mean/max cost relative to Heuristic-5
with the full split-point set.
"""

import numpy as np

from repro.planning import (
    ExhaustivePlanner,
    GreedyConditionalPlanner,
    OptimalSequentialPlanner,
    SplitPointPolicy,
)

from common import measured_cost, print_table
from bench_fig8a_quality import planning_setting, random_queries

# Per-attribute candidate-split budgets for the Exhaustive sweep, from
# heavily restricted to the Figure 8(a) setting.
SPSF_LEVELS = (1, 2, 3)
N_QUERIES = 12


def test_fig8b_small_spsf_hurts_exhaustive(benchmark):
    lab, schema, train, test, distribution = planning_setting()
    queries = random_queries(lab, schema, train, N_QUERIES, seed=2)

    heuristic_costs = []
    for query in queries:
        heuristic = GreedyConditionalPlanner(
            distribution,
            OptimalSequentialPlanner(distribution),
            max_splits=5,
        ).plan(query)
        heuristic_costs.append(measured_cost(heuristic.plan, test, schema))
    heuristic_mean = float(np.mean(heuristic_costs))

    rows = [["Heuristic-5 (full SPSF)", "-", heuristic_mean, 1.0, 1.0]]
    means = {}
    for level in SPSF_LEVELS:
        policy = SplitPointPolicy.equal_width(schema, [level] * len(schema))
        costs = []
        for query in queries:
            result = ExhaustivePlanner(distribution, split_policy=policy).plan(
                query
            )
            costs.append(measured_cost(result.plan, test, schema))
        mean = float(np.mean(costs))
        worst = float(
            np.max(np.asarray(costs) / np.asarray(heuristic_costs))
        )
        means[level] = mean
        rows.append(
            [
                f"Exhaustive (r={level}/attr)",
                f"{policy.spsf:g}",
                mean,
                mean / heuristic_mean,
                worst,
            ]
        )

    benchmark(
        lambda: ExhaustivePlanner(
            distribution,
            split_policy=SplitPointPolicy.equal_width(schema, [2] * len(schema)),
        ).plan(queries[0])
    )

    print_table(
        f"Figure 8(b): Exhaustive at reduced SPSF vs Heuristic-5, "
        f"{N_QUERIES} lab queries",
        ["algorithm", "SPSF", "mean cost", "mean/heuristic", "worst/heuristic"],
        rows,
    )

    # Paper shape: the most restricted Exhaustive is substantially worse
    # than Heuristic-5 with unrestricted split choice, and restricting
    # less monotonically recovers quality (within noise).
    assert means[SPSF_LEVELS[0]] > heuristic_mean * 1.02
    assert means[SPSF_LEVELS[-1]] <= means[SPSF_LEVELS[0]] * 1.001
