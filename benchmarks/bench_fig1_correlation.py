"""Figure 1: hour-of-day vs light at a single sensor.

The paper's Figure 1 is a scatter plot showing that light values at one
mote are tightly banded given the hour — near zero at night, high and
variable during the day.  This benchmark reproduces the figure as a
per-hour quantile table plus the mutual information between hour and
light, and asserts the banding the paper's argument rests on: given the
hour, light is far more predictable than marginally.
"""

import numpy as np

from common import lab_standard_setting, print_table


def _entropy(values: np.ndarray, domain: int) -> float:
    counts = np.bincount(values - 1, minlength=domain).astype(float)
    probabilities = counts / counts.sum()
    nonzero = probabilities[probabilities > 0]
    return float(-(nonzero * np.log2(nonzero)).sum())


def test_fig1_hour_light_banding(benchmark):
    lab, train, _test, _distribution = lab_standard_setting()
    single = train[train[:, 0] == 1]  # one sensor, as in the figure
    hour = single[:, lab.schema.index_of("hour")]
    light = single[:, lab.schema.index_of("light")]
    light_domain = lab.schema["light"].domain_size

    def quantile_band(values: np.ndarray):
        return (
            float(np.percentile(values, 10)),
            float(np.percentile(values, 50)),
            float(np.percentile(values, 90)),
        )

    benchmark(lambda: quantile_band(light))

    rows = []
    hour_domain = lab.schema["hour"].domain_size
    band_widths = []
    for hour_bin in range(1, hour_domain + 1, 2):
        in_hour = (hour == hour_bin) | (hour == hour_bin + 1)
        if not in_hour.any():
            continue
        low, median, high = quantile_band(light[in_hour])
        band_widths.append(high - low)
        rows.append(
            [f"{(hour_bin - 1):02d}:00-{hour_bin + 1:02d}:59", low, median, high]
        )
    print_table(
        "Figure 1: light bins vs hour of day (10th/50th/90th percentile)",
        ["hour window", "p10", "p50", "p90"],
        rows,
    )

    marginal_entropy = _entropy(light, light_domain)
    conditional_entropy = 0.0
    for hour_bin in range(1, hour_domain + 1):
        in_hour = hour == hour_bin
        if not in_hour.any():
            continue
        weight = in_hour.mean()
        conditional_entropy += weight * _entropy(light[in_hour], light_domain)
    information = marginal_entropy - conditional_entropy
    print(
        f"\nH(light) = {marginal_entropy:.2f} bits, "
        f"H(light | hour) = {conditional_entropy:.2f} bits, "
        f"I(light; hour) = {information:.2f} bits"
    )

    # Shape assertions: night bands are narrow and low; hour carries
    # substantial information about light.
    night_band = rows[0]  # 00:00-01:59
    midday_band = rows[len(rows) // 2]
    assert night_band[3] <= midday_band[3], "night p90 should sit below midday p90"
    assert information > 0.5, "hour must carry substantial information about light"
