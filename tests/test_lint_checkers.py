"""Unit tests for the individual repro-lint rule families.

The corpus test proves every rule *can* fire; these tests pin down the
discriminations that make the rules usable — alias resolution, the
deterministic-module scoping, the wall-clock allowlist, the
locked-helper exemption, cross-module lock graphs, and the suppression
machinery.
"""

import textwrap

import pytest

from repro.exceptions import ReproError
from repro.lint import LintConfig, ReproLinter, lint_source


def _lint(source, module="repro.cluster.example", config=None):
    return lint_source(
        textwrap.dedent(source).strip() + "\n", module=module, config=config
    )


class TestDeterminism:
    def test_det001_sees_through_import_aliases(self):
        report = _lint(
            """
            import numpy as np

            def jitter(n):
                return np.random.rand(n)
            """
        )
        assert report.has("DET001")

    def test_det001_sees_from_import_aliases(self):
        report = _lint(
            """
            from random import choice as pick

            def sample(items):
                return pick(items)
            """
        )
        assert report.has("DET001")

    def test_seeded_generators_are_clean(self):
        report = _lint(
            """
            import numpy as np

            def jitter(n, seed):
                rng = np.random.default_rng(seed)
                return rng.random(n)
            """
        )
        assert not report.has("DET001")

    def test_det002_scopes_to_deterministic_modules(self):
        source = """
        import time

        def stamp():
            return time.time()
        """
        assert _lint(source, module="repro.planning.example").has("DET002")
        # The CLI is allowed to read the wall clock: it reports to
        # humans, it does not participate in reproducible plans.
        assert not _lint(source, module="repro.cli").has("DET002")

    def test_det002_allowlist_keys_on_module_and_qualname(self):
        source = """
        import time

        class Tracer:
            def __init__(self, clock=time.time):
                self._clock = clock
        """
        assert not _lint(source, module="repro.obs.trace").has("DET002")
        assert _lint(source, module="repro.obs.other").has("DET002")

    def test_det003_flags_set_iteration(self):
        report = _lint(
            """
            def order(shards):
                return [shard for shard in {1, 2, 3}]
            """,
            module="repro.planning.example",
        )
        assert report.has("DET003")

    def test_sorted_set_iteration_is_clean(self):
        report = _lint(
            """
            def order(shards):
                return [shard for shard in sorted(shards)]
            """,
            module="repro.planning.example",
        )
        assert not report.has("DET003")


class TestConcurrency:
    def test_rc001_unlocked_write_to_guarded_state(self):
        report = _lint(
            """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}

                def put(self, key, value):
                    self._entries[key] = value
            """
        )
        assert report.has("RC001")

    def test_rc001_locked_write_is_clean(self):
        report = _lint(
            """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}

                def put(self, key, value):
                    with self._lock:
                        self._entries[key] = value
            """
        )
        assert not report.has("RC001")

    def test_rc001_locked_helper_exemption(self):
        # The PlanCache._evict idiom: the helper writes without taking
        # the lock because its only callers already hold it.
        report = _lint(
            """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}

                def put(self, key, value):
                    with self._lock:
                        self._entries[key] = value
                        self._evict()

                def _evict(self):
                    while len(self._entries) > 4:
                        self._entries.popitem()
            """
        )
        assert not report.has("RC001")

    def test_rc002_cycle_across_modules(self):
        linter = ReproLinter()
        linter.add_source(
            textwrap.dedent(
                """
                import threading

                from repro.cluster.b import Registry

                class Router:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._registry = Registry()

                    def route(self, key):
                        with self._lock:
                            return self._registry.lookup(key)
                """
            ).strip()
            + "\n",
            "repro.cluster.a",
            path="a.py",
        )
        linter.add_source(
            textwrap.dedent(
                """
                import threading

                from repro.cluster.a import Router

                class Registry:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._router = Router()

                    def lookup(self, key):
                        with self._lock:
                            return self._router.route(key)
                """
            ).strip()
            + "\n",
            "repro.cluster.b",
            path="b.py",
        )
        assert linter.report().has("RC002")

    def test_rc003_rlock_reacquisition_is_clean(self):
        report = _lint(
            """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.RLock()
                    self._entries = {}

                def size(self):
                    with self._lock:
                        return len(self._entries)

                def audit(self):
                    with self._lock:
                        return self.size()
            """
        )
        assert not report.has("RC003")

    def test_rc003_sibling_reacquire_of_plain_lock(self):
        report = _lint(
            """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}

                def size(self):
                    with self._lock:
                        return len(self._entries)

                def audit(self):
                    with self._lock:
                        return self.size()
            """
        )
        assert report.has("RC003")


class TestAsynchrony:
    def test_asy001_only_fires_in_async_bodies(self):
        sync = _lint(
            """
            import time

            def backoff(attempt):
                time.sleep(0.1 * attempt)
            """
        )
        assert not sync.has("ASY001")

    def test_asy001_does_not_fire_in_nested_sync_def(self):
        report = _lint(
            """
            import time

            async def schedule(loop):
                def blocking():
                    time.sleep(1.0)
                return await loop.run_in_executor(None, blocking)
            """
        )
        assert not report.has("ASY001")

    def test_asy001_str_join_is_not_a_thread_join(self):
        report = _lint(
            """
            async def render(parts):
                return ", ".join(parts)
            """
        )
        assert not report.has("ASY001")

    def test_asy001_thread_join_fires(self):
        report = _lint(
            """
            async def drain(reader):
                reader.join()
            """
        )
        assert report.has("ASY001")

    def test_asy003_fires_in_sync_code_too(self):
        report = _lint(
            """
            import asyncio

            def loop_of():
                return asyncio.get_event_loop()
            """
        )
        assert report.has("ASY003")

    def test_get_running_loop_is_clean(self):
        report = _lint(
            """
            import asyncio

            async def loop_of():
                return asyncio.get_running_loop()
            """
        )
        assert not report.has("ASY003")


class TestLedger:
    def test_led001_raw_charge_outside_ledger_modules(self):
        report = _lint(
            """
            class Meter:
                def __init__(self):
                    self.total_cost = 0.0

                def record(self, reply):
                    self.total_cost += reply.cost
            """,
            module="repro.service.example",
        )
        assert report.has("LED001")

    def test_led001_silent_inside_ledger_modules(self):
        report = _lint(
            """
            class Meter:
                def __init__(self):
                    self.total_cost = 0.0

                def record(self, reply):
                    self.total_cost += reply.cost
            """,
            module="repro.faults.example",
        )
        assert not report.has("LED001")

    def test_storing_a_received_cost_is_clean(self):
        report = _lint(
            """
            class Meter:
                def __init__(self):
                    self.known_cost = {}

                def record(self, digest, reply):
                    self.known_cost[digest] = reply.expected_cost
            """,
            module="repro.service.example",
        )
        assert not report.has("LED001")

    def test_led002_adhoc_derivation_warns(self):
        report = _lint(
            """
            def gap(total_cost, base_cost):
                return total_cost - base_cost
            """,
            module="repro.service.example",
        )
        assert report.has("LED002")
        assert report.ok  # LED002 is a warning; it does not block


class TestSuppressions:
    def test_line_suppression_silences_one_finding(self):
        report = _lint(
            """
            import random

            def pick(items):
                return random.choice(items)  # repro-lint: disable=DET001
            """
        )
        assert not report.has("DET001")

    def test_file_suppression_silences_the_whole_module(self):
        report = _lint(
            """
            # repro-lint: disable-file=DET001
            import random

            def pick(items):
                return random.choice(items)

            def shuffle(items):
                random.shuffle(items)
            """
        )
        assert not report.has("DET001")

    def test_unknown_code_fires_lint001(self):
        report = _lint(
            """
            def nothing():
                return None  # repro-lint: disable=NOPE123
            """
        )
        assert report.has("LINT001")

    def test_suppression_does_not_leak_to_other_lines(self):
        report = _lint(
            """
            import random

            def pick(items):
                x = random.choice(items)  # repro-lint: disable=DET001
                return random.choice(items)
            """
        )
        assert report.has("DET001")


class TestConfigAndEngine:
    def test_enabled_filter_restricts_codes(self):
        config = LintConfig(enabled=frozenset({"ASY003"}))
        report = _lint(
            """
            import random

            def pick(items):
                return random.choice(items)
            """,
            config=config,
        )
        assert not report.has("DET001")

    def test_syntax_errors_become_repro_errors(self):
        with pytest.raises(ReproError):
            lint_source("def broken(:\n", module="repro.cluster.example")

    def test_report_orders_findings_by_position(self):
        report = _lint(
            """
            import random

            def second():
                return random.random()

            def first():
                return random.random()
            """
        )
        lines = [finding.line for finding in report.findings]
        assert lines == sorted(lines)
