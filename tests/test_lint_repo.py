"""The repo-wide gate: the shipped repro package lints clean.

This is the same scan ``repro lint-code --suite`` and the CI job run.
Keeping it in the tier-1 suite means a determinism, locking, asyncio,
or ledger regression fails the build locally, before any CI tooling.
"""

from pathlib import Path

import repro
from repro.lint import lint_repo


def test_shipped_package_lints_clean():
    root = Path(repro.__file__).resolve().parent
    report = lint_repo(root)
    assert report.files > 50  # the scan actually covered the package
    assert not report.findings, "\n" + report.format()


def test_repo_scan_includes_this_linter_itself():
    root = Path(repro.__file__).resolve().parent
    report = lint_repo(root)
    # lint_repo's subject names the scanned root; sanity-check the scan
    # walked into the lint package (it must hold its own rules).
    assert (root / "lint" / "engine.py").exists()
    assert str(root) in report.subject
