"""Trace-tree assembly, waterfall analysis, and the Eq. 3 audit."""

from __future__ import annotations

import pytest

from repro.obs import (
    SEGMENTS,
    assemble_traces,
    attributed_costs,
    critical_paths,
    latency_decomposition,
    reconcile_costs,
    segments,
    shed_costs_avoided,
    trace_summary,
)


def _request_tree(
    trace: str,
    total: float,
    *,
    execute: float = 0.0,
    queue: float = 0.0,
    coalesced: bool = False,
    shard: int = 0,
    where: float = 0.0,
    projection: float = 0.0,
    ok: bool = True,
) -> list[dict]:
    """The merged records of one request, front-door root first."""
    root_span = f"{trace}-root"
    records = [
        {
            "ts": 1.0,
            "span": root_span,
            "phase": "request",
            "trace": trace,
            "ms": total,
            "fingerprint": "ff",
            "ok": ok,
            "coalesced": coalesced,
        }
    ]
    if execute > 0.0:
        records.append(
            {
                "ts": 1.0,
                "span": f"{trace}-exec",
                "phase": "shard-execute",
                "trace": trace,
                "parent": root_span,
                "ms": execute,
                "queue_ms": queue,
                "shard": shard,
                "ok": ok,
                "where_cost": where,
                "projection_cost": projection,
            }
        )
    elif coalesced:
        records.append(
            {
                "ts": 1.0,
                "phase": "coalesce-attach",
                "trace": trace,
                "parent": root_span,
                "leader_trace": "other",
            }
        )
    return records


class TestAssembly:
    def test_groups_records_by_trace(self):
        records = _request_tree("t1", 5.0, execute=2.0) + _request_tree(
            "t2", 1.0, coalesced=True
        )
        trees = assemble_traces(records)
        assert set(trees) == {"t1", "t2"}
        assert len(trees["t1"].events) == 2

    def test_skips_flat_events(self):
        trees = assemble_traces([{"ts": 1.0, "span": "s1", "phase": "plan"}])
        assert trees == {}

    def test_completeness_requires_one_root_and_no_orphans(self):
        (tree,) = assemble_traces(_request_tree("t1", 5.0, execute=2.0)).values()
        assert tree.complete
        assert tree.root is not None
        assert tree.total_ms == 5.0
        orphan = {
            "ts": 1.0,
            "span": "x",
            "phase": "plan",
            "trace": "t1",
            "parent": "never-seen",
        }
        (broken,) = assemble_traces(
            _request_tree("t1", 5.0) + [orphan]
        ).values()
        assert not broken.complete
        assert broken.orphans == [orphan]

    def test_two_roots_is_incomplete(self):
        records = _request_tree("t1", 5.0)
        records += [dict(records[0], span="t1-root2")]
        (tree,) = assemble_traces(records).values()
        assert tree.root is None
        assert not tree.complete


class TestSegments:
    def test_additive_segments_sum_to_total(self):
        (tree,) = assemble_traces(
            _request_tree("t1", 10.0, execute=4.0, queue=3.0)
        ).values()
        row = segments(tree)
        assert row["total"] == 10.0
        assert row["execute"] == 4.0
        assert row["queue"] == 3.0
        assert row["coalesce_wait"] == 0.0
        assert row["route"] == 3.0  # the clamped residual

    def test_coalesced_follower_is_pure_wait(self):
        (tree,) = assemble_traces(
            _request_tree("t1", 2.0, coalesced=True)
        ).values()
        row = segments(tree)
        assert row["coalesce_wait"] == 2.0
        assert row["execute"] == 0.0
        assert row["route"] == 0.0

    def test_route_never_goes_negative(self):
        # Clock skew can make queue + execute exceed the root duration.
        (tree,) = assemble_traces(
            _request_tree("t1", 1.0, execute=4.0, queue=3.0)
        ).values()
        assert segments(tree)["route"] == 0.0


class TestDecomposition:
    def test_percentiles_and_tail_shares(self):
        records: list[dict] = []
        for index in range(9):
            records += _request_tree(f"t{index}", 1.0, execute=1.0)
        records += _request_tree("t9", 100.0, execute=99.0, queue=1.0)
        trees = list(assemble_traces(records).values())
        report = latency_decomposition(trees, percentile=95.0)
        assert report["requests"] == 10
        assert report["total_ms"]["p50"] == 1.0
        assert report["total_ms"]["p95"] == 100.0
        assert report["total_ms"]["max"] == 100.0
        assert set(report["segments"]) == set(SEGMENTS)
        # The tail (the one 100ms request) is all execute.
        assert report["segments"]["execute"]["tail_share"] == 0.99
        assert report["segments"]["queue"]["tail_share"] == 0.01

    def test_empty_input(self):
        report = latency_decomposition([])
        assert report["requests"] == 0
        assert report["segments"] == {}


class TestCriticalPaths:
    def test_ranked_by_duration_with_dominant_segment(self):
        records = (
            _request_tree("a", 5.0, execute=4.0)
            + _request_tree("b", 9.0, execute=2.0, queue=6.0)
            + _request_tree("c", 1.0, coalesced=True)
        )
        trees = list(assemble_traces(records).values())
        paths = critical_paths(trees, top=2)
        assert [p["trace"] for p in paths] == ["b", "a"]
        assert paths[0]["dominant"] == "queue"
        assert paths[1]["dominant"] == "execute"

    def test_ties_rank_by_trace_id(self):
        records = _request_tree("z", 5.0) + _request_tree("a", 5.0)
        trees = list(assemble_traces(records).values())
        assert [p["trace"] for p in critical_paths(trees)] == ["a", "z"]


class TestSummary:
    def test_census_counts_outcomes(self):
        records = (
            _request_tree("t1", 5.0, execute=2.0)
            + _request_tree("t2", 1.0, coalesced=True)
            + _request_tree("t3", 0.5, ok=False)
        )
        records[-1]["shed"] = True
        trees = list(assemble_traces(records).values())
        summary = trace_summary(trees)
        assert summary["traces"] == 3
        assert summary["complete"] == 3
        assert summary["coalesced"] == 1
        assert summary["shed"] == 1
        assert summary["incomplete"] == []


class TestReconciliation:
    def _stats(self, cost: float) -> dict:
        return {"gauges": {"acquisition_cost_total": cost}}

    def test_matching_ledgers_reconcile(self):
        records = _request_tree(
            "t1", 5.0, execute=2.0, shard=0, where=30.0, projection=10.0
        ) + _request_tree(
            "t2", 5.0, execute=2.0, shard=1, where=7.0, projection=0.0
        )
        trees = list(assemble_traces(records).values())
        assert attributed_costs(trees) == {"0": 40.0, "1": 7.0}
        report = reconcile_costs(
            trees, {0: self._stats(40.0), 1: self._stats(7.0)}
        )
        assert report["ok"]
        assert report["shards"]["0"]["ok"] and report["shards"]["1"]["ok"]

    def test_drift_fails_the_check(self):
        records = _request_tree(
            "t1", 5.0, execute=2.0, shard=0, where=30.0, projection=10.0
        )
        trees = list(assemble_traces(records).values())
        report = reconcile_costs(trees, {0: self._stats(41.0)})
        assert not report["ok"]
        assert report["shards"]["0"]["ok"] is False

    def test_failed_spans_attribute_nothing(self):
        records = _request_tree(
            "t1", 5.0, execute=2.0, shard=0, where=30.0, ok=False
        )
        trees = list(assemble_traces(records).values())
        assert attributed_costs(trees) == {}

    def test_dead_shard_is_reported_not_failed(self):
        records = _request_tree(
            "t1", 5.0, execute=2.0, shard=3, where=5.0
        )
        trees = list(assemble_traces(records).values())
        report = reconcile_costs(trees, {})
        assert report["ok"]  # no live ledger disagreed
        assert report["shards"]["3"]["ok"] is None
        assert "outage" in report["shards"]["3"]["note"]

    def test_shed_ledger_reconciles_through_admission(self):
        records = _request_tree("t1", 0.1)
        records.append(
            {
                "ts": 1.0,
                "phase": "shed",
                "trace": "t1",
                "parent": "t1-root",
                "reason": "overload",
                "cost_avoided": 120.0,
            }
        )
        trees = list(assemble_traces(records).values())
        assert shed_costs_avoided(trees) == 120.0
        report = reconcile_costs(
            trees, {}, admission={"shed_cost_avoided": 120.0}
        )
        assert report["ok"] and report["shed"]["ok"]
        drifted = reconcile_costs(
            trees, {}, admission={"shed_cost_avoided": 4800.0}
        )
        assert not drifted["ok"] and not drifted["shed"]["ok"]

    def test_tolerance_is_relative(self):
        records = _request_tree(
            "t1", 5.0, execute=2.0, shard=0, where=1e9
        )
        trees = list(assemble_traces(records).values())
        close = 1e9 * (1 + 1e-9)
        report = reconcile_costs(trees, {0: self._stats(close)})
        assert report["ok"]
        assert reconcile_costs(
            trees, {0: self._stats(close)}, tolerance=1e-12
        )["ok"] is False


def test_percentile_bounds_are_sane():
    trees = list(
        assemble_traces(_request_tree("t1", 5.0, execute=2.0)).values()
    )
    report = latency_decomposition(trees, percentile=100.0)
    assert report["total_ms"]["p100"] == 5.0
    with pytest.raises(KeyError):
        _ = report["total_ms"]["p95"]
