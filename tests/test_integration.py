"""End-to-end integration tests: the full paper pipeline on each dataset."""

import numpy as np
import pytest

from repro.core import empirical_cost, expected_cost, simplify_plan
from repro.data import (
    garden_queries,
    generate_garden_dataset,
    generate_lab_dataset,
    generate_synthetic_dataset,
    lab_queries,
    time_split,
)
from repro.execution import Mote, PlanExecutor, SensorNetworkSimulator
from repro.planning import (
    CorrSeqPlanner,
    GreedyConditionalPlanner,
    GreedySequentialPlanner,
    NaivePlanner,
    SplitPointPolicy,
)
from repro.probability import ChowLiuDistribution, EmpiricalDistribution


class TestLabPipeline:
    """Train on history, plan, execute on held-out data — Section 6.1."""

    @pytest.fixture(scope="class")
    def pipeline(self):
        lab = generate_lab_dataset(n_readings=30_000, n_motes=10, seed=0)
        train, test = time_split(lab.data, 0.5)
        distribution = EmpiricalDistribution(lab.schema, train)
        return lab, train, test, distribution

    def test_heuristic_beats_naive_on_average(self, pipeline):
        lab, _train, test, distribution = pipeline
        queries = lab_queries(lab, 8, seed=1)
        naive_costs, heuristic_costs = [], []
        for query in queries:
            naive = NaivePlanner(distribution).plan(query)
            heuristic = GreedyConditionalPlanner(
                distribution, CorrSeqPlanner(distribution), max_splits=5
            ).plan(query)
            naive_costs.append(empirical_cost(naive.plan, test, lab.schema))
            heuristic_costs.append(empirical_cost(heuristic.plan, test, lab.schema))
        assert np.mean(heuristic_costs) < np.mean(naive_costs)

    def test_all_plans_correct_on_test_data(self, pipeline):
        lab, _train, test, distribution = pipeline
        executor = PlanExecutor(lab.schema)
        for query in lab_queries(lab, 5, seed=2):
            for planner in (
                NaivePlanner(distribution),
                CorrSeqPlanner(distribution),
                GreedyConditionalPlanner(
                    distribution, CorrSeqPlanner(distribution), max_splits=5
                ),
            ):
                plan = planner.plan(query).plan
                assert executor.verify(plan, query, test).correct

    def test_chowliu_plans_are_usable(self, pipeline):
        lab, train, test, _distribution = pipeline
        model = ChowLiuDistribution(lab.schema, train, smoothing=0.5)
        query = lab_queries(lab, 1, seed=3)[0]
        result = GreedyConditionalPlanner(
            model, CorrSeqPlanner(model), max_splits=5
        ).plan(query)
        assert PlanExecutor(lab.schema).verify(result.plan, query, test).correct


class TestGardenPipeline:
    """Many-predicate queries over a wide correlated network — Section 6.2."""

    @pytest.fixture(scope="class")
    def pipeline(self):
        garden = generate_garden_dataset(n_motes=5, n_epochs=8000, seed=0)
        train, test = time_split(garden.data, 0.5)
        distribution = EmpiricalDistribution(garden.schema, train)
        return garden, train, test, distribution

    def test_ten_predicate_queries_plan_and_verify(self, pipeline):
        garden, _train, test, distribution = pipeline
        executor = PlanExecutor(garden.schema)
        policy = SplitPointPolicy.from_spsf(garden.schema, 10.0 ** len(garden.schema))
        for query in garden_queries(garden, 3, seed=1):
            assert len(query) == 10
            result = GreedyConditionalPlanner(
                distribution,
                GreedySequentialPlanner(distribution),
                max_splits=5,
                split_policy=policy,
            ).plan(query)
            assert executor.verify(result.plan, query, test).correct

    def test_negated_queries_also_work(self, pipeline):
        garden, _train, test, distribution = pipeline
        executor = PlanExecutor(garden.schema)
        query = garden_queries(garden, 1, seed=2, negated=True)[0]
        result = GreedyConditionalPlanner(
            distribution, GreedySequentialPlanner(distribution), max_splits=5
        ).plan(query)
        assert executor.verify(result.plan, query, test).correct

    def test_corrseq_beats_naive_on_correlated_predicates(self, pipeline):
        """Cross-mote correlation makes conditioning-on-survivors pay."""
        garden, _train, test, distribution = pipeline
        naive_total = corr_total = 0.0
        for query in garden_queries(garden, 6, seed=3):
            naive = NaivePlanner(distribution).plan(query)
            corr = GreedySequentialPlanner(distribution).plan(query)
            naive_total += empirical_cost(naive.plan, test, garden.schema)
            corr_total += empirical_cost(corr.plan, test, garden.schema)
        assert corr_total < naive_total


class TestSyntheticPipeline:
    """Cheap group proxies predicting expensive group-mates — Section 6.3."""

    def test_conditional_plans_exploit_group_structure(self):
        dataset = generate_synthetic_dataset(10, 4, 0.5, n_rows=8000, seed=0)
        train, test = time_split(dataset.data, 0.5)
        distribution = EmpiricalDistribution(dataset.schema, train)
        query = dataset.query()
        naive = NaivePlanner(distribution).plan(query)
        heuristic = GreedyConditionalPlanner(
            distribution, GreedySequentialPlanner(distribution), max_splits=10
        ).plan(query)
        naive_cost = empirical_cost(naive.plan, test, dataset.schema)
        heuristic_cost = empirical_cost(heuristic.plan, test, dataset.schema)
        assert heuristic_cost < naive_cost
        assert PlanExecutor(dataset.schema).verify(
            heuristic.plan, query, test
        ).correct


class TestSimulatorPipeline:
    def test_conditional_plan_extends_network_lifetime(self):
        """The headline sensor-network claim: per-epoch energy drops."""
        lab = generate_lab_dataset(n_readings=24_000, n_motes=6, seed=0)
        train, test = time_split(lab.data, 0.5)
        distribution = EmpiricalDistribution(lab.schema, train)
        query = lab_queries(lab, 1, seed=5)[0]

        naive = NaivePlanner(distribution).plan(query)
        heuristic = GreedyConditionalPlanner(
            distribution, CorrSeqPlanner(distribution), max_splits=5
        ).plan(query)

        nodeid = test[:, lab.schema.index_of("nodeid")]
        motes = []
        min_rows = min(int(np.sum(nodeid == m)) for m in range(1, 7))
        for mote_id in range(1, 7):
            rows = test[nodeid == mote_id][:min_rows]
            motes.append(Mote(mote_id, rows))
        simulator = SensorNetworkSimulator(lab.schema, motes, radio_cost_per_byte=0.5)

        naive_report = simulator.run(naive.plan)
        heuristic_report = simulator.run(heuristic.plan)
        assert heuristic_report.total_energy < naive_report.total_energy
        # Both answer identically.
        assert heuristic_report.matches == naive_report.matches

    def test_simplified_plan_saves_dissemination_energy(self):
        lab = generate_lab_dataset(n_readings=8_000, n_motes=4, seed=1)
        schema, data = lab.project(["hour", "light", "temp"])
        distribution = EmpiricalDistribution(schema, data)
        from repro.core import ConjunctiveQuery, RangePredicate
        from repro.planning import ExhaustivePlanner

        query = ConjunctiveQuery(
            schema,
            [RangePredicate("light", 1, 4), RangePredicate("temp", 5, 12)],
        )
        plan = ExhaustivePlanner(
            distribution,
            split_policy=SplitPointPolicy.equal_width(schema, [4, 2, 2]),
        ).plan(query).plan
        simplified = simplify_plan(plan)
        assert simplified.size_bytes() <= plan.size_bytes()
        assert expected_cost(simplified, distribution) <= expected_cost(
            plan, distribution
        ) + 1e-9
