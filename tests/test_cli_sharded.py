"""The ``repro serve-sharded`` and ``repro shard-stats`` verbs."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def trace_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("cli-sharded") / "trace"
    assert (
        main(
            [
                "generate",
                "garden",
                "--rows",
                "1500",
                "--motes",
                "2",
                "--out-dir",
                str(out),
                "--seed",
                "5",
            ]
        )
        == 0
    )
    return out


def _serve(trace_dir, tmp_path, *extra: str) -> dict:
    report = tmp_path / "report.json"
    argv = [
        "serve-sharded",
        "--schema",
        str(trace_dir / "schema.json"),
        "--trace",
        str(trace_dir / "train.csv"),
        "--live",
        str(trace_dir / "test.csv"),
        "--workers",
        "2",
        "--backend",
        "inproc",
        "--shapes",
        "6",
        "--requests",
        "60",
        "--concurrency",
        "20",
        "--rows-per-request",
        "16",
        "--seed",
        "11",
        "--out",
        str(report),
        *extra,
    ]
    assert main(argv) == 0
    return json.loads(report.read_text())


class TestServeSharded:
    def test_mixed_workload_serves_and_coalesces(
        self, trace_dir, tmp_path, capsys
    ) -> None:
        report = _serve(trace_dir, tmp_path)
        out = capsys.readouterr().out
        assert report["served"] == 60
        assert report["shed"] == 0 and report["failed"] == 0
        coalescing = report["front_door"]["coalescing"]
        assert coalescing["coalesced_requests"] > 0
        assert (
            coalescing["coalesced_requests"]
            + coalescing["dispatched_requests"]
            == 60
        )
        assert len(report["shards"]) == 2
        assert "coalescing:" in out and "admission:" in out

    def test_induced_outage_is_survived(self, trace_dir, tmp_path) -> None:
        report = _serve(
            trace_dir,
            tmp_path,
            "--induce-outage",
            "0",
            "--outage-mode",
            "skip",
        )
        assert report["failed"] == 0
        assert report["served"] + report["shed"] == 60
        assert report["front_door"]["counters"]["shard_outages"] == 1
        assert report["front_door"]["live_shards"] == [1]

    def test_tight_limits_shed_and_charge_the_ledger(
        self, trace_dir, tmp_path
    ) -> None:
        report = _serve(
            trace_dir,
            tmp_path,
            "--shapes",
            "12",
            "--concurrency",
            "30",
            "--shed-mode",
            "abstain",
            "--soft-limit",
            "2",
            "--hard-limit",
            "4",
        )
        admission = report["front_door"]["admission"]
        assert report["shed"] > 0
        assert admission["requests_shed"] == report["shed"]
        # Cold sheds carry no known Eq. 3 cost yet; the ledger must
        # still be present and non-negative (the >0 case is pinned by
        # the admission unit tests and the CI overload smoke).
        assert admission["shed_cost_avoided"] >= 0
        assert report["failed"] == 0

    def test_prometheus_out_renders_every_shard(
        self, trace_dir, tmp_path
    ) -> None:
        exposition = tmp_path / "cluster.prom"
        _serve(trace_dir, tmp_path, "--prometheus-out", str(exposition))
        text = exposition.read_text()
        assert 'shard="front_door"' in text
        assert 'shard="0"' in text and 'shard="1"' in text

    def test_invalid_outage_shard_is_rejected(
        self, trace_dir, tmp_path, capsys
    ) -> None:
        argv = [
            "serve-sharded",
            "--schema",
            str(trace_dir / "schema.json"),
            "--trace",
            str(trace_dir / "train.csv"),
            "--workers",
            "2",
            "--induce-outage",
            "7",
        ]
        assert main(argv) != 0
        assert "induce-outage" in capsys.readouterr().err


class TestShardStats:
    def test_reports_routing_and_cache_state(
        self, trace_dir, tmp_path, capsys
    ) -> None:
        assert (
            main(
                [
                    "shard-stats",
                    "--schema",
                    str(trace_dir / "schema.json"),
                    "--trace",
                    str(trace_dir / "train.csv"),
                    "--workers",
                    "2",
                    "--query",
                    "SELECT * WHERE m1_temp >= 6",
                    "--query",
                    "SELECT * WHERE hour <= 12",
                    "--repeat",
                    "4",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        # Sequential repeats never overlap, so every execution dispatches.
        coalescing = payload["front_door"]["coalescing"]
        assert coalescing["dispatched_requests"] == 8
        assert len(payload["shards"]) == 2
        assert "merged_metrics" in payload
