"""The ``repro chaos`` verb: deterministic fault-schedule replay from the CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


@pytest.fixture
def artifacts(tmp_path, capsys):
    """Schema, train/test traces, a saved plan, and a fault-schedule file."""
    out = tmp_path / "trace"
    assert (
        main(
            [
                "generate",
                "synthetic",
                "--rows",
                "3000",
                "--motes",
                "4",
                "--out-dir",
                str(out),
                "--seed",
                "3",
            ]
        )
        == 0
    )
    plan_path = tmp_path / "plan.json"
    query = "SELECT * WHERE x1 >= 2 AND x2 <= 1"
    assert (
        main(
            [
                "plan",
                "--schema",
                str(out / "schema.json"),
                "--trace",
                str(out / "train.csv"),
                "--query",
                query,
                "--out",
                str(plan_path),
            ]
        )
        == 0
    )
    capsys.readouterr()  # discard generate/plan output
    schedule_path = tmp_path / "faults.json"
    schedule_path.write_text(
        json.dumps(
            {
                "faults": {
                    "x1": {"drop_rate": 0.2, "stuck_rate": 0.05},
                    "x2": {"timeout_rate": 0.1},
                }
            }
        )
    )
    return {
        "schema": str(out / "schema.json"),
        "train": str(out / "train.csv"),
        "trace": str(out / "test.csv"),
        "plan": str(plan_path),
        "schedule": str(schedule_path),
        "query": query,
    }


def chaos(artifacts, *extra):
    return main(
        [
            "chaos",
            "--schema",
            artifacts["schema"],
            "--plan",
            artifacts["plan"],
            "--trace",
            artifacts["trace"],
            "--schedule",
            artifacts["schedule"],
            *extra,
        ]
    )


def test_audit_passes_and_reports(artifacts, capsys):
    code = chaos(artifacts, "--query", artifacts["query"], "--seed", "7")
    output = capsys.readouterr().out
    assert code == 0
    assert "chaos audit        : passed" in output
    assert "selected tuples    : sound" in output
    assert "cost ledger" in output and "[ok]" in output


@pytest.mark.parametrize("degradation", ["abstain", "skip", "impute"])
def test_json_replay_is_deterministic(artifacts, capsys, degradation):
    extra = [
        "--query",
        artifacts["query"],
        "--seed",
        "11",
        "--degradation",
        degradation,
        "--train",
        artifacts["train"],
        "--json",
    ]
    assert chaos(artifacts, *extra) == 0
    first = json.loads(capsys.readouterr().out)
    assert chaos(artifacts, *extra) == 0
    second = json.loads(capsys.readouterr().out)
    assert first == second
    assert first["ok"] is True
    assert first["ledger_ok"] is True
    assert first["unsound_rows"] == []
    assert first["total_cost"] == pytest.approx(
        first["base_cost"] + first["retry_cost"]
    )
    assert first["acquisitions_failed"] > 0


def test_seed_changes_the_storm(artifacts, capsys):
    base = ["--query", artifacts["query"], "--json"]
    assert chaos(artifacts, *base, "--seed", "1") == 0
    first = json.loads(capsys.readouterr().out)
    assert chaos(artifacts, *base, "--seed", "2") == 0
    second = json.loads(capsys.readouterr().out)
    assert first != second


def test_no_query_skips_soundness_audit(artifacts, capsys):
    code = chaos(artifacts, "--seed", "3")
    output = capsys.readouterr().out
    assert code == 0
    assert "soundness audit skipped" in output


def test_skip_without_query_is_usage_error(artifacts, capsys):
    code = chaos(artifacts, "--degradation", "skip")
    assert code == 2
    assert "needs --query" in capsys.readouterr().err


def test_bad_schedule_is_usage_error(artifacts, tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"faults": {"nope": {"drop_rate": 0.5}}}))
    artifacts = dict(artifacts, schedule=str(bad))
    code = chaos(artifacts, "--query", artifacts["query"])
    assert code == 2
    assert "unknown attribute" in capsys.readouterr().err
