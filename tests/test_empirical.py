"""Tests for EmpiricalDistribution against brute-force counting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Attribute,
    NotRangePredicate,
    Range,
    RangePredicate,
    RangeVector,
    Schema,
)
from repro.exceptions import DistributionError
from repro.probability import EmpiricalDistribution


@pytest.fixture
def schema() -> Schema:
    return Schema([Attribute("a", 3), Attribute("b", 4), Attribute("c", 2)])


@pytest.fixture
def data() -> np.ndarray:
    rng = np.random.default_rng(7)
    a = rng.integers(1, 4, 500)
    b = np.clip(a + rng.integers(0, 2, 500), 1, 4)  # b correlates with a
    c = rng.integers(1, 3, 500)
    return np.stack([a, b, c], axis=1).astype(np.int64)


@pytest.fixture
def dist(schema, data) -> EmpiricalDistribution:
    return EmpiricalDistribution(schema, data)


def brute_rows(data: np.ndarray, ranges: RangeVector) -> np.ndarray:
    keep = np.ones(len(data), dtype=bool)
    for index in range(len(ranges)):
        interval = ranges[index]
        keep &= (data[:, index] >= interval.low) & (data[:, index] <= interval.high)
    return data[keep]


class TestValidation:
    def test_rejects_wrong_width(self, schema):
        with pytest.raises(DistributionError):
            EmpiricalDistribution(schema, np.ones((5, 2), dtype=np.int64))

    def test_rejects_empty(self, schema):
        with pytest.raises(DistributionError):
            EmpiricalDistribution(schema, np.empty((0, 3), dtype=np.int64))

    def test_rejects_floats(self, schema):
        with pytest.raises(DistributionError, match="integer"):
            EmpiricalDistribution(schema, np.ones((5, 3)))

    def test_rejects_out_of_domain(self, schema):
        bad = np.ones((5, 3), dtype=np.int64)
        bad[0, 0] = 9
        with pytest.raises(DistributionError, match="outside domain"):
            EmpiricalDistribution(schema, bad)

    def test_rejects_negative_smoothing(self, schema):
        data = np.ones((5, 3), dtype=np.int64)
        with pytest.raises(DistributionError):
            EmpiricalDistribution(schema, data, smoothing=-0.1)

    def test_rejects_1d(self, schema):
        with pytest.raises(DistributionError):
            EmpiricalDistribution(schema, np.ones(5, dtype=np.int64))


class TestRangeProbability:
    def test_full_is_one(self, schema, dist):
        assert dist.range_probability(RangeVector.full(schema)) == 1.0

    def test_matches_brute_force(self, schema, data, dist):
        ranges = (
            RangeVector.full(schema)
            .with_range(0, Range(2, 3))
            .with_range(2, Range(1, 1))
        )
        expected = len(brute_rows(data, ranges)) / len(data)
        assert dist.range_probability(ranges) == pytest.approx(expected)

    def test_row_count(self, schema, data, dist):
        ranges = RangeVector.full(schema).with_range(1, Range(1, 2))
        assert dist.row_count(ranges) == len(brute_rows(data, ranges))


class TestHistogramAndSplit:
    def test_histogram_sums_to_one(self, schema, dist):
        ranges = RangeVector.full(schema)
        for index in range(3):
            histogram = dist.attribute_histogram(index, ranges)
            assert histogram.sum() == pytest.approx(1.0)

    def test_histogram_matches_counts(self, schema, data, dist):
        ranges = RangeVector.full(schema).with_range(0, Range(2, 3))
        subset = brute_rows(data, ranges)
        histogram = dist.attribute_histogram(1, ranges)
        for offset, value in enumerate(range(1, 5)):
            expected = np.mean(subset[:, 1] == value)
            assert histogram[offset] == pytest.approx(expected)

    def test_split_probability_matches_counts(self, schema, data, dist):
        ranges = RangeVector.full(schema)
        subset = brute_rows(data, ranges)
        for split in (2, 3):
            expected = np.mean(subset[:, 1] < split)
            assert dist.split_probability(1, split, ranges) == pytest.approx(expected)

    def test_split_probability_conditioned(self, schema, data, dist):
        ranges = RangeVector.full(schema).with_range(0, Range(1, 1))
        subset = brute_rows(data, ranges)
        expected = np.mean(subset[:, 1] < 3)
        assert dist.split_probability(1, 3, ranges) == pytest.approx(expected)

    def test_empty_subproblem_uniform_fallback(self, schema):
        # Single row, then condition on a range excluding it.
        data = np.array([[1, 1, 1]], dtype=np.int64)
        dist = EmpiricalDistribution(schema, data)
        ranges = RangeVector.full(schema).with_range(0, Range(3, 3))
        # Uniform over b's 4 values: P(b < 3) = 1/2.
        assert dist.split_probability(1, 3, ranges) == pytest.approx(0.5)


class TestConjunctionProbability:
    def test_single_predicate_matches_marginal(self, schema, data, dist):
        binding = (RangePredicate("b", 2, 3), 1)
        expected = np.mean((data[:, 1] >= 2) & (data[:, 1] <= 3))
        full = RangeVector.full(schema)
        assert dist.conjunction_probability([binding], full) == pytest.approx(expected)

    def test_conjunction_matches_joint_count(self, schema, data, dist):
        bindings = [
            (RangePredicate("a", 2, 3), 0),
            (NotRangePredicate("b", 1, 2), 1),
        ]
        expected = np.mean(
            ((data[:, 0] >= 2) & (data[:, 0] <= 3))
            & ~((data[:, 1] >= 1) & (data[:, 1] <= 2))
        )
        full = RangeVector.full(schema)
        assert dist.conjunction_probability(bindings, full) == pytest.approx(expected)

    def test_empty_bindings_is_one(self, schema, dist):
        assert dist.conjunction_probability([], RangeVector.full(schema)) == 1.0

    def test_satisfied_given_satisfied(self, schema, data, dist):
        target = (RangePredicate("b", 3, 4), 1)
        given = [(RangePredicate("a", 2, 3), 0)]
        cond = (data[:, 0] >= 2) & (data[:, 0] <= 3)
        expected = np.mean((data[cond, 1] >= 3) & (data[cond, 1] <= 4))
        full = RangeVector.full(schema)
        assert dist.satisfied_given_satisfied(target, given, full) == pytest.approx(
            expected
        )

    def test_unseen_condition_falls_back_to_marginal(self, schema):
        data = np.array([[1, 1, 1], [2, 2, 2]], dtype=np.int64)
        dist = EmpiricalDistribution(schema, data)
        target = (RangePredicate("b", 2, 2), 1)
        impossible = [(RangePredicate("a", 3, 3), 0)]
        full = RangeVector.full(schema)
        marginal = dist.conjunction_probability([target], full)
        assert dist.satisfied_given_satisfied(target, impossible, full) == marginal


class TestPredicateJoint:
    def test_joint_sums_to_one(self, schema, dist):
        bindings = [
            (RangePredicate("a", 1, 2), 0),
            (RangePredicate("b", 2, 4), 1),
        ]
        joint = dist.predicate_joint(bindings, RangeVector.full(schema))
        assert joint.shape == (4,)
        assert joint.sum() == pytest.approx(1.0)

    def test_joint_matches_brute_force(self, schema, data, dist):
        bindings = [
            (RangePredicate("a", 1, 2), 0),
            (RangePredicate("b", 2, 4), 1),
        ]
        joint = dist.predicate_joint(bindings, RangeVector.full(schema))
        sat_a = (data[:, 0] >= 1) & (data[:, 0] <= 2)
        sat_b = (data[:, 1] >= 2) & (data[:, 1] <= 4)
        for outcome in range(4):
            mask = np.ones(len(data), dtype=bool)
            mask &= sat_a if outcome & 1 else ~sat_a
            mask &= sat_b if outcome & 2 else ~sat_b
            assert joint[outcome] == pytest.approx(np.mean(mask))

    def test_too_many_predicates_rejected(self, dist, schema):
        bindings = [(RangePredicate("a", 1, 1), 0)] * 21
        with pytest.raises(DistributionError, match="2\\*\\*"):
            dist.predicate_joint(bindings, RangeVector.full(schema))


class TestSmoothing:
    def test_smoothing_pulls_towards_half(self, schema):
        data = np.array([[1, 1, 1]] * 10, dtype=np.int64)
        raw = EmpiricalDistribution(schema, data)
        smooth = EmpiricalDistribution(schema, data, smoothing=5.0)
        binding = (RangePredicate("a", 1, 1), 0)
        full = RangeVector.full(schema)
        assert raw.conjunction_probability([binding], full) == 1.0
        smoothed = smooth.conjunction_probability([binding], full)
        assert 0.5 < smoothed < 1.0

    def test_marginal_selectivity(self, schema, data, dist):
        binding = (RangePredicate("c", 1, 1), 2)
        assert dist.marginal_selectivity(binding) == pytest.approx(
            np.mean(data[:, 2] == 1)
        )


class TestCaching:
    def test_row_cache_reused(self, schema, data):
        dist = EmpiricalDistribution(schema, data)
        ranges = RangeVector.full(schema).with_range(0, Range(1, 2))
        first = dist.rows_matching(ranges)
        second = dist.rows_matching(ranges)
        assert first is second

    def test_cache_cleared_at_capacity(self, schema, data):
        dist = EmpiricalDistribution(schema, data, max_cached_subproblems=2)
        for low in (1, 2, 3):
            dist.rows_matching(
                RangeVector.full(schema).with_range(0, Range(low, low))
            )
        # No assertion on internals beyond it still answering correctly:
        ranges = RangeVector.full(schema).with_range(0, Range(1, 1))
        assert dist.row_count(ranges) == int(np.sum(data[:, 0] == 1))

    def test_clear_caches(self, schema, data):
        dist = EmpiricalDistribution(schema, data)
        dist.rows_matching(RangeVector.full(schema))
        dist.clear_caches()
        assert dist.range_probability(RangeVector.full(schema)) == 1.0

    def test_data_view_readonly(self, schema, data):
        dist = EmpiricalDistribution(schema, data)
        with pytest.raises(ValueError):
            dist.data[0, 0] = 1


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 1000),
    low=st.integers(1, 3),
    split=st.integers(2, 4),
)
def test_split_probability_property(seed, low, split):
    """P(X < split | R) from the distribution equals direct counting, for
    random data and random conditioning ranges."""
    rng = np.random.default_rng(seed)
    schema = Schema([Attribute("p", 3), Attribute("q", 4)])
    data = np.stack(
        [rng.integers(1, 4, 200), rng.integers(1, 5, 200)], axis=1
    ).astype(np.int64)
    dist = EmpiricalDistribution(schema, data)
    high = 3
    if low > high:
        return
    ranges = RangeVector.full(schema).with_range(0, Range(low, high))
    subset = data[(data[:, 0] >= low) & (data[:, 0] <= high)]
    probability = dist.split_probability(1, split, ranges)
    if len(subset) == 0:
        assert 0.0 <= probability <= 1.0
    else:
        assert probability == pytest.approx(np.mean(subset[:, 1] < split))
