"""The ``repro obs-report`` verb and traced ``serve-sharded`` runs."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def trace_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("cli-obs") / "trace"
    assert (
        main(
            [
                "generate",
                "garden",
                "--rows",
                "1500",
                "--motes",
                "2",
                "--out-dir",
                str(out),
                "--seed",
                "5",
            ]
        )
        == 0
    )
    return out


@pytest.fixture(scope="module")
def traced_run(trace_dir, tmp_path_factory):
    """One traced inproc serve-sharded run shared by the read-side tests."""
    out = tmp_path_factory.mktemp("traced-run")
    report = out / "report.json"
    trace = out / "traced.jsonl"
    slo = out / "slo.json"
    argv = [
        "serve-sharded",
        "--schema",
        str(trace_dir / "schema.json"),
        "--trace",
        str(trace_dir / "train.csv"),
        "--live",
        str(trace_dir / "test.csv"),
        "--workers",
        "2",
        "--backend",
        "inproc",
        "--shapes",
        "6",
        "--requests",
        "60",
        "--concurrency",
        "20",
        "--rows-per-request",
        "16",
        "--seed",
        "11",
        "--out",
        str(report),
        "--trace-out",
        str(trace),
        "--slo-out",
        str(slo),
    ]
    assert main(argv) == 0
    return {"report": report, "trace": trace, "slo": slo}


class TestTracedServeSharded:
    def test_trace_out_is_json_lines_with_trees(self, traced_run) -> None:
        lines = traced_run["trace"].read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert records
        roots = [
            r
            for r in records
            if r["phase"] == "request" and not r.get("parent")
        ]
        assert len(roots) == 60  # one root per request, followers included
        # Shard spans were ingested into the same merged stream.
        assert any(r["phase"] == "shard-execute" for r in records)
        assert all("ts" in r and "phase" in r for r in records)

    def test_slo_out_snapshot(self, traced_run) -> None:
        slo = json.loads(traced_run["slo"].read_text())
        assert slo["requests"] == 60
        assert 0.0 <= slo["latency"]["burn_rate"]
        assert slo["errors"]["violations"] == 0
        # The same snapshot rides in the main report.
        report = json.loads(traced_run["report"].read_text())
        assert report["front_door"]["slo"] == slo


class TestObsReport:
    def test_text_report_renders_and_exits_zero(
        self, traced_run, capsys
    ) -> None:
        assert (
            main(
                [
                    "obs-report",
                    "--trace",
                    str(traced_run["trace"]),
                    "--report",
                    str(traced_run["report"]),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "traces: 60 (60 complete)" in out
        assert "waterfall" in out
        assert "critical paths" in out
        assert "Eq. 3 reconciliation: ok" in out
        assert "slo:" in out

    def test_json_report_reconciles(self, traced_run, tmp_path, capsys) -> None:
        out_path = tmp_path / "obs.json"
        assert (
            main(
                [
                    "obs-report",
                    "--trace",
                    str(traced_run["trace"]),
                    "--report",
                    str(traced_run["report"]),
                    "--json",
                    "--out",
                    str(out_path),
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload == json.loads(out_path.read_text())
        assert payload["ok"] is True
        summary = payload["summary"]
        assert summary["traces"] == summary["complete"] == 60
        assert payload["reconciliation"]["ok"] is True
        assert payload["latency"]["requests"] == 60
        assert len(payload["critical_paths"]) == 5
        assert payload["slo"]["requests"] == 60

    def test_standalone_trace_needs_no_report(self, traced_run) -> None:
        assert (
            main(["obs-report", "--trace", str(traced_run["trace"])]) == 0
        )

    def test_incomplete_trace_fails(self, tmp_path, capsys) -> None:
        trace = tmp_path / "broken.jsonl"
        trace.write_text(
            json.dumps(
                {
                    "ts": 1.0,
                    "span": "x",
                    "phase": "plan",
                    "trace": "t1",
                    "parent": "never-seen",
                }
            )
            + "\n"
        )
        assert main(["obs-report", "--trace", str(trace), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert any("incomplete" in f for f in payload["findings"])

    def test_ledger_drift_fails(self, traced_run, tmp_path, capsys) -> None:
        # Corrupt one shard's ledger and the reconciliation must notice.
        report = json.loads(traced_run["report"].read_text())
        for shard in report["shards"].values():
            shard["gauges"]["acquisition_cost_total"] += 1.0
        drifted = tmp_path / "drifted.json"
        drifted.write_text(json.dumps(report))
        assert (
            main(
                [
                    "obs-report",
                    "--trace",
                    str(traced_run["trace"]),
                    "--report",
                    str(drifted),
                    "--json",
                ]
            )
            == 1
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["reconciliation"]["ok"] is False

    def test_empty_trace_fails(self, tmp_path) -> None:
        trace = tmp_path / "empty.jsonl"
        trace.write_text("")
        assert main(["obs-report", "--trace", str(trace)]) == 1

    def test_bad_json_is_a_usage_error(self, tmp_path, capsys) -> None:
        trace = tmp_path / "bad.jsonl"
        trace.write_text("not json\n")
        assert main(["obs-report", "--trace", str(trace)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_bad_percentile_is_a_usage_error(self, tmp_path) -> None:
        trace = tmp_path / "t.jsonl"
        trace.write_text("")
        assert (
            main(
                [
                    "obs-report",
                    "--trace",
                    str(trace),
                    "--percentile",
                    "150",
                ]
            )
            == 2
        )
