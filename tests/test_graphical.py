"""Tests for the Chow-Liu graphical-model distribution (Section 7)."""

import numpy as np
import pytest

from repro.core import (
    Attribute,
    ConjunctiveQuery,
    Range,
    RangePredicate,
    RangeVector,
    Schema,
)
from repro.exceptions import DistributionError
from repro.probability import ChowLiuDistribution, EmpiricalDistribution


def chain_data(n_rows: int = 6000, seed: int = 0) -> tuple[Schema, np.ndarray]:
    """A Markov chain a -> b -> c: exactly tree-factored, so Chow-Liu can
    represent the joint without approximation error."""
    rng = np.random.default_rng(seed)
    a = rng.integers(1, 4, n_rows)
    flip_b = rng.random(n_rows) < 0.15
    b = np.where(flip_b, rng.integers(1, 4, n_rows), a)
    flip_c = rng.random(n_rows) < 0.15
    c = np.where(flip_c, rng.integers(1, 4, n_rows), b)
    schema = Schema([Attribute("a", 3), Attribute("b", 3), Attribute("c", 3)])
    return schema, np.stack([a, b, c], axis=1).astype(np.int64)


@pytest.fixture
def chain():
    return chain_data()


@pytest.fixture
def model(chain) -> ChowLiuDistribution:
    schema, data = chain
    return ChowLiuDistribution(schema, data, smoothing=0.1)


class TestFitting:
    def test_learns_chain_structure(self, chain, model):
        """Chow-Liu must connect a-b and b-c (the MI-maximal tree), never a-c."""
        edges = {frozenset(edge) for edge in model.tree_edges}
        assert frozenset({"a", "b"}) in edges
        assert frozenset({"b", "c"}) in edges
        assert frozenset({"a", "c"}) not in edges

    def test_rejects_zero_smoothing(self, chain):
        schema, data = chain
        with pytest.raises(DistributionError):
            ChowLiuDistribution(schema, data, smoothing=0.0)

    def test_rejects_bad_shape(self, chain):
        schema, _data = chain
        with pytest.raises(DistributionError):
            ChowLiuDistribution(schema, np.ones((5, 2), dtype=np.int64))

    def test_single_attribute_schema(self):
        schema = Schema([Attribute("only", 4)])
        data = np.array([[1], [2], [3], [4]], dtype=np.int64)
        model = ChowLiuDistribution(schema, data)
        assert model.tree_edges == []
        assert model.range_probability(RangeVector.full(schema)) == pytest.approx(1.0)


class TestInference:
    def test_full_range_probability_is_one(self, chain, model):
        schema, _data = chain
        assert model.range_probability(RangeVector.full(schema)) == pytest.approx(1.0)

    def test_range_probability_close_to_empirical(self, chain, model):
        schema, data = chain
        empirical = EmpiricalDistribution(schema, data)
        ranges = (
            RangeVector.full(schema)
            .with_range(0, Range(1, 2))
            .with_range(2, Range(2, 3))
        )
        assert model.range_probability(ranges) == pytest.approx(
            empirical.range_probability(ranges), abs=0.03
        )

    def test_histogram_sums_to_one(self, chain, model):
        schema, _data = chain
        ranges = RangeVector.full(schema).with_range(0, Range(2, 3))
        histogram = model.attribute_histogram(1, ranges)
        assert histogram.sum() == pytest.approx(1.0)

    def test_split_probability_close_to_empirical(self, chain, model):
        schema, data = chain
        empirical = EmpiricalDistribution(schema, data)
        ranges = RangeVector.full(schema).with_range(0, Range(3, 3))
        assert model.split_probability(1, 3, ranges) == pytest.approx(
            empirical.split_probability(1, 3, ranges), abs=0.03
        )

    def test_conjunction_probability_close_to_empirical(self, chain, model):
        schema, data = chain
        empirical = EmpiricalDistribution(schema, data)
        bindings = [
            (RangePredicate("a", 1, 1), 0),
            (RangePredicate("c", 1, 2), 2),
        ]
        full = RangeVector.full(schema)
        assert model.conjunction_probability(bindings, full) == pytest.approx(
            empirical.conjunction_probability(bindings, full), abs=0.03
        )

    def test_predicate_joint_sums_to_one(self, chain, model):
        schema, _data = chain
        bindings = [
            (RangePredicate("a", 1, 1), 0),
            (RangePredicate("b", 2, 3), 1),
        ]
        joint = model.predicate_joint(bindings, RangeVector.full(schema))
        assert joint.sum() == pytest.approx(1.0)

    def test_predicate_joint_close_to_empirical(self, chain, model):
        schema, data = chain
        empirical = EmpiricalDistribution(schema, data)
        bindings = [
            (RangePredicate("a", 1, 1), 0),
            (RangePredicate("b", 2, 3), 1),
        ]
        full = RangeVector.full(schema)
        assert np.allclose(
            model.predicate_joint(bindings, full),
            empirical.predicate_joint(bindings, full),
            atol=0.03,
        )

    def test_joint_guard(self, chain, model):
        schema, _data = chain
        bindings = [(RangePredicate("a", 1, 1), 0)] * 17
        with pytest.raises(DistributionError):
            model.predicate_joint(bindings, RangeVector.full(schema))


class TestRobustness:
    def test_answers_in_data_starved_subproblems(self, chain):
        """Unlike raw counting, the model still gives informative answers
        when no training row matches the conditioning ranges."""
        schema, data = chain
        # Train on a biased subset that never exhibits a=3 & c=1 together.
        subset = data[~((data[:, 0] == 3) & (data[:, 2] == 1))]
        model = ChowLiuDistribution(schema, subset, smoothing=0.5)
        ranges = (
            RangeVector.full(schema)
            .with_range(0, Range(3, 3))
            .with_range(2, Range(1, 1))
        )
        histogram = model.attribute_histogram(1, ranges)
        assert histogram.sum() == pytest.approx(1.0)
        assert (histogram >= 0).all()

    def test_plans_with_graphical_model_are_correct(self, chain):
        """Planners driven by the model still produce verdict-correct plans."""
        from repro.execution import PlanExecutor
        from repro.planning import CorrSeqPlanner, GreedyConditionalPlanner

        schema, data = chain
        model = ChowLiuDistribution(schema, data, smoothing=0.5)
        query = ConjunctiveQuery(
            schema, [RangePredicate("b", 2, 3), RangePredicate("c", 1, 2)]
        )
        result = GreedyConditionalPlanner(
            model, CorrSeqPlanner(model), max_splits=4
        ).plan(query)
        report = PlanExecutor(schema).verify(result.plan, query, data)
        assert report.correct
