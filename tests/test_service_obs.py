"""Service-level observability: profiling, drift checks, and tracing."""

import numpy as np
import pytest

from repro.core import Attribute, Schema
from repro.engine import AcquisitionalEngine
from repro.exceptions import ServiceError
from repro.obs import Tracer
from repro.service import AcquisitionalService


@pytest.fixture
def schema() -> Schema:
    return Schema(
        [
            Attribute("mode", 2, 1.0),
            Attribute("p", 2, 100.0),
            Attribute("q", 2, 100.0),
        ]
    )


def regime_data(n: int, flipped: bool, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    mode = rng.integers(1, 3, n)
    fail_p = (mode == 1) != flipped
    p = np.where(fail_p, 1, rng.integers(1, 3, n))
    q = np.where(~fail_p, 1, rng.integers(1, 3, n))
    return np.stack([mode, p, q], axis=1).astype(np.int64)


@pytest.fixture
def engine(schema) -> AcquisitionalEngine:
    return AcquisitionalEngine(
        schema, regime_data(3000, flipped=False, seed=1), smoothing=0.5
    )


TEXT = "SELECT * WHERE p >= 2 AND q >= 2"


class TestProfilingDisabled:
    def test_profile_accessors_are_inert(self, engine):
        service = AcquisitionalService(engine)
        service.execute(TEXT, regime_data(200, flipped=False, seed=2))
        assert not service.profiling
        assert service.profile_for(TEXT) is None
        assert service.drift_reports() == {}

    def test_check_drift_requires_profiling(self, engine):
        service = AcquisitionalService(engine)
        with pytest.raises(ServiceError):
            service.check_drift()


class TestProfilingEnabled:
    def test_profile_accumulates_across_requests(self, engine):
        service = AcquisitionalService(engine, profiling=True)
        live = regime_data(900, flipped=False, seed=3)
        for begin in (0, 300, 600):
            service.execute(TEXT, live[begin : begin + 300])
        profile = service.profile_for(TEXT)
        assert profile is not None
        assert profile.tuples == 900
        assert service.stats()["gauges"]["profiled_plans"] == 1

    def test_drift_reports_keyed_by_digest(self, engine):
        service = AcquisitionalService(engine, profiling=True)
        service.execute(TEXT, regime_data(600, flipped=False, seed=4))
        reports = service.drift_reports()
        assert set(reports) == {str(service.fingerprint(TEXT))}
        assert not reports[str(service.fingerprint(TEXT))].drifted

    def test_min_tuples_floor_suppresses_reports(self, engine):
        service = AcquisitionalService(
            engine, profiling=True, drift_min_tuples=1000
        )
        service.execute(TEXT, regime_data(500, flipped=False, seed=5))
        assert service.drift_reports() == {}
        assert service.drift_reports(min_tuples=100)  # floor is overridable

    def test_check_drift_without_drift_is_quiet(self, engine):
        service = AcquisitionalService(engine, profiling=True)
        service.execute(TEXT, regime_data(600, flipped=False, seed=6))
        version = engine.statistics_version
        reports = service.check_drift()
        assert reports and not any(r.drifted for r in reports.values())
        stats = service.stats()
        assert stats["counters"].get("plans_drifted", 0) == 0
        assert stats["counters"].get("replans_triggered", 0) == 0
        assert engine.statistics_version == version

    def test_check_drift_invalidates_on_shift(self, engine):
        service = AcquisitionalService(engine, profiling=True)
        service.execute(TEXT, regime_data(1200, flipped=True, seed=7))
        version = engine.statistics_version
        reports = service.check_drift()
        assert any(report.drifted for report in reports.values())
        stats = service.stats()
        assert stats["counters"]["plans_drifted"] >= 1
        assert stats["counters"]["replans_triggered"] == 1
        assert engine.statistics_version == version + 1
        # Profiles were reset with the stale plans.
        assert service.profile_for(TEXT) is None

    def test_version_bump_clears_profiles(self, engine):
        service = AcquisitionalService(engine, profiling=True)
        service.execute(TEXT, regime_data(400, flipped=False, seed=8))
        engine.bump_statistics_version()
        assert service.profile_for(TEXT) is None
        assert service.stats()["gauges"]["profiled_plans"] == 0

    def test_ctor_validation(self, engine):
        with pytest.raises(ServiceError):
            AcquisitionalService(engine, drift_threshold=0.0)
        with pytest.raises(ServiceError):
            AcquisitionalService(engine, drift_min_tuples=0)


class TestTracing:
    def test_spans_cover_the_query_lifecycle(self, engine):
        tracer = Tracer()
        service = AcquisitionalService(engine, tracer=tracer)
        live = regime_data(300, flipped=False, seed=9)
        service.execute(TEXT, live)
        service.execute(TEXT, live)
        phases = list(tracer.phases())
        assert phases.count("cache-miss") == 1
        assert phases.count("plan") == 1
        assert phases.count("verify") == 1
        assert phases.count("cache-hit") == 1
        assert phases.count("execute") == 2

    def test_events_of_one_call_share_a_span(self, engine):
        tracer = Tracer()
        service = AcquisitionalService(engine, tracer=tracer)
        service.execute(TEXT, regime_data(100, flipped=False, seed=10))
        spans = {event.span for event in tracer.events}
        assert len(spans) == 1

    def test_check_drift_emits_replan_events(self, engine):
        tracer = Tracer()
        service = AcquisitionalService(engine, profiling=True, tracer=tracer)
        service.execute(TEXT, regime_data(1200, flipped=True, seed=11))
        service.check_drift()
        replans = [
            event for event in tracer.events if event.phase == "replan"
        ]
        assert replans
        assert replans[0].fields["reason"] == "profile-drift"
        assert replans[0].fields["drift_score"] > 0

    def test_stream_replans_are_traced_and_bump_version(self, engine):
        tracer = Tracer()
        service = AcquisitionalService(engine, tracer=tracer)
        executor = service.stream_executor(
            TEXT,
            window=800,
            replan_interval=500,
            drift_threshold=None,
        )
        version = engine.statistics_version
        executor.process(regime_data(1600, flipped=False, seed=12))
        replans = [
            event for event in tracer.events if event.phase == "replan"
        ]
        assert replans
        assert engine.statistics_version > version
        assert service.stats()["counters"]["stream_replans"] == len(replans)
