"""Tests for equal-width discretization (Section 4.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import EqualWidthDiscretizer
from repro.exceptions import DiscretizationError


class TestFitTransform:
    def test_bins_cover_domain(self):
        disc = EqualWidthDiscretizer([4])
        data = np.linspace(0.0, 10.0, 100)[:, None]
        bins = disc.fit_transform(data)
        assert bins.min() == 1
        assert bins.max() == 4

    def test_equal_width_boundaries(self):
        disc = EqualWidthDiscretizer([4]).fit(np.array([[0.0], [8.0]]))
        assert disc.bin_of(0, 0.0) == 1
        assert disc.bin_of(0, 1.9) == 1
        assert disc.bin_of(0, 2.1) == 2
        assert disc.bin_of(0, 7.9) == 4
        assert disc.bin_of(0, 8.0) == 4  # max clamps into the last bin

    def test_out_of_span_values_clamp(self):
        disc = EqualWidthDiscretizer([4]).fit(np.array([[0.0], [8.0]]))
        assert disc.bin_of(0, -100.0) == 1
        assert disc.bin_of(0, 100.0) == 4

    def test_constant_column_maps_to_bin_one(self):
        disc = EqualWidthDiscretizer([5])
        bins = disc.fit_transform(np.full((10, 1), 3.25))
        assert (bins == 1).all()

    def test_multi_column(self):
        disc = EqualWidthDiscretizer([2, 10])
        data = np.stack(
            [np.linspace(0, 1, 50), np.linspace(-5, 5, 50)], axis=1
        )
        bins = disc.fit_transform(data)
        assert bins[:, 0].max() == 2
        assert bins[:, 1].max() == 10

    def test_transform_before_fit_rejected(self):
        with pytest.raises(DiscretizationError):
            EqualWidthDiscretizer([4]).transform(np.zeros((2, 1)))

    def test_wrong_width_rejected(self):
        disc = EqualWidthDiscretizer([4, 4])
        with pytest.raises(DiscretizationError):
            disc.fit(np.zeros((5, 3)))

    def test_nan_rejected(self):
        disc = EqualWidthDiscretizer([4])
        with pytest.raises(DiscretizationError):
            disc.fit(np.array([[0.0], [np.nan]]))

    def test_empty_fit_rejected(self):
        with pytest.raises(DiscretizationError):
            EqualWidthDiscretizer([4]).fit(np.zeros((0, 1)))

    def test_bad_domain_sizes_rejected(self):
        with pytest.raises(DiscretizationError):
            EqualWidthDiscretizer([])
        with pytest.raises(DiscretizationError):
            EqualWidthDiscretizer([0])


class TestInverseMappings:
    def test_bin_range_covers_interval(self):
        disc = EqualWidthDiscretizer([10]).fit(np.array([[0.0], [10.0]]))
        low_bin, high_bin = disc.bin_range(0, 2.5, 7.5)
        assert low_bin == disc.bin_of(0, 2.5)
        assert high_bin == disc.bin_of(0, 7.5)
        assert low_bin <= high_bin

    def test_bin_range_empty_interval_rejected(self):
        disc = EqualWidthDiscretizer([10]).fit(np.array([[0.0], [10.0]]))
        with pytest.raises(DiscretizationError):
            disc.bin_range(0, 5.0, 4.0)

    def test_bin_center_midpoint(self):
        disc = EqualWidthDiscretizer([4]).fit(np.array([[0.0], [8.0]]))
        assert disc.bin_center(0, 1) == pytest.approx(1.0)
        assert disc.bin_center(0, 4) == pytest.approx(7.0)

    def test_bin_center_bounds_checked(self):
        disc = EqualWidthDiscretizer([4]).fit(np.array([[0.0], [8.0]]))
        with pytest.raises(DiscretizationError):
            disc.bin_center(0, 0)
        with pytest.raises(DiscretizationError):
            disc.bin_center(0, 5)


@settings(max_examples=50, deadline=None)
@given(
    k=st.integers(1, 16),
    seed=st.integers(0, 10_000),
)
def test_roundtrip_property(k, seed):
    """bin_of(bin_center(b)) == b, and transform stays in [1, K]."""
    rng = np.random.default_rng(seed)
    data = rng.normal(0.0, 5.0, size=(50, 1))
    disc = EqualWidthDiscretizer([k]).fit(data)
    bins = disc.transform(data)
    assert bins.min() >= 1 and bins.max() <= k
    for bin_value in range(1, k + 1):
        assert disc.bin_of(0, disc.bin_center(0, bin_value)) == bin_value
