"""Replay determinism: identical seeds must give byte-identical runs.

The learned executor's decision machinery is pure float arithmetic on
posterior statistics — no wall clocks, no unseeded randomness — so two
runs over the same (workload, parameters, seed) triple must agree on
*everything*: per-tuple costs, verdicts, arm pulls, replan points, and
the final ledger, byte for byte.  The same holds under fault injection
when the two runs share the fault generator's seed.  This is the
contract the repro-lint determinism rules and the benchmark gates stand
on: a nondeterministic learner cannot be benchmarked, audited, or
debugged.
"""

import numpy as np
import pytest

from repro.faults.model import AttributeFaults, FaultSchedule
from repro.learn import (
    BanditPlanner,
    LearnedStreamExecutor,
    adversarial_stream,
)


def run_stream(seed, *, fault_seed=None):
    workload = adversarial_stream(n_segments=3, segment_length=150, seed=seed)
    kwargs = {}
    if fault_seed is not None:
        kwargs["fault_schedule"] = FaultSchedule(
            profiles={
                1: AttributeFaults(drop_rate=0.08, noise_rate=0.05),
                2: AttributeFaults(stuck_rate=0.05),
            }
        )
        kwargs["fault_rng"] = np.random.default_rng(fault_seed)
    executor = LearnedStreamExecutor(
        workload.schema,
        workload.query,
        window=96,
        warmup=32,
        smoothing=0.5,
        delta=0.2,
        burst_pulls=6,
        drift_check_every=32,
        drift_min_tuples=64,
        **kwargs,
    )
    return executor.process(workload.data)


def assert_identical(first, second):
    assert first.costs.tobytes() == second.costs.tobytes()
    assert first.verdicts.tobytes() == second.verdicts.tobytes()
    assert first.pulls.tobytes() == second.pulls.tobytes()
    assert first.replans == second.replans
    assert first.ledger == second.ledger
    assert first.plan == second.plan
    assert first.committed == second.committed
    if first.abstained is not None or second.abstained is not None:
        assert first.abstained.tobytes() == second.abstained.tobytes()
    if first.faults is not None or second.faults is not None:
        assert first.faults == second.faults


class TestStreamReplay:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_fault_free_runs_replay_byte_identically(self, seed):
        assert_identical(run_stream(seed), run_stream(seed))

    @pytest.mark.parametrize("seed", [0, 3])
    def test_faulted_runs_replay_byte_identically(self, seed):
        assert_identical(
            run_stream(seed, fault_seed=seed + 100),
            run_stream(seed, fault_seed=seed + 100),
        )

    def test_different_workload_seeds_actually_differ(self):
        first = run_stream(0)
        second = run_stream(1)
        assert first.costs.tobytes() != second.costs.tobytes()

    def test_fault_seed_changes_the_trace(self):
        first = run_stream(0, fault_seed=100)
        second = run_stream(0, fault_seed=101)
        assert (
            first.costs.tobytes() != second.costs.tobytes()
            or first.faults != second.faults
        )

    def test_decision_trace_is_self_consistent(self):
        """Replans reference real positions; pulls mark warmup exactly."""
        report = run_stream(0)
        n = report.costs.size
        for event in report.replans:
            assert 0 < event.position <= n
        warmup_mask = report.pulls == -1
        assert warmup_mask[:32].all()
        assert not warmup_mask[32:].any()


class TestPlannerReplay:
    def test_one_shot_planning_is_deterministic(self):
        workload = adversarial_stream(
            n_segments=1, segment_length=300, seed=4
        )
        from repro.probability import EmpiricalDistribution

        distribution = EmpiricalDistribution(
            workload.schema, workload.data, smoothing=0.5
        )
        first = BanditPlanner(distribution).plan(workload.query)
        second = BanditPlanner(distribution).plan(workload.query)
        assert first.plan == second.plan
        assert first.expected_cost == second.expected_cost
        assert first.provenance == second.provenance
