"""The multiprocessing backend: real workers, queues, and outages.

Kept deliberately small — every behaviour is already covered by the
deterministic in-process tests; this file only proves the process
plumbing (spawn, IPC marshalling, reply thread, shutdown, kill).
"""

from __future__ import annotations

import asyncio

import pytest

from tests.conftest import make_day_night_data
from repro.cluster import ClusterConfig, ShardConfig, ShardedServiceCluster
from repro.core import Attribute, Schema

SCHEMA = Schema(
    [
        Attribute("hour", 2, 0.0),
        Attribute("temp", 2, 1.0),
        Attribute("light", 2, 1.0),
    ]
)
HISTORY = make_day_night_data()
READINGS = HISTORY[:40]
QUERY = "SELECT temp WHERE temp = 2 AND light = 2"


@pytest.mark.slow
def test_process_cluster_serves_and_survives_an_outage() -> None:
    async def main() -> None:
        config = ClusterConfig(
            shard_config=ShardConfig(schema=SCHEMA, history=HISTORY),
            shards=2,
            backend="process",
            request_timeout=60.0,
        )
        async with ShardedServiceCluster(config) as cluster:
            wave = await cluster.execute_many([(QUERY, READINGS)] * 6)
            assert all(r.ok for r in wave)
            assert len({r.result.rows for r in wave}) == 1
            assert sum(r.coalesced for r in wave) == 5

            stats = await cluster.stats()
            assert sorted(stats["shards"]) == [0, 1]
            # front-door coalescing: one execution crossed the boundary
            assert stats["merged_metrics"]["counters"]["queries"] == 1

            # chaos across the process boundary is still deterministic
            schedule = {"faults": {"temp": {"drop_rate": 0.4}}}
            chaos_a = await cluster.execute(
                QUERY, READINGS, fault_schedule=schedule, fault_seed=3,
                degradation="skip",
            )
            assert chaos_a.ok

            victim = wave[0].shard
            cluster.induce_outage(victim)
            assert cluster.live_shards == frozenset({1 - victim})
            after = await cluster.execute(QUERY, READINGS)
            assert after.ok and after.shard == 1 - victim
            assert after.result.rows == wave[0].result.rows

            exposition = await cluster.prometheus()
            assert f'shard="{1 - victim}"' in exposition

    asyncio.run(main())


@pytest.mark.slow
def test_process_chaos_matches_inproc_chaos() -> None:
    schedule = {"faults": {"temp": {"drop_rate": 0.4}}}

    async def run(backend: str) -> object:
        config = ClusterConfig(
            shard_config=ShardConfig(schema=SCHEMA, history=HISTORY),
            shards=2,
            backend=backend,
        )
        async with ShardedServiceCluster(config) as cluster:
            response = await cluster.execute(
                QUERY, READINGS, fault_schedule=schedule, fault_seed=17,
                degradation="abstain",
            )
            assert response.ok
            return response.payload

    via_process = asyncio.run(run("process"))
    via_inproc = asyncio.run(run("inproc"))
    assert via_process.result.rows == via_inproc.result.rows
    assert via_process.abstained_rows == via_inproc.abstained_rows
    assert via_process.retries_total == via_inproc.retries_total
