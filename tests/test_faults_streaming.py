"""Fault-injected streaming: outage replans, stats, and configuration gates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ConjunctiveQuery, RangePredicate
from repro.exceptions import FaultConfigError
from repro.execution import AdaptiveStreamExecutor, StreamFaultStats
from repro.faults import (
    AttributeFaults,
    DegradationMode,
    FaultPolicy,
    FaultSchedule,
)
from repro.faults.policy import NO_RETRY
from repro.planning import CorrSeqPlanner, GreedyConditionalPlanner

from tests.conftest import correlated_dataset


@pytest.fixture
def instance():
    schema, data = correlated_dataset(n_rows=600, seed=2)
    query = ConjunctiveQuery(
        schema, [RangePredicate("a", 1, 2), RangePredicate("b", 3, 5)]
    )
    return schema, data, query


def factory(distribution):
    return GreedyConditionalPlanner(
        distribution, CorrSeqPlanner(distribution), max_splits=3
    )


def build(schema, query, **kwargs):
    defaults = dict(window=100, replan_interval=80, drift_threshold=None)
    defaults.update(kwargs)
    return AdaptiveStreamExecutor(schema, query, factory, **defaults)


class TestConfiguration:
    def test_schedule_requires_rng(self, instance):
        schema, _data, query = instance
        with pytest.raises(FaultConfigError, match="requires fault_rng"):
            build(schema, query, fault_schedule=FaultSchedule.zero())

    def test_schedule_incompatible_with_profile_drift(self, instance):
        schema, _data, query = instance
        with pytest.raises(FaultConfigError, match="profile_drift_threshold"):
            build(
                schema,
                query,
                fault_schedule=FaultSchedule.zero(),
                fault_rng=np.random.default_rng(0),
                profile_drift_threshold=5.0,
            )

    def test_schedule_validated_against_schema(self, instance):
        schema, _data, query = instance
        bad = FaultSchedule(profiles={9: AttributeFaults(drop_rate=0.5)})
        with pytest.raises(FaultConfigError, match="only 4 attributes"):
            build(
                schema,
                query,
                fault_schedule=bad,
                fault_rng=np.random.default_rng(0),
            )


class TestFaultedStream:
    def test_report_carries_fault_stats(self, instance):
        schema, data, query = instance
        schedule = FaultSchedule.uniform(schema, drop_rate=0.2)
        report = build(
            schema,
            query,
            fault_schedule=schedule,
            fault_rng=np.random.default_rng(3),
        ).process(data)
        assert isinstance(report.faults, StreamFaultStats)
        assert report.faults.acquisitions_failed > 0
        assert report.faults.retries_total > 0
        assert report.faults.retry_cost > 0.0
        assert report.abstained is not None
        assert report.abstained.shape == report.verdicts.shape
        # An abstained tuple is never selected.
        assert not (report.abstained & report.verdicts).any()

    def test_sustained_outage_triggers_replan(self, instance):
        schema, data, query = instance
        # Every read on the cheap conditioning attribute fails and retries
        # are disabled: the failure fraction saturates immediately.
        schedule = FaultSchedule(
            profiles={0: AttributeFaults(drop_rate=1.0)}
        )
        policy = FaultPolicy(
            retry=NO_RETRY,
            degradation=DegradationMode.SKIP,
            outage_replan_threshold=0.6,
            outage_window=16,
        )
        events = []
        report = build(
            schema,
            query,
            replan_interval=500,
            fault_schedule=schedule,
            fault_policy=policy,
            fault_rng=np.random.default_rng(4),
            on_replan=events.append,
        ).process(data)
        outage_replans = [e for e in report.replans if e.reason == "outage"]
        assert outage_replans, "sustained outage never triggered a replan"
        assert [e.reason for e in events] == [e.reason for e in report.replans]
        # SKIP keeps deciding tuples through the outage.
        assert report.faults is not None
        assert report.faults.tuples_degraded > 0
        assert report.verdicts.sum() > 0

    def test_no_outage_replan_below_threshold(self, instance):
        schema, data, query = instance
        schedule = FaultSchedule(
            profiles={0: AttributeFaults(drop_rate=0.05)}
        )
        policy = FaultPolicy(
            degradation=DegradationMode.SKIP,
            outage_replan_threshold=0.9,
            outage_window=16,
        )
        report = build(
            schema,
            query,
            replan_interval=200,
            fault_schedule=schedule,
            fault_policy=policy,
            fault_rng=np.random.default_rng(5),
        ).process(data)
        assert not [e for e in report.replans if e.reason == "outage"]

    def test_deterministic_replay(self, instance):
        schema, data, query = instance
        schedule = FaultSchedule.uniform(
            schema, drop_rate=0.15, noise_rate=0.1
        )

        def run():
            return build(
                schema,
                query,
                fault_schedule=schedule,
                fault_rng=np.random.default_rng(11),
            ).process(data)

        first, second = run(), run()
        assert np.array_equal(first.costs, second.costs)
        assert np.array_equal(first.verdicts, second.verdicts)
        assert np.array_equal(first.abstained, second.abstained)
        assert first.faults == second.faults
