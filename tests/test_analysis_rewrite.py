"""Tests for the analysis-driven plan rewriter (``optimize_plan``).

The headline property: on any plan, the optimizer preserves the verdict of
every tuple while never increasing node count, size, or per-tuple cost —
checked both on randomized planner outputs (hypothesis) and on a
paper-workload plan seeded with dead branches, where the reduction must be
strict.
"""

import numpy as np
import pytest
from hypothesis import given

from repro.analysis import check_dataflow, dataflow_mutations, optimize_plan
from repro.core import (
    Attribute,
    ConditionNode,
    ConjunctiveQuery,
    RangePredicate,
    Schema,
    VerdictLeaf,
    dataset_execution,
    simplify_plan,
)
from repro.data.garden import generate_garden_dataset
from repro.data.workload import garden_queries
from repro.planning import (
    ExhaustivePlanner,
    GreedyConditionalPlanner,
    GreedySequentialPlanner,
)
from repro.probability import EmpiricalDistribution

from tests.test_properties import SETTINGS, planning_instance


def resplit(plan, attribute, index, value):
    """Wrap ``plan`` under a split, with the below side re-splitting at the
    same value — the inner ``above`` branch is dead by construction."""
    inner = ConditionNode(
        attribute=attribute,
        attribute_index=index,
        split_value=value,
        below=plan,
        above=plan,
    )
    return ConditionNode(
        attribute=attribute,
        attribute_index=index,
        split_value=value,
        below=inner,
        above=plan,
    )


@SETTINGS
@given(instance=planning_instance())
def test_optimize_is_dataset_equivalent_and_never_grows(instance):
    schema, data, query = instance
    distribution = EmpiricalDistribution(schema, data)
    planner = GreedyConditionalPlanner(
        distribution, GreedySequentialPlanner(distribution), max_splits=3
    )
    plan = planner.plan(query).plan
    optimized = optimize_plan(plan, schema, query=query)
    assert optimized.size_nodes() <= plan.size_nodes()
    assert optimized.size_bytes() <= plan.size_bytes()
    before = dataset_execution(plan, data, schema)
    after = dataset_execution(optimized, data, schema)
    assert np.array_equal(before.verdicts, after.verdicts)
    assert (after.costs <= before.costs + 1e-9).all()


@SETTINGS
@given(instance=planning_instance())
def test_optimize_mutated_plan_is_dataset_equivalent(instance):
    """Even on hand-broken plans (dead branches injected), the rewriter
    must keep every tuple's verdict while stripping the dead region."""
    schema, data, query = instance
    distribution = EmpiricalDistribution(schema, data)
    plan = ExhaustivePlanner(distribution).plan(query).plan
    predicate = query.predicates[0]
    index = query.attribute_indices[0]
    if not 2 <= predicate.low <= schema[index].domain_size:
        return  # degenerate draw: no legal re-split value
    mutated = resplit(plan, predicate.attribute, index, predicate.low)
    optimized = optimize_plan(mutated, schema, query=query)
    assert optimized.size_nodes() < mutated.size_nodes()
    before = dataset_execution(mutated, data, schema)
    after = dataset_execution(optimized, data, schema)
    assert np.array_equal(before.verdicts, after.verdicts)
    assert (after.costs <= before.costs + 1e-9).all()


class TestPaperWorkload:
    """Acceptance: strict node-count reduction on a paper-workload plan."""

    @pytest.fixture(scope="class")
    def garden(self):
        dataset = generate_garden_dataset(n_motes=1, n_epochs=300, seed=7)
        distribution = EmpiricalDistribution(
            dataset.schema, dataset.data, smoothing=0.5
        )
        return dataset, distribution

    def test_strict_reduction_with_identical_verdicts(self, garden):
        dataset, distribution = garden
        schema = dataset.schema
        query = garden_queries(dataset, n_queries=4, seed=7)[0]
        plan = GreedyConditionalPlanner(
            distribution, GreedySequentialPlanner(distribution), max_splits=5
        ).plan(query).plan
        index = query.attribute_indices[0]
        predicate = query.predicates[0]
        wrapped = resplit(plan, predicate.attribute, index, max(predicate.low, 2))
        optimized = optimize_plan(wrapped, schema, query=query)
        assert optimized.size_nodes() < wrapped.size_nodes()
        before = dataset_execution(wrapped, dataset.data, schema)
        after = dataset_execution(optimized, dataset.data, schema)
        assert np.array_equal(before.verdicts, after.verdicts)
        assert check_dataflow(optimized, schema, query=query) == []


class TestRewriteRules:
    @pytest.fixture
    def schema(self):
        return Schema(
            (
                Attribute("pressure", domain_size=8, cost=10.0),
                Attribute("flow", domain_size=8, cost=4.0),
            )
        )

    @pytest.fixture
    def query(self, schema):
        return ConjunctiveQuery(
            schema,
            (RangePredicate("pressure", 3, 6), RangePredicate("flow", 2, 7)),
        )

    def test_identical_branches_collapse(self, schema, query):
        leaf = VerdictLeaf(True)
        plan = ConditionNode(
            attribute="pressure",
            attribute_index=0,
            split_value=4,
            below=leaf,
            above=leaf,
        )
        assert optimize_plan(plan, schema) == leaf

    def test_dead_branch_spliced_out(self, schema, query):
        for case in dataflow_mutations(query):
            optimized = optimize_plan(case.plan, schema, query=query)
            assert check_dataflow(optimized, schema, query=query) == [], case.name

    def test_query_subsumption_folds_to_verdict(self, schema):
        from repro.verify.mutations import canonical_sequential_plan

        query = ConjunctiveQuery(schema, (RangePredicate("pressure", 1, 8),))
        plan = canonical_sequential_plan(query)
        assert optimize_plan(plan, schema, query=query) == VerdictLeaf(True)

    def test_schema_free_mode_matches_simplify_plan(self, schema):
        leaf = VerdictLeaf(False)
        plan = ConditionNode(
            attribute="pressure",
            attribute_index=0,
            split_value=4,
            below=leaf,
            above=leaf,
        )
        assert optimize_plan(plan) == simplify_plan(plan) == leaf

    def test_verdict_leaves_untouched(self, schema):
        assert optimize_plan(VerdictLeaf(True), schema) == VerdictLeaf(True)
        assert optimize_plan(VerdictLeaf(False), schema) == VerdictLeaf(False)

    def test_broken_plan_survives_unchanged(self, schema):
        plan = ConditionNode(
            attribute="ghost",
            attribute_index=42,
            split_value=3,
            below=VerdictLeaf(False),
            above=VerdictLeaf(True),
        )
        assert optimize_plan(plan, schema) == plan
