"""BanditPlanner contract tests plus the verifier's LRN rule family."""

import dataclasses

import pytest

from repro.core import ConjunctiveQuery, RangePredicate
from repro.core.cost import expected_cost
from repro.core.plan import ConditionNode
from repro.exceptions import LearningError
from repro.learn import BanditPlanner, default_regret_budget
from repro.learn.planner import DEFAULT_REGRET_PULLS
from repro.planning import CorrSeqPlanner, GreedyConditionalPlanner
from repro.verify import verify_plan
from repro.verify.learn import check_learned


def codes(diagnostics):
    return {diagnostic.code for diagnostic in diagnostics}


class TestBanditPlanner:
    def test_plan_carries_learned_provenance(
        self, day_night_query, day_night_distribution
    ):
        result = BanditPlanner(day_night_distribution).plan(day_night_query)
        assert result.planner == "bandit"
        assert result.provenance is not None
        assert len(result.provenance.branches) == 1
        assert result.expected_cost == pytest.approx(
            expected_cost(result.plan, day_night_distribution, None)
        )

    def test_plan_serves_the_prior_best_order(
        self, day_night_query, day_night_distribution
    ):
        from repro.core.ranges import RangeVector
        from repro.learn.arms import ArmSpace

        result = BanditPlanner(day_night_distribution).plan(day_night_query)
        space = ArmSpace(
            day_night_query,
            RangeVector.full(day_night_distribution.schema),
        )
        assert result.expected_cost == pytest.approx(
            min(space.priors(day_night_distribution))
        )

    def test_default_regret_budget_scale(
        self, day_night_schema, day_night_query, day_night_distribution
    ):
        planner = BanditPlanner(day_night_distribution)
        per_tuple = sum(
            day_night_schema[index].cost
            for index in day_night_query.attribute_indices
        )
        assert planner.budget_for(day_night_query) == pytest.approx(
            DEFAULT_REGRET_PULLS * per_tuple
        )
        assert default_regret_budget(
            day_night_schema, day_night_query
        ) == planner.budget_for(day_night_query)
        explicit = BanditPlanner(day_night_distribution, regret_budget=7.5)
        assert explicit.budget_for(day_night_query) == 7.5

    def test_negative_budget_rejected(self, day_night_distribution):
        with pytest.raises(LearningError):
            BanditPlanner(day_night_distribution, regret_budget=-1.0)

    def test_skeleton_planner_builds_conditioned_composite(
        self, day_night_query, day_night_distribution
    ):
        planner = BanditPlanner(
            day_night_distribution,
            skeleton_planner=lambda d: GreedyConditionalPlanner(
                d, CorrSeqPlanner(d), max_splits=2
            ),
        )
        result = planner.plan(day_night_query)
        # The Figure 2 setup makes the hour split free and profitable.
        assert isinstance(result.plan, ConditionNode)
        assert len(result.provenance.branches) >= 2
        flat = BanditPlanner(day_night_distribution).plan(day_night_query)
        assert result.expected_cost <= flat.expected_cost + 1e-9

    def test_non_conjunctive_query_rejected(self, day_night_distribution):
        from repro.exceptions import PlanningError

        class FakeQuery:
            pass

        with pytest.raises(PlanningError, match="not conjunctive"):
            BanditPlanner(day_night_distribution).build_ensemble(FakeQuery())


class TestLRNRules:
    @pytest.fixture
    def planned(self, day_night_query, day_night_distribution):
        result = BanditPlanner(day_night_distribution).plan(day_night_query)
        return result.plan, result.provenance

    def test_honest_provenance_is_clean(
        self, planned, day_night_schema, day_night_query, day_night_distribution
    ):
        plan, provenance = planned
        assert check_learned(plan, provenance) == []
        report = verify_plan(
            plan,
            day_night_schema,
            query=day_night_query,
            distribution=day_night_distribution,
            provenance=provenance,
        )
        assert not report.errors

    def test_lrn001_budget_overrun(self, planned):
        plan, provenance = planned
        cooked = dataclasses.replace(
            provenance,
            ledger=dataclasses.replace(
                provenance.ledger,
                exploration_cost=provenance.ledger.budget * 2.0 + 1.0,
            ),
        )
        assert "LRN001" in codes(check_learned(plan, cooked))

    def test_lrn002_negative_side(self, planned):
        plan, provenance = planned
        cooked = dataclasses.replace(
            provenance,
            ledger=dataclasses.replace(provenance.ledger, warmup_cost=-1.0),
        )
        assert "LRN002" in codes(check_learned(plan, cooked))

    def test_lrn002_unreconciled_total(self, planned):
        plan, provenance = planned
        cooked = dataclasses.replace(
            provenance, observed_total=provenance.ledger.total_cost + 5.0
        )
        assert "LRN002" in codes(check_learned(plan, cooked))

    def test_lrn003_mean_outside_bounds(self, planned):
        plan, provenance = planned
        branch = provenance.branches[0]
        arms = list(branch.arms)
        arms[0] = dataclasses.replace(
            arms[0], mean=arms[0].ucb + 10.0, lcb=0.0
        )
        cooked = dataclasses.replace(
            provenance,
            branches=(dataclasses.replace(branch, arms=tuple(arms)),),
        )
        assert "LRN003" in codes(check_learned(plan, cooked))

    def test_lrn004_served_arm_missing(self, planned):
        plan, provenance = planned
        branch = provenance.branches[0]
        cooked = dataclasses.replace(
            provenance,
            branches=(dataclasses.replace(branch, served_arm=99),),
        )
        assert "LRN004" in codes(check_learned(plan, cooked))

    def test_lrn004_empty_arm_set(self, planned):
        plan, provenance = planned
        branch = provenance.branches[0]
        cooked = dataclasses.replace(
            provenance, branches=(dataclasses.replace(branch, arms=()),)
        )
        assert "LRN004" in codes(check_learned(plan, cooked))

    def test_lrn005_plan_disagrees_with_served_order(self, planned):
        plan, provenance = planned
        branch = provenance.branches[0]
        other = next(
            arm.arm_id
            for arm in branch.arms
            if arm.arm_id != branch.served_arm
        )
        cooked = dataclasses.replace(
            provenance,
            branches=(dataclasses.replace(branch, served_arm=other),),
        )
        assert "LRN005" in codes(check_learned(plan, cooked))

    def test_lrn005_dangling_branch_path(self, planned):
        plan, provenance = planned
        branch = provenance.branches[0]
        cooked = dataclasses.replace(
            provenance,
            branches=(dataclasses.replace(branch, path="root/ghost"),),
        )
        assert "LRN005" in codes(check_learned(plan, cooked))

    def test_verify_plan_reports_lrn_errors(
        self, planned, day_night_schema
    ):
        plan, provenance = planned
        cooked = dataclasses.replace(
            provenance,
            ledger=dataclasses.replace(
                provenance.ledger,
                exploration_cost=provenance.ledger.budget * 2.0 + 1.0,
            ),
        )
        report = verify_plan(
            plan, day_night_schema, provenance=cooked
        )
        assert "LRN001" in codes(report.errors)


class TestQueryFixture:
    """Keep the conftest shape honest for the other learn tests."""

    def test_two_predicate_query(self, day_night_query):
        assert isinstance(day_night_query, ConjunctiveQuery)
        assert len(day_night_query.predicates) == 2
        assert all(
            isinstance(predicate, RangePredicate)
            for predicate in day_night_query.predicates
        )
