"""Edge cases and small-surface coverage across modules."""

import numpy as np
import pytest

from repro.core import (
    Attribute,
    ConjunctiveQuery,
    Range,
    RangePredicate,
    RangeVector,
    Schema,
    VerdictLeaf,
    dataset_execution,
)
from repro.exceptions import (
    AcquisitionError,
    DiscretizationError,
    DistributionError,
    PlanError,
    PlanningError,
    QueryError,
    ReproError,
    SchemaError,
)
from repro.planning.base import PlannerStats, split_probabilities
from repro.probability import ChowLiuDistribution, EmpiricalDistribution


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            SchemaError,
            QueryError,
            PlanError,
            PlanningError,
            DistributionError,
            AcquisitionError,
            DiscretizationError,
        ):
            assert issubclass(exc, ReproError)
            with pytest.raises(ReproError):
                raise exc("boom")


class TestRangeVectorAcquired:
    def test_acquired_indices(self):
        schema = Schema([Attribute("a", 3), Attribute("b", 3), Attribute("c", 3)])
        ranges = RangeVector.full(schema)
        assert ranges.acquired_indices() == frozenset()
        narrowed = ranges.with_range(1, Range(2, 3)).with_range(2, Range(1, 1))
        assert narrowed.acquired_indices() == frozenset({1, 2})


class TestPlannerStats:
    def test_merge_accumulates(self):
        first = PlannerStats(subproblems=2, cache_hits=1, pruned=3)
        second = PlannerStats(subproblems=5, splits_considered=7)
        first.merge(second)
        assert first.subproblems == 7
        assert first.cache_hits == 1
        assert first.pruned == 3
        assert first.splits_considered == 7


class TestSplitProbabilitiesHelper:
    def test_empty_candidates(self):
        schema = Schema([Attribute("a", 4)])
        data = np.array([[1], [2], [3], [4]], dtype=np.int64)
        distribution = EmpiricalDistribution(schema, data)
        assert split_probabilities(
            distribution, 0, [], RangeVector.full(schema)
        ) == []

    def test_matches_single_queries(self):
        schema = Schema([Attribute("a", 6)])
        rng = np.random.default_rng(0)
        data = rng.integers(1, 7, size=(500, 1)).astype(np.int64)
        distribution = EmpiricalDistribution(schema, data)
        full = RangeVector.full(schema)
        candidates = [2, 4, 6]
        batched = split_probabilities(distribution, 0, candidates, full)
        for value, probability in zip(candidates, batched):
            assert probability == pytest.approx(
                distribution.split_probability(0, value, full)
            )

    def test_zero_mass_subproblem_uniform(self):
        schema = Schema([Attribute("a", 4), Attribute("b", 4)])
        data = np.array([[1, 1]], dtype=np.int64)
        distribution = EmpiricalDistribution(schema, data)
        ranges = RangeVector.full(schema).with_range(0, Range(3, 4))
        probabilities = split_probabilities(distribution, 1, [3], ranges)
        assert probabilities[0] == pytest.approx(0.5)


class TestEmptyDatasets:
    def test_dataset_execution_on_zero_rows(self):
        schema = Schema([Attribute("a", 2)])
        outcome = dataset_execution(
            VerdictLeaf(True), np.empty((0, 1), dtype=np.int64), schema
        )
        assert outcome.mean_cost == 0.0
        assert outcome.total_cost == 0.0

    def test_engine_execute_on_zero_rows(self):
        from repro.engine import AcquisitionalEngine

        schema = Schema([Attribute("a", 3), Attribute("b", 3)])
        history = np.array([[1, 1], [2, 2], [3, 3]], dtype=np.int64)
        engine = AcquisitionalEngine(schema, history)
        result = engine.execute(
            "SELECT * WHERE b >= 2", np.empty((0, 2), dtype=np.int64)
        )
        assert result.rows == ()
        assert result.total_cost == 0.0
        assert result.mean_cost_per_tuple == 0.0


class TestAnnotateWithGraphicalModel:
    def test_annotation_uses_default_conditioner(self):
        """annotate_plan must work against any Distribution, including the
        Chow-Liu model whose conditioner is the generic one."""
        from repro.core import annotate_plan
        from repro.planning import GreedySequentialPlanner

        schema = Schema([Attribute("a", 3), Attribute("b", 3)])
        rng = np.random.default_rng(1)
        a = rng.integers(1, 4, 800)
        b = np.clip(a + rng.integers(0, 2, 800), 1, 3)
        data = np.stack([a, b], axis=1).astype(np.int64)
        model = ChowLiuDistribution(schema, data, smoothing=0.5)
        query = ConjunctiveQuery(
            schema, [RangePredicate("a", 2, 3), RangePredicate("b", 1, 2)]
        )
        plan = GreedySequentialPlanner(model).plan(query).plan
        text = annotate_plan(plan, model)
        assert "pass=" in text


class TestSchemaCostsImmutability:
    def test_attribute_values_iterable_fresh(self):
        attribute = Attribute("x", 3)
        assert list(attribute.values) == [1, 2, 3]
        assert list(attribute.values) == [1, 2, 3]  # not an exhausted iterator


class TestSequentialPlannerGuards:
    def test_boolean_query_rejected_by_sequential_planners(self):
        from repro.core import And, BooleanQuery, Leaf
        from repro.planning import (
            GreedyConditionalPlanner,
            GreedySequentialPlanner,
            NaivePlanner,
            OptimalSequentialPlanner,
        )

        schema = Schema([Attribute("a", 3), Attribute("b", 3)])
        data = np.array([[1, 1], [2, 2], [3, 3]], dtype=np.int64)
        distribution = EmpiricalDistribution(schema, data)
        from repro.core import Or

        query = BooleanQuery(
            schema,
            Or(Leaf(RangePredicate("a", 1, 1)), Leaf(RangePredicate("b", 3, 3))),
        )
        for planner in (
            NaivePlanner(distribution),
            GreedySequentialPlanner(distribution),
            OptimalSequentialPlanner(distribution),
            GreedyConditionalPlanner(
                distribution, OptimalSequentialPlanner(distribution), max_splits=2
            ),
        ):
            with pytest.raises(PlanningError, match="conjunctive"):
                planner.plan(query)


class TestEngineProjectionDetails:
    def make_engine(self):
        from repro.engine import AcquisitionalEngine

        schema = Schema(
            [
                Attribute("hour", 4, 1.0),
                Attribute("temp", 4, 100.0),
                Attribute("light", 4, 100.0),
            ]
        )
        rng = np.random.default_rng(3)
        n = 3000
        hour = rng.integers(1, 5, n)
        day = hour >= 3
        temp = np.where(day, rng.integers(3, 5, n), rng.integers(1, 3, n))
        light = np.where(day, rng.integers(3, 5, n), rng.integers(1, 3, n))
        data = np.stack([hour, temp, light], axis=1).astype(np.int64)
        return AcquisitionalEngine(schema, data[:1500]), data[1500:]

    def test_selecting_conditioned_attribute_is_free(self):
        """The heuristic plan conditions on hour; selecting hour therefore
        adds no projection cost — it was read on every matching path."""
        engine, live = self.make_engine()
        result = engine.execute(
            "SELECT hour WHERE temp >= 3 AND light <= 2", live
        )
        prepared = engine.prepare("SELECT hour WHERE temp >= 3 AND light <= 2")
        from repro.core import ConditionNode

        if isinstance(prepared.plan, ConditionNode) and prepared.plan.attribute == "hour":
            assert result.projection_cost == 0.0

    def test_prepared_statement_reused_across_executions(self):
        engine, live = self.make_engine()
        text = "SELECT * WHERE temp >= 3"
        first = engine.prepare(text)
        engine.execute(text, live[:100])
        engine.execute(text, live[100:200])
        assert engine.prepare(text) is first

    def test_select_all_columns_in_schema_order(self):
        engine, live = self.make_engine()
        result = engine.execute("SELECT * WHERE temp >= 3", live[:50])
        assert result.columns == ("hour", "temp", "light")


class TestCorrSeqCostModelPropagation:
    def test_both_branches_carry_the_model(self):
        from repro.core.cost_models import BoardAwareCostModel
        from repro.planning import CorrSeqPlanner

        schema = Schema(
            [Attribute("a", 3, 10.0), Attribute("b", 3, 10.0)]
        )
        data = np.array([[1, 1], [2, 2], [3, 3]], dtype=np.int64)
        distribution = EmpiricalDistribution(schema, data)
        model = BoardAwareCostModel(
            schema, {0: "x", 1: "x"}, power_up_cost=5.0, per_read_cost=1.0
        )
        corr = CorrSeqPlanner(distribution, cost_model=model)
        assert corr.cost_model is model
        assert corr._optimal.cost_model is model
        assert corr._greedy.cost_model is model


class TestTraceIoConditionPlans:
    def test_condition_plan_with_negated_steps_roundtrips(self, tmp_path):
        from repro.core import (
            ConditionNode,
            NotRangePredicate,
            SequentialNode,
            SequentialStep,
        )
        from repro.data import load_plan, save_plan

        plan = ConditionNode(
            attribute="a",
            attribute_index=0,
            split_value=2,
            below=SequentialNode(
                steps=(
                    SequentialStep(
                        predicate=NotRangePredicate("b", 1, 2),
                        attribute_index=1,
                    ),
                )
            ),
            above=VerdictLeaf(False),
        )
        path = tmp_path / "plan.json"
        save_plan(plan, path)
        assert load_plan(path) == plan


class TestBytecodeNestedEmptyLeaves:
    def test_condition_over_empty_sequential(self):
        from repro.core import ConditionNode, SequentialNode
        from repro.execution.bytecode import (
            ByteCodeInterpreter,
            compile_plan,
            decompile_plan,
        )

        schema = Schema([Attribute("a", 3)])
        plan = ConditionNode(
            attribute="a",
            attribute_index=0,
            split_value=2,
            below=SequentialNode(steps=()),  # empty leaf == TRUE
            above=VerdictLeaf(False),
        )
        bytecode = compile_plan(plan)
        assert len(bytecode) == plan.size_bytes()
        assert decompile_plan(bytecode, schema) == plan
        interpreter = ByteCodeInterpreter(bytecode)
        assert interpreter.execute([1]) is True
        assert interpreter.execute([3]) is False
