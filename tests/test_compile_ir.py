"""Kernel IR mechanics: serialization, determinism, lowering limits.

The compile tier's IR is an interchange format (``repro compile --out``
writes it; a basestation could ship it to a gateway), so round-trips
must be exact, malformed payloads must fail loudly with
:class:`~repro.exceptions.CompileError`, and lowering must be a pure
function of (plan, schema, statistics version).
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np
import pytest

from repro.compile import (
    CompiledPlan,
    compile_plan,
    execute_compiled,
    lower_plan,
    op_from_dict,
)
from repro.compile.mutants import default_corpus_query
from repro.core.plan import SequentialNode, SequentialStep
from repro.core.predicates import Predicate, Truth
from repro.exceptions import CompileError, PlanError
from repro.verify.mutations import (
    canonical_conditional_plan,
    canonical_sequential_plan,
)


@pytest.fixture(scope="module")
def corpus():
    query = default_corpus_query()
    return query.schema, query


@pytest.fixture(
    scope="module", params=["conditional", "sequential"]
)
def lowered(request, corpus):
    schema, query = corpus
    if request.param == "conditional":
        plan = canonical_conditional_plan(query)
    else:
        plan = canonical_sequential_plan(query)
    return schema, plan, lower_plan(plan, schema, statistics_version=3)


class TestSerialization:
    def test_round_trip_is_exact(self, lowered):
        _schema, _plan, compiled = lowered
        payload = json.loads(json.dumps(compiled.to_dict()))
        restored = CompiledPlan.from_dict(payload)
        assert restored == compiled  # source is excluded from equality
        assert restored.ops == compiled.ops
        assert restored.register_count == compiled.register_count
        assert restored.schema_width == compiled.schema_width
        assert restored.statistics_version == 3
        assert restored.source is None

    def test_every_op_round_trips(self, lowered):
        _schema, _plan, compiled = lowered
        for op in compiled.ops:
            assert op_from_dict(op.to_dict()) == op

    def test_unknown_op_kind_rejected(self):
        with pytest.raises(CompileError, match="unknown kernel op kind"):
            op_from_dict({"kind": "teleport", "reg": 0})

    def test_malformed_op_payload_rejected(self):
        with pytest.raises(CompileError, match="malformed"):
            op_from_dict({"kind": "charge", "reg": 0})  # missing fields

    def test_malformed_plan_payload_rejected(self):
        with pytest.raises(CompileError, match="malformed compiled-plan"):
            CompiledPlan.from_dict({"ops": []})  # missing register_count

    def test_deserialized_kernel_executes_but_rejects_observers(
        self, lowered
    ):
        schema, _plan, compiled = lowered
        restored = CompiledPlan.from_dict(compiled.to_dict())
        rng = np.random.default_rng(3)
        data = rng.integers(1, 9, size=(50, len(schema)))
        outcome = execute_compiled(restored, data)
        direct = execute_compiled(compiled, data)
        assert np.array_equal(outcome.verdicts, direct.verdicts)
        assert np.array_equal(outcome.costs, direct.costs)

        class _Observer:
            def on_condition(self, *args):  # pragma: no cover
                pass

        with pytest.raises(CompileError, match="source plan"):
            execute_compiled(restored, data, observer=_Observer())


class TestLowering:
    def test_lowering_is_deterministic(self, lowered):
        schema, plan, compiled = lowered
        again = lower_plan(plan, schema, statistics_version=3)
        assert again == compiled
        assert again.to_dict() == compiled.to_dict()

    def test_entry_register_is_zero_and_budget_is_tight(self, lowered):
        _schema, _plan, compiled = lowered
        first = compiled.ops[0]
        assert getattr(first, "reg_in", getattr(first, "reg", None)) == 0
        touched = set()
        for op in compiled.ops:
            for name in (
                "reg", "reg_in", "reg_below", "reg_above", "reg_pass",
                "reg_fail",
            ):
                register = getattr(op, name, None)
                if register is not None:
                    touched.add(register)
        assert touched == set(range(compiled.register_count))

    def test_compile_plan_returns_proof(self, lowered):
        schema, plan, _compiled = lowered
        compiled, report = compile_plan(plan, schema)
        assert report.ok
        assert not report.diagnostics
        assert compiled.source is plan

    def test_exotic_predicate_is_not_compilable(self, corpus):
        schema, _query = corpus

        @dataclass(frozen=True)
        class ParityPredicate(Predicate):
            def satisfied_by(self, value: int) -> bool:
                return value % 2 == 0

            def truth_under(self, interval) -> Truth:
                return Truth.UNDETERMINED

            def describe(self) -> str:
                return f"{self.attribute} is even"

        plan = SequentialNode(
            steps=(SequentialStep(ParityPredicate("a"), 0),)
        )
        with pytest.raises(CompileError, match="range masks"):
            lower_plan(plan, schema)

    def test_shape_mismatch_rejected(self, lowered):
        schema, _plan, compiled = lowered
        bad = np.ones((10, len(schema) + 1), dtype=np.int64)
        with pytest.raises(PlanError, match="incompatible"):
            execute_compiled(compiled, bad)
