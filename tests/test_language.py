"""Tests for the query-language parser."""

import pytest

from repro.core import Attribute, NotRangePredicate, RangePredicate, Schema
from repro.engine import parse_query
from repro.exceptions import QueryError


@pytest.fixture
def schema() -> Schema:
    return Schema(
        [
            Attribute("hour", 24, 1.0),
            Attribute("light", 12, 100.0),
            Attribute("temp", 12, 100.0),
        ]
    )


class TestSelectList:
    def test_star(self, schema):
        parsed = parse_query("SELECT * WHERE temp >= 3", schema)
        assert parsed.select == ("*",)
        assert parsed.select_all

    def test_named_columns(self, schema):
        parsed = parse_query("SELECT light, temp WHERE temp >= 3", schema)
        assert parsed.select == ("light", "temp")
        assert not parsed.select_all

    def test_unknown_select_column_rejected(self, schema):
        with pytest.raises(Exception):
            parse_query("SELECT nope WHERE temp >= 3", schema)


class TestConditions:
    def test_between(self, schema):
        parsed = parse_query("SELECT * WHERE temp BETWEEN 3 AND 7", schema)
        predicate = parsed.query.predicates[0]
        assert isinstance(predicate, RangePredicate)
        assert (predicate.low, predicate.high) == (3, 7)

    def test_not_between(self, schema):
        parsed = parse_query("SELECT * WHERE NOT temp BETWEEN 3 AND 7", schema)
        predicate = parsed.query.predicates[0]
        assert isinstance(predicate, NotRangePredicate)
        assert (predicate.low, predicate.high) == (3, 7)

    def test_comparison_operators(self, schema):
        cases = {
            "temp <= 5": (1, 5),
            "temp >= 5": (5, 12),
            "temp < 5": (1, 4),
            "temp > 5": (6, 12),
            "temp = 5": (5, 5),
        }
        for text, (low, high) in cases.items():
            parsed = parse_query(f"SELECT * WHERE {text}", schema)
            predicate = parsed.query.predicates[0]
            assert (predicate.low, predicate.high) == (low, high), text

    def test_conjunction_over_attributes(self, schema):
        parsed = parse_query(
            "SELECT * WHERE light >= 9 AND temp <= 4 AND hour BETWEEN 1 AND 6",
            schema,
        )
        assert len(parsed.query) == 3

    def test_same_attribute_constraints_intersect(self, schema):
        parsed = parse_query(
            "SELECT * WHERE temp > 3 AND temp <= 8", schema
        )
        predicate = parsed.query.predicates[0]
        assert (predicate.low, predicate.high) == (4, 8)

    def test_between_inside_conjunction(self, schema):
        """The AND inside BETWEEN must not be confused with conjunction."""
        parsed = parse_query(
            "SELECT * WHERE temp BETWEEN 2 AND 5 AND light >= 9", schema
        )
        assert len(parsed.query) == 2

    def test_case_insensitive_keywords(self, schema):
        parsed = parse_query("select * where temp between 2 and 5", schema)
        assert len(parsed.query) == 1


class TestErrors:
    def test_empty_query(self, schema):
        with pytest.raises(QueryError):
            parse_query("", schema)

    def test_missing_where(self, schema):
        with pytest.raises(QueryError):
            parse_query("SELECT *", schema)

    def test_unknown_attribute(self, schema):
        with pytest.raises(Exception):
            parse_query("SELECT * WHERE zzz >= 2", schema)

    def test_reversed_between(self, schema):
        with pytest.raises(QueryError, match="reversed"):
            parse_query("SELECT * WHERE temp BETWEEN 7 AND 3", schema)

    def test_contradictory_constraints(self, schema):
        with pytest.raises(QueryError, match="contradictory"):
            parse_query("SELECT * WHERE temp < 3 AND temp > 8", schema)

    def test_not_without_between(self, schema):
        with pytest.raises(QueryError, match="BETWEEN"):
            parse_query("SELECT * WHERE NOT temp >= 3", schema)

    def test_negated_combined_with_range_rejected(self, schema):
        with pytest.raises(QueryError, match="negated"):
            parse_query(
                "SELECT * WHERE NOT temp BETWEEN 2 AND 4 AND temp >= 6", schema
            )

    def test_trailing_garbage(self, schema):
        with pytest.raises(QueryError):
            parse_query("SELECT * WHERE temp >= 3 banana", schema)

    def test_bad_tokens(self, schema):
        with pytest.raises(QueryError, match="tokenize"):
            parse_query("SELECT * WHERE temp >= 3 @@@", schema)

    def test_empty_effective_range(self, schema):
        with pytest.raises(QueryError):
            parse_query("SELECT * WHERE temp > 12", schema)


class TestDomainClamping:
    def test_le_clamps_into_domain(self, schema):
        parsed = parse_query("SELECT * WHERE temp <= 99", schema)
        predicate = parsed.query.predicates[0]
        assert predicate.high == 12
