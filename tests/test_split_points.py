"""Tests for the SPSF split-point policy (Section 4.3)."""

import pytest

from repro.core import (
    Attribute,
    ConjunctiveQuery,
    Range,
    RangePredicate,
    RangeVector,
    Schema,
)
from repro.exceptions import PlanningError
from repro.planning import SplitPointPolicy


@pytest.fixture
def schema() -> Schema:
    return Schema([Attribute("a", 10), Attribute("b", 4), Attribute("c", 2)])


class TestConstruction:
    def test_full_policy_covers_every_interior_value(self, schema):
        policy = SplitPointPolicy.full(schema)
        assert policy.points_for(0) == tuple(range(2, 11))
        assert policy.points_for(1) == (2, 3, 4)
        assert policy.points_for(2) == (2,)

    def test_full_policy_spsf(self, schema):
        assert SplitPointPolicy.full(schema).spsf == 9 * 3 * 1

    def test_equal_width_spacing(self, schema):
        policy = SplitPointPolicy.equal_width(schema, [3, 2, 1])
        assert policy.points_for(0) == (2, 6, 10)
        assert len(policy.points_for(1)) == 2
        assert policy.points_for(2) == (2,)

    def test_equal_width_caps_at_domain(self, schema):
        policy = SplitPointPolicy.equal_width(schema, [99, 99, 99])
        assert policy.points_for(0) == tuple(range(2, 11))
        assert policy.points_for(2) == (2,)

    def test_equal_width_zero_points(self, schema):
        policy = SplitPointPolicy.equal_width(schema, [0, 0, 0])
        assert policy.points_for(0) == ()
        assert policy.spsf == 1.0

    def test_equal_width_wrong_arity(self, schema):
        with pytest.raises(PlanningError):
            SplitPointPolicy.equal_width(schema, [1, 2])

    def test_from_spsf_geometric_mean(self, schema):
        policy = SplitPointPolicy.from_spsf(schema, 27.0)
        # 27 ** (1/3) = 3 candidates per attribute (capped by domain).
        assert len(policy.points_for(0)) == 3
        assert len(policy.points_for(1)) == 3
        assert policy.points_for(2) == (2,)

    def test_from_spsf_rejects_below_one(self, schema):
        with pytest.raises(PlanningError):
            SplitPointPolicy.from_spsf(schema, 0.5)

    def test_out_of_bounds_point_rejected(self, schema):
        with pytest.raises(PlanningError):
            SplitPointPolicy(schema, {0: [11]})
        with pytest.raises(PlanningError):
            SplitPointPolicy(schema, {0: [1]})


class TestQueryBoundaries:
    def test_boundaries_added(self, schema):
        query = ConjunctiveQuery(schema, [RangePredicate("a", 4, 7)])
        policy = SplitPointPolicy(schema, {}).with_query_boundaries(query)
        # T(a >= 4) and T(a >= 8) decide the predicate.
        assert set(policy.points_for(0)) == {4, 8}

    def test_domain_edge_boundaries_skipped(self, schema):
        # Predicate [1, 10] spans the whole domain: no useful boundaries.
        query = ConjunctiveQuery(schema, [RangePredicate("a", 1, 10)])
        policy = SplitPointPolicy(schema, {}).with_query_boundaries(query)
        assert policy.points_for(0) == ()

    def test_merge_keeps_existing(self, schema):
        base = SplitPointPolicy(schema, {0: [5]})
        query = ConjunctiveQuery(schema, [RangePredicate("a", 3, 6)])
        merged = base.with_query_boundaries(query)
        assert set(merged.points_for(0)) == {3, 5, 7}


class TestCandidates:
    def test_filtered_to_range_interior(self, schema):
        policy = SplitPointPolicy.full(schema)
        ranges = RangeVector.full(schema).with_range(0, Range(3, 6))
        assert policy.candidates(0, ranges) == [4, 5, 6]

    def test_no_candidates_for_singleton_range(self, schema):
        policy = SplitPointPolicy.full(schema)
        ranges = RangeVector.full(schema).with_range(0, Range(4, 4))
        assert policy.candidates(0, ranges) == []
