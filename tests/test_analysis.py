"""Tests for plan analysis and reporting."""

import pytest

from repro.core import (
    ConditionNode,
    ConjunctiveQuery,
    RangePredicate,
    SequentialNode,
    SequentialStep,
    VerdictLeaf,
    annotate_plan,
    attribute_acquisition_rates,
    compare_plans,
    empirical_cost,
    plan_summary,
    plan_to_dot,
)
from repro.planning import GreedyConditionalPlanner, NaivePlanner, OptimalSequentialPlanner
from repro.probability import EmpiricalDistribution
from tests.conftest import correlated_dataset


@pytest.fixture
def setup():
    schema, data = correlated_dataset(n_rows=3000, seed=2)
    distribution = EmpiricalDistribution(schema, data)
    query = ConjunctiveQuery(
        schema, [RangePredicate("a", 1, 2), RangePredicate("b", 3, 5)]
    )
    plan = GreedyConditionalPlanner(
        distribution, OptimalSequentialPlanner(distribution), max_splits=4
    ).plan(query).plan
    return schema, data, distribution, query, plan


class TestPlanSummary:
    def test_counts(self, setup):
        _schema, _data, _dist, _query, plan = setup
        summary = plan_summary(plan)
        assert summary.nodes == plan.size_nodes()
        assert summary.condition_nodes == plan.condition_count()
        assert summary.size_bytes == plan.size_bytes()
        assert summary.depth == plan.depth()
        assert (
            summary.condition_nodes
            + summary.sequential_leaves
            + summary.verdict_leaves
            == summary.nodes
        )

    def test_conditioning_attributes_in_order(self, setup):
        _schema, _data, _dist, _query, plan = setup
        summary = plan_summary(plan)
        assert "mode" in summary.conditioning_attributes

    def test_describe_is_readable(self, setup):
        _schema, _data, _dist, _query, plan = setup
        text = plan_summary(plan).describe()
        assert "splits" in text and "bytes" in text

    def test_leaf_only_plan(self):
        summary = plan_summary(VerdictLeaf(True))
        assert summary.nodes == 1
        assert summary.condition_nodes == 0
        assert summary.verdict_leaves == 1
        assert summary.distinct_leaf_orders == 0


class TestAnnotatePlan:
    def test_probabilities_present_and_valid(self, setup):
        _schema, _data, distribution, _query, plan = setup
        text = annotate_plan(plan, distribution)
        assert "reach=1.000" in text
        assert "p=" in text

    def test_reach_probabilities_decrease_with_depth(self, setup):
        _schema, _data, distribution, _query, plan = setup
        import re

        text = annotate_plan(plan, distribution)
        reaches = [float(m) for m in re.findall(r"reach=([0-9.]+)", text)]
        assert max(reaches) <= 1.0 + 1e-9
        assert min(reaches) >= 0.0


class TestAcquisitionRates:
    def test_rates_recover_empirical_cost(self, setup):
        """Sum of rate * cost over attributes == Equation 4's mean cost."""
        schema, data, _dist, _query, plan = setup
        rates = attribute_acquisition_rates(plan, data, schema)
        recovered = sum(
            rates[attribute.name] * attribute.cost for attribute in schema
        )
        assert recovered == pytest.approx(empirical_cost(plan, data, schema))

    def test_rates_bounded(self, setup):
        schema, data, _dist, _query, plan = setup
        rates = attribute_acquisition_rates(plan, data, schema)
        for value in rates.values():
            assert 0.0 <= value <= 1.0

    def test_unused_attribute_rate_zero(self, setup):
        schema, data, _dist, _query, plan = setup
        rates = attribute_acquisition_rates(plan, data, schema)
        assert rates["c"] == 0.0  # never referenced by query or plan


class TestDotExport:
    def test_valid_dot_structure(self, setup):
        _schema, _data, _dist, _query, plan = setup
        dot = plan_to_dot(plan, name="study")
        assert dot.startswith("digraph study {")
        assert dot.rstrip().endswith("}")
        assert dot.count("->") == 2 * plan.condition_count()

    def test_leaf_shapes(self):
        dot = plan_to_dot(VerdictLeaf(False))
        assert 'label="F"' in dot


class TestComparePlans:
    def test_same_query_plans_agree_fully(self, setup):
        schema, data, distribution, query, plan = setup
        naive = NaivePlanner(distribution).plan(query).plan
        comparison = compare_plans(plan, naive, data, schema)
        assert comparison.verdict_agreement == 1.0
        assert comparison.cost_ratio == pytest.approx(
            comparison.mean_cost_a / comparison.mean_cost_b
        )

    def test_different_query_plans_disagree(self, setup):
        schema, data, _dist, _query, plan = setup
        always_true = VerdictLeaf(True)
        comparison = compare_plans(plan, always_true, data, schema)
        assert comparison.verdict_agreement < 1.0

    def test_describe(self, setup):
        schema, data, distribution, query, plan = setup
        naive = NaivePlanner(distribution).plan(query).plan
        text = compare_plans(plan, naive, data, schema).describe()
        assert "agreement" in text


class TestValidatePlan:
    def make(self):
        from tests.conftest import correlated_dataset

        schema, data = correlated_dataset(n_rows=1000, seed=6)
        distribution = EmpiricalDistribution(schema, data)
        query = ConjunctiveQuery(
            schema, [RangePredicate("a", 1, 2), RangePredicate("b", 3, 5)]
        )
        plan = GreedyConditionalPlanner(
            distribution, OptimalSequentialPlanner(distribution), max_splits=3
        ).plan(query).plan
        return schema, query, plan

    def test_planner_output_is_valid(self):
        from repro.core import validate_plan

        schema, query, plan = self.make()
        assert validate_plan(plan, schema) == []
        assert validate_plan(plan, schema, query) == []

    def test_bad_attribute_index_flagged(self):
        from repro.core import validate_plan

        schema, _query, _plan = self.make()
        bad = ConditionNode(
            attribute="mode",
            attribute_index=99,
            split_value=2,
            below=VerdictLeaf(False),
            above=VerdictLeaf(True),
        )
        problems = validate_plan(bad, schema)
        assert any("out of range" in p for p in problems)

    def test_name_index_mismatch_flagged(self):
        from repro.core import validate_plan

        schema, _query, _plan = self.make()
        bad = ConditionNode(
            attribute="a",  # index 0 is "mode"
            attribute_index=0,
            split_value=2,
            below=VerdictLeaf(False),
            above=VerdictLeaf(True),
        )
        problems = validate_plan(bad, schema)
        assert any("names" in p for p in problems)

    def test_unreachable_split_flagged(self):
        from repro.core import validate_plan

        schema, _query, _plan = self.make()
        inner = ConditionNode(
            attribute="mode",
            attribute_index=0,
            split_value=2,
            below=VerdictLeaf(False),
            above=VerdictLeaf(True),
        )
        outer = ConditionNode(
            attribute="mode",
            attribute_index=0,
            split_value=2,
            below=inner,  # mode pinned below 2: inner split unreachable
            above=VerdictLeaf(True),
        )
        problems = validate_plan(outer, schema)
        assert any("unreachable" in p for p in problems)

    def test_out_of_domain_step_flagged(self):
        from repro.core import validate_plan

        schema, _query, _plan = self.make()
        bad = SequentialNode(
            steps=(
                SequentialStep(
                    predicate=RangePredicate("a", 1, 99), attribute_index=1
                ),
            )
        )
        problems = validate_plan(bad, schema)
        assert any("exceed domain" in p for p in problems)

    def test_foreign_predicate_flagged_against_query(self):
        from repro.core import validate_plan

        schema, query, _plan = self.make()
        foreign = SequentialNode(
            steps=(
                SequentialStep(
                    predicate=RangePredicate("c", 1, 2), attribute_index=3
                ),
            )
        )
        problems = validate_plan(foreign, schema, query)
        assert any("not one of the query's predicates" in p for p in problems)

    def test_decompiled_plan_validates(self):
        from repro.core import validate_plan
        from repro.execution.bytecode import compile_plan, decompile_plan

        schema, query, plan = self.make()
        restored = decompile_plan(compile_plan(plan), schema)
        assert validate_plan(restored, schema, query) == []
