"""Verifier gating at the engine, cache, and service layers.

The issue's acceptance scenario: a hand-built inconsistent plan must be
refused by :class:`~repro.service.cache.PlanCache` admission and the
rejection must show up in ``service.stats()``; and an engine in debug
mode (``verify_plans=True``) must raise
:class:`~repro.exceptions.PlanVerificationError` the moment a broken
planner hands back a wrong plan.
"""

import numpy as np
import pytest

from repro.core import VerdictLeaf
from repro.engine import AcquisitionalEngine
from repro.engine.language import parse_query
from repro.exceptions import PlanVerificationError
from repro.planning.base import Planner, PlannerStats, PlanningResult
from repro.planning.naive import NaivePlanner
from repro.service import AcquisitionalService
from repro.service.fingerprint import fingerprint_parsed

TEXT = "SELECT * WHERE a >= 3 AND a <= 6 AND b >= 2 AND b <= 5"


@pytest.fixture
def engine():
    from repro.core import Attribute, Schema

    schema = Schema(
        [
            Attribute("a", 8, 1.0),
            Attribute("b", 8, 2.0),
            Attribute("c", 8, 4.0),
        ]
    )
    rng = np.random.default_rng(0)
    history = rng.integers(1, 9, size=(500, 3))
    return AcquisitionalEngine(schema, history, smoothing=0.5)


class BrokenPlanner(Planner):
    """Returns an always-TRUE verdict whatever the query asks."""

    name = "broken"

    def plan(self, query) -> PlanningResult:
        return PlanningResult(
            plan=VerdictLeaf(verdict=True),
            expected_cost=0.0,
            planner=self.name,
            stats=PlannerStats(),
        )


def _prepared_with_plan(engine, text, plan, cost=0.0):
    """A hand-built (and here: inconsistent) PreparedQuery."""
    from repro.engine.engine import PreparedQuery

    parsed = parse_query(text, engine.schema)
    return PreparedQuery(
        text=text,
        parsed=parsed,
        plan=plan,
        expected_where_cost=cost,
        planner="hand-built",
        statistics_version=engine.statistics_version,
    )


class TestCacheAdmission:
    def test_inconsistent_plan_refused_and_counted(self, engine):
        service = AcquisitionalService(engine)
        parsed = parse_query(TEXT, engine.schema)
        fingerprint = fingerprint_parsed(parsed, engine.schema)
        bad = _prepared_with_plan(
            engine, TEXT, VerdictLeaf(verdict=True)
        )

        admitted = service.cache.put(
            fingerprint, engine.statistics_version, bad
        )

        assert admitted is False
        assert service.cache.get(fingerprint, engine.statistics_version) is None
        cache_stats = service.cache.stats()
        assert cache_stats.rejections == 1
        assert cache_stats.size == 0
        stats = service.stats()
        assert stats["cache"]["rejections"] == 1
        assert stats["counters"]["plans_rejected"] == 1

    def test_good_plan_admitted(self, engine):
        service = AcquisitionalService(engine)
        prepared = service.plan_for(TEXT)
        # plan_for already inserted it; a fresh put is also accepted.
        fingerprint = service.fingerprint(TEXT)
        assert (
            service.cache.put(
                fingerprint, engine.statistics_version, prepared
            )
            is True
        )
        assert service.cache.stats().rejections == 0
        assert (
            service.cache.get(fingerprint, engine.statistics_version)
            is prepared
        )

    def test_verification_disabled_admits_anything(self, engine):
        service = AcquisitionalService(engine, verify_admission=False)
        parsed = parse_query(TEXT, engine.schema)
        fingerprint = fingerprint_parsed(parsed, engine.schema)
        bad = _prepared_with_plan(engine, TEXT, VerdictLeaf(verdict=True))
        assert service.cache.put(
            fingerprint, engine.statistics_version, bad
        )
        assert service.cache.stats().rejections == 0

    def test_broken_planner_is_served_but_never_cached(self):
        from repro.core import Attribute, Schema

        schema = Schema(
            [
                Attribute("a", 8, 1.0),
                Attribute("b", 8, 2.0),
                Attribute("c", 8, 4.0),
            ]
        )
        rng = np.random.default_rng(1)
        history = rng.integers(1, 9, size=(400, 3))
        engine = AcquisitionalEngine(
            schema,
            history,
            planner_factory=lambda distribution: BrokenPlanner(distribution),
            smoothing=0.5,
        )
        service = AcquisitionalService(engine)

        first = service.plan_for(TEXT)
        second = service.plan_for(TEXT)

        # Both calls planned from scratch: the bad plan never entered
        # the cache, and each miss recorded a rejection.
        assert first is not second
        assert service.cache.stats().rejections == 2
        assert service.stats()["counters"]["plans_rejected"] == 2
        assert service.stats()["counters"]["plans_built"] == 2


class TestEngineDebugMode:
    def test_verify_plans_raises_on_broken_planner(self):
        from repro.core import Attribute, Schema

        schema = Schema(
            [
                Attribute("a", 8, 1.0),
                Attribute("b", 8, 2.0),
            ]
        )
        rng = np.random.default_rng(2)
        history = rng.integers(1, 9, size=(300, 2))
        engine = AcquisitionalEngine(
            schema,
            history,
            planner_factory=lambda distribution: BrokenPlanner(distribution),
            smoothing=0.5,
            verify_plans=True,
        )
        with pytest.raises(PlanVerificationError) as excinfo:
            engine.prepare("SELECT * WHERE a >= 3 AND a <= 6")
        assert excinfo.value.report is not None
        assert excinfo.value.report.has("SEM005")

    def test_verify_plans_passes_honest_planner(self):
        from repro.core import Attribute, Schema

        schema = Schema(
            [
                Attribute("a", 8, 1.0),
                Attribute("b", 8, 2.0),
            ]
        )
        rng = np.random.default_rng(3)
        history = rng.integers(1, 9, size=(300, 2))
        engine = AcquisitionalEngine(
            schema,
            history,
            planner_factory=lambda distribution: NaivePlanner(
                distribution
            ),
            smoothing=0.5,
            verify_plans=True,
        )
        prepared = engine.prepare(
            "SELECT * WHERE a >= 3 AND a <= 6"
        )
        assert prepared.plan is not None
