"""Tests for the exhaustive optimal planner (Section 3.2, Figure 5)."""

import math

import numpy as np
import pytest

from repro.core import (
    Attribute,
    ConjunctiveQuery,
    RangePredicate,
    RangeVector,
    Schema,
    Truth,
    empirical_cost,
    expected_cost,
)
from repro.exceptions import PlanningError
from repro.execution import PlanExecutor
from repro.planning import (
    ExhaustivePlanner,
    GreedyConditionalPlanner,
    NaivePlanner,
    OptimalSequentialPlanner,
    SplitPointPolicy,
)
from repro.planning.base import effective_cost
from repro.probability import EmpiricalDistribution
from tests.conftest import make_day_night_data


def brute_force_optimal_cost(query, distribution, ranges, policy) -> float:
    """Pruning-free, cache-free reference recursion for Equation 5."""
    if query.truth_under(ranges) is not Truth.UNDETERMINED:
        return 0.0
    schema = distribution.schema
    best = math.inf
    for index in range(len(schema)):
        acquisition = effective_cost(schema, ranges, index)
        for split in policy.candidates(index, ranges):
            probability = distribution.split_probability(index, split, ranges)
            below, above = ranges.split(index, split)
            total = acquisition
            if probability > 0.0:
                total += probability * brute_force_optimal_cost(
                    query, distribution, below, policy
                )
            if probability < 1.0:
                total += (1.0 - probability) * brute_force_optimal_cost(
                    query, distribution, above, policy
                )
            best = min(best, total)
    return best


class TestFigure2Example:
    """The paper's motivating example, with its exact numbers."""

    def make(self):
        schema = Schema(
            [
                Attribute("hour", 2, 0.0),  # time of day is free
                Attribute("temp", 2, 1.0),
                Attribute("light", 2, 1.0),
            ]
        )
        data = make_day_night_data()
        distribution = EmpiricalDistribution(schema, data)
        query = ConjunctiveQuery(
            schema, [RangePredicate("temp", 2, 2), RangePredicate("light", 2, 2)]
        )
        return schema, data, distribution, query

    def test_sequential_cost_is_1_5(self):
        _schema, _data, distribution, query = self.make()
        result = OptimalSequentialPlanner(distribution).plan(query)
        assert result.expected_cost == pytest.approx(1.5)

    def test_conditional_cost_is_1_1(self):
        """Conditioning on the free hour attribute drops 1.5 to 1.1."""
        _schema, _data, distribution, query = self.make()
        result = ExhaustivePlanner(distribution).plan(query)
        assert result.expected_cost == pytest.approx(1.1)

    def test_plan_conditions_on_hour_first(self):
        from repro.core import ConditionNode

        _schema, _data, distribution, query = self.make()
        plan = ExhaustivePlanner(distribution).plan(query).plan
        assert isinstance(plan, ConditionNode)
        assert plan.attribute == "hour"

    def test_plan_is_verdict_correct(self):
        schema, data, distribution, query = self.make()
        plan = ExhaustivePlanner(distribution).plan(query).plan
        assert PlanExecutor(schema).verify(plan, query, data).correct


class TestOptimality:
    def test_matches_pruning_free_reference(self, tiny_schema):
        """Memoized+pruned search equals the naive reference recursion."""
        rng = np.random.default_rng(17)
        n = 500
        cheap = rng.integers(1, 3, n)
        exp_a = np.where(cheap == 1, 1, rng.integers(1, 3, n))
        exp_b = np.where(cheap == 2, 2, rng.integers(1, 3, n))
        data = np.stack([cheap, exp_a, exp_b], axis=1).astype(np.int64)
        distribution = EmpiricalDistribution(tiny_schema, data)
        query = ConjunctiveQuery(
            tiny_schema,
            [RangePredicate("exp_a", 2, 2), RangePredicate("exp_b", 1, 1)],
        )
        policy = SplitPointPolicy.full(tiny_schema).with_query_boundaries(query)
        reference = brute_force_optimal_cost(
            query, distribution, RangeVector.full(tiny_schema), policy
        )
        result = ExhaustivePlanner(distribution).plan(query)
        assert result.expected_cost == pytest.approx(reference, rel=1e-12)

    def test_matches_reference_on_random_instances(self):
        """Sweep several random 3-attribute instances with K=3 domains."""
        schema = Schema(
            [
                Attribute("c", 3, 1.0),
                Attribute("p", 3, 30.0),
                Attribute("q", 3, 70.0),
            ]
        )
        for seed in range(4):
            rng = np.random.default_rng(seed)
            n = 300
            c = rng.integers(1, 4, n)
            p = np.clip(c + rng.integers(-1, 2, n), 1, 3)
            q = np.clip(4 - c + rng.integers(-1, 2, n), 1, 3)
            data = np.stack([c, p, q], axis=1).astype(np.int64)
            distribution = EmpiricalDistribution(schema, data)
            query = ConjunctiveQuery(
                schema, [RangePredicate("p", 1, 2), RangePredicate("q", 2, 3)]
            )
            policy = SplitPointPolicy.full(schema).with_query_boundaries(query)
            reference = brute_force_optimal_cost(
                query, distribution, RangeVector.full(schema), policy
            )
            result = ExhaustivePlanner(distribution).plan(query)
            assert result.expected_cost == pytest.approx(reference, rel=1e-12), seed

    def test_never_worse_than_other_planners(self, correlated, correlated_query):
        schema, data = correlated
        distribution = EmpiricalDistribution(schema, data)
        exhaustive = ExhaustivePlanner(distribution).plan(correlated_query)
        naive = NaivePlanner(distribution).plan(correlated_query)
        optseq = OptimalSequentialPlanner(distribution).plan(correlated_query)
        heuristic = GreedyConditionalPlanner(
            distribution, OptimalSequentialPlanner(distribution), max_splits=5
        ).plan(correlated_query)
        assert exhaustive.expected_cost <= optseq.expected_cost + 1e-9
        assert exhaustive.expected_cost <= naive.expected_cost + 1e-9
        assert exhaustive.expected_cost <= heuristic.expected_cost + 1e-9

    def test_expected_matches_empirical_on_training(self, correlated, correlated_query):
        schema, data = correlated
        distribution = EmpiricalDistribution(schema, data)
        result = ExhaustivePlanner(distribution).plan(correlated_query)
        assert result.expected_cost == pytest.approx(
            empirical_cost(result.plan, data, schema), rel=1e-9
        )
        assert result.expected_cost == pytest.approx(
            expected_cost(result.plan, distribution), rel=1e-9
        )


class TestMechanics:
    def test_verdict_correct_on_correlated_data(self, correlated, correlated_query):
        schema, data = correlated
        distribution = EmpiricalDistribution(schema, data)
        plan = ExhaustivePlanner(distribution).plan(correlated_query).plan
        assert PlanExecutor(schema).verify(plan, correlated_query, data).correct

    def test_stats_populated(self, correlated, correlated_query):
        schema, data = correlated
        distribution = EmpiricalDistribution(schema, data)
        result = ExhaustivePlanner(distribution).plan(correlated_query)
        assert result.stats.subproblems > 0
        assert result.stats.splits_considered > 0

    def test_subproblem_guard(self, correlated, correlated_query):
        schema, data = correlated
        distribution = EmpiricalDistribution(schema, data)
        with pytest.raises(PlanningError, match="subproblems"):
            ExhaustivePlanner(distribution, max_subproblems=3).plan(correlated_query)

    def test_restricted_spsf_cannot_beat_full(self, correlated, correlated_query):
        """Figure 8(b)'s premise: a smaller SPSF yields equal-or-worse plans."""
        schema, data = correlated
        distribution = EmpiricalDistribution(schema, data)
        full = ExhaustivePlanner(distribution).plan(correlated_query)
        restricted = ExhaustivePlanner(
            distribution,
            split_policy=SplitPointPolicy.equal_width(schema, [1, 1, 1, 1]),
        ).plan(correlated_query)
        assert full.expected_cost <= restricted.expected_cost + 1e-9

    def test_trivially_true_query_is_free(self, tiny_schema):
        data = np.ones((10, 3), dtype=np.int64)
        distribution = EmpiricalDistribution(tiny_schema, data)
        query = ConjunctiveQuery(tiny_schema, [RangePredicate("exp_a", 1, 2)])
        result = ExhaustivePlanner(distribution).plan(query)
        assert result.expected_cost == 0.0
