"""Unit tests for branch-local arm enumeration (repro.learn.arms)."""

import pytest

from repro.core import ConjunctiveQuery, RangePredicate
from repro.core.cost import expected_cost
from repro.core.plan import SequentialNode, VerdictLeaf
from repro.core.ranges import Range, RangeVector
from repro.exceptions import LearningError
from repro.learn.arms import DEFAULT_MAX_ARM_PREDICATES, ArmSpace
from repro.planning import ExhaustivePlanner
from repro.probability import EmpiricalDistribution


@pytest.fixture
def query(day_night_schema):
    return ConjunctiveQuery(
        day_night_schema,
        [RangePredicate("temp", 2, 2), RangePredicate("light", 2, 2)],
    )


@pytest.fixture
def full_context(day_night_schema):
    return RangeVector.full(day_night_schema)


class TestEnumeration:
    def test_all_orders_enumerated(self, query, full_context):
        space = ArmSpace(query, full_context)
        assert len(space) == 2  # 2 predicates -> 2! orders
        orders = {arm.order for arm in space.arms}
        assert orders == {(1, 2), (2, 1)}

    def test_enumeration_is_deterministic(self, query, full_context):
        first = ArmSpace(query, full_context)
        second = ArmSpace(query, full_context)
        assert [arm.order for arm in first.arms] == [
            arm.order for arm in second.arms
        ]
        assert [arm.arm_id for arm in first.arms] == [0, 1]

    def test_arm_plans_are_sequential(self, query, full_context):
        space = ArmSpace(query, full_context)
        for arm in space.arms:
            assert isinstance(arm.plan, SequentialNode)
            assert tuple(
                step.attribute_index for step in arm.plan.steps
            ) == arm.order

    def test_getitem_matches_arm_id(self, query, full_context):
        space = ArmSpace(query, full_context)
        for arm in space.arms:
            assert space[arm.arm_id] is arm

    def test_resolved_context_yields_single_verdict_leaf(
        self, day_night_schema, query
    ):
        # Restricting temp to its failing bucket decides the query: the
        # conjunction can never hold, so the branch needs no acquisitions.
        context = RangeVector.full(day_night_schema).with_range(1, Range(1, 1))
        space = ArmSpace(query, context)
        assert len(space) == 1
        assert space[0].order == ()
        assert isinstance(space[0].plan, VerdictLeaf)

    def test_factorial_explosion_refused(self):
        import math

        from repro.core import Attribute, Schema

        n = DEFAULT_MAX_ARM_PREDICATES + 1
        schema = Schema([Attribute(f"a{i}", 2, 1.0) for i in range(n)])
        wide_query = ConjunctiveQuery(
            schema, [RangePredicate(f"a{i}", 2, 2) for i in range(n)]
        )
        with pytest.raises(LearningError, match="arm cap"):
            ArmSpace(wide_query, RangeVector.full(schema))
        # The cap is a parameter, not a constant.
        space = ArmSpace(wide_query, RangeVector.full(schema), max_predicates=n)
        assert len(space) == math.factorial(n)


class TestCostHooks:
    def test_span_sums_undetermined_attribute_costs(
        self, day_night_schema, query, full_context
    ):
        space = ArmSpace(query, full_context)
        assert space.span(day_night_schema) == pytest.approx(2.0)  # temp + light

    def test_priors_match_expected_cost(
        self, day_night_schema, query, full_context, day_night_distribution
    ):
        space = ArmSpace(query, full_context)
        priors = space.priors(day_night_distribution)
        for arm, prior in zip(space.arms, priors):
            assert prior == pytest.approx(
                expected_cost(arm.plan, day_night_distribution, full_context)
            )

    def test_best_prior_matches_exhaustive_planner(
        self, day_night_schema, query, full_context, day_night_distribution
    ):
        space = ArmSpace(query, full_context)
        best = min(space.priors(day_night_distribution))
        optimal = ExhaustivePlanner(day_night_distribution).plan(query)
        # Sequential arms cannot beat the conditioning skeleton, but on a
        # single branch the best order's cost equals the exhaustive cost
        # restricted to sequential plans, so it upper-bounds the optimum.
        assert best >= expected_cost(
            optimal.plan, day_night_distribution, full_context
        ) - 1e-9

    def test_step_rates_shape_and_range(
        self, query, full_context, day_night_distribution
    ):
        space = ArmSpace(query, full_context)
        rates = space.step_rates(day_night_distribution)
        assert len(rates) == len(space)
        for arm_rates, arm in zip(rates, space.arms):
            assert len(arm_rates) == len(arm.order)
            assert all(0.0 <= rate <= 1.0 for rate in arm_rates)

    def test_step_rates_condition_on_earlier_steps(
        self, day_night_schema, day_night_data
    ):
        # With the day/night correlation, P(light | temp passed) differs
        # from the marginal P(light): the conditioner must be walked.
        distribution = EmpiricalDistribution(day_night_schema, day_night_data)
        query = ConjunctiveQuery(
            day_night_schema,
            [RangePredicate("temp", 2, 2), RangePredicate("light", 2, 2)],
        )
        space = ArmSpace(query, RangeVector.full(day_night_schema))
        rates = space.step_rates(distribution)
        by_order = {arm.order: arm_rates for arm, arm_rates in zip(space.arms, rates)}
        marginal_light = by_order[(2, 1)][0]
        conditional_light = by_order[(1, 2)][1]
        assert conditional_light != pytest.approx(marginal_light)

    def test_verdict_leaf_has_empty_rates(
        self, day_night_schema, query, day_night_distribution
    ):
        context = RangeVector.full(day_night_schema).with_range(1, Range(1, 1))
        space = ArmSpace(query, context)
        assert space.step_rates(day_night_distribution) == ((),)
