"""Property tests for the learning loop's ledger discipline.

Two invariants the ISSUE's acceptance criteria hinge on, checked over
randomized streams rather than hand-picked ones:

1. **Budget**: the exploration side of the ledger never exceeds the
   regret budget — the ``can_explore`` gate is a *hard* cap, under
   stationary streams, drift storms, and fault storms alike.
2. **Conservation**: warmup + conditioning + base + exploration equals
   the metered stream total *exactly* (to float tolerance) — every
   charge lands on exactly one side, including retry-inflated faulted
   reads and failed exploration pulls that bought nothing.

Both re-derive the sums from the report's raw cost array; nothing is
trusted from the ledger's own helpers beyond the side totals.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import LearningError
from repro.faults.model import AttributeFaults, FaultSchedule
from repro.learn import (
    LearnedStreamExecutor,
    RegretLedger,
    adversarial_stream,
    drifting_stream,
)
from repro.verify.learn import check_learned

SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

LEDGER_SETTINGS = settings(
    max_examples=100,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def assert_books_balance(report):
    ledger = report.ledger
    sides = (
        ledger.warmup_cost
        + ledger.conditioning_cost
        + ledger.base_cost
        + ledger.exploration_cost
    )
    observed = float(report.costs.sum())
    assert sides == pytest.approx(observed, rel=1e-9, abs=1e-6)
    assert ledger.exploration_cost <= ledger.budget + 1e-9
    assert min(
        ledger.warmup_cost,
        ledger.conditioning_cost,
        ledger.base_cost,
        ledger.exploration_cost,
    ) >= 0.0
    # And the provenance the verifier would audit agrees.
    assert check_learned(report.plan, report.provenance) == []


class TestStreamInvariants:
    @SETTINGS
    @given(
        seed=st.integers(0, 2**16),
        segments=st.integers(1, 4),
        budget_pulls=st.sampled_from([0.0, 0.5, 2.0, 8.0]),
    )
    def test_drift_storm_conserves_and_respects_budget(
        self, seed, segments, budget_pulls
    ):
        workload = adversarial_stream(
            n_segments=segments, segment_length=120, seed=seed
        )
        budget = budget_pulls * 201.0  # worst-case full read of 1+100+100
        report = LearnedStreamExecutor(
            workload.schema,
            workload.query,
            regret_budget=budget,
            window=96,
            warmup=32,
            smoothing=0.5,
            delta=0.2,
            burst_pulls=4,
            drift_check_every=16,
            drift_min_tuples=32,
        ).process(workload.data)
        assert_books_balance(report)

    @SETTINGS
    @given(
        seed=st.integers(0, 2**16),
        drop=st.floats(0.0, 0.3),
        noise=st.floats(0.0, 0.2),
        stuck=st.floats(0.0, 0.2),
    )
    def test_fault_storm_conserves_and_respects_budget(
        self, seed, drop, noise, stuck
    ):
        workload = drifting_stream(n_tuples=260, flip_at=0.5, seed=seed)
        schedule = FaultSchedule(
            profiles={
                1: AttributeFaults(drop_rate=drop, noise_rate=noise),
                2: AttributeFaults(stuck_rate=stuck),
            }
        )
        report = LearnedStreamExecutor(
            workload.schema,
            workload.query,
            window=96,
            warmup=32,
            smoothing=0.5,
            delta=0.2,
            burst_pulls=4,
            fault_schedule=schedule,
            fault_rng=np.random.default_rng(seed),
        ).process(workload.data)
        assert_books_balance(report)

    @SETTINGS
    @given(seed=st.integers(0, 2**16))
    def test_zero_budget_never_explores(self, seed):
        workload = adversarial_stream(
            n_segments=2, segment_length=120, seed=seed
        )
        report = LearnedStreamExecutor(
            workload.schema,
            workload.query,
            regret_budget=0.0,
            window=96,
            warmup=32,
            smoothing=0.5,
        ).process(workload.data)
        assert report.ledger.exploration_cost == 0.0
        assert report.ledger.exploration_pulls == 0
        assert_books_balance(report)


class TestLedgerAlgebra:
    @LEDGER_SETTINGS
    @given(
        charges=st.lists(
            st.tuples(
                st.sampled_from(["warmup", "conditioning", "exploit", "explore"]),
                st.floats(0.0, 500.0, allow_nan=False),
                st.floats(0.0, 500.0, allow_nan=False),
            ),
            max_size=40,
        ),
        budget=st.floats(0.0, 1e4, allow_nan=False),
    )
    def test_sides_always_reconcile(self, charges, budget):
        ledger = RegretLedger(budget)
        total = 0.0
        for kind, cost, reference in charges:
            if kind == "warmup":
                ledger.charge_warmup(cost)
            elif kind == "conditioning":
                ledger.charge_conditioning(cost)
            elif kind == "exploit":
                ledger.charge_exploit(cost)
            else:
                if not ledger.can_explore(max(0.0, cost - reference)):
                    continue
                ledger.charge_explore(cost, reference)
            total += cost
        snap = ledger.snapshot()
        assert snap.total_cost == pytest.approx(total, rel=1e-9, abs=1e-9)
        assert snap.conserved(total)
        assert snap.exploration_cost <= budget + 1e-9

    @LEDGER_SETTINGS
    @given(
        budget=st.floats(0.0, 100.0, allow_nan=False),
        spend=st.floats(0.0, 100.0, allow_nan=False),
    )
    def test_can_explore_is_consistent_with_remaining(self, budget, spend):
        ledger = RegretLedger(budget)
        assert ledger.can_explore(spend) == (spend <= ledger.budget_remaining)

    def test_charges_reject_garbage(self):
        ledger = RegretLedger(10.0)
        for bad in (float("nan"), float("-inf"), -0.5):
            with pytest.raises(LearningError):
                ledger.charge_exploit(bad)
