"""SLO budgets and burn rates (repro.obs.slo)."""

from __future__ import annotations

import pytest

from repro.exceptions import ServiceError
from repro.obs import SLOPolicy, SLOTracker
from repro.service.metrics import MetricsRegistry


def make_tracker(**policy_overrides) -> SLOTracker:
    policy = SLOPolicy(**policy_overrides)
    return SLOTracker(MetricsRegistry(), policy)


class TestPolicy:
    def test_allowances_complement_objectives(self):
        policy = SLOPolicy(latency_objective=0.99, error_objective=0.999)
        assert policy.latency_allowance == pytest.approx(0.01)
        assert policy.error_allowance == pytest.approx(0.001)

    def test_rejects_bad_values(self):
        with pytest.raises(ServiceError):
            SLOPolicy(latency_target_ms=0.0)
        with pytest.raises(ServiceError):
            SLOPolicy(latency_objective=1.0)
        with pytest.raises(ServiceError):
            SLOPolicy(error_objective=0.0)


class TestTracker:
    def test_idle_tracker_has_full_budget(self):
        snapshot = make_tracker().snapshot()
        assert snapshot["requests"] == 0
        assert snapshot["latency"]["burn_rate"] == 0.0
        assert snapshot["latency"]["budget_remaining"] == 1.0
        assert snapshot["errors"]["burn_rate"] == 0.0

    def test_burn_rate_one_at_exactly_the_allowance(self):
        # 1 violation in 100 requests against a 99% objective burns the
        # budget at exactly the sustainable rate.
        tracker = make_tracker(latency_target_ms=10.0, latency_objective=0.99)
        for index in range(100):
            tracker.record(20.0 if index == 0 else 1.0, ok=True)
        snapshot = tracker.snapshot()
        assert snapshot["latency"]["violations"] == 1
        assert snapshot["latency"]["burn_rate"] == pytest.approx(1.0)
        assert snapshot["latency"]["budget_remaining"] == pytest.approx(0.0)

    def test_errors_and_sheds_burn_the_error_budget(self):
        tracker = make_tracker(error_objective=0.9)
        tracker.record(1.0, ok=True)
        tracker.record(1.0, ok=False)
        tracker.record(1.0, ok=False, shed=True)
        snapshot = tracker.snapshot()
        assert snapshot["errors"]["violations"] == 2
        # 2 bad out of 3 against a 10% allowance.
        assert snapshot["errors"]["burn_rate"] == pytest.approx(
            (2 / 3) / 0.1, abs=1e-3
        )
        assert snapshot["errors"]["budget_remaining"] < 0  # budget blown

    def test_outcome_labels_split_sheds_from_errors(self):
        tracker = make_tracker()
        tracker.record(1.0, ok=False)
        tracker.record(1.0, ok=False, shed=True)
        tracker.record(1.0, ok=False, shed=True)
        registry = tracker._registry
        family = registry.labeled_counter("slo_bad_outcomes", "outcome")
        assert family.labels(outcome="error").value == 1
        assert family.labels(outcome="shed").value == 2

    def test_snapshot_refreshes_gauges(self):
        tracker = make_tracker(latency_target_ms=1.0)
        tracker.record(5.0, ok=True)
        tracker.snapshot()
        registry = tracker._registry
        assert registry.gauge("slo_latency_burn_rate").value > 0
        assert registry.gauge("slo_error_burn_rate").value == 0.0

    def test_snapshot_is_deterministic(self):
        def run() -> dict:
            tracker = make_tracker()
            for index in range(50):
                tracker.record(
                    float(index * 7 % 300), ok=index % 9 != 0, shed=index % 18 == 0
                )
            return tracker.snapshot()

        assert run() == run()
