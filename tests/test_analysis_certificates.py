"""Tests for Eq. 5 cost-bound certificates and the DF101 verifier rule."""

import numpy as np
import pytest

from repro.analysis import (
    CostCertificate,
    admissible_lower_bound,
    certificate_mutations,
    certify_plan,
    check_certificate,
)
from repro.core import (
    Attribute,
    ConjunctiveQuery,
    RangePredicate,
    RangeVector,
    Schema,
    VerdictLeaf,
    expected_cost,
)
from repro.planning import ExhaustivePlanner
from repro.probability import EmpiricalDistribution
from repro.verify import verify_plan
from repro.verify.mutations import canonical_conditional_plan


@pytest.fixture(scope="module")
def fixture():
    schema = Schema(
        (
            Attribute("pressure", domain_size=8, cost=10.0),
            Attribute("flow", domain_size=8, cost=4.0),
        )
    )
    query = ConjunctiveQuery(
        schema,
        (RangePredicate("pressure", 3, 6), RangePredicate("flow", 2, 7)),
    )
    rng = np.random.default_rng(29)
    data = np.column_stack(
        [rng.integers(1, 9, size=300), rng.integers(1, 9, size=300)]
    )
    distribution = EmpiricalDistribution(schema, data, smoothing=0.5)
    return schema, query, distribution


class TestCertifyPlan:
    def test_root_bound_equals_expected_cost(self, fixture):
        schema, query, distribution = fixture
        plan = canonical_conditional_plan(query)
        certificate = certify_plan(plan, distribution)
        assert certificate.root_bound == pytest.approx(
            expected_cost(plan, distribution), rel=1e-9
        )

    def test_covers_every_node(self, fixture):
        schema, query, distribution = fixture
        from repro.verify import iter_plan_paths

        plan = canonical_conditional_plan(query)
        certificate = certify_plan(plan, distribution)
        node_paths = {path for path, _node in iter_plan_paths(plan)}
        assert set(certificate.bounds) == node_paths

    def test_honest_certificate_is_clean(self, fixture):
        schema, query, distribution = fixture
        plan = canonical_conditional_plan(query)
        certificate = certify_plan(plan, distribution)
        assert check_certificate(plan, certificate, distribution, query=query) == []

    def test_verdict_leaf_certifies_at_zero(self, fixture):
        schema, query, distribution = fixture
        certificate = certify_plan(VerdictLeaf(True), distribution)
        assert certificate.root_bound == 0.0


class TestDF101Fires:
    @pytest.mark.parametrize(
        "name", ["inflated-bound", "phantom-node", "free-lunch-verdict"]
    )
    def test_mutation_fires(self, fixture, name):
        schema, query, distribution = fixture
        case = {c.name: c for c in certificate_mutations(query, distribution)}[name]
        findings = check_certificate(
            case.plan, case.certificate, distribution, query=query
        )
        assert any(f.code == "DF101" for f in findings), name

    def test_deflated_bound_fires(self, fixture):
        schema, query, distribution = fixture
        plan = canonical_conditional_plan(query)
        honest = certify_plan(plan, distribution)
        lying = CostCertificate(
            bounds={**honest.as_dict(), "root": honest.root_bound / 2.0},
            source="test",
        )
        findings = check_certificate(plan, lying, distribution, query=query)
        assert any(f.code == "DF101" and f.path == "root" for f in findings)

    def test_verify_plan_integration(self, fixture):
        schema, query, distribution = fixture
        case = {
            c.name: c for c in certificate_mutations(query, distribution)
        }["inflated-bound"]
        report = verify_plan(
            case.plan,
            schema,
            query=query,
            distribution=distribution,
            certificate=case.certificate,
        )
        assert not report.ok
        assert any(f.code == "DF101" for f in report.errors)

    def test_no_certificate_means_no_df101(self, fixture):
        schema, query, distribution = fixture
        plan = canonical_conditional_plan(query)
        report = verify_plan(plan, schema, query=query, distribution=distribution)
        assert report.ok


class TestAdmissibleFloor:
    def test_floor_is_cheapest_undetermined_attribute(self, fixture):
        schema, query, distribution = fixture
        full = RangeVector.full(schema)
        # Both predicates undetermined: cheapest relevant read is flow (4.0).
        assert admissible_lower_bound(query, schema, full) == 4.0

    def test_floor_zero_once_decided(self, fixture):
        schema, query, distribution = fixture
        full = RangeVector.full(schema)
        from repro.core import Range

        decided = full.with_range(0, Range(7, 8))
        # pressure in [7, 8] refutes the query: nothing more must be read.
        assert admissible_lower_bound(query, schema, decided) == 0.0

    def test_floor_zero_without_query(self, fixture):
        schema, query, distribution = fixture
        assert admissible_lower_bound(None, schema, RangeVector.full(schema)) == 0.0


class TestExhaustiveCertificate:
    def test_planner_exports_dp_certificate(self, fixture):
        schema, query, distribution = fixture
        result = ExhaustivePlanner(distribution).plan(query)
        assert result.certificate is not None
        report = verify_plan(
            result.plan,
            schema,
            query=query,
            distribution=distribution,
            claimed_cost=result.expected_cost,
            certificate=result.certificate,
        )
        assert report.ok
        assert not report.has("DF101")
