"""Unit and property tests for Range and RangeVector."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import Attribute, Range, RangeVector, Schema
from repro.exceptions import PlanningError


class TestRange:
    def test_length(self):
        assert len(Range(2, 5)) == 4
        assert len(Range(3, 3)) == 1

    def test_contains(self):
        interval = Range(2, 5)
        assert 2 in interval and 5 in interval
        assert 1 not in interval and 6 not in interval
        assert "2" not in interval

    def test_iteration(self):
        assert list(Range(1, 3)) == [1, 2, 3]

    def test_empty_rejected(self):
        with pytest.raises(PlanningError):
            Range(5, 2)

    def test_split_at(self):
        below, above = Range(1, 6).split_at(4)
        assert (below.low, below.high) == (1, 3)
        assert (above.low, above.high) == (4, 6)

    def test_split_at_boundary_values(self):
        below, above = Range(1, 2).split_at(2)
        assert len(below) == 1 and len(above) == 1

    def test_split_outside_rejected(self):
        with pytest.raises(PlanningError):
            Range(1, 6).split_at(1)  # below-empty split
        with pytest.raises(PlanningError):
            Range(1, 6).split_at(7)

    def test_intersects(self):
        assert Range(1, 3).intersects(Range(3, 5))
        assert not Range(1, 2).intersects(Range(3, 5))

    def test_is_subset_of(self):
        assert Range(2, 3).is_subset_of(Range(1, 5))
        assert not Range(2, 6).is_subset_of(Range(1, 5))

    def test_intersection(self):
        assert Range(1, 4).intersection(Range(3, 6)) == Range(3, 4)
        assert Range(1, 2).intersection(Range(4, 6)) is None

    @given(
        low=st.integers(1, 20),
        width=st.integers(0, 20),
        data=st.data(),
    )
    def test_split_partitions(self, low, width, data):
        """Splitting partitions the interval: disjoint halves covering it."""
        interval = Range(low, low + width)
        if len(interval) < 2:
            return
        split = data.draw(st.integers(interval.low + 1, interval.high))
        below, above = interval.split_at(split)
        assert len(below) + len(above) == len(interval)
        assert below.high + 1 == above.low
        assert not below.intersects(above)


class TestRangeVector:
    def schema(self) -> Schema:
        return Schema([Attribute("a", 4), Attribute("b", 3), Attribute("c", 2)])

    def test_full_spans_domains(self):
        ranges = RangeVector.full(self.schema())
        assert ranges.ranges == (Range(1, 4), Range(1, 3), Range(1, 2))

    def test_is_acquired_initially_false(self):
        ranges = RangeVector.full(self.schema())
        assert not any(ranges.is_acquired(i) for i in range(3))

    def test_split_marks_acquired(self):
        ranges = RangeVector.full(self.schema())
        below, above = ranges.split(0, 3)
        assert below.is_acquired(0) and above.is_acquired(0)
        assert not below.is_acquired(1)
        assert below[0] == Range(1, 2)
        assert above[0] == Range(3, 4)

    def test_with_range(self):
        ranges = RangeVector.full(self.schema())
        narrowed = ranges.with_range(1, Range(2, 2))
        assert narrowed[1] == Range(2, 2)
        assert ranges[1] == Range(1, 3)  # original untouched

    def test_equality_and_hash(self):
        schema = self.schema()
        first = RangeVector.full(schema)
        second = RangeVector.full(schema)
        assert first == second
        assert hash(first) == hash(second)
        assert first.split(0, 2)[0] != first

    def test_usable_as_dict_key(self):
        schema = self.schema()
        cache = {RangeVector.full(schema): "root"}
        assert cache[RangeVector.full(schema)] == "root"

    def test_split_candidates(self):
        ranges = RangeVector.full(self.schema())
        assert list(ranges.split_candidates(0)) == [2, 3, 4]
        narrowed = ranges.with_range(0, Range(2, 3))
        assert list(narrowed.split_candidates(0)) == [3]

    def test_contains_tuple(self):
        ranges = RangeVector.full(self.schema()).with_range(0, Range(2, 3))
        assert ranges.contains_tuple([2, 1, 1])
        assert not ranges.contains_tuple([4, 1, 1])

    def test_contains_tuple_arity_check(self):
        with pytest.raises(PlanningError):
            RangeVector.full(self.schema()).contains_tuple([1, 1])

    def test_range_exceeding_domain_rejected(self):
        with pytest.raises(PlanningError):
            RangeVector([Range(1, 5), Range(1, 3), Range(1, 2)], (4, 3, 2))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(PlanningError):
            RangeVector([Range(1, 4)], (4, 3))
