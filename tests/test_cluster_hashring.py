"""Consistent-hash ring: determinism, balance, and minimal disruption."""

from __future__ import annotations

import pytest

from repro.cluster.hashring import ConsistentHashRing, stable_hash
from repro.exceptions import ClusterError


def test_stable_hash_is_process_independent() -> None:
    # sha256-derived, not PYTHONHASHSEED-dependent: pinned values protect
    # cross-process routing agreement.
    assert stable_hash("") == 16406829232824261652
    assert stable_hash("abc") == 13436514500253700074
    assert stable_hash(42) == stable_hash("42")


def test_routing_is_deterministic() -> None:
    ring = ConsistentHashRing(range(4))
    other = ConsistentHashRing(range(4))
    keys = [f"fingerprint-{i}" for i in range(200)]
    assert [ring.node_for(k) for k in keys] == [other.node_for(k) for k in keys]


def test_every_shard_gets_traffic() -> None:
    ring = ConsistentHashRing(range(8), vnodes=64)
    keys = [f"digest-{i:04d}" for i in range(2000)]
    assignment = ring.assignment(keys)
    counts = {node: len(owned) for node, owned in assignment.items()}
    assert set(counts) == set(range(8))
    # 64 vnodes keeps the imbalance civilized on realistic key counts.
    assert min(counts.values()) >= len(keys) / 8 / 4


def test_removal_only_moves_the_dead_shards_keys() -> None:
    ring = ConsistentHashRing(range(4))
    keys = [f"digest-{i}" for i in range(500)]
    before = {k: ring.node_for(k) for k in keys}
    ring.remove(2)
    after = {k: ring.node_for(k) for k in keys}
    for key in keys:
        if before[key] != 2:
            assert after[key] == before[key]
        else:
            assert after[key] != 2


def test_add_restores_previous_ownership() -> None:
    ring = ConsistentHashRing(range(4))
    keys = [f"digest-{i}" for i in range(300)]
    before = {k: ring.node_for(k) for k in keys}
    ring.remove(1)
    ring.add(1)
    assert {k: ring.node_for(k) for k in keys} == before


def test_empty_ring_rejects_lookup() -> None:
    ring = ConsistentHashRing([0])
    ring.remove(0)
    with pytest.raises(ClusterError):
        ring.node_for("anything")


def test_membership_changes_are_idempotent() -> None:
    ring = ConsistentHashRing(range(2))
    ring.add(1)  # no-op, not an error
    ring.remove(7)  # no-op, not an error
    assert ring.nodes == frozenset({0, 1})
    keys = [f"digest-{i}" for i in range(50)]
    fresh = ConsistentHashRing(range(2))
    assert [ring.node_for(k) for k in keys] == [
        fresh.node_for(k) for k in keys
    ]
