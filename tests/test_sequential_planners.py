"""Tests for the sequential planners: Naive, GreedySeq, OptSeq, CorrSeq."""

import itertools

import numpy as np
import pytest

from repro.core import (
    Attribute,
    ConjunctiveQuery,
    Range,
    RangePredicate,
    RangeVector,
    Schema,
    SequentialNode,
    VerdictLeaf,
    expected_cost,
)
from repro.exceptions import PlanningError
from repro.planning import (
    CorrSeqPlanner,
    GreedySequentialPlanner,
    NaivePlanner,
    OptimalSequentialPlanner,
)
from repro.planning.base import sequential_node_from_order
from repro.probability import EmpiricalDistribution


def anti_correlated_case():
    """Two expensive predicates whose rejection is concentrated in opposite
    halves of a cheap attribute's domain — the canonical case where
    correlation-aware ordering beats marginal-statistics ordering."""
    rng = np.random.default_rng(42)
    n = 4000
    regime = rng.integers(1, 3, n)
    # Predicate on a: holds rarely when regime=1; predicate on b: holds
    # rarely when regime=2; a is cheaper than b.
    a = np.where(regime == 1, rng.integers(1, 3, n), rng.integers(2, 4, n))
    b = np.where(regime == 2, rng.integers(1, 3, n), rng.integers(2, 4, n))
    schema = Schema(
        [
            Attribute("regime", 2, 1.0),
            Attribute("a", 3, 60.0),
            Attribute("b", 3, 100.0),
        ]
    )
    data = np.stack([regime, a, b], axis=1).astype(np.int64)
    query = ConjunctiveQuery(
        schema, [RangePredicate("a", 3, 3), RangePredicate("b", 3, 3)]
    )
    return schema, data, query


@pytest.fixture
def case():
    return anti_correlated_case()


class TestNaive:
    def test_orders_by_cost_per_rejection(self):
        """A cheap, highly-rejecting predicate must be evaluated first."""
        rng = np.random.default_rng(0)
        n = 1000
        schema = Schema([Attribute("x", 4, 10.0), Attribute("y", 4, 10.0)])
        x = rng.integers(1, 5, n)  # pred x in [1,1]: rejects 75%
        y = rng.integers(1, 3, n)  # pred y in [1,2]: rejects 0%
        data = np.stack([x, y], axis=1).astype(np.int64)
        dist = EmpiricalDistribution(schema, data)
        query = ConjunctiveQuery(
            schema, [RangePredicate("y", 1, 2), RangePredicate("x", 1, 1)]
        )
        result = NaivePlanner(dist).plan(query)
        assert isinstance(result.plan, SequentialNode)
        first = result.plan.steps[0]
        assert first.predicate.attribute == "x"

    def test_never_rejecting_predicate_goes_last(self):
        # y's predicate is undecidable from its range but never rejects in
        # the data, so its cost-per-rejection rank is infinite.
        schema = Schema([Attribute("x", 2, 1.0), Attribute("y", 3, 100.0)])
        data = np.array([[1, 1], [2, 2]], dtype=np.int64)
        dist = EmpiricalDistribution(schema, data)
        query = ConjunctiveQuery(
            schema, [RangePredicate("y", 1, 2), RangePredicate("x", 1, 1)]
        )
        plan = NaivePlanner(dist).plan(query).plan
        assert plan.steps[0].predicate.attribute == "x"
        assert plan.steps[1].predicate.attribute == "y"

    def test_resolved_subproblem_returns_leaf(self, case):
        schema, data, query = case
        dist = EmpiricalDistribution(schema, data)
        ranges = RangeVector.full(schema).with_range(1, Range(1, 2))  # a pred false
        cost, node = NaivePlanner(dist).plan_sequence(query, ranges)
        assert cost == 0.0
        assert node == VerdictLeaf(False)

    def test_reported_cost_is_honest(self, case):
        """Even though ordering ignores correlations, the reported expected
        cost uses the true conditional probabilities."""
        schema, data, query = case
        dist = EmpiricalDistribution(schema, data)
        result = NaivePlanner(dist).plan(query)
        assert result.expected_cost == pytest.approx(
            expected_cost(result.plan, dist), rel=1e-12
        )


class TestGreedySeq:
    def test_covers_all_predicates(self, case):
        schema, data, query = case
        dist = EmpiricalDistribution(schema, data)
        plan = GreedySequentialPlanner(dist).plan(query).plan
        attrs = [step.predicate.attribute for step in plan.steps]
        assert sorted(attrs) == ["a", "b"]

    def test_conditions_on_survivors(self):
        """GreedySeq must exploit inter-predicate correlation: after the
        first predicate passes, the second predicate's pass probability is
        recomputed conditioned on that."""
        rng = np.random.default_rng(5)
        n = 4000
        # p and q are near-duplicates; r is independent and rejects more
        # than p marginally but less than q|p.
        p = rng.integers(1, 3, n)
        q = np.where(rng.random(n) < 0.95, p, rng.integers(1, 3, n))
        r = (rng.random(n) < 0.55).astype(np.int64) + 1
        schema = Schema(
            [Attribute("p", 2, 10.0), Attribute("q", 2, 10.0), Attribute("r", 2, 10.0)]
        )
        data = np.stack([p, q, r], axis=1).astype(np.int64)
        dist = EmpiricalDistribution(schema, data)
        query = ConjunctiveQuery(
            schema,
            [
                RangePredicate("p", 2, 2),
                RangePredicate("q", 2, 2),
                RangePredicate("r", 2, 2),
            ],
        )
        greedy = GreedySequentialPlanner(dist).plan(query)
        naive = NaivePlanner(dist).plan(query)
        # q adds almost no rejection once p passed, so greedy defers it.
        greedy_order = [s.predicate.attribute for s in greedy.plan.steps]
        assert greedy_order.index("q") == 2
        assert greedy.expected_cost <= naive.expected_cost + 1e-9

    def test_free_attributes_first(self, case):
        """Inside a subproblem, an already-acquired attribute's predicate is
        free and should be evaluated before paid ones."""
        schema, data, query = case
        dist = EmpiricalDistribution(schema, data)
        ranges = RangeVector.full(schema).with_range(2, Range(2, 3))  # b acquired
        _cost, node = GreedySequentialPlanner(dist).plan_sequence(query, ranges)
        assert node.steps[0].predicate.attribute == "b"


class TestOptSeq:
    def test_matches_exhaustive_permutation_search(self, case):
        """OptSeq's DP must equal the best of all m! orders, costed by the
        same Equation 3 machinery."""
        schema, data, query = case
        dist = EmpiricalDistribution(schema, data)
        result = OptimalSequentialPlanner(dist).plan(query)

        full = RangeVector.full(schema)
        bindings = list(zip(query.predicates, query.attribute_indices))
        best = min(
            expected_cost(sequential_node_from_order(list(order)), dist, full)
            for order in itertools.permutations(bindings)
        )
        assert result.expected_cost == pytest.approx(best, rel=1e-12)

    def test_beats_or_ties_greedy_and_naive(self, case):
        schema, data, query = case
        dist = EmpiricalDistribution(schema, data)
        optimal = OptimalSequentialPlanner(dist).plan(query).expected_cost
        greedy = GreedySequentialPlanner(dist).plan(query).expected_cost
        naive = NaivePlanner(dist).plan(query).expected_cost
        assert optimal <= greedy + 1e-9
        assert optimal <= naive + 1e-9

    def test_three_predicate_optimality(self):
        rng = np.random.default_rng(9)
        n = 3000
        schema = Schema(
            [
                Attribute("u", 3, 5.0),
                Attribute("v", 3, 50.0),
                Attribute("w", 3, 20.0),
            ]
        )
        data = np.stack(
            [rng.integers(1, 4, n) for _ in range(3)], axis=1
        ).astype(np.int64)
        dist = EmpiricalDistribution(schema, data)
        query = ConjunctiveQuery(
            schema,
            [
                RangePredicate("u", 1, 2),
                RangePredicate("v", 2, 3),
                RangePredicate("w", 1, 1),
            ],
        )
        result = OptimalSequentialPlanner(dist).plan(query)
        full = RangeVector.full(schema)
        bindings = list(zip(query.predicates, query.attribute_indices))
        best = min(
            expected_cost(sequential_node_from_order(list(order)), dist, full)
            for order in itertools.permutations(bindings)
        )
        assert result.expected_cost == pytest.approx(best, rel=1e-12)

    def test_guard_against_large_queries(self):
        n_attrs = 20
        schema = Schema([Attribute(f"x{i}", 2, 1.0) for i in range(n_attrs)])
        data = np.ones((4, n_attrs), dtype=np.int64)
        dist = EmpiricalDistribution(schema, data)
        query = ConjunctiveQuery(
            schema, [RangePredicate(f"x{i}", 1, 1) for i in range(n_attrs)]
        )
        with pytest.raises(PlanningError, match="GreedySequentialPlanner"):
            OptimalSequentialPlanner(dist).plan(query)


class TestCorrSeq:
    def test_dispatches_to_optimal_for_small_queries(self, case):
        schema, data, query = case
        dist = EmpiricalDistribution(schema, data)
        corr = CorrSeqPlanner(dist, optimal_threshold=5).plan(query)
        optimal = OptimalSequentialPlanner(dist).plan(query)
        assert corr.expected_cost == pytest.approx(optimal.expected_cost)

    def test_dispatches_to_greedy_for_large_queries(self, case):
        schema, data, query = case
        dist = EmpiricalDistribution(schema, data)
        corr = CorrSeqPlanner(dist, optimal_threshold=1).plan(query)
        greedy = GreedySequentialPlanner(dist).plan(query)
        assert corr.expected_cost == pytest.approx(greedy.expected_cost)
