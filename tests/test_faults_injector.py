"""Unit tests for the fault model, retry policy, and FaultInjector.

Determinism is the load-bearing property: all randomness flows from the
single ``rng`` argument, zero-rate profiles never draw from it, and a
given (schedule, seed, data) triple replays the exact same fault
sequence.  The cost ledger must conserve — every charge lands in either
the base or the retry bucket, never both, never neither.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import Attribute, Schema
from repro.exceptions import AcquisitionError, AcquisitionFailure, FaultConfigError
from repro.execution import TupleSource
from repro.faults import (
    AttributeFaults,
    FaultInjector,
    FaultSchedule,
    RetryPolicy,
)
from repro.faults.policy import NO_RETRY


@pytest.fixture
def schema() -> Schema:
    return Schema(
        [
            Attribute("cheap", 4, 1.0),
            Attribute("mid", 4, 10.0),
            Attribute("dear", 4, 100.0),
        ]
    )


def make_injector(schema, schedule, seed=0, retry=None, values=(2, 3, 4)):
    return FaultInjector(
        TupleSource(schema, values),
        schedule,
        np.random.default_rng(seed),
        retry_policy=retry,
    )


class TestAttributeFaults:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(FaultConfigError):
            AttributeFaults(drop_rate=-0.1)
        with pytest.raises(FaultConfigError):
            AttributeFaults(timeout_rate=1.5)

    def test_rates_must_sum_to_at_most_one(self):
        with pytest.raises(FaultConfigError):
            AttributeFaults(drop_rate=0.6, stuck_rate=0.6)
        AttributeFaults(drop_rate=0.5, stuck_rate=0.5)  # exactly 1 is fine

    def test_structural_knobs_validated(self):
        with pytest.raises(FaultConfigError):
            AttributeFaults(outage_length=0)
        with pytest.raises(FaultConfigError):
            AttributeFaults(noise_scale=0)

    def test_is_zero_and_failure_rate(self):
        assert AttributeFaults().is_zero
        profile = AttributeFaults(drop_rate=0.1, timeout_rate=0.2, stuck_rate=0.3)
        assert not profile.is_zero
        assert profile.failure_rate == pytest.approx(0.3)

    def test_dict_round_trip_keeps_only_non_defaults(self):
        profile = AttributeFaults(drop_rate=0.25, outage_length=7)
        payload = profile.as_dict()
        assert payload == {"drop_rate": 0.25, "outage_length": 7}
        assert AttributeFaults.from_dict(payload) == profile

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(FaultConfigError, match="unknown fault fields"):
            AttributeFaults.from_dict({"drop_rate": 0.1, "jitter": 0.5})


class TestFaultSchedule:
    def test_zero_schedule_is_zero(self):
        assert FaultSchedule.zero().is_zero
        assert FaultSchedule(
            profiles={0: AttributeFaults(), 1: AttributeFaults()}
        ).is_zero

    def test_uniform_covers_every_attribute(self, schema):
        schedule = FaultSchedule.uniform(schema, drop_rate=0.1)
        assert set(schedule) == {0, 1, 2}
        assert not schedule.is_zero

    def test_validated_rejects_out_of_schema_indices(self, schema):
        schedule = FaultSchedule(profiles={5: AttributeFaults(drop_rate=0.1)})
        with pytest.raises(FaultConfigError, match="only 3 attributes"):
            schedule.validated(schema)

    def test_keys_must_be_indices(self):
        with pytest.raises(FaultConfigError):
            FaultSchedule(profiles={-1: AttributeFaults()})

    def test_json_round_trip_by_attribute_name(self, schema):
        schedule = FaultSchedule(
            profiles={
                0: AttributeFaults(drop_rate=0.2),
                2: AttributeFaults(stuck_rate=0.1, noise_rate=0.1, noise_scale=2),
            }
        )
        payload = schedule.to_dict(schema)
        assert set(payload["faults"]) == {"cheap", "dear"}
        assert FaultSchedule.from_dict(payload, schema) == schedule

    def test_from_dict_rejects_unknown_attribute(self, schema):
        with pytest.raises(FaultConfigError, match="unknown attribute"):
            FaultSchedule.from_dict(
                {"faults": {"nope": {"drop_rate": 0.1}}}, schema
            )

    def test_from_dict_requires_faults_object(self, schema):
        with pytest.raises(FaultConfigError, match='"faults"'):
            FaultSchedule.from_dict({"drop_rate": 0.1}, schema)


class TestRetryPolicy:
    def test_backoff_is_one_based_exponential(self):
        policy = RetryPolicy(max_retries=3, backoff_base=3.0)
        assert policy.backoff_multiplier(1) == 1.0
        assert policy.backoff_multiplier(2) == 3.0
        assert policy.backoff_multiplier(3) == 9.0
        with pytest.raises(FaultConfigError):
            policy.backoff_multiplier(0)

    def test_budget_lookup_falls_back_to_default(self):
        policy = RetryPolicy(attribute_budgets={1: 2}, default_budget=5)
        assert policy.budget_for(1) == 2
        assert policy.budget_for(0) == 5
        assert RetryPolicy().budget_for(0) is None

    def test_validation(self):
        with pytest.raises(FaultConfigError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(FaultConfigError):
            RetryPolicy(backoff_base=0.5)
        with pytest.raises(FaultConfigError):
            RetryPolicy(attribute_budgets={0: -1})

    def test_no_retry_constant(self):
        assert NO_RETRY.max_retries == 0


class TestInjectorSeeding:
    def test_requires_a_numpy_generator(self, schema):
        source = TupleSource(schema, [1, 1, 1])
        with pytest.raises(AcquisitionError, match="numpy Generator"):
            FaultInjector(source, FaultSchedule.zero(), rng=42)

    def test_same_seed_same_fault_sequence(self, schema):
        schedule = FaultSchedule.uniform(
            schema, drop_rate=0.3, stuck_rate=0.2, noise_rate=0.2
        )
        outcomes = []
        for _ in range(2):
            injector = make_injector(schema, schedule, seed=7, retry=NO_RETRY)
            trail = []
            for _row in range(40):
                for index in range(3):
                    try:
                        trail.append(injector.acquire(index))
                    except AcquisitionFailure as failure:
                        trail.append(failure.kind)
                injector.rebind(TupleSource(schema, [2, 3, 4]))
            outcomes.append((tuple(trail), injector.failures_by_kind))
        assert outcomes[0] == outcomes[1]

    def test_zero_profiles_never_draw_from_rng(self, schema):
        rng = np.random.default_rng(11)
        injector = FaultInjector(
            TupleSource(schema, [2, 3, 4]), FaultSchedule.zero(), rng
        )
        for index in range(3):
            injector.acquire(index)
        untouched = np.random.default_rng(11)
        assert rng.random() == untouched.random()


class TestInjectorFaultModes:
    def test_drop_fails_after_charging(self, schema):
        schedule = FaultSchedule(profiles={2: AttributeFaults(drop_rate=1.0)})
        injector = make_injector(schema, schedule)
        with pytest.raises(AcquisitionFailure) as excinfo:
            injector.acquire(2)
        assert excinfo.value.kind == "drop"
        assert excinfo.value.attribute_index == 2
        assert injector.total_cost == 100.0  # a failed listen is not free
        assert injector.failures_by_kind == {"drop": 1}

    def test_outage_bursts_span_tuples(self, schema):
        schedule = FaultSchedule(
            profiles={0: AttributeFaults(outage_rate=1.0, outage_length=3)}
        )
        injector = make_injector(schema, schedule)
        kinds = []
        for _ in range(4):
            with pytest.raises(AcquisitionFailure) as excinfo:
                injector.acquire(0)
            kinds.append(excinfo.value.kind)
            injector.rebind(TupleSource(schema, [2, 3, 4]))
        # Attempt 1 starts the burst; 2 and 3 ride it; 4 starts a new one.
        assert kinds == ["outage"] * 4
        assert injector.failures_by_kind == {"outage": 4}

    def test_stuck_returns_last_delivered_value(self, schema):
        schedule = FaultSchedule(profiles={1: AttributeFaults(stuck_rate=1.0)})
        injector = make_injector(schema, schedule, values=(1, 4, 1))
        # No prior delivery: the first stuck read falls back to the truth.
        assert injector.acquire(1) == 4
        injector.rebind(TupleSource(schema, [1, 2, 1]))
        # The sensor is stuck at 4 even though the true value moved to 2.
        assert injector.acquire(1) == 4
        assert injector.corruptions_by_kind == {"stuck": 1}

    def test_noise_stays_in_domain(self, schema):
        schedule = FaultSchedule(
            profiles={0: AttributeFaults(noise_rate=1.0, noise_scale=3)}
        )
        injector = make_injector(schema, schedule, seed=3, values=(1, 1, 1))
        seen = set()
        for _ in range(60):
            seen.add(injector.acquire(0))
            injector.rebind(TupleSource(schema, [1, 1, 1]))
        assert seen <= {1, 2, 3, 4}
        assert len(seen) > 1

    def test_cache_serves_repeat_reads_without_new_attempts(self, schema):
        schedule = FaultSchedule.uniform(schema, drop_rate=0.5)
        injector = make_injector(schema, schedule, seed=1, retry=RetryPolicy())
        value = injector.acquire(0)
        attempts = injector.attempts
        assert injector.acquire(0) == value
        assert injector.attempts == attempts


class TestRetryLedger:
    def test_retries_charge_backoff_into_retry_cost(self, schema):
        # Fail exactly twice, then succeed: force it with a rigged profile.
        schedule = FaultSchedule(profiles={2: AttributeFaults(drop_rate=0.5)})
        retry = RetryPolicy(max_retries=10, backoff_base=2.0)
        injector = make_injector(schema, schedule, seed=5, retry=retry)
        injector.acquire(2)
        retries = injector.retries_total
        assert injector.base_cost == 100.0
        expected_retry = sum(100.0 * 2.0**k for k in range(retries))
        assert injector.retry_cost == pytest.approx(expected_retry)
        assert injector.total_cost == pytest.approx(
            injector.base_cost + injector.retry_cost
        )

    def test_run_ledger_conserves_across_rebinds(self, schema):
        schedule = FaultSchedule.uniform(schema, drop_rate=0.3)
        injector = make_injector(schema, schedule, seed=9, retry=RetryPolicy())
        total = 0.0
        for _ in range(50):
            for index in range(3):
                try:
                    injector.acquire(index)
                except AcquisitionFailure:
                    pass
            total += injector.total_cost
            injector.rebind(TupleSource(schema, [2, 3, 4]))
        total += injector.total_cost
        assert math.isclose(
            total, injector.run_base_cost + injector.run_retry_cost
        )

    def test_budget_exhausts_run_wide(self, schema):
        schedule = FaultSchedule(profiles={0: AttributeFaults(drop_rate=1.0)})
        retry = RetryPolicy(max_retries=5, attribute_budgets={0: 3})
        injector = make_injector(schema, schedule, retry=retry)
        with pytest.raises(AcquisitionFailure):
            injector.acquire(0)
        assert injector.retries_total == 3  # budget, not max_retries, binds
        injector.rebind(TupleSource(schema, [2, 3, 4]))
        with pytest.raises(AcquisitionFailure):
            injector.acquire(0)
        assert injector.retries_total == 3  # spent: no retries left this run

    def test_no_retry_fails_immediately(self, schema):
        schedule = FaultSchedule(profiles={0: AttributeFaults(drop_rate=1.0)})
        injector = make_injector(schema, schedule, retry=NO_RETRY)
        with pytest.raises(AcquisitionFailure):
            injector.acquire(0)
        assert injector.retries_total == 0
        assert injector.retry_cost == 0.0

    def test_rebind_rejects_foreign_schema(self, schema):
        other = Schema([Attribute("x", 2, 1.0)])
        injector = make_injector(schema, FaultSchedule.zero())
        with pytest.raises(AcquisitionError, match="schema"):
            injector.rebind(TupleSource(other, [1]))
