"""Unit and property tests for predicates and truth-under-range logic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import NotRangePredicate, Range, RangePredicate, Truth
from repro.exceptions import QueryError


class TestRangePredicate:
    def test_satisfied_by(self):
        predicate = RangePredicate("x", 3, 6)
        assert predicate.satisfied_by(3)
        assert predicate.satisfied_by(6)
        assert not predicate.satisfied_by(2)
        assert not predicate.satisfied_by(7)

    def test_truth_under_subset_is_true(self):
        predicate = RangePredicate("x", 3, 6)
        assert predicate.truth_under(Range(4, 5)) is Truth.TRUE
        assert predicate.truth_under(Range(3, 6)) is Truth.TRUE

    def test_truth_under_disjoint_is_false(self):
        predicate = RangePredicate("x", 3, 6)
        assert predicate.truth_under(Range(1, 2)) is Truth.FALSE
        assert predicate.truth_under(Range(7, 9)) is Truth.FALSE

    def test_truth_under_overlap_is_undetermined(self):
        predicate = RangePredicate("x", 3, 6)
        assert predicate.truth_under(Range(1, 4)) is Truth.UNDETERMINED
        assert predicate.truth_under(Range(5, 9)) is Truth.UNDETERMINED
        assert predicate.truth_under(Range(1, 9)) is Truth.UNDETERMINED

    def test_empty_range_rejected(self):
        with pytest.raises(QueryError):
            RangePredicate("x", 5, 3)

    def test_describe(self):
        assert RangePredicate("temp", 2, 8).describe() == "2 <= temp <= 8"
        assert str(RangePredicate("temp", 2, 8)) == "2 <= temp <= 8"


class TestNotRangePredicate:
    def test_satisfied_by(self):
        predicate = NotRangePredicate("x", 3, 6)
        assert not predicate.satisfied_by(4)
        assert predicate.satisfied_by(2)
        assert predicate.satisfied_by(7)

    def test_truth_under_mirrors_range(self):
        predicate = NotRangePredicate("x", 3, 6)
        assert predicate.truth_under(Range(4, 5)) is Truth.FALSE
        assert predicate.truth_under(Range(1, 2)) is Truth.TRUE
        assert predicate.truth_under(Range(2, 4)) is Truth.UNDETERMINED

    def test_describe(self):
        assert NotRangePredicate("h", 1, 4).describe() == "not(1 <= h <= 4)"


@given(
    pred_low=st.integers(1, 10),
    pred_width=st.integers(0, 10),
    range_low=st.integers(1, 10),
    range_width=st.integers(0, 10),
    negated=st.booleans(),
)
def test_truth_under_consistent_with_pointwise(
    pred_low, pred_width, range_low, range_width, negated
):
    """truth_under is exactly the three-valued summary of point evaluation.

    TRUE iff every value in the range satisfies the predicate, FALSE iff
    none does, UNDETERMINED otherwise — for both predicate polarities.
    """
    cls = NotRangePredicate if negated else RangePredicate
    predicate = cls("x", pred_low, pred_low + pred_width)
    interval = Range(range_low, range_low + range_width)
    outcomes = {predicate.satisfied_by(value) for value in interval}
    expected = (
        Truth.TRUE
        if outcomes == {True}
        else Truth.FALSE
        if outcomes == {False}
        else Truth.UNDETERMINED
    )
    assert predicate.truth_under(interval) is expected
