"""Tests for disjunctions and parentheses in the query language."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import And, Attribute, BooleanQuery, ConjunctiveQuery, Leaf, Or, Schema
from repro.engine import AcquisitionalEngine, parse_query
from repro.exceptions import QueryError


@pytest.fixture
def schema() -> Schema:
    return Schema(
        [
            Attribute("hour", 8, 1.0),
            Attribute("temp", 8, 100.0),
            Attribute("light", 8, 100.0),
        ]
    )


class TestDisjunctionParsing:
    def test_or_lowers_to_boolean_query(self, schema):
        parsed = parse_query("SELECT * WHERE temp >= 6 OR light <= 2", schema)
        assert not parsed.is_conjunctive
        assert isinstance(parsed.query, BooleanQuery)
        assert isinstance(parsed.query.formula, Or)

    def test_pure_conjunction_stays_conjunctive(self, schema):
        parsed = parse_query(
            "SELECT * WHERE temp >= 6 AND light <= 2", schema
        )
        assert parsed.is_conjunctive
        assert isinstance(parsed.query, ConjunctiveQuery)

    def test_parenthesized_conjunction_stays_conjunctive(self, schema):
        parsed = parse_query(
            "SELECT * WHERE (temp >= 6 AND light <= 2)", schema
        )
        assert parsed.is_conjunctive

    def test_and_binds_tighter_than_or(self, schema):
        parsed = parse_query(
            "SELECT * WHERE temp >= 6 AND light >= 6 OR hour <= 2", schema
        )
        formula = parsed.query.formula
        assert isinstance(formula, Or)
        assert isinstance(formula.children[0], And)
        assert isinstance(formula.children[1], Leaf)

    def test_parentheses_override_precedence(self, schema):
        parsed = parse_query(
            "SELECT * WHERE temp >= 6 AND (light >= 6 OR hour <= 2)", schema
        )
        formula = parsed.query.formula
        assert isinstance(formula, And)
        assert isinstance(formula.children[1], Or)

    def test_nested_parentheses(self, schema):
        parsed = parse_query(
            "SELECT * WHERE ((temp >= 6 OR temp <= 2) AND light >= 4)", schema
        )
        assert isinstance(parsed.query, BooleanQuery)

    def test_duplicate_attribute_allowed_in_disjunction(self, schema):
        parsed = parse_query(
            "SELECT * WHERE temp <= 2 OR temp >= 7", schema
        )
        assert parsed.query.evaluate([1, 1, 1])
        assert parsed.query.evaluate([1, 8, 1])
        assert not parsed.query.evaluate([1, 5, 1])

    def test_unbalanced_parenthesis_rejected(self, schema):
        with pytest.raises(QueryError):
            parse_query("SELECT * WHERE (temp >= 6", schema)
        with pytest.raises(QueryError):
            parse_query("SELECT * WHERE temp >= 6)", schema)

    def test_semantics_match_formula_evaluation(self, schema):
        parsed = parse_query(
            "SELECT * WHERE (temp >= 6 AND light >= 6) OR hour <= 2", schema
        )
        rng = np.random.default_rng(0)
        for _trial in range(100):
            row = [int(rng.integers(1, 9)) for _ in range(3)]
            expected = (row[1] >= 6 and row[2] >= 6) or row[0] <= 2
            assert parsed.query.evaluate(row) == expected


class TestEngineBooleanPath:
    def make_engine(self, schema) -> tuple[AcquisitionalEngine, np.ndarray]:
        rng = np.random.default_rng(1)
        n = 4000
        hour = rng.integers(1, 9, n)
        day = hour >= 5
        temp = np.where(day, rng.integers(5, 9, n), rng.integers(1, 5, n))
        light = np.where(day, rng.integers(5, 9, n), rng.integers(1, 5, n))
        data = np.stack([hour, temp, light], axis=1).astype(np.int64)
        return AcquisitionalEngine(schema, data[:2000]), data[2000:]

    def test_execute_disjunction_returns_correct_rows(self, schema):
        engine, live = self.make_engine(schema)
        text = "SELECT hour WHERE (temp >= 6 AND light >= 6) OR temp <= 1"
        result = engine.execute(text, live)
        query = parse_query(text, schema).query
        expected = sum(query.evaluate(row) for row in live)
        assert len(result.rows) == expected

    def test_disjunction_uses_exhaustive_planner(self, schema):
        engine, _live = self.make_engine(schema)
        prepared = engine.prepare("SELECT * WHERE temp >= 7 OR light <= 2")
        assert prepared.planner == "exhaustive"

    def test_conjunction_uses_heuristic_planner(self, schema):
        engine, _live = self.make_engine(schema)
        prepared = engine.prepare("SELECT * WHERE temp >= 7 AND light <= 2")
        assert prepared.planner.startswith("heuristic")

    def test_explain_boolean_query(self, schema):
        engine, _live = self.make_engine(schema)
        text = engine.explain("SELECT * WHERE temp >= 7 OR light <= 2")
        assert "OR" in text
        assert "exhaustive" in text


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(seed=st.integers(0, 10_000))
def test_random_formula_semantics_property(schema, seed):
    """Randomly-generated query text parses to a query whose evaluation
    matches an independently-computed reference on random tuples."""
    rng = np.random.default_rng(seed)
    attributes = ["hour", "temp", "light"]

    def make_condition():
        name = str(rng.choice(attributes))
        low = int(rng.integers(1, 8))
        high = int(rng.integers(low, 9))
        negated = bool(rng.random() < 0.25)
        prefix = "NOT " if negated else ""
        text = f"{prefix}{name} BETWEEN {low} AND {high}"
        index = attributes.index(name)

        def reference(row):
            inside = low <= row[index] <= high
            return not inside if negated else inside

        return text, reference

    (text_a, ref_a), (text_b, ref_b), (text_c, ref_c) = (
        make_condition() for _ in range(3)
    )
    shape = int(rng.integers(0, 3))
    if shape == 0:
        where = f"({text_a} AND {text_b}) OR {text_c}"
        reference = lambda row: (ref_a(row) and ref_b(row)) or ref_c(row)
    elif shape == 1:
        where = f"{text_a} AND ({text_b} OR {text_c})"
        reference = lambda row: ref_a(row) and (ref_b(row) or ref_c(row))
    else:
        where = f"{text_a} OR {text_b} OR {text_c}"
        reference = lambda row: ref_a(row) or ref_b(row) or ref_c(row)

    parsed = parse_query(f"SELECT * WHERE {where}", schema)
    for _trial in range(30):
        row = [int(rng.integers(1, 9)) for _ in range(3)]
        assert parsed.query.evaluate(row) == reference(row), where
