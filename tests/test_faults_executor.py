"""FaultTolerantExecutor: degradation semantics and the soundness contract.

The contract under every mode: a ``True`` verdict implies the query
holds on the values the executor actually observed.  ABSTAIN withdraws
the tuple, SKIP falls back to evaluating the query's own predicates,
IMPUTE follows the training marginal through a failed conditioning read
and re-confirms positives on real values.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Attribute,
    ConditionNode,
    ConjunctiveQuery,
    RangePredicate,
    Schema,
    SequentialNode,
    SequentialStep,
    VerdictLeaf,
)
from repro.exceptions import FaultConfigError
from repro.faults import (
    AttributeFaults,
    DegradationMode,
    FaultPolicy,
    FaultSchedule,
    FaultTolerantExecutor,
)
from repro.faults.policy import NO_RETRY, RetryPolicy
from repro.probability import EmpiricalDistribution


@pytest.fixture
def schema() -> Schema:
    return Schema(
        [
            Attribute("mode", 2, 1.0),
            Attribute("a", 4, 50.0),
            Attribute("b", 4, 50.0),
        ]
    )


@pytest.fixture
def query(schema) -> ConjunctiveQuery:
    return ConjunctiveQuery(
        schema, [RangePredicate("a", 3, 4), RangePredicate("b", 1, 2)]
    )


def _steps(query) -> tuple[SequentialStep, ...]:
    return tuple(
        SequentialStep(predicate=predicate, attribute_index=index)
        for predicate, index in zip(query.predicates, query.attribute_indices)
    )


@pytest.fixture
def sequential_plan(query) -> SequentialNode:
    return SequentialNode(steps=_steps(query))


@pytest.fixture
def conditional_plan(query) -> ConditionNode:
    """Condition on the non-query attribute ``mode``, then test a and b."""
    return ConditionNode(
        attribute="mode",
        attribute_index=0,
        split_value=2,
        below=SequentialNode(steps=_steps(query)),
        above=SequentialNode(steps=_steps(query)),
    )


def drop_all(*indices: int, length: int = 1) -> FaultSchedule:
    return FaultSchedule(
        profiles={i: AttributeFaults(drop_rate=1.0) for i in indices}
    )


def policy_for(mode: DegradationMode, **kwargs) -> FaultPolicy:
    return FaultPolicy(retry=NO_RETRY, degradation=mode, **kwargs)


class TestConstruction:
    def test_skip_requires_query(self, schema):
        with pytest.raises(FaultConfigError, match="needs the original query"):
            FaultTolerantExecutor(schema, policy_for(DegradationMode.SKIP))

    def test_impute_requires_query(self, schema):
        with pytest.raises(FaultConfigError):
            FaultTolerantExecutor(schema, policy_for(DegradationMode.IMPUTE))

    def test_query_schema_must_match(self, schema, query):
        other = Schema([Attribute(a.name, a.domain_size, a.cost) for a in schema])
        with pytest.raises(FaultConfigError, match="schema differs"):
            FaultTolerantExecutor(
                other, policy_for(DegradationMode.SKIP), query=query
            )


class TestAbstain:
    def test_failed_read_abstains(self, schema, query, sequential_plan):
        executor = FaultTolerantExecutor(
            schema, policy_for(DegradationMode.ABSTAIN), query=query
        )
        outcome = executor.run(
            sequential_plan,
            np.array([[1, 3, 1]]),
            drop_all(1),
            np.random.default_rng(0),
        )
        result = outcome.results[0]
        assert result.verdict is None
        assert result.abstained
        assert result.degraded
        assert 1 in result.failed
        assert outcome.abstained == (0,)
        assert outcome.tuples_abstained == 1

    def test_fault_free_rows_unaffected(self, schema, query, sequential_plan):
        executor = FaultTolerantExecutor(
            schema, policy_for(DegradationMode.ABSTAIN), query=query
        )
        outcome = executor.run(
            sequential_plan,
            np.array([[1, 3, 1], [1, 1, 1]]),
            FaultSchedule.zero(),
            np.random.default_rng(0),
        )
        assert [r.verdict for r in outcome.results] == [True, False]
        assert outcome.tuples_degraded == 0


class TestSkip:
    def test_skip_evaluates_query_directly(self, schema, query, conditional_plan):
        # The conditioning attribute is dead, but both predicates are
        # readable: SKIP must still decide the tuple.
        executor = FaultTolerantExecutor(
            schema, policy_for(DegradationMode.SKIP), query=query
        )
        outcome = executor.run(
            conditional_plan,
            np.array([[1, 3, 1], [1, 1, 4]]),
            drop_all(0),
            np.random.default_rng(0),
        )
        assert [r.verdict for r in outcome.results] == [True, False]
        assert all(r.degraded for r in outcome.results)
        assert outcome.tuples_abstained == 0

    def test_one_false_predicate_decides_despite_failures(
        self, schema, query, sequential_plan
    ):
        # a is dead, but b=4 falsifies its predicate: False, not abstain.
        executor = FaultTolerantExecutor(
            schema, policy_for(DegradationMode.SKIP), query=query
        )
        outcome = executor.run(
            sequential_plan,
            np.array([[1, 3, 4]]),
            drop_all(1),
            np.random.default_rng(0),
        )
        assert outcome.results[0].verdict is False

    def test_unreadable_essential_attribute_abstains(
        self, schema, query, sequential_plan
    ):
        # a is dead and b passes its predicate: no sound verdict exists.
        executor = FaultTolerantExecutor(
            schema, policy_for(DegradationMode.SKIP), query=query
        )
        outcome = executor.run(
            sequential_plan,
            np.array([[1, 3, 1]]),
            drop_all(1),
            np.random.default_rng(0),
        )
        assert outcome.results[0].verdict is None


class TestImpute:
    @pytest.fixture
    def distribution(self, schema) -> EmpiricalDistribution:
        # mode is mostly 1 (below a split at 2), so imputation follows
        # the below branch.
        rows = [[1, 3, 1]] * 9 + [[2, 3, 1]]
        return EmpiricalDistribution(schema, np.array(rows))

    def test_imputes_conditioning_read(
        self, schema, query, conditional_plan, distribution
    ):
        executor = FaultTolerantExecutor(
            schema,
            policy_for(DegradationMode.IMPUTE),
            query=query,
            distribution=distribution,
        )
        outcome = executor.run(
            conditional_plan,
            np.array([[1, 3, 1]]),
            drop_all(0),
            np.random.default_rng(0),
        )
        result = outcome.results[0]
        assert result.verdict is True
        assert 0 in result.imputed
        assert result.degraded

    def test_imputed_positive_is_confirmed_on_real_values(
        self, schema, query, distribution
    ):
        # A plan that answers True for the whole below branch without
        # reading b would be unsound when the branch was guessed; the
        # confirm pass must re-derive the verdict from the query.
        plan = ConditionNode(
            attribute="mode",
            attribute_index=0,
            split_value=2,
            below=SequentialNode(steps=_steps(query)[:1]),
            above=VerdictLeaf(False),
        )
        executor = FaultTolerantExecutor(
            schema,
            policy_for(DegradationMode.IMPUTE),
            query=query,
            distribution=distribution,
        )
        outcome = executor.run(
            plan,
            np.array([[1, 3, 4]]),  # b=4 fails its predicate
            drop_all(0),
            np.random.default_rng(0),
        )
        assert outcome.results[0].verdict is False

    def test_unconfirmed_impute_can_emit_false_positive(
        self, schema, query, distribution
    ):
        # Same setup with confirm_positives off: the guessed branch's
        # True escapes.  This is exactly what verifier rule FT001 flags.
        plan = ConditionNode(
            attribute="mode",
            attribute_index=0,
            split_value=2,
            below=SequentialNode(steps=_steps(query)[:1]),
            above=VerdictLeaf(False),
        )
        executor = FaultTolerantExecutor(
            schema,
            policy_for(DegradationMode.IMPUTE, confirm_positives=False),
            query=query,
            distribution=distribution,
        )
        outcome = executor.run(
            plan,
            np.array([[1, 3, 4]]),
            drop_all(0),
            np.random.default_rng(0),
        )
        assert outcome.results[0].verdict is True  # unsound by design

    def test_without_distribution_falls_back_to_skip(
        self, schema, query, conditional_plan
    ):
        executor = FaultTolerantExecutor(
            schema, policy_for(DegradationMode.IMPUTE), query=query
        )
        outcome = executor.run(
            conditional_plan,
            np.array([[1, 1, 4]]),
            drop_all(0),
            np.random.default_rng(0),
        )
        assert outcome.results[0].verdict is False
        assert not outcome.results[0].imputed

    def test_failed_predicate_read_never_imputed(
        self, schema, query, sequential_plan, distribution
    ):
        # Imputing a *predicate* attribute would fabricate the verdict;
        # the executor must fall to skip semantics (here: abstain, since
        # the essential read stays dead and b passes).
        executor = FaultTolerantExecutor(
            schema,
            policy_for(DegradationMode.IMPUTE),
            query=query,
            distribution=distribution,
        )
        outcome = executor.run(
            sequential_plan,
            np.array([[1, 3, 1]]),
            drop_all(1),
            np.random.default_rng(0),
        )
        assert outcome.results[0].verdict is None
        assert not outcome.results[0].imputed


class TestLedger:
    def test_per_row_and_run_conservation(self, schema, query, conditional_plan):
        schedule = FaultSchedule.uniform(schema, drop_rate=0.3)
        executor = FaultTolerantExecutor(
            schema,
            FaultPolicy(
                retry=RetryPolicy(max_retries=2, backoff_base=2.0),
                degradation=DegradationMode.SKIP,
            ),
            query=query,
        )
        rng = np.random.default_rng(13)
        data = np.array([[1, 3, 1], [2, 1, 4], [1, 4, 2]] * 20)
        outcome = executor.run(conditional_plan, data, schedule, rng)
        for result in outcome.results:
            assert result.cost == pytest.approx(
                result.base_cost + result.retry_cost
            )
        assert outcome.total_cost == pytest.approx(
            outcome.base_cost + outcome.retry_cost
        )
        assert outcome.retries_total > 0
        assert outcome.retry_cost > 0.0

    def test_empty_dataset(self, schema, query, sequential_plan):
        executor = FaultTolerantExecutor(schema, query=query)
        outcome = executor.run(
            sequential_plan,
            np.empty((0, 3), dtype=np.int64),
            FaultSchedule.zero(),
            np.random.default_rng(0),
        )
        assert outcome.rows == 0
        assert outcome.total_cost == 0.0
