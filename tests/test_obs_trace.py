"""Tests for JSON-lines tracing (repro.obs.trace)."""

import io
import json
import time

from repro.obs import TRACE_PHASES, TraceEvent, Tracer


class TestTraceEvent:
    def test_as_dict_rounds_and_merges_fields(self):
        event = TraceEvent(
            ts=123.4567891234,
            span="s1",
            phase="plan",
            fingerprint="abcd",
            ms=1.23456,
            fields={"planner": "corr-seq"},
        )
        record = event.as_dict()
        assert record["ts"] == 123.456789
        assert record["ms"] == 1.235
        assert record["planner"] == "corr-seq"
        assert record["fingerprint"] == "abcd"

    def test_optional_parts_are_omitted(self):
        record = TraceEvent(ts=1.0, span="", phase="execute").as_dict()
        assert "fingerprint" not in record
        assert "ms" not in record

    def test_to_json_is_deterministic(self):
        event = TraceEvent(ts=1.0, span="s1", phase="plan", fields={"b": 1, "a": 2})
        assert event.to_json() == json.dumps(event.as_dict(), sort_keys=True)


class TestTracer:
    def test_emit_buffers_events_in_order(self):
        tracer = Tracer()
        for phase in TRACE_PHASES:
            tracer.emit(phase, span="s1")
        assert list(tracer.phases()) == list(TRACE_PHASES)
        assert tracer.emitted == len(TRACE_PHASES)

    def test_streams_one_json_line_per_event(self):
        stream = io.StringIO()
        tracer = Tracer(stream=stream)
        tracer.emit("plan", span="s1", fingerprint="ff", ms=2.0, planner="naive")
        tracer.emit("execute", span="s1", rows=3)
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert first["phase"] == "plan" and first["planner"] == "naive"
        assert second["phase"] == "execute" and second["rows"] == 3

    def test_capacity_bounds_buffer_but_not_stream(self):
        stream = io.StringIO()
        tracer = Tracer(stream=stream, capacity=4)
        for index in range(10):
            tracer.emit("execute", span=f"s{index}")
        assert len(tracer.events) == 4
        assert tracer.emitted == 10
        assert len(stream.getvalue().splitlines()) == 10
        # The buffer keeps the most recent events.
        assert tracer.events[-1].span == "s9"

    def test_new_span_ids_are_unique(self):
        tracer = Tracer()
        spans = {tracer.new_span() for _ in range(50)}
        assert len(spans) == 50

    def test_clear_empties_buffer_only(self):
        tracer = Tracer()
        tracer.emit("plan")
        tracer.clear()
        assert tracer.events == ()
        assert tracer.emitted == 1

    def test_injected_clock_makes_timestamps_deterministic(self):
        ticks = iter(range(100, 110))
        tracer = Tracer(clock=lambda: float(next(ticks)))
        first = tracer.emit("plan")
        second = tracer.emit("execute")
        assert first.ts == 100.0
        assert second.ts == 101.0

    def test_injected_clock_feeds_the_stream_too(self):
        stream = io.StringIO()
        tracer = Tracer(stream=stream, clock=lambda: 42.0)
        tracer.emit("plan", span="s1")
        record = json.loads(stream.getvalue())
        assert record["ts"] == 42.0

    def test_default_clock_is_wall_time(self):
        before = time.time()
        event = Tracer().emit("plan")
        assert before <= event.ts <= time.time()
