"""Tests for JSON-lines tracing (repro.obs.trace)."""

import io
import json
import time

from repro.obs import TRACE_PHASES, Span, TraceContext, TraceEvent, Tracer


class TestTraceEvent:
    def test_as_dict_rounds_and_merges_fields(self):
        event = TraceEvent(
            ts=123.4567891234,
            span="s1",
            phase="plan",
            fingerprint="abcd",
            ms=1.23456,
            fields={"planner": "corr-seq"},
        )
        record = event.as_dict()
        assert record["ts"] == 123.456789
        assert record["ms"] == 1.235
        assert record["planner"] == "corr-seq"
        assert record["fingerprint"] == "abcd"

    def test_optional_parts_are_omitted(self):
        record = TraceEvent(ts=1.0, span="", phase="execute").as_dict()
        assert "fingerprint" not in record
        assert "ms" not in record

    def test_to_json_is_deterministic(self):
        event = TraceEvent(ts=1.0, span="s1", phase="plan", fields={"b": 1, "a": 2})
        assert event.to_json() == json.dumps(event.as_dict(), sort_keys=True)


class TestTracer:
    def test_emit_buffers_events_in_order(self):
        tracer = Tracer()
        for phase in TRACE_PHASES:
            tracer.emit(phase, span="s1")
        assert list(tracer.phases()) == list(TRACE_PHASES)
        assert tracer.emitted == len(TRACE_PHASES)

    def test_streams_one_json_line_per_event(self):
        stream = io.StringIO()
        tracer = Tracer(stream=stream)
        tracer.emit("plan", span="s1", fingerprint="ff", ms=2.0, planner="naive")
        tracer.emit("execute", span="s1", rows=3)
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert first["phase"] == "plan" and first["planner"] == "naive"
        assert second["phase"] == "execute" and second["rows"] == 3

    def test_capacity_bounds_buffer_but_not_stream(self):
        stream = io.StringIO()
        tracer = Tracer(stream=stream, capacity=4)
        for index in range(10):
            tracer.emit("execute", span=f"s{index}")
        assert len(tracer.events) == 4
        assert tracer.emitted == 10
        assert len(stream.getvalue().splitlines()) == 10
        # The buffer keeps the most recent events.
        assert tracer.events[-1].span == "s9"

    def test_new_span_ids_are_unique(self):
        tracer = Tracer()
        spans = {tracer.new_span() for _ in range(50)}
        assert len(spans) == 50

    def test_clear_empties_buffer_only(self):
        tracer = Tracer()
        tracer.emit("plan")
        tracer.clear()
        assert tracer.events == ()
        assert tracer.emitted == 1

    def test_injected_clock_makes_timestamps_deterministic(self):
        ticks = iter(range(100, 110))
        tracer = Tracer(clock=lambda: float(next(ticks)))
        first = tracer.emit("plan")
        second = tracer.emit("execute")
        assert first.ts == 100.0
        assert second.ts == 101.0

    def test_injected_clock_feeds_the_stream_too(self):
        stream = io.StringIO()
        tracer = Tracer(stream=stream, clock=lambda: 42.0)
        tracer.emit("plan", span="s1")
        record = json.loads(stream.getvalue())
        assert record["ts"] == 42.0

    def test_default_clock_is_wall_time(self):
        before = time.time()
        event = Tracer().emit("plan")
        assert before <= event.ts <= time.time()

    def test_named_tracers_prefix_ids(self):
        # Two tracers with distinct names can never collide on span or
        # trace ids, even though both count from 1.
        front = Tracer(name="fd")
        shard = Tracer(name="shard0")
        assert front.new_span() == "fd-s1"
        assert shard.new_span() == "shard0-s1"
        assert front.new_trace() == "fd-t1"
        assert shard.new_trace() == "shard0-t1"
        # The unnamed tracer keeps the legacy un-prefixed format.
        assert Tracer().new_span() == "s1"


class TestTraceContext:
    def test_child_reparents_and_keeps_baggage(self):
        context = TraceContext(
            trace_id="fd-t1",
            parent_span="fd-s1",
            baggage=(("sent_ts", "3.5"),),
        )
        child = context.child("fd-s9")
        assert child.trace_id == "fd-t1"
        assert child.parent_span == "fd-s9"
        assert child.baggage == context.baggage

    def test_baggage_value_lookup(self):
        context = TraceContext(trace_id="t", baggage=(("sent_ts", "3.5"),))
        assert context.baggage_value("sent_ts") == "3.5"
        assert context.baggage_value("missing") == ""
        assert context.baggage_value("missing", "x") == "x"

    def test_with_baggage_appends(self):
        context = TraceContext(trace_id="t").with_baggage(k="v")
        assert context.baggage_value("k") == "v"


class TestSpans:
    def test_start_span_mints_trace_and_measures_duration(self):
        ticks = iter([10.0, 10.25, 10.25])
        tracer = Tracer(name="fd", clock=lambda: next(ticks))
        span = tracer.start_span("request", fingerprint="ff")
        assert isinstance(span, Span)
        assert span.trace_id == "fd-t1"
        assert span.span_id == "fd-s1"
        span.end(ok=True)
        (event,) = tracer.events
        assert event.phase == "request"
        assert event.ms == 250.0
        assert event.trace == "fd-t1"
        assert event.parent == ""
        assert event.fields["ok"] is True

    def test_end_is_idempotent(self):
        tracer = Tracer(clock=lambda: 1.0)
        span = tracer.start_span("request")
        span.end()
        span.end()
        assert span.closed
        assert tracer.emitted == 1

    def test_span_context_binds_children(self):
        # Events emitted inside a span() block inherit its coordinates;
        # explicit trace/parent still wins.
        tracer = Tracer(name="sh", clock=lambda: 1.0)
        with tracer.span("shard-execute", trace="fd-t1", parent="fd-s1"):
            tracer.emit("plan", ms=1.0)
        plan, execute = tracer.events
        assert execute.phase == "shard-execute"
        assert execute.trace == "fd-t1" and execute.parent == "fd-s1"
        assert plan.trace == "fd-t1"
        assert plan.parent == execute.span

    def test_collect_and_ingest_round_trip(self):
        source = Tracer(name="shard0", clock=lambda: 2.0)
        with source.collect() as exported:
            with source.span("shard-execute", trace="fd-t1", parent="fd-s1"):
                source.emit("plan", ms=0.5)
        records = [event.as_dict() for event in exported]
        sink = Tracer(clock=lambda: 9.0)
        assert sink.ingest(records) == 2
        # The merged events keep their original coordinates and fields.
        assert [event.as_dict() for event in sink.events] == records

    def test_ingest_streams_merged_lines(self):
        stream = io.StringIO()
        sink = Tracer(stream=stream, clock=lambda: 1.0)
        sink.ingest(
            [{"ts": 7.0, "span": "sh-s1", "phase": "shard-execute",
              "trace": "fd-t1", "parent": "fd-s1", "ms": 2.0, "shard": 3}]
        )
        record = json.loads(stream.getvalue())
        assert record["ts"] == 7.0
        assert record["shard"] == 3
        assert record["trace"] == "fd-t1"
