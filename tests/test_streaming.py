"""Tests for the adaptive streaming executor (Section 7 extension)."""

import numpy as np
import pytest

from repro.core import Attribute, ConjunctiveQuery, RangePredicate, Schema
from repro.exceptions import PlanningError
from repro.execution import AdaptiveStreamExecutor
from repro.planning import CorrSeqPlanner, GreedyConditionalPlanner


@pytest.fixture
def schema() -> Schema:
    return Schema(
        [
            Attribute("mode", 2, 1.0),
            Attribute("p", 2, 100.0),
            Attribute("q", 2, 100.0),
        ]
    )


@pytest.fixture
def query(schema) -> ConjunctiveQuery:
    return ConjunctiveQuery(
        schema, [RangePredicate("p", 2, 2), RangePredicate("q", 2, 2)]
    )


def factory(distribution):
    return GreedyConditionalPlanner(
        distribution, CorrSeqPlanner(distribution), max_splits=3
    )


def regime_stream(n: int, flipped: bool, seed: int) -> np.ndarray:
    """mode predicts which predicate fails; `flipped` swaps the mapping."""
    rng = np.random.default_rng(seed)
    mode = rng.integers(1, 3, n)
    fail_p = (mode == 1) != flipped
    p = np.where(fail_p, 1, rng.integers(1, 3, n))
    q = np.where(~fail_p, 1, rng.integers(1, 3, n))
    return np.stack([mode, p, q], axis=1).astype(np.int64)


class TestValidation:
    def test_rejects_tiny_window(self, schema, query):
        with pytest.raises(PlanningError):
            AdaptiveStreamExecutor(schema, query, factory, window=1)

    def test_rejects_bad_interval(self, schema, query):
        with pytest.raises(PlanningError):
            AdaptiveStreamExecutor(schema, query, factory, replan_interval=0)

    def test_rejects_bad_drift_threshold(self, schema, query):
        with pytest.raises(PlanningError):
            AdaptiveStreamExecutor(schema, query, factory, drift_threshold=0.9)

    def test_rejects_wrong_stream_shape(self, schema, query):
        executor = AdaptiveStreamExecutor(schema, query, factory)
        with pytest.raises(PlanningError):
            executor.process(np.ones((10, 2), dtype=np.int64))


class TestProcessing:
    def test_verdicts_always_correct(self, schema, query):
        stream = regime_stream(3000, flipped=False, seed=1)
        executor = AdaptiveStreamExecutor(
            schema, query, factory, window=800, replan_interval=500
        )
        report = executor.process(stream)
        truth = np.array([query.evaluate(row) for row in stream])
        assert np.array_equal(report.verdicts, truth)

    def test_replans_happen_on_schedule(self, schema, query):
        stream = regime_stream(2600, flipped=False, seed=2)
        executor = AdaptiveStreamExecutor(
            schema,
            query,
            factory,
            window=800,
            replan_interval=500,
            drift_threshold=None,
        )
        report = executor.process(stream)
        positions = [event.position for event in report.replans]
        assert positions[0] == 500  # first plan after warm-up
        assert all(b - a == 500 for a, b in zip(positions, positions[1:]))

    def test_cost_improves_after_first_plan(self, schema, query):
        stream = regime_stream(4000, flipped=False, seed=3)
        executor = AdaptiveStreamExecutor(
            schema, query, factory, window=1000, replan_interval=1000
        )
        report = executor.process(stream)
        warmup_mean = report.costs[:1000].mean()
        planned_mean = report.costs[2000:].mean()
        assert planned_mean < warmup_mean

    def test_adapts_to_distribution_shift(self, schema, query):
        """After the regime flips, replanning must recover low cost."""
        before = regime_stream(3000, flipped=False, seed=4)
        after = regime_stream(3000, flipped=True, seed=5)
        stream = np.vstack([before, after])
        executor = AdaptiveStreamExecutor(
            schema,
            query,
            factory,
            window=1500,
            replan_interval=750,
            drift_threshold=1.3,
        )
        report = executor.process(stream)
        truth = np.array([query.evaluate(row) for row in stream])
        assert np.array_equal(report.verdicts, truth)
        # Tail (well after the shift) should be about as cheap as the
        # settled pre-shift regime.
        settled_before = report.costs[2000:3000].mean()
        settled_after = report.costs[5000:6000].mean()
        assert settled_after <= settled_before * 1.25

    def test_drift_replans_recorded(self, schema, query):
        before = regime_stream(2000, flipped=False, seed=6)
        after = regime_stream(2000, flipped=True, seed=7)
        executor = AdaptiveStreamExecutor(
            schema,
            query,
            factory,
            window=1500,
            replan_interval=100_000,  # interval replans effectively off
            drift_threshold=1.2,
        )
        report = executor.process(np.vstack([before, after]))
        reasons = {event.reason for event in report.replans}
        assert "drift" in reasons
