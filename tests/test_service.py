"""Tests for the multi-query serving runtime and its metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Attribute, Schema
from repro.data import query_text, random_range_query, zipf_draws
from repro.engine import AcquisitionalEngine
from repro.exceptions import QueryError, ServiceError
from repro.service import (
    AcquisitionalService,
    Counter,
    LatencyHistogram,
    MetricsRegistry,
)


@pytest.fixture
def schema() -> Schema:
    return Schema(
        [
            Attribute("hour", 4, 1.0),
            Attribute("temp", 4, 100.0),
            Attribute("light", 4, 100.0),
        ]
    )


@pytest.fixture
def history(schema) -> np.ndarray:
    rng = np.random.default_rng(2)
    n = 4000
    hour = rng.integers(1, 5, n)
    day = hour >= 3
    temp = np.where(day, rng.integers(3, 5, n), rng.integers(1, 3, n))
    light = np.where(day, rng.integers(3, 5, n), rng.integers(1, 3, n))
    return np.stack([hour, temp, light], axis=1).astype(np.int64)


@pytest.fixture
def engine(schema, history) -> AcquisitionalEngine:
    return AcquisitionalEngine(schema, history)


@pytest.fixture
def service(engine) -> AcquisitionalService:
    return AcquisitionalService(engine, cache_capacity=16)


@pytest.fixture
def live(history) -> np.ndarray:
    return history[:300]


class TestServiceExecution:
    def test_matches_direct_engine_execution(self, engine, service, live):
        text = "SELECT temp WHERE temp >= 3 AND light <= 2"
        served = service.execute(text, live)
        direct = engine.execute(text, live)
        assert served.columns == direct.columns
        assert served.rows == direct.rows
        assert served.total_cost == pytest.approx(direct.total_cost)

    def test_equivalent_spellings_share_one_plan(self, service, live):
        service.execute("SELECT * WHERE temp >= 3 AND light <= 2", live)
        service.execute("SELECT * WHERE light <= 2 AND temp >= 3", live)
        service.execute("SELECT hour, temp, light WHERE light <= 2 AND temp >= 3", live)
        stats = service.stats()
        assert stats["counters"]["plans_built"] == 1
        assert stats["cache"]["hits"] == 2

    def test_cache_disabled_plans_every_request(self, engine, live):
        service = AcquisitionalService(engine, cache_enabled=False)
        text = "SELECT * WHERE temp >= 3 AND light <= 2"
        service.execute(text, live)
        service.execute(text, live)
        stats = service.stats()
        assert stats["counters"]["plans_built"] == 2
        assert stats["cache"]["hits"] == 0

    def test_stats_snapshot_shape(self, service, live):
        service.execute("SELECT * WHERE temp >= 3", live)
        stats = service.stats()
        assert stats["statistics_version"] == 1
        assert 0.0 <= stats["cache"]["hit_rate"] <= 1.0
        assert "evictions" in stats["cache"]
        for name in ("planning", "execution"):
            snapshot = stats["latency"][name]
            assert snapshot["count"] >= 1
            assert (
                snapshot["p50_ms_window"]
                <= snapshot["p99_ms_window"]
                <= snapshot["max_ms"]
            )


class TestBatching:
    def test_batch_matches_sequential_results(self, engine, service, live):
        requests = [
            ("SELECT * WHERE temp >= 3 AND light <= 2", live[:80]),
            ("SELECT * WHERE light <= 2 AND temp >= 3", live[80:200]),
            ("SELECT temp WHERE hour >= 2", live[:50]),
            ("SELECT * WHERE temp >= 3 AND light <= 2", live[200:280]),
        ]
        batched = service.execute_batch(requests)
        direct = [engine.execute(text, readings) for text, readings in requests]
        assert len(batched) == len(direct)
        for served, expected in zip(batched, direct):
            assert served.columns == expected.columns
            assert served.rows == expected.rows
            assert served.tuples_scanned == expected.tuples_scanned
            assert served.where_cost == pytest.approx(expected.where_cost)
            assert served.projection_cost == pytest.approx(
                expected.projection_cost
            )

    def test_same_fingerprint_requests_plan_once(self, service, live):
        requests = [
            ("SELECT * WHERE temp >= 3 AND light <= 2", live[:64]),
            ("SELECT * WHERE light <= 2 AND temp >= 3", live[64:128]),
            ("SELECT * WHERE temp >= 3 AND light <= 2", live[128:192]),
        ]
        service.execute_batch(requests)
        stats = service.stats()
        assert stats["counters"]["plans_built"] == 1
        assert stats["counters"]["batch_groups"] == 1
        assert stats["counters"]["batch_requests"] == 3

    def test_empty_batch(self, service):
        assert service.execute_batch([]) == []


class TestStreamExecutorGuards:
    def test_rejects_disjunctive_statements(self, service):
        with pytest.raises(QueryError):
            service.stream_executor("SELECT * WHERE temp >= 3 OR light >= 3")

    def test_rejects_caller_supplied_replan_hook(self, service):
        with pytest.raises(ServiceError):
            service.stream_executor(
                "SELECT * WHERE temp >= 3 AND light >= 3",
                on_replan=lambda event: None,
            )


class TestMetrics:
    def test_counter(self):
        counter = Counter()
        counter.increment()
        counter.increment(4)
        assert counter.value == 5
        with pytest.raises(ServiceError):
            counter.increment(-1)

    def test_histogram_percentiles(self):
        histogram = LatencyHistogram()
        for value in range(1, 101):
            histogram.observe(value / 1000.0)
        assert histogram.count == 100
        assert histogram.percentile(50) == pytest.approx(0.0505, abs=1e-3)
        snapshot = histogram.snapshot()
        assert snapshot["max_ms"] == pytest.approx(100.0)
        assert snapshot["p99_ms_window"] <= snapshot["max_ms"]
        assert snapshot["window"] == 100
        with pytest.raises(ServiceError):
            histogram.observe(-0.1)

    def test_empty_histogram_snapshot(self):
        snapshot = LatencyHistogram().snapshot()
        assert snapshot["count"] == 0
        assert snapshot["p50_ms_window"] == 0.0
        assert snapshot["window"] == 0

    def test_registry_reuses_instruments(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("b") is registry.histogram("b")
        registry.counter("a").increment()
        assert registry.snapshot()["counters"]["a"] == 1


class TestWorkloadHelpers:
    def test_query_text_round_trips_through_the_parser(self, schema, service, live):
        query = random_range_query(schema, ["temp", "light"], seed=3)
        text = query_text(query)
        result = service.execute(text, live)
        expected = np.array(
            [query.evaluate(row) for row in live], dtype=bool
        ).sum()
        assert len(result.rows) == int(expected)

    def test_zipf_draws_are_skewed(self):
        draws = zipf_draws(5000, 20, skew=1.5, seed=0)
        assert draws.min() >= 0 and draws.max() < 20
        counts = np.bincount(draws, minlength=20)
        assert counts[0] > counts[10] > 0

    def test_zipf_zero_skew_is_roughly_uniform(self):
        counts = np.bincount(zipf_draws(8000, 4, skew=0.0, seed=1), minlength=4)
        assert counts.min() > 1500
