"""CLI tests for the ``lint-code`` verb (exit codes, JSON, --suite)."""

import json
import textwrap

import pytest

from repro.cli import main


@pytest.fixture
def violating_file(tmp_path):
    path = tmp_path / "bad_planner.py"
    path.write_text(
        textwrap.dedent(
            """
            import random


            def pick(items):
                return random.choice(items)
            """
        ).strip()
        + "\n"
    )
    return path


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "good_planner.py"
    path.write_text(
        textwrap.dedent(
            """
            import numpy as np


            def pick(items, seed):
                rng = np.random.default_rng(seed)
                return items[rng.integers(len(items))]
            """
        ).strip()
        + "\n"
    )
    return path


class TestFileMode:
    def test_clean_file_exits_zero(self, clean_file, capsys):
        assert main(["lint-code", str(clean_file)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_violation_exits_one(self, violating_file, capsys):
        assert main(["lint-code", str(violating_file)]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out
        assert "ERROR" in out

    def test_json_output_is_machine_readable(self, violating_file, capsys):
        assert main(["lint-code", "--json", str(violating_file)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["findings"][0]["code"] == "DET001"

    def test_out_writes_the_report_file(
        self, violating_file, tmp_path, capsys
    ):
        artifact = tmp_path / "report.json"
        assert (
            main(["lint-code", "--out", str(artifact), str(violating_file)])
            == 1
        )
        payload = json.loads(artifact.read_text())
        assert payload["errors"] == 1

    def test_missing_file_is_a_usage_error(self, tmp_path, capsys):
        assert main(["lint-code", str(tmp_path / "nope.py")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_no_files_is_a_usage_error(self, capsys):
        assert main(["lint-code"]) == 2
        assert "error:" in capsys.readouterr().err


class TestSuiteMode:
    def test_suite_self_tests_and_scans_clean(self, capsys):
        assert main(["lint-code", "--suite"]) == 0
        out = capsys.readouterr().out
        assert "corpus ok" in out
        assert "clean" in out

    def test_suite_json_carries_corpus_and_report(self, tmp_path, capsys):
        artifact = tmp_path / "suite.json"
        assert (
            main(["lint-code", "--suite", "--json", "--out", str(artifact)])
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["corpus"]["ok"] is True
        assert payload["report"]["files"] > 50
        assert json.loads(artifact.read_text()) == payload

    def test_suite_rejects_positional_files(self, clean_file, capsys):
        assert main(["lint-code", "--suite", str(clean_file)]) == 2
        assert "error:" in capsys.readouterr().err
