"""Tests for trace/schema/plan persistence."""

import numpy as np
import pytest

from repro.core import Attribute, Schema, SequentialNode, SequentialStep, RangePredicate
from repro.data import (
    load_plan,
    load_schema,
    load_trace,
    save_plan,
    save_schema,
    save_trace,
    schema_from_json,
    schema_to_json,
)
from repro.exceptions import SchemaError


@pytest.fixture
def schema() -> Schema:
    return Schema(
        [Attribute("hour", 24, 1.0), Attribute("light", 12, 100.0)]
    )


class TestSchemaJson:
    def test_roundtrip(self, schema):
        restored = schema_from_json(schema_to_json(schema))
        assert restored.names == schema.names
        assert restored.domain_sizes == schema.domain_sizes
        assert restored.costs == schema.costs

    def test_file_roundtrip(self, schema, tmp_path):
        path = tmp_path / "schema.json"
        save_schema(schema, path)
        assert load_schema(path).names == schema.names

    def test_default_cost(self):
        restored = schema_from_json(
            '{"attributes": [{"name": "x", "domain_size": 4}]}'
        )
        assert restored["x"].cost == 1.0

    def test_malformed_json_rejected(self):
        with pytest.raises(SchemaError, match="malformed"):
            schema_from_json("{not json")

    def test_missing_fields_rejected(self):
        with pytest.raises(SchemaError):
            schema_from_json('{"attributes": [{"name": "x"}]}')


class TestTraceCsv:
    def test_roundtrip(self, schema, tmp_path):
        rng = np.random.default_rng(0)
        data = np.stack(
            [rng.integers(1, 25, 50), rng.integers(1, 13, 50)], axis=1
        ).astype(np.int64)
        path = tmp_path / "trace.csv"
        save_trace(data, schema, path)
        assert np.array_equal(load_trace(path, schema), data)

    def test_header_mismatch_rejected(self, schema, tmp_path):
        other = Schema([Attribute("a", 24), Attribute("b", 12)])
        path = tmp_path / "trace.csv"
        save_trace(np.ones((3, 2), dtype=np.int64), other, path)
        with pytest.raises(SchemaError, match="header"):
            load_trace(path, schema)

    def test_out_of_domain_rejected(self, schema, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("hour,light\n1,99\n", encoding="utf-8")
        with pytest.raises(SchemaError, match="domain"):
            load_trace(path, schema)

    def test_empty_file_rejected(self, schema, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("", encoding="utf-8")
        with pytest.raises(SchemaError, match="empty"):
            load_trace(path, schema)

    def test_header_only_rejected(self, schema, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("hour,light\n", encoding="utf-8")
        with pytest.raises(SchemaError, match="no data"):
            load_trace(path, schema)

    def test_wrong_shape_on_save_rejected(self, schema, tmp_path):
        with pytest.raises(SchemaError):
            save_trace(np.ones((3, 5), dtype=np.int64), schema, tmp_path / "x.csv")


class TestPlanJson:
    def test_roundtrip(self, tmp_path):
        plan = SequentialNode(
            steps=(
                SequentialStep(
                    predicate=RangePredicate("light", 2, 6), attribute_index=1
                ),
            )
        )
        path = tmp_path / "plan.json"
        save_plan(plan, path)
        assert load_plan(path) == plan
