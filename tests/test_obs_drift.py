"""Tests for Eq. 3 per-node predictions and drift scoring (repro.obs.drift)."""

import json

import numpy as np
import pytest

from repro.core import (
    Attribute,
    ConjunctiveQuery,
    RangePredicate,
    Schema,
    dataset_execution,
    expected_cost,
)
from repro.obs import (
    DEFAULT_DRIFT_THRESHOLD,
    DriftMonitor,
    PlanProfile,
    predict_plan,
)
from repro.planning import CorrSeqPlanner, GreedyConditionalPlanner
from repro.probability import EmpiricalDistribution
from repro.verify import ROOT_PATH


@pytest.fixture
def schema() -> Schema:
    return Schema(
        [
            Attribute("mode", 2, 1.0),
            Attribute("p", 2, 100.0),
            Attribute("q", 2, 100.0),
        ]
    )


@pytest.fixture
def query(schema) -> ConjunctiveQuery:
    return ConjunctiveQuery(
        schema, [RangePredicate("p", 2, 2), RangePredicate("q", 2, 2)]
    )


def regime_data(n: int, flipped: bool, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    mode = rng.integers(1, 3, n)
    fail_p = (mode == 1) != flipped
    p = np.where(fail_p, 1, rng.integers(1, 3, n))
    q = np.where(~fail_p, 1, rng.integers(1, 3, n))
    return np.stack([mode, p, q], axis=1).astype(np.int64)


@pytest.fixture
def train(schema) -> np.ndarray:
    return regime_data(3000, flipped=False, seed=1)


@pytest.fixture
def distribution(schema, train) -> EmpiricalDistribution:
    return EmpiricalDistribution(schema, train, smoothing=0.5)


@pytest.fixture
def planned(query, distribution):
    planner = GreedyConditionalPlanner(
        distribution, CorrSeqPlanner(distribution), max_splits=3
    )
    return planner.plan(query)


class TestPredictPlan:
    def test_per_node_costs_sum_to_eq3(self, planned, distribution):
        predictions = predict_plan(planned.plan, distribution)
        total = sum(prediction.cost for prediction in predictions.values())
        assert total == pytest.approx(
            expected_cost(planned.plan, distribution), abs=1e-9
        )
        assert total == pytest.approx(planned.expected_cost, abs=1e-9)

    def test_root_reach_is_one(self, planned, distribution):
        predictions = predict_plan(planned.plan, distribution)
        assert predictions[ROOT_PATH].reach == pytest.approx(1.0)

    def test_covers_every_plan_node(self, planned, distribution):
        from repro.verify import iter_plan_paths

        predictions = predict_plan(planned.plan, distribution)
        assert set(predictions) == {
            path for path, _node in iter_plan_paths(planned.plan)
        }

    def test_probabilities_are_valid(self, planned, distribution):
        for prediction in predict_plan(planned.plan, distribution).values():
            if prediction.p_below is not None:
                assert 0.0 <= prediction.p_below <= 1.0
            for passed in prediction.step_pass:
                assert 0.0 <= passed <= 1.0


class TestDriftMonitor:
    def test_no_drift_in_distribution(self, schema, planned, distribution):
        monitor = DriftMonitor(
            planned.plan, distribution, expected=planned.expected_cost
        )
        profile = PlanProfile(schema)
        dataset_execution(
            planned.plan,
            regime_data(3000, flipped=False, seed=2),
            schema,
            observer=profile,
        )
        report = monitor.assess(profile)
        assert not report.drifted
        assert report.normalized < DEFAULT_DRIFT_THRESHOLD
        assert report.cost_ratio == pytest.approx(1.0, abs=0.25)
        assert "ok" in report.describe()

    def test_detects_regime_flip(self, schema, planned, distribution):
        monitor = DriftMonitor(
            planned.plan, distribution, expected=planned.expected_cost
        )
        profile = PlanProfile(schema)
        dataset_execution(
            planned.plan,
            regime_data(3000, flipped=True, seed=3),
            schema,
            observer=profile,
        )
        report = monitor.assess(profile)
        assert report.drifted
        assert report.normalized > DEFAULT_DRIFT_THRESHOLD
        assert report.worst  # the worst cells are named
        assert "DRIFTED" in report.describe()

    def test_min_visits_suppresses_small_samples(
        self, schema, planned, distribution
    ):
        monitor = DriftMonitor(planned.plan, distribution, min_visits=1000)
        profile = PlanProfile(schema)
        dataset_execution(
            planned.plan,
            regime_data(100, flipped=True, seed=4),
            schema,
            observer=profile,
        )
        report = monitor.assess(profile)
        assert report.cells == 0
        assert report.score == 0.0
        assert not report.drifted

    def test_empty_profile_is_not_drifted(self, schema, planned, distribution):
        monitor = DriftMonitor(planned.plan, distribution)
        report = monitor.assess(PlanProfile(schema))
        assert report.tuples == 0
        assert not report.drifted

    def test_cell_drifts_and_report_serialize(
        self, schema, planned, distribution
    ):
        monitor = DriftMonitor(planned.plan, distribution)
        profile = PlanProfile(schema)
        dataset_execution(
            planned.plan,
            regime_data(2000, flipped=True, seed=5),
            schema,
            observer=profile,
        )
        cells = monitor.cell_drifts(profile)
        assert cells
        for cell in cells:
            assert cell.kind in ("split", "step")
            assert cell.term >= 0.0
        json.dumps(monitor.assess(profile).as_dict())  # must not raise

    def test_threshold_is_respected(self, schema, planned, distribution):
        lax = DriftMonitor(planned.plan, distribution, threshold=1e9)
        profile = PlanProfile(schema)
        dataset_execution(
            planned.plan,
            regime_data(2000, flipped=True, seed=6),
            schema,
            observer=profile,
        )
        assert not lax.assess(profile).drifted


class TestDebounce:
    """The latch: one crossing fires once, not once per assessment window."""

    def drifted_profile(self, schema, planned, seed=7) -> PlanProfile:
        profile = PlanProfile(schema)
        dataset_execution(
            planned.plan,
            regime_data(2000, flipped=True, seed=seed),
            schema,
            observer=profile,
        )
        return profile

    def test_crossing_fires_exactly_once(self, schema, planned, distribution):
        monitor = DriftMonitor(planned.plan, distribution)
        profile = self.drifted_profile(schema, planned)
        first = monitor.assess(profile)
        assert first.drifted
        assert not first.debounced
        assert monitor.fired
        second = monitor.assess(profile)
        assert not second.drifted
        assert second.debounced
        # The underlying score is unchanged — only the edge is filtered.
        assert second.normalized == pytest.approx(first.normalized)
        assert "debounced" in second.describe()
        assert second.as_dict()["debounced"] is True

    def test_rearm_restores_the_trigger(self, schema, planned, distribution):
        monitor = DriftMonitor(planned.plan, distribution)
        profile = self.drifted_profile(schema, planned)
        assert monitor.assess(profile).drifted
        monitor.rearm()
        assert not monitor.fired
        report = monitor.assess(profile)
        assert report.drifted
        assert not report.debounced

    def test_level_triggered_mode_refires(self, schema, planned, distribution):
        monitor = DriftMonitor(planned.plan, distribution, debounce=False)
        profile = self.drifted_profile(schema, planned)
        for _ in range(3):
            report = monitor.assess(profile)
            assert report.drifted
            assert not report.debounced

    def test_quiet_profile_never_latches(self, schema, planned, distribution):
        monitor = DriftMonitor(planned.plan, distribution)
        profile = PlanProfile(schema)
        dataset_execution(
            planned.plan,
            regime_data(3000, flipped=False, seed=8),
            schema,
            observer=profile,
        )
        for _ in range(2):
            report = monitor.assess(profile)
            assert not report.drifted
            assert not report.debounced
        assert not monitor.fired
