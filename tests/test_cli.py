"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.data import load_plan, load_schema, load_trace


@pytest.fixture
def trace_dir(tmp_path):
    """A generated lab trace on disk, shared across CLI tests."""
    out = tmp_path / "trace"
    code = main(
        [
            "generate",
            "lab",
            "--rows",
            "6000",
            "--motes",
            "5",
            "--out-dir",
            str(out),
        ]
    )
    assert code == 0
    return out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "garden", "--rows", "100", "--out-dir", "/tmp/x"]
        )
        assert args.dataset == "garden"
        assert args.rows == 100


class TestGenerate:
    def test_lab_artifacts(self, trace_dir):
        schema = load_schema(trace_dir / "schema.json")
        assert "light" in schema
        train = load_trace(trace_dir / "train.csv", schema)
        test = load_trace(trace_dir / "test.csv", schema)
        assert len(train) + len(test) == 6000

    def test_synthetic(self, tmp_path, capsys):
        out = tmp_path / "syn"
        code = main(
            [
                "generate",
                "synthetic",
                "--rows",
                "500",
                "--motes",
                "8",
                "--gamma",
                "3",
                "--out-dir",
                str(out),
            ]
        )
        assert code == 0
        schema = load_schema(out / "schema.json")
        assert len(schema) == 8

    def test_garden(self, tmp_path):
        out = tmp_path / "g"
        assert (
            main(
                [
                    "generate",
                    "garden",
                    "--rows",
                    "300",
                    "--motes",
                    "3",
                    "--out-dir",
                    str(out),
                ]
            )
            == 0
        )
        schema = load_schema(out / "schema.json")
        assert len(schema) == 10  # 3 motes x 3 + hour


class TestPlanAndExecute:
    QUERY = "SELECT * WHERE light >= 9 AND temp <= 5"

    def test_plan_writes_plan_json(self, trace_dir, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        code = main(
            [
                "plan",
                "--schema",
                str(trace_dir / "schema.json"),
                "--trace",
                str(trace_dir / "train.csv"),
                "--query",
                self.QUERY,
                "--out",
                str(plan_path),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "expected cost/tuple" in output
        plan = load_plan(plan_path)
        assert plan.size_nodes() >= 1

    def test_execute_reports_costs(self, trace_dir, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        main(
            [
                "plan",
                "--schema",
                str(trace_dir / "schema.json"),
                "--trace",
                str(trace_dir / "train.csv"),
                "--query",
                self.QUERY,
                "--out",
                str(plan_path),
            ]
        )
        capsys.readouterr()
        code = main(
            [
                "execute",
                "--schema",
                str(trace_dir / "schema.json"),
                "--plan",
                str(plan_path),
                "--trace",
                str(trace_dir / "test.csv"),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "mean cost/tuple" in output

    def test_explain_prints_annotations(self, trace_dir, capsys):
        code = main(
            [
                "explain",
                "--schema",
                str(trace_dir / "schema.json"),
                "--trace",
                str(trace_dir / "train.csv"),
                "--query",
                self.QUERY,
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "p=" in output

    def test_compare_lists_planners(self, trace_dir, capsys):
        code = main(
            [
                "compare",
                "--schema",
                str(trace_dir / "schema.json"),
                "--trace",
                str(trace_dir / "train.csv"),
                "--test",
                str(trace_dir / "test.csv"),
                "--query",
                self.QUERY,
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "naive" in output and "heuristic" in output

    def test_planner_choices(self, trace_dir, capsys):
        for planner in ("naive", "corr-seq", "greedy-seq"):
            code = main(
                [
                    "plan",
                    "--schema",
                    str(trace_dir / "schema.json"),
                    "--trace",
                    str(trace_dir / "train.csv"),
                    "--query",
                    self.QUERY,
                    "--planner",
                    planner,
                ]
            )
            assert code == 0


class TestServeBench:
    def test_reports_speedup_and_writes_json(self, trace_dir, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main(
            [
                "serve-bench",
                "--schema",
                str(trace_dir / "schema.json"),
                "--trace",
                str(trace_dir / "train.csv"),
                "--live",
                str(trace_dir / "test.csv"),
                "--shapes",
                "5",
                "--requests",
                "30",
                "--rows-per-request",
                "32",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "cache on" in captured and "q/s" in captured
        report = json.loads(out.read_text())
        assert report["cache_on"]["queries_per_second"] > 0
        assert report["cache_off"]["queries_per_second"] > 0
        assert report["cache_on"]["stats"]["cache"]["hits"] > 0

    def test_batched_admission(self, trace_dir, capsys):
        code = main(
            [
                "serve-bench",
                "--schema",
                str(trace_dir / "schema.json"),
                "--trace",
                str(trace_dir / "train.csv"),
                "--shapes",
                "4",
                "--requests",
                "20",
                "--batch-size",
                "8",
            ]
        )
        assert code == 0
        assert "hit rate" in capsys.readouterr().out


class TestCacheStats:
    def test_prints_fingerprints_and_snapshot(self, trace_dir, capsys):
        code = main(
            [
                "cache-stats",
                "--schema",
                str(trace_dir / "schema.json"),
                "--trace",
                str(trace_dir / "train.csv"),
                "--query",
                "SELECT * WHERE temp >= 5 AND light <= 4",
                "--query",
                "SELECT * WHERE light <= 4 AND temp >= 5",
                "--repeat",
                "3",
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        fingerprints = {
            line.split()[0] for line in captured.splitlines() if "SELECT" in line
        }
        assert len(fingerprints) == 1  # permuted spellings share a slot
        snapshot = json.loads(captured[captured.index("{") :])
        assert snapshot["cache"]["hits"] == 5
        assert snapshot["counters"]["plans_built"] == 1


class TestErrors:
    def test_bad_query_reports_error(self, trace_dir, capsys):
        code = main(
            [
                "plan",
                "--schema",
                str(trace_dir / "schema.json"),
                "--trace",
                str(trace_dir / "train.csv"),
                "--query",
                "SELECT * WHERE nonsense >= 1",
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_file_reports_error(self, tmp_path, capsys):
        code = main(
            [
                "execute",
                "--schema",
                str(tmp_path / "nope.json"),
                "--plan",
                str(tmp_path / "nope2.json"),
                "--trace",
                str(tmp_path / "nope3.csv"),
            ]
        )
        assert code == 2


class TestVersionAndLogging:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.startswith("repro ")

    def test_log_level_routes_status_to_stderr(self, tmp_path, capsys):
        out = tmp_path / "gen"
        code = main(
            [
                "--log-level",
                "info",
                "generate",
                "garden",
                "--rows",
                "200",
                "--motes",
                "2",
                "--out-dir",
                str(out),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "wrote" in captured.err  # status goes through logging
        assert "wrote" not in captured.out

    def test_default_level_suppresses_status(self, tmp_path, capsys):
        out = tmp_path / "gen"
        code = main(
            [
                "generate",
                "garden",
                "--rows",
                "200",
                "--motes",
                "2",
                "--out-dir",
                str(out),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "wrote" not in captured.err
        assert "wrote" not in captured.out


class TestProfileCommand:
    QUERY = "SELECT * WHERE light >= 9 AND temp <= 5"

    def test_tree_shows_predicted_vs_observed(self, trace_dir, capsys):
        code = main(
            [
                "profile",
                "--schema",
                str(trace_dir / "schema.json"),
                "--trace",
                str(trace_dir / "train.csv"),
                "--test",
                str(trace_dir / "test.csv"),
                "--query",
                self.QUERY,
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "drift" in output
        assert "pred=" in output and "obs=" in output
        assert "cost/tuple" in output

    def test_json_report(self, trace_dir, tmp_path, capsys):
        out = tmp_path / "profile.json"
        code = main(
            [
                "profile",
                "--schema",
                str(trace_dir / "schema.json"),
                "--trace",
                str(trace_dir / "train.csv"),
                "--query",
                self.QUERY,
                "--json",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["query"] == self.QUERY
        assert payload["tuples"] > 0
        assert payload["nodes"]
        assert "drift" in payload
        assert json.loads(out.read_text()) == payload


class TestMetricsCommand:
    QUERY = "SELECT * WHERE light >= 9 AND temp <= 5"

    def _run(self, trace_dir, *extra):
        return main(
            [
                "metrics",
                "--schema",
                str(trace_dir / "schema.json"),
                "--trace",
                str(trace_dir / "train.csv"),
                "--query",
                self.QUERY,
                "--repeat",
                "3",
                *extra,
            ]
        )

    def test_prometheus_output_parses(self, trace_dir, capsys):
        from repro.obs import parse_prometheus

        assert self._run(trace_dir, "--profiling") == 0
        samples = parse_prometheus(capsys.readouterr().out)
        assert samples["repro_queries_total"] == 3
        assert samples['repro_cache_events_total{event="hit"}'] == 2
        assert samples["repro_profiled_plans"] == 1

    def test_json_output(self, trace_dir, capsys):
        assert self._run(trace_dir, "--format", "json") == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["counters"]["queries"] == 3
        assert snapshot["counters"]["plans_built"] == 1


class TestServeBenchObservability:
    def test_metrics_and_trace_outputs(self, trace_dir, tmp_path, capsys):
        from repro.obs import TRACE_PHASES, parse_prometheus

        metrics_out = tmp_path / "metrics.json"
        trace_out = tmp_path / "trace.jsonl"
        code = main(
            [
                "serve-bench",
                "--schema",
                str(trace_dir / "schema.json"),
                "--trace",
                str(trace_dir / "train.csv"),
                "--shapes",
                "4",
                "--requests",
                "20",
                "--rows-per-request",
                "32",
                "--metrics-out",
                str(metrics_out),
                "--trace-out",
                str(trace_out),
            ]
        )
        assert code == 0
        doc = json.loads(metrics_out.read_text())
        samples = parse_prometheus(doc["prometheus"])
        assert samples["repro_queries_total"] == 20
        assert doc["snapshot"]["counters"]["queries"] == 20
        phases = set()
        for line in trace_out.read_text().splitlines():
            event = json.loads(line)
            assert event["phase"] in TRACE_PHASES
            phases.add(event["phase"])
        assert {"plan", "execute", "cache-hit", "cache-miss"} <= phases


class TestLintPlan:
    QUERY = "SELECT * WHERE light >= 9 AND temp <= 5"

    def _planned(self, trace_dir, tmp_path):
        plan_path = tmp_path / "plan.json"
        code = main(
            [
                "plan",
                "--schema",
                str(trace_dir / "schema.json"),
                "--trace",
                str(trace_dir / "train.csv"),
                "--query",
                self.QUERY,
                "--out",
                str(plan_path),
            ]
        )
        assert code == 0
        return plan_path

    def test_clean_plan_exits_zero(self, trace_dir, tmp_path, capsys):
        plan_path = self._planned(trace_dir, tmp_path)
        capsys.readouterr()
        code = main(
            [
                "lint-plan",
                "--schema",
                str(trace_dir / "schema.json"),
                "--plan",
                str(plan_path),
                "--trace",
                str(trace_dir / "train.csv"),
                "--query",
                self.QUERY,
            ]
        )
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_wrong_query_exits_nonzero_with_codes(
        self, trace_dir, tmp_path, capsys
    ):
        plan_path = self._planned(trace_dir, tmp_path)
        capsys.readouterr()
        code = main(
            [
                "lint-plan",
                "--schema",
                str(trace_dir / "schema.json"),
                "--plan",
                str(plan_path),
                "--query",
                "SELECT * WHERE humidity >= 4",
            ]
        )
        assert code == 1
        output = capsys.readouterr().out
        assert "SEM" in output

    def test_json_output(self, trace_dir, tmp_path, capsys):
        plan_path = self._planned(trace_dir, tmp_path)
        capsys.readouterr()
        code = main(
            [
                "lint-plan",
                "--schema",
                str(trace_dir / "schema.json"),
                "--plan",
                str(plan_path),
                "--query",
                self.QUERY,
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["errors"] == 0

    def test_bytecode_mode(self, trace_dir, tmp_path, capsys):
        from repro.execution import compile_plan

        plan_path = self._planned(trace_dir, tmp_path)
        plan = load_plan(plan_path)
        code_path = tmp_path / "plan.bin"
        code_path.write_bytes(compile_plan(plan))
        capsys.readouterr()
        code = main(
            [
                "lint-plan",
                "--schema",
                str(trace_dir / "schema.json"),
                "--bytecode",
                str(code_path),
                "--query",
                self.QUERY,
            ]
        )
        assert code == 0

    def test_corrupt_bytecode_rejected(self, trace_dir, tmp_path, capsys):
        from repro.execution import compile_plan

        plan_path = self._planned(trace_dir, tmp_path)
        plan = load_plan(plan_path)
        blob = bytearray(compile_plan(plan))
        blob = blob[:-1]  # truncate
        code_path = tmp_path / "plan.bin"
        code_path.write_bytes(bytes(blob))
        capsys.readouterr()
        code = main(
            [
                "lint-plan",
                "--schema",
                str(trace_dir / "schema.json"),
                "--bytecode",
                str(code_path),
            ]
        )
        assert code == 1
        assert "BC" in capsys.readouterr().out

    def test_plan_and_bytecode_together_is_an_error(self, tmp_path, capsys):
        code = main(
            [
                "lint-plan",
                "--schema",
                str(tmp_path / "schema.json"),
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestLearnBench:
    ARGS = ["learn-bench", "--segments", "3", "--segment-length", "250"]

    def test_gates_pass_and_json_written(self, tmp_path, capsys):
        out = tmp_path / "learned.json"
        code = main(self.ARGS + ["--out", str(out)])
        assert code == 0
        captured = capsys.readouterr().out
        assert "bandit" in captured and "gate" in captured
        report = json.loads(out.read_text())
        strategies = {run["name"]: run for run in report["strategies"]}
        assert set(strategies) == {
            "oracle",
            "never-replan",
            "chi-square-refit",
            "bandit",
        }
        assert (
            strategies["bandit"]["total_cost"]
            < strategies["never-replan"]["total_cost"]
        )
        assert all(report["gates"].values())
        # Regret curves are present for plotting, sampled on a shared axis.
        assert set(report["regret_curves"]) == {
            "never-replan",
            "chi-square-refit",
            "bandit",
        }
        for curve in report["regret_curves"].values():
            assert len(curve) == len(report["curve_positions"])

    def test_json_flag_prints_the_report(self, capsys):
        code = main(self.ARGS + ["--json"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ledger"]["budget"] > 0
        assert report["ledger"]["exploration_cost"] <= report["ledger"]["budget"]
