"""Translation validator: mutant detection, integration, and fallback.

Three layers of assurance for the compile tier:

- the seeded miscompilation corpus — every defect class the compiler
  could plausibly introduce must be caught by its owning ``TV*`` rule,
  and faithful kernels must validate with *zero* diagnostics;
- verifier integration — ``verify_plan(compiled=...)`` merges TV
  findings into the same report that gates plan-cache admission;
- the serving tier — a TV-rejected plan silently falls back to the
  interpreting walker (counted by ``tv_rejected``), and the compiled
  path feeds :class:`~repro.obs.PlanProfile` the walker's exact events.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.compile as compile_pkg
from repro.compile import (
    compile_plan,
    execute_compiled,
    lower_plan,
    validate_translation,
)
from repro.compile.mutants import (
    clean_cases,
    default_corpus_query,
    miscompilation_cases,
    run_corpus,
)
from repro.core.cost import dataset_execution
from repro.engine import AcquisitionalEngine
from repro.obs import PlanProfile
from repro.probability import EmpiricalDistribution
from repro.service import AcquisitionalService
from repro.verify import verify_plan
from repro.verify.diagnostics import VerificationReport, make_diagnostic
from repro.verify.mutations import canonical_conditional_plan

_CASES = {case.name: case for case in miscompilation_cases()}


@pytest.fixture(scope="module")
def corpus():
    query = default_corpus_query()
    schema = query.schema
    rng = np.random.default_rng(23)
    data = rng.integers(1, 9, size=(500, len(schema)))
    distribution = EmpiricalDistribution(schema, data, smoothing=0.5)
    return schema, query, distribution


class TestMutantCorpus:
    def test_at_least_twelve_mutant_classes(self, corpus):
        _schema, query, distribution = corpus
        cases = miscompilation_cases(query, distribution)
        assert len(cases) >= 12
        # The corpus exercises every structural rule plus staleness and
        # conservation.
        assert {case.expected_code for case in cases} >= {
            f"TV{i:03d}" for i in range(1, 11)
        }

    @pytest.mark.parametrize("name", sorted(_CASES))
    def test_mutant_is_caught_by_its_owning_rule(self, name, corpus):
        schema, _query, _distribution = corpus
        case = _CASES[name]
        report = validate_translation(
            case.compiled,
            case.plan,
            schema,
            expected_statistics_version=case.expected_statistics_version,
            subject=case.name,
        )
        assert not report.ok
        assert report.has(case.expected_code), (
            f"{name}: expected {case.expected_code}, "
            f"got {sorted(report.codes())}"
        )

    def test_corpus_passes_without_distribution(self):
        assert run_corpus() == []

    def test_corpus_passes_with_distribution(self, corpus):
        _schema, query, distribution = corpus
        assert run_corpus(query, distribution=distribution) == []

    def test_clean_kernels_validate_with_zero_diagnostics(self, corpus):
        schema, query, distribution = corpus
        for name, plan, compiled in clean_cases(query):
            report = validate_translation(
                compiled, plan, schema, distribution=distribution,
                subject=name,
            )
            assert len(report) == 0, f"{name}: {report.format()}"

    def test_stale_statistics_rejected(self, corpus):
        schema, query, _distribution = corpus
        plan = canonical_conditional_plan(query)
        compiled = lower_plan(plan, schema, statistics_version=1)
        report = validate_translation(
            compiled, plan, schema, expected_statistics_version=2
        )
        assert not report.ok
        assert report.has("TV010")


class TestVerifierIntegration:
    def test_verify_plan_accepts_a_proven_kernel(self, corpus):
        schema, query, distribution = corpus
        plan = canonical_conditional_plan(query)
        compiled = lower_plan(plan, schema)
        report = verify_plan(
            plan,
            schema,
            query=query,
            distribution=distribution,
            compiled=compiled,
        )
        assert report.ok
        assert not any(d.code.startswith("TV") for d in report.diagnostics)

    def test_verify_plan_rejects_a_miscompiled_kernel(self, corpus):
        schema, _query, _distribution = corpus
        case = _CASES["wrong-mask-polarity"]
        report = verify_plan(
            case.plan, schema, compiled=case.compiled
        )
        assert not report.ok
        assert report.has(case.expected_code)


@pytest.fixture
def served():
    schema = default_corpus_query().schema
    rng = np.random.default_rng(11)
    history = rng.integers(1, 9, size=(3000, len(schema)))
    live = rng.integers(1, 9, size=(200, len(schema)))
    return schema, history, live


class TestServingTier:
    TEXT = "SELECT * WHERE a >= 3 AND a <= 6 AND b >= 2 AND b <= 7"

    def test_compiled_backend_agrees_with_interpreter(self, served):
        _schema, history, live = served
        results = {}
        for backend in ("interp", "compiled"):
            engine = AcquisitionalEngine(
                default_corpus_query().schema, history
            )
            service = AcquisitionalService(engine, exec_backend=backend)
            results[backend] = service.execute(self.TEXT, live)
            if backend == "compiled":
                counters = service.stats()["counters"]
                assert counters["plans_compiled"] == 1
                assert counters["tv_rejected"] == 0
        interp, compiled = results["interp"], results["compiled"]
        assert np.array_equal(interp.rows, compiled.rows)
        assert interp.where_cost == compiled.where_cost

    def test_tv_rejected_plan_falls_back_to_interpreter(
        self, served, monkeypatch
    ):
        schema, history, live = served

        def forged(plan, schema_, **kwargs):
            compiled = lower_plan(plan, schema_)
            finding = make_diagnostic(
                "TV002", "root", "forced rejection for the fallback test"
            )
            return compiled, VerificationReport.from_findings(
                [finding], "forged"
            )

        monkeypatch.setattr(compile_pkg, "compile_plan", forged)
        engine = AcquisitionalEngine(schema, history)
        service = AcquisitionalService(engine, exec_backend="compiled")
        reference = AcquisitionalService(engine, exec_backend="interp")
        served_result = service.execute(self.TEXT, live)
        expected = reference.execute(self.TEXT, live)
        assert np.array_equal(served_result.rows, expected.rows)
        assert served_result.where_cost == expected.where_cost
        counters = service.stats()["counters"]
        assert counters["tv_rejected"] == 1
        assert counters["plans_compiled"] == 0

    def test_invalid_backend_rejected(self, served):
        schema, history, _live = served
        engine = AcquisitionalEngine(schema, history)
        from repro.exceptions import ServiceError

        with pytest.raises(ServiceError, match="exec_backend"):
            AcquisitionalService(engine, exec_backend="jit")


class TestObserverParity:
    def test_compiled_profile_matches_walker_profile(self, corpus):
        schema, query, _distribution = corpus
        plan = canonical_conditional_plan(query)
        compiled, report = compile_plan(plan, schema)
        assert report.ok
        rng = np.random.default_rng(5)
        data = rng.integers(1, 9, size=(400, len(schema)))
        walker_profile = PlanProfile(schema)
        walker = dataset_execution(plan, data, schema, observer=walker_profile)
        kernel_profile = PlanProfile(schema)
        kernel = execute_compiled(compiled, data, observer=kernel_profile)
        assert np.array_equal(walker.verdicts, kernel.verdicts)
        assert np.array_equal(walker.costs, kernel.costs)
        assert walker_profile.tuples == kernel_profile.tuples
        assert walker_profile.nodes == kernel_profile.nodes
