"""Thread-safety of the serving layer's shared structures.

The sharded tier hands a metrics registry to a reply-reader thread and
an event loop at once, and a plan cache may see concurrent access from
embedding applications; these tests hammer both from many threads and
assert nothing is lost or torn.
"""

from __future__ import annotations

import threading

import pytest

from repro.service.cache import PlanCache
from repro.service.metrics import MetricsRegistry, merge_snapshots

THREADS = 8
ROUNDS = 500


def _run_threads(target) -> None:
    workers = [
        threading.Thread(target=target, args=(worker,))
        for worker in range(THREADS)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()


class TestMetricsUnderThreads:
    def test_counter_increments_are_not_lost(self) -> None:
        registry = MetricsRegistry()

        def hammer(_worker: int) -> None:
            counter = registry.counter("hits")
            for _ in range(ROUNDS):
                counter.increment()

        _run_threads(hammer)
        assert registry.snapshot()["counters"]["hits"] == THREADS * ROUNDS

    def test_labeled_counter_series_are_consistent(self) -> None:
        registry = MetricsRegistry()

        def hammer(worker: int) -> None:
            family = registry.labeled_counter("events", "kind")
            for i in range(ROUNDS):
                family.labels(kind=f"kind-{(worker + i) % 3}").increment()

        _run_threads(hammer)
        family = registry.snapshot()["labeled_counters"]["events"]
        total = sum(series["value"] for series in family["series"])
        assert total == THREADS * ROUNDS
        assert len(family["series"]) == 3

    def test_histogram_observations_all_land(self) -> None:
        registry = MetricsRegistry()

        def hammer(worker: int) -> None:
            histogram = registry.histogram("latency")
            for i in range(ROUNDS):
                histogram.observe(0.001 * (worker + 1) + 1e-6 * i)

        _run_threads(hammer)
        snapshot = registry.snapshot()["histograms"]["latency"]
        assert snapshot["count"] == THREADS * ROUNDS

    def test_registry_lookup_or_create_races_yield_one_instance(self) -> None:
        registry = MetricsRegistry()
        seen = []
        barrier = threading.Barrier(THREADS)

        def hammer(_worker: int) -> None:
            barrier.wait()
            seen.append(id(registry.counter("shared")))

        _run_threads(hammer)
        assert len(set(seen)) == 1


class TestCacheUnderThreads:
    def test_concurrent_put_get_never_tears(self) -> None:
        cache: PlanCache[str, int] = PlanCache(capacity=64)
        errors: list[Exception] = []

        def hammer(worker: int) -> None:
            try:
                for i in range(ROUNDS):
                    key = f"shape-{(worker * ROUNDS + i) % 96}"
                    value = cache.get(key, version=1)
                    if value is None:
                        cache.put(key, version=1, value=worker)
                    else:
                        assert 0 <= value < THREADS
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        _run_threads(hammer)
        assert not errors
        assert len(cache) <= 64
        stats = cache.stats()
        assert stats.lookups == THREADS * ROUNDS

    def test_concurrent_invalidation_is_clean(self) -> None:
        cache: PlanCache[str, int] = PlanCache(capacity=128)
        errors: list[Exception] = []

        def hammer(worker: int) -> None:
            try:
                for i in range(ROUNDS):
                    version = 1 + (i // 100)
                    cache.put(f"shape-{worker}-{i % 16}", version, i)
                    cache.get(f"shape-{worker}-{i % 16}", version)
                    if i % 50 == 49:
                        cache.invalidate_stale(version)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        _run_threads(hammer)
        assert not errors
        # Every surviving entry must carry the final version.
        final = 1 + (ROUNDS - 1) // 100
        assert cache.invalidate_stale(final) == 0


class TestMergeSnapshots:
    def test_counters_and_series_sum(self) -> None:
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.counter("queries").increment(3)
        b.counter("queries").increment(4)
        b.counter("only_b").increment()
        a.labeled_counter("events", "kind").labels(kind="hit").increment(2)
        b.labeled_counter("events", "kind").labels(kind="hit").increment(5)
        b.labeled_counter("events", "kind").labels(kind="miss").increment(1)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["counters"] == {"queries": 7, "only_b": 1}
        series = {
            tuple(sorted(s["labels"].items())): s["value"]
            for s in merged["labeled_counters"]["events"]["series"]
        }
        assert series == {(("kind", "hit"),): 7, (("kind", "miss"),): 1}

    def test_version_gauges_take_max_others_sum(self) -> None:
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.gauge("cache_size").set(10)
        b.gauge("cache_size").set(5)
        a.gauge("statistics_version").set(3)
        b.gauge("statistics_version").set(7)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["gauges"]["cache_size"] == 15
        assert merged["gauges"]["statistics_version"] == 7

    def test_histograms_merge_conservatively(self) -> None:
        a = MetricsRegistry()
        b = MetricsRegistry()
        for _ in range(10):
            a.histogram("latency").observe(0.010)
        for _ in range(30):
            b.histogram("latency").observe(0.050)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        histogram = merged["histograms"]["latency"]
        assert histogram["count"] == 40
        assert histogram["mean_ms"] == pytest.approx(
            (10 * 10.0 + 30 * 50.0) / 40, rel=1e-6
        )
        assert histogram["max_ms"] == pytest.approx(50.0, rel=1e-6)

    def test_empty_merge_is_empty(self) -> None:
        merged = merge_snapshots([])
        assert merged == {
            "counters": {},
            "gauges": {},
            "labeled_counters": {},
            "histograms": {},
        }
