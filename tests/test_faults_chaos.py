"""The deterministic chaos harness: every planner under seeded fault storms.

Each planner's plan runs through the fault injector under several named
fault schedules and every degradation mode.  The invariants:

1. **Determinism** — the same (plan, data, schedule, seed) quadruple
   produces byte-identical verdicts, costs, and fault counters.
2. **Soundness** — no false positives: every selected tuple satisfies
   the query on the values the executor actually observed (corrupting
   faults make ground truth unknowable; delivered values are the
   contract).  Abstained tuples are reported, never silently dropped.
3. **Ledger conservation** — Eq. 3 charges reconcile exactly:
   ``total_cost == base_cost + retry_cost``, per tuple and run-wide.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ConjunctiveQuery, RangePredicate, Schema
from repro.faults import (
    AttributeFaults,
    DegradationMode,
    FaultPolicy,
    FaultSchedule,
    FaultTolerantExecutor,
    RetryPolicy,
)
from repro.faults.policy import NO_RETRY
from repro.planning import (
    CorrSeqPlanner,
    ExhaustivePlanner,
    GreedyConditionalPlanner,
    GreedySequentialPlanner,
    NaivePlanner,
    OptimalSequentialPlanner,
    SizeAwareConditionalPlanner,
)
from repro.probability import EmpiricalDistribution

from tests.conftest import correlated_dataset

PLANNERS = {
    "naive": lambda d: NaivePlanner(d),
    "optseq": lambda d: OptimalSequentialPlanner(d),
    "greedy-seq": lambda d: GreedySequentialPlanner(d),
    "greedy-split": lambda d: GreedyConditionalPlanner(
        d, CorrSeqPlanner(d), max_splits=3
    ),
    "exhaustive": lambda d: ExhaustivePlanner(d),
    "bounded": lambda d: SizeAwareConditionalPlanner(
        d, CorrSeqPlanner(d), alpha=0.05
    ),
}

SCHEDULES = {
    "transient-drops": lambda schema: FaultSchedule.uniform(
        schema, drop_rate=0.25
    ),
    "mixed-failures": lambda schema: FaultSchedule(
        profiles={
            0: AttributeFaults(drop_rate=0.3, outage_rate=0.05, outage_length=5),
            1: AttributeFaults(timeout_rate=0.2, stuck_rate=0.1),
            2: AttributeFaults(noise_rate=0.2, noise_scale=2),
        }
    ),
    "dead-conditioner": lambda schema: FaultSchedule(
        profiles={0: AttributeFaults(drop_rate=0.9)}
    ),
}

MODES = (DegradationMode.ABSTAIN, DegradationMode.SKIP, DegradationMode.IMPUTE)


@pytest.fixture(scope="module")
def instance():
    """Schema, train/test split, fitted distribution, and the query."""
    schema, data = correlated_dataset(n_rows=1200, seed=5)
    train, test = data[:900], data[900:1100]
    distribution = EmpiricalDistribution(schema, train, smoothing=0.5)
    query = ConjunctiveQuery(
        schema, [RangePredicate("a", 1, 2), RangePredicate("b", 3, 5)]
    )
    return schema, distribution, query, test


@pytest.fixture(scope="module")
def plans(instance):
    schema, distribution, query, _test = instance
    return {
        name: build(distribution).plan(query).plan
        for name, build in PLANNERS.items()
    }


def run_chaos(instance, plan, schedule_name, mode, seed=17, retry=None):
    schema, distribution, query, test = instance
    policy = FaultPolicy(
        retry=retry if retry is not None else RetryPolicy(max_retries=2),
        degradation=mode,
    )
    executor = FaultTolerantExecutor(
        schema, policy, query=query, distribution=distribution
    )
    schedule = SCHEDULES[schedule_name](schema)
    return executor.run(plan, test, schedule, np.random.default_rng(seed))


def assert_sound(query, outcome):
    """No false positives against observed values; abstains accounted."""
    for row in outcome.selected:
        observed = outcome.results[row].observed
        for predicate, index in zip(query.predicates, query.attribute_indices):
            assert index in observed, (
                f"selected row {row} never observed query attribute {index}"
            )
            assert predicate.satisfied_by(observed[index]), (
                f"false positive: row {row} fails {predicate.describe()} "
                f"on observed value {observed[index]}"
            )
    verdicts = [r.verdict for r in outcome.results]
    assert set(outcome.abstained) == {
        i for i, v in enumerate(verdicts) if v is None
    }
    assert outcome.tuples_abstained == len(outcome.abstained)


def assert_ledger(outcome):
    for result in outcome.results:
        assert result.cost == pytest.approx(
            result.base_cost + result.retry_cost, rel=1e-12, abs=1e-9
        )
    assert outcome.total_cost == pytest.approx(
        outcome.base_cost + outcome.retry_cost, rel=1e-12, abs=1e-9
    )


@pytest.mark.parametrize("planner_name", sorted(PLANNERS))
@pytest.mark.parametrize("schedule_name", sorted(SCHEDULES))
@pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
class TestChaosMatrix:
    def test_sound_and_conserving(
        self, instance, plans, planner_name, schedule_name, mode
    ):
        _schema, _dist, query, _test = instance
        outcome = run_chaos(instance, plans[planner_name], schedule_name, mode)
        assert_sound(query, outcome)
        assert_ledger(outcome)

    def test_deterministic_replay(
        self, instance, plans, planner_name, schedule_name, mode
    ):
        first = run_chaos(instance, plans[planner_name], schedule_name, mode)
        second = run_chaos(instance, plans[planner_name], schedule_name, mode)
        assert [r.verdict for r in first.results] == [
            r.verdict for r in second.results
        ]
        assert np.array_equal(first.costs, second.costs)
        assert first.failures_by_kind == second.failures_by_kind
        assert first.retries_total == second.retries_total
        assert [r.observed for r in first.results] == [
            r.observed for r in second.results
        ]


@pytest.mark.parametrize("planner_name", sorted(PLANNERS))
class TestChaosBehaviour:
    def test_different_seeds_differ(self, instance, plans, planner_name):
        """The seed is live — faults are injected, not a no-op."""
        a = run_chaos(
            instance, plans[planner_name], "transient-drops",
            DegradationMode.ABSTAIN, seed=1, retry=NO_RETRY,
        )
        b = run_chaos(
            instance, plans[planner_name], "transient-drops",
            DegradationMode.ABSTAIN, seed=2, retry=NO_RETRY,
        )
        assert a.acquisitions_failed > 0
        assert (
            a.abstained != b.abstained
            or not np.array_equal(a.costs, b.costs)
        )

    def test_abstains_surface_under_unretried_storm(
        self, instance, plans, planner_name
    ):
        outcome = run_chaos(
            instance, plans[planner_name], "transient-drops",
            DegradationMode.ABSTAIN, retry=NO_RETRY,
        )
        assert outcome.tuples_abstained > 0
        assert outcome.tuples_degraded >= outcome.tuples_abstained

    def test_skip_decides_more_than_abstain(self, instance, plans, planner_name):
        """SKIP's whole point: fewer withdrawn tuples than ABSTAIN."""
        abstain = run_chaos(
            instance, plans[planner_name], "dead-conditioner",
            DegradationMode.ABSTAIN, retry=NO_RETRY,
        )
        skip = run_chaos(
            instance, plans[planner_name], "dead-conditioner",
            DegradationMode.SKIP, retry=NO_RETRY,
        )
        assert skip.tuples_abstained <= abstain.tuples_abstained

    def test_retries_recover_tuples(self, instance, plans, planner_name):
        unretried = run_chaos(
            instance, plans[planner_name], "transient-drops",
            DegradationMode.ABSTAIN, retry=NO_RETRY,
        )
        retried = run_chaos(
            instance, plans[planner_name], "transient-drops",
            DegradationMode.ABSTAIN, retry=RetryPolicy(max_retries=3),
        )
        assert retried.tuples_abstained < unretried.tuples_abstained
        assert retried.retry_cost > 0.0
