"""Property tests: a zero-failure schedule is the identity transform.

A :class:`FaultSchedule` with every rate zero must make the
fault-injected stack byte-identical to the plain one — same verdicts,
same float costs (not just approximately equal), same matches — on the
per-tuple executor, the dataset walker, the sensor-network simulator,
and the adaptive streaming layer.  This pins down that the injector
draws no randomness and adds no cost for fault-free attributes.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    Attribute,
    ConjunctiveQuery,
    RangePredicate,
    Schema,
    dataset_execution,
)
from repro.execution import (
    AdaptiveStreamExecutor,
    Mote,
    PlanExecutor,
    SensorNetworkSimulator,
)
from repro.faults import FaultPolicy, FaultSchedule, FaultTolerantExecutor
from repro.planning import CorrSeqPlanner, GreedyConditionalPlanner
from repro.probability import EmpiricalDistribution

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def faulted_instance(draw):
    """A random correlated instance: schema, data, plan, query."""
    seed = draw(st.integers(0, 2**16))
    n_attributes = draw(st.integers(2, 4))
    rng = np.random.default_rng(seed)
    domains = [int(rng.integers(2, 5)) for _ in range(n_attributes)]
    costs = [float(rng.choice([1.0, 10.0, 100.0])) for _ in range(n_attributes)]
    schema = Schema(
        [
            Attribute(f"x{i}", domains[i], costs[i])
            for i in range(n_attributes)
        ]
    )
    n_rows = draw(st.integers(60, 160))
    driver = rng.integers(1, domains[0] + 1, size=n_rows)
    columns = [driver]
    for i in range(1, n_attributes):
        # Correlate with the first attribute so conditioning pays off.
        noise = rng.integers(0, 2, size=n_rows)
        column = np.clip((driver + noise) % domains[i] + 1, 1, domains[i])
        columns.append(column)
    data = np.stack(columns, axis=1).astype(np.int64)

    predicate_count = draw(st.integers(1, min(2, n_attributes - 1)))
    predicates = []
    for i in range(1, 1 + predicate_count):
        low = draw(st.integers(1, domains[i]))
        high = draw(st.integers(low, domains[i]))
        predicates.append(RangePredicate(f"x{i}", low, high))
    query = ConjunctiveQuery(schema, predicates)

    distribution = EmpiricalDistribution(schema, data, smoothing=0.5)
    planner = GreedyConditionalPlanner(
        distribution, CorrSeqPlanner(distribution), max_splits=2
    )
    plan = planner.plan(query).plan
    return schema, data, plan, query


@given(faulted_instance())
@SETTINGS
def test_zero_schedule_identical_to_dataset_execution(instance):
    schema, data, plan, query = instance
    plain = dataset_execution(plan, data, schema)
    executor = FaultTolerantExecutor(schema, FaultPolicy(), query=query)
    faulted = executor.run(
        plan, data, FaultSchedule.zero(), np.random.default_rng(0)
    )
    assert [r.verdict for r in faulted.results] == list(plain.verdicts)
    assert np.array_equal(faulted.costs, plain.costs)  # byte-identical floats
    assert faulted.total_cost == plain.total_cost
    assert faulted.retry_cost == 0.0
    assert faulted.acquisitions_failed == 0
    assert faulted.tuples_degraded == 0
    assert faulted.tuples_abstained == 0


@given(faulted_instance())
@SETTINGS
def test_zero_schedule_identical_to_per_tuple_executor(instance):
    schema, data, plan, query = instance
    plain = PlanExecutor(schema)
    executor = FaultTolerantExecutor(schema, FaultPolicy(), query=query)
    faulted = executor.run(
        plan, data, FaultSchedule.zero(), np.random.default_rng(0)
    )
    for row, result in zip(data, faulted.results):
        reference = plain.execute(plan, row)
        assert result.verdict is reference.verdict
        assert result.cost == reference.cost
        assert result.acquired == reference.acquired


@given(faulted_instance())
@SETTINGS
def test_zero_schedule_identical_in_simulator(instance):
    schema, data, plan, query = instance
    half = len(data) // 2
    motes = [Mote(0, data[:half]), Mote(1, data[half : 2 * half])]
    simulator = SensorNetworkSimulator(schema, motes)
    plain = simulator.run(plan)
    faulted = simulator.run_faulted(
        plan, FaultSchedule.zero(), np.random.default_rng(0), query=query
    )
    assert faulted.matches == plain.matches
    assert faulted.acquisition_energy == plain.acquisition_energy
    assert faulted.dissemination_energy == plain.dissemination_energy
    assert faulted.result_energy == plain.result_energy
    assert faulted.total_energy == plain.total_energy
    assert faulted.acquisitions_failed == 0
    assert faulted.retries_total == 0
    assert faulted.tuples_abstained == 0
    assert faulted.retry_energy == 0.0


@given(faulted_instance())
@SETTINGS
def test_zero_schedule_identical_in_streaming(instance):
    schema, data, plan, query = instance

    def factory(distribution):
        return GreedyConditionalPlanner(
            distribution, CorrSeqPlanner(distribution), max_splits=2
        )

    def build(**fault_kwargs):
        return AdaptiveStreamExecutor(
            schema,
            query,
            factory,
            window=40,
            replan_interval=30,
            drift_threshold=None,
            **fault_kwargs,
        )

    plain = build().process(data)
    faulted = build(
        fault_schedule=FaultSchedule.zero(),
        fault_rng=np.random.default_rng(0),
    ).process(data)
    assert np.array_equal(faulted.verdicts, plain.verdicts)
    assert np.array_equal(faulted.costs, plain.costs)
    assert len(faulted.replans) == len(plain.replans)
    for ours, theirs in zip(faulted.replans, plain.replans):
        assert ours.position == theirs.position
        assert ours.reason == theirs.reason
        assert ours.expected_cost == theirs.expected_cost
    assert faulted.abstained is not None
    assert not faulted.abstained.any()
    assert faulted.faults is not None
    assert faulted.faults.acquisitions_failed == 0
    assert faulted.faults.retry_cost == 0.0
