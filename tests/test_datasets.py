"""Tests for the Lab, Garden, and Synthetic dataset generators.

Each generator must exhibit the correlation structure DESIGN.md promises —
that structure is what the paper's algorithms exploit, so it is the
substance of the substitution argument.
"""

import numpy as np
import pytest

from repro.data import (
    generate_garden_dataset,
    generate_lab_dataset,
    generate_synthetic_dataset,
    time_split,
)
from repro.exceptions import SchemaError


class TestLab:
    @pytest.fixture(scope="class")
    def lab(self):
        return generate_lab_dataset(n_readings=40_000, n_motes=12, seed=0)

    def test_schema_layout(self, lab):
        assert lab.schema.names == (
            "nodeid",
            "hour",
            "voltage",
            "light",
            "temp",
            "humidity",
        )
        assert lab.schema["light"].cost == 100.0
        assert lab.schema["hour"].cost == 1.0
        assert lab.schema["nodeid"].domain_size == 12

    def test_values_in_domain(self, lab):
        for index, attribute in enumerate(lab.schema):
            column = lab.data[:, index]
            assert column.min() >= 1
            assert column.max() <= attribute.domain_size

    def test_night_is_dark(self, lab):
        """The Figure 1 banding: night light levels sit far below daytime."""
        hour = lab.column("hour")
        light = lab.raw_column("light")
        night = (hour <= 4) | (hour >= 23)
        day = (hour >= 11) & (hour <= 15)
        assert light[night].mean() < light[day].mean() / 3

    def test_quiet_zone_darker_at_night(self, lab):
        """Figure 9's nodeid split: motes 1-6 go dark after hours, the other
        zone stays lit more often."""
        hour = lab.column("hour")
        nodeid = lab.column("nodeid")
        light = lab.raw_column("light")
        evening = (hour >= 20) & (hour <= 23)
        quiet = evening & (nodeid <= 6)
        busy = evening & (nodeid >= 7)
        assert light[quiet].mean() < light[busy].mean()

    def test_nights_cooler_and_more_humid(self, lab):
        hour = lab.column("hour")
        temp = lab.raw_column("temp")
        humidity = lab.raw_column("humidity")
        night = (hour <= 4) | (hour >= 23)
        day = (hour >= 10) & (hour <= 16)
        assert temp[night].mean() < temp[day].mean()
        assert humidity[night].mean() > humidity[day].mean()

    def test_projection(self, lab):
        schema, data = lab.project(["hour", "light"])
        assert schema.names == ("hour", "light")
        assert data.shape == (len(lab.data), 2)
        assert np.array_equal(data[:, 0], lab.column("hour"))

    def test_reproducible(self):
        first = generate_lab_dataset(n_readings=2000, n_motes=5, seed=7)
        second = generate_lab_dataset(n_readings=2000, n_motes=5, seed=7)
        assert np.array_equal(first.data, second.data)

    def test_domain_overrides(self):
        lab = generate_lab_dataset(
            n_readings=2000, n_motes=5, seed=1, domain_sizes={"light": 6}
        )
        assert lab.schema["light"].domain_size == 6
        assert lab.column("light").max() <= 6

    def test_validation(self):
        with pytest.raises(SchemaError):
            generate_lab_dataset(n_readings=0)
        with pytest.raises(SchemaError):
            generate_lab_dataset(n_motes=0)


class TestGarden:
    @pytest.fixture(scope="class")
    def garden(self):
        return generate_garden_dataset(n_motes=5, n_epochs=6000, seed=0)

    def test_attribute_count_matches_paper(self, garden):
        # Garden-5: 16 attributes (3 per mote + time); Garden-11: 34.
        assert len(garden.schema) == 16
        eleven = generate_garden_dataset(n_motes=11, n_epochs=100, seed=0)
        assert len(eleven.schema) == 34

    def test_costs(self, garden):
        assert garden.schema["m1_temp"].cost == 100.0
        assert garden.schema["m1_humidity"].cost == 100.0
        assert garden.schema["m1_voltage"].cost == 1.0
        assert garden.schema["hour"].cost == 1.0

    def test_cross_mote_temperature_correlation(self, garden):
        """The structure the Garden experiments exploit."""
        t1 = garden.raw[:, garden.schema.index_of("m1_temp")]
        t4 = garden.raw[:, garden.schema.index_of("m4_temp")]
        assert np.corrcoef(t1, t4)[0, 1] > 0.85

    def test_temp_humidity_anticorrelation(self, garden):
        temp = garden.raw[:, garden.schema.index_of("m2_temp")]
        humidity = garden.raw[:, garden.schema.index_of("m2_humidity")]
        assert np.corrcoef(temp, humidity)[0, 1] < -0.5

    def test_attribute_names_helper(self, garden):
        assert garden.attribute_names("temp") == [
            "m1_temp",
            "m2_temp",
            "m3_temp",
            "m4_temp",
            "m5_temp",
        ]

    def test_values_in_domain(self, garden):
        for index, attribute in enumerate(garden.schema):
            column = garden.data[:, index]
            assert 1 <= column.min() and column.max() <= attribute.domain_size

    def test_reproducible(self):
        a = generate_garden_dataset(n_motes=3, n_epochs=500, seed=3)
        b = generate_garden_dataset(n_motes=3, n_epochs=500, seed=3)
        assert np.array_equal(a.data, b.data)

    def test_validation(self):
        with pytest.raises(SchemaError):
            generate_garden_dataset(n_motes=0)
        with pytest.raises(SchemaError):
            generate_garden_dataset(n_epochs=0)


class TestSynthetic:
    def test_group_structure(self):
        dataset = generate_synthetic_dataset(10, 3, 0.5, n_rows=100, seed=0)
        assert dataset.groups == ((0, 1, 2, 3), (4, 5, 6, 7), (8, 9))
        assert dataset.cheap_indices == (0, 4, 8)

    def test_costs(self):
        dataset = generate_synthetic_dataset(6, 2, 0.5, n_rows=100, seed=0)
        for index in dataset.cheap_indices:
            assert dataset.schema[index].cost == 1.0
        for index in dataset.expensive_indices:
            assert dataset.schema[index].cost == 100.0

    def test_intra_group_agreement_at_least_80_percent(self):
        dataset = generate_synthetic_dataset(8, 3, 0.5, n_rows=20_000, seed=1)
        a, b = dataset.groups[0][0], dataset.groups[0][2]
        agreement = np.mean(dataset.data[:, a] == dataset.data[:, b])
        assert agreement >= 0.80

    def test_inter_group_independence(self):
        dataset = generate_synthetic_dataset(8, 3, 0.5, n_rows=20_000, seed=2)
        a = dataset.groups[0][0]
        b = dataset.groups[1][0]
        agreement = np.mean(dataset.data[:, a] == dataset.data[:, b])
        assert abs(agreement - 0.5) < 0.03

    def test_marginal_selectivity(self):
        for sel in (0.3, 0.5, 0.8):
            dataset = generate_synthetic_dataset(6, 1, sel, n_rows=20_000, seed=3)
            for index in range(6):
                marginal = np.mean(dataset.data[:, index] == 2)
                assert marginal == pytest.approx(sel, abs=0.03)

    def test_query_targets_expensive_attributes(self):
        dataset = generate_synthetic_dataset(10, 4, 0.5, n_rows=100, seed=4)
        query = dataset.query()
        assert len(query) == len(dataset.expensive_indices)
        assert set(query.attribute_indices) == set(dataset.expensive_indices)

    def test_remainder_group(self):
        dataset = generate_synthetic_dataset(7, 2, 0.5, n_rows=100, seed=5)
        assert dataset.groups == ((0, 1, 2), (3, 4, 5), (6,))

    def test_validation(self):
        with pytest.raises(SchemaError):
            generate_synthetic_dataset(0, 1, 0.5)
        with pytest.raises(SchemaError):
            generate_synthetic_dataset(4, -1, 0.5)
        with pytest.raises(SchemaError):
            generate_synthetic_dataset(4, 1, 1.5)
        with pytest.raises(SchemaError):
            generate_synthetic_dataset(4, 1, 0.5, n_rows=0)


class TestTimeSplit:
    def test_prefix_suffix(self):
        data = np.arange(20).reshape(10, 2)
        train, test = time_split(data, 0.7)
        assert len(train) == 7 and len(test) == 3
        assert np.array_equal(np.vstack([train, test]), data)

    def test_extremes_clamped(self):
        data = np.arange(8).reshape(4, 2)
        train, test = time_split(data, 0.01)
        assert len(train) == 1 and len(test) == 3

    def test_validation(self):
        data = np.arange(8).reshape(4, 2)
        with pytest.raises(SchemaError):
            time_split(data, 0.0)
        with pytest.raises(SchemaError):
            time_split(np.arange(4), 0.5)
