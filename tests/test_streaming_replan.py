"""Replan-event delivery and profile-drift replanning in the stream executor.

Covers the ``on_replan`` contract (event fields, ordering, exactly one
callback per replan) and the observability acceptance scenario: a
:class:`~repro.obs.DriftMonitor`-backed executor detecting an injected
distribution shift and triggering a ``"profile-drift"`` replan.
"""

import numpy as np
import pytest

from repro.core import Attribute, ConjunctiveQuery, RangePredicate, Schema
from repro.exceptions import PlanningError
from repro.execution import AdaptiveStreamExecutor, ReplanEvent
from repro.obs import PlanProfile
from repro.planning import CorrSeqPlanner, GreedyConditionalPlanner


@pytest.fixture
def schema() -> Schema:
    return Schema(
        [
            Attribute("mode", 2, 1.0),
            Attribute("p", 2, 100.0),
            Attribute("q", 2, 100.0),
        ]
    )


@pytest.fixture
def query(schema) -> ConjunctiveQuery:
    return ConjunctiveQuery(
        schema, [RangePredicate("p", 2, 2), RangePredicate("q", 2, 2)]
    )


def factory(distribution):
    return GreedyConditionalPlanner(
        distribution, CorrSeqPlanner(distribution), max_splits=3
    )


def regime_stream(n: int, flipped: bool, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    mode = rng.integers(1, 3, n)
    fail_p = (mode == 1) != flipped
    p = np.where(fail_p, 1, rng.integers(1, 3, n))
    q = np.where(~fail_p, 1, rng.integers(1, 3, n))
    return np.stack([mode, p, q], axis=1).astype(np.int64)


class TestReplanEventContract:
    def test_event_fields(self):
        event = ReplanEvent(position=500, expected_cost=12.5, reason="interval")
        assert event.position == 500
        assert event.expected_cost == 12.5
        assert event.reason == "interval"
        assert event.drift_score is None  # only profile-drift carries one

    def test_exactly_one_callback_per_replan(self, schema, query):
        received: list[ReplanEvent] = []
        executor = AdaptiveStreamExecutor(
            schema,
            query,
            factory,
            window=800,
            replan_interval=500,
            drift_threshold=None,
            on_replan=received.append,
        )
        report = executor.process(regime_stream(2600, flipped=False, seed=2))
        assert tuple(received) == report.replans
        assert len(received) == len(report.replans)

    def test_events_arrive_in_stream_order(self, schema, query):
        received: list[ReplanEvent] = []
        executor = AdaptiveStreamExecutor(
            schema,
            query,
            factory,
            window=800,
            replan_interval=400,
            drift_threshold=None,
            on_replan=received.append,
        )
        executor.process(regime_stream(2500, flipped=False, seed=3))
        positions = [event.position for event in received]
        assert positions == sorted(positions)
        assert len(set(positions)) == len(positions)

    def test_interval_replans_carry_no_drift_score(self, schema, query):
        executor = AdaptiveStreamExecutor(
            schema,
            query,
            factory,
            window=800,
            replan_interval=500,
            drift_threshold=None,
        )
        report = executor.process(regime_stream(2100, flipped=False, seed=4))
        assert report.replans
        for event in report.replans:
            assert event.reason == "interval"
            assert event.drift_score is None


class TestProfileDriftReplanning:
    def test_validation(self, schema, query):
        with pytest.raises(PlanningError):
            AdaptiveStreamExecutor(
                schema, query, factory, profile_drift_threshold=0.0
            )
        with pytest.raises(PlanningError):
            AdaptiveStreamExecutor(
                schema, query, factory, profile_check_every=0
            )
        with pytest.raises(PlanningError):
            AdaptiveStreamExecutor(
                schema, query, factory, profile_min_tuples=0
            )

    def test_injected_shift_triggers_profile_drift_replan(self, schema, query):
        """The acceptance scenario: interval and cost-ratio triggers are
        off, so only the DriftMonitor's chi-square score can fire — and
        it must, shortly after the regime flips."""
        before = regime_stream(3000, flipped=False, seed=5)
        after = regime_stream(3000, flipped=True, seed=6)
        stream = np.vstack([before, after])
        received: list[ReplanEvent] = []
        executor = AdaptiveStreamExecutor(
            schema,
            query,
            factory,
            window=1500,
            replan_interval=100_000,  # interval replans effectively off
            drift_threshold=None,  # cost-ratio trigger off
            profile_drift_threshold=25.0,
            profile_check_every=64,
            profile_min_tuples=256,
            on_replan=received.append,
        )
        report = executor.process(stream)
        drift_events = [
            event for event in report.replans if event.reason == "profile-drift"
        ]
        assert drift_events, "the injected shift must trigger a replan"
        first = drift_events[0]
        assert first.position > 3000  # only after the flip
        assert first.drift_score is not None and first.drift_score > 25.0
        assert tuple(received) == report.replans
        # Verdicts stay exact throughout the shift.
        truth = np.array([query.evaluate(row) for row in stream])
        assert np.array_equal(report.verdicts, truth)

    def test_no_spurious_drift_replans_in_distribution(self, schema, query):
        executor = AdaptiveStreamExecutor(
            schema,
            query,
            factory,
            window=1500,
            replan_interval=100_000,
            drift_threshold=None,
            profile_drift_threshold=25.0,
            profile_check_every=64,
            profile_min_tuples=256,
        )
        report = executor.process(regime_stream(5000, flipped=False, seed=7))
        reasons = {event.reason for event in report.replans}
        assert "profile-drift" not in reasons

    def test_external_profile_sink_sees_all_plans(self, schema, query):
        sink = PlanProfile(schema)
        executor = AdaptiveStreamExecutor(
            schema,
            query,
            factory,
            window=800,
            replan_interval=500,
            drift_threshold=None,
            profile_drift_threshold=25.0,
            profile_sink=sink,
        )
        stream = regime_stream(2000, flipped=False, seed=8)
        executor.process(stream)
        warmup = min(800, 500)
        assert sink.tuples == len(stream) - warmup
