"""Tests for the sensor-network simulator."""

import numpy as np
import pytest

from repro.core import (
    Attribute,
    ConjunctiveQuery,
    ExistentialQuery,
    RangePredicate,
    Schema,
    SequentialNode,
    SequentialStep,
    VerdictLeaf,
)
from repro.exceptions import AcquisitionError
from repro.execution import Mote, SensorNetworkSimulator


@pytest.fixture
def schema() -> Schema:
    return Schema([Attribute("hour", 4, 1.0), Attribute("temp", 4, 100.0)])


def make_motes(schema, seed=0, n_motes=3, epochs=100):
    rng = np.random.default_rng(seed)
    motes = []
    for mote_id in range(1, n_motes + 1):
        readings = np.stack(
            [rng.integers(1, 5, epochs), rng.integers(1, 5, epochs)], axis=1
        ).astype(np.int64)
        motes.append(Mote(mote_id, readings))
    return motes


def temp_plan():
    return SequentialNode(
        steps=(
            SequentialStep(
                predicate=RangePredicate("temp", 4, 4), attribute_index=1
            ),
        )
    )


class TestConstruction:
    def test_requires_motes(self, schema):
        with pytest.raises(AcquisitionError):
            SensorNetworkSimulator(schema, [])

    def test_requires_consistent_shapes(self, schema):
        motes = [
            Mote(1, np.ones((10, 2), dtype=np.int64)),
            Mote(2, np.ones((5, 2), dtype=np.int64)),
        ]
        with pytest.raises(AcquisitionError):
            SensorNetworkSimulator(schema, motes)

    def test_mote_readings_must_be_2d(self):
        with pytest.raises(AcquisitionError):
            Mote(1, np.ones(5, dtype=np.int64))


class TestRun:
    def test_acquisition_energy_per_mote(self, schema):
        motes = make_motes(schema)
        sim = SensorNetworkSimulator(schema, motes, radio_cost_per_byte=0.0)
        report = sim.run(temp_plan(), epochs=50)
        # Every epoch each mote reads temp: 50 * 100 units.
        for mote in motes:
            assert report.acquisition_energy[mote.mote_id] == 50 * 100.0
        assert report.epochs == 50

    def test_dissemination_cost_scales_with_plan_size(self, schema):
        motes = make_motes(schema)
        sim = SensorNetworkSimulator(schema, motes, radio_cost_per_byte=2.0)
        plan = temp_plan()
        assert sim.dissemination_cost(plan) == plan.size_bytes() * 2.0
        report = sim.run(plan, epochs=1)
        for mote in motes:
            assert report.dissemination_energy[mote.mote_id] == sim.dissemination_cost(
                plan
            )

    def test_result_energy_counts_matches(self, schema):
        motes = make_motes(schema, seed=2)
        sim = SensorNetworkSimulator(
            schema, motes, radio_cost_per_byte=1.0, result_bytes=4
        )
        report = sim.run(temp_plan(), epochs=100)
        expected_matches = sum(
            int(np.sum(mote.readings[:100, 1] == 4)) for mote in motes
        )
        assert report.matches == expected_matches
        total_result_energy = sum(report.result_energy.values())
        assert total_result_energy == expected_matches * 4.0

    def test_total_energy_aggregates(self, schema):
        motes = make_motes(schema)
        sim = SensorNetworkSimulator(schema, motes, radio_cost_per_byte=0.5)
        report = sim.run(temp_plan(), epochs=10)
        manual = sum(report.mote_energy(m.mote_id) for m in motes)
        assert report.total_energy == pytest.approx(manual)
        assert report.energy_per_epoch == pytest.approx(manual / 10)

    def test_effective_alpha(self, schema):
        sim = SensorNetworkSimulator(
            schema, make_motes(schema), radio_cost_per_byte=3.0
        )
        assert sim.effective_alpha(lifetime_epochs=100) == pytest.approx(0.03)
        with pytest.raises(AcquisitionError):
            sim.effective_alpha(0)


class TestExistential:
    def test_stops_at_first_match(self, schema):
        # Mote 3 always matches; motes 1-2 never do.
        epochs = 20
        never = np.column_stack(
            [np.ones(epochs, dtype=np.int64), np.ones(epochs, dtype=np.int64)]
        )
        always = np.column_stack(
            [np.ones(epochs, dtype=np.int64), np.full(epochs, 4, dtype=np.int64)]
        )
        motes = [Mote(1, never), Mote(2, never), Mote(3, always)]
        sim = SensorNetworkSimulator(schema, motes, radio_cost_per_byte=0.0)
        query = ExistentialQuery(
            ConjunctiveQuery(schema, [RangePredicate("temp", 4, 4)])
        )
        report = sim.run_existential(temp_plan(), query)
        # The always-matching mote is polled first (highest match rate), so
        # only one acquisition happens per epoch.
        assert report.acquisitions_performed == epochs
        assert report.matches == epochs
        assert report.acquisition_energy.get(1, 0.0) == 0.0

    def test_polls_through_misses(self, schema):
        epochs = 10
        never = np.column_stack(
            [np.ones(epochs, dtype=np.int64), np.ones(epochs, dtype=np.int64)]
        )
        motes = [Mote(1, never), Mote(2, never)]
        sim = SensorNetworkSimulator(schema, motes, radio_cost_per_byte=0.0)
        query = ExistentialQuery(
            ConjunctiveQuery(schema, [RangePredicate("temp", 4, 4)])
        )
        report = sim.run_existential(temp_plan(), query)
        assert report.matches == 0
        assert report.acquisitions_performed == epochs * 2  # every mote, every epoch

    def test_respects_supplied_match_rates(self, schema):
        epochs = 5
        readings = np.column_stack(
            [np.ones(epochs, dtype=np.int64), np.full(epochs, 4, dtype=np.int64)]
        )
        motes = [Mote(1, readings), Mote(2, readings.copy())]
        sim = SensorNetworkSimulator(schema, motes, radio_cost_per_byte=0.0)
        query = ExistentialQuery(
            ConjunctiveQuery(schema, [RangePredicate("temp", 4, 4)])
        )
        report = sim.run_existential(
            temp_plan(), query, training_match_rates={1: 0.1, 2: 0.9}
        )
        # Mote 2 ranked first and always matches: mote 1 never consulted.
        assert report.acquisition_energy.get(1, 0.0) == 0.0


class TestVerdictLeafPlan:
    def test_free_plan_costs_only_radio(self, schema):
        motes = make_motes(schema)
        sim = SensorNetworkSimulator(
            schema, motes, radio_cost_per_byte=1.0, result_bytes=0
        )
        report = sim.run(VerdictLeaf(False), epochs=10)
        assert all(v == 0.0 for v in report.acquisition_energy.values())
        assert report.matches == 0


class TestLimitQueries:
    def test_limit_stops_after_k_matches(self, schema):
        from repro.core import ConjunctiveQuery, LimitQuery, RangePredicate

        epochs = 10
        always = np.column_stack(
            [np.ones(epochs, dtype=np.int64), np.full(epochs, 4, dtype=np.int64)]
        )
        motes = [Mote(mote_id, always.copy()) for mote_id in (1, 2, 3, 4)]
        sim = SensorNetworkSimulator(schema, motes, radio_cost_per_byte=0.0)
        query = LimitQuery(
            ConjunctiveQuery(schema, [RangePredicate("temp", 4, 4)]), limit=2
        )
        report = sim.run_limit(temp_plan(), query)
        # Every mote matches, so each epoch stops after exactly 2 polls.
        assert report.acquisitions_performed == epochs * 2
        assert report.matches == epochs * 2

    def test_limit_exhausts_fleet_when_scarce(self, schema):
        from repro.core import ConjunctiveQuery, LimitQuery, RangePredicate

        epochs = 6
        never = np.column_stack(
            [np.ones(epochs, dtype=np.int64), np.ones(epochs, dtype=np.int64)]
        )
        motes = [Mote(mote_id, never.copy()) for mote_id in (1, 2, 3)]
        sim = SensorNetworkSimulator(schema, motes, radio_cost_per_byte=0.0)
        query = LimitQuery(
            ConjunctiveQuery(schema, [RangePredicate("temp", 4, 4)]), limit=2
        )
        report = sim.run_limit(temp_plan(), query)
        assert report.matches == 0
        assert report.acquisitions_performed == epochs * 3

    def test_limit_larger_than_matches_collects_all(self, schema):
        from repro.core import ConjunctiveQuery, LimitQuery, RangePredicate

        epochs = 5
        always = np.column_stack(
            [np.ones(epochs, dtype=np.int64), np.full(epochs, 4, dtype=np.int64)]
        )
        never = np.column_stack(
            [np.ones(epochs, dtype=np.int64), np.ones(epochs, dtype=np.int64)]
        )
        motes = [Mote(1, always), Mote(2, never)]
        sim = SensorNetworkSimulator(schema, motes, radio_cost_per_byte=0.0)
        query = LimitQuery(
            ConjunctiveQuery(schema, [RangePredicate("temp", 4, 4)]), limit=5
        )
        report = sim.run_limit(temp_plan(), query)
        assert report.matches == epochs  # one match per epoch available
