"""The sharded front door, driven deterministically in-process.

The ``inproc`` backend runs real :class:`ShardServer` instances on the
event loop with the same batching discipline as the worker processes, so
routing, coalescing, admission, outage handling, and the version
broadcast are all exercised without spawning a single process.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from tests.conftest import make_day_night_data
from repro.cluster import ClusterConfig, ShardConfig, ShardedServiceCluster
from repro.core import Attribute, Schema
from repro.exceptions import ClusterError

SCHEMA = Schema(
    [
        Attribute("hour", 2, 0.0),
        Attribute("temp", 2, 1.0),
        Attribute("light", 2, 1.0),
    ]
)
HISTORY = make_day_night_data()
READINGS = HISTORY[:40]
QUERY = "SELECT temp WHERE temp = 2 AND light = 2"
CHAOS = {"faults": {"temp": {"drop_rate": 0.4}}}

# Distinct query shapes for load tests (each its own fingerprint).
SHAPES = [
    "SELECT temp WHERE temp = 2",
    "SELECT light WHERE light = 2",
    "SELECT temp WHERE temp = 1 AND light = 2",
    "SELECT light WHERE temp = 2 AND light = 1",
    "SELECT temp, light WHERE temp = 2 AND light = 2",
    "SELECT hour WHERE hour = 2",
    "SELECT hour WHERE hour = 1 AND temp = 2",
    "SELECT hour, temp WHERE light = 1",
]


def make_cluster(**overrides) -> ShardedServiceCluster:
    config = ClusterConfig(
        shard_config=ShardConfig(schema=SCHEMA, history=HISTORY),
        shards=overrides.pop("shards", 2),
        backend="inproc",
        **overrides,
    )
    return ShardedServiceCluster(config)


def test_routing_is_stable_per_fingerprint() -> None:
    async def main() -> None:
        async with make_cluster() as cluster:
            shards = {
                (await cluster.execute(QUERY, READINGS)).shard
                for _ in range(5)
            }
            assert len(shards) == 1
            # an equivalent spelling routes identically (canonical digest)
            reordered = "SELECT temp WHERE light = 2 AND temp = 2"
            response = await cluster.execute(reordered, READINGS)
            assert {response.shard} == shards

    asyncio.run(main())


def test_coalesced_wave_executes_once_and_matches() -> None:
    async def main() -> None:
        async with make_cluster() as cluster:
            wave = await cluster.execute_many([(QUERY, READINGS)] * 16)
            baseline = await cluster.execute(QUERY, HISTORY[40:80])
            assert all(r.ok for r in wave) and baseline.ok
            stats = cluster.front_door_stats()
            # 16 identical requests crossed the shard boundary once.
            assert stats["coalescing"]["dispatched_requests"] == 2
            assert stats["coalescing"]["coalesced_requests"] == 15
            assert sum(r.coalesced for r in wave) == 15
            first = wave[0].result
            assert all(r.result.rows == first.rows for r in wave)
            # different readings did NOT coalesce with the wave
            assert not baseline.coalesced
            assert baseline.result.rows != first.rows

    asyncio.run(main())


def test_coalesced_equals_uncoalesced_byte_for_byte() -> None:
    async def run(coalescing: bool) -> list:
        async with make_cluster(coalescing=coalescing) as cluster:
            responses = await cluster.execute_many(
                [(QUERY, READINGS)] * 8
            )
            assert all(r.ok for r in responses)
            return [r.result for r in responses]

    merged = asyncio.run(run(True))
    separate = asyncio.run(run(False))
    for a, b in zip(merged, separate):
        assert a.rows == b.rows
        assert a.where_cost == b.where_cost
        assert a.total_cost == b.total_cost

    async def chaos(coalescing: bool) -> list:
        async with make_cluster(coalescing=coalescing) as cluster:
            responses = await cluster.execute_many(
                [(QUERY, READINGS)] * 8,
                fault_schedule=CHAOS,
                fault_seed=23,
                degradation="skip",
            )
            assert all(r.ok for r in responses)
            return [r.payload for r in responses]

    merged_chaos = asyncio.run(chaos(True))
    separate_chaos = asyncio.run(chaos(False))
    for a, b in zip(merged_chaos, separate_chaos):
        assert a.result.rows == b.result.rows
        assert a.abstained_rows == b.abstained_rows
        assert a.tuples_degraded == b.tuples_degraded
        assert a.retries_total == b.retries_total


def test_abstain_sheds_between_soft_and_hard_limits() -> None:
    async def main() -> None:
        async with make_cluster(
            soft_limit=2, hard_limit=4, shed_mode="abstain"
        ) as cluster:
            responses = await cluster.execute_many(
                [(shape, READINGS) for shape in SHAPES]
            )
            admitted = [r for r in responses if not r.shed]
            shed = [r for r in responses if r.shed]
            assert len(admitted) == 2
            assert len(shed) == len(SHAPES) - 2
            assert {r.shed_reason for r in shed} == {"overload"}
            assert all(not r.ok and r.result is None for r in shed)
            snapshot = cluster.front_door_stats()["admission"]
            assert snapshot["requests_shed"] == len(shed)

    asyncio.run(main())


def test_skip_mode_admits_warm_sheds_cold() -> None:
    async def main() -> None:
        async with make_cluster(
            soft_limit=2, hard_limit=50, shed_mode="skip"
        ) as cluster:
            # Warm two shapes below the soft limit.
            warm_a = await cluster.execute(SHAPES[0], READINGS)
            warm_b = await cluster.execute(SHAPES[1], READINGS)
            assert warm_a.ok and warm_b.ok
            # Saturate: the warm shapes flow, cold shapes shed as "cold".
            wave = [(shape, HISTORY[40:80]) for shape in SHAPES]
            responses = await cluster.execute_many(wave)
            by_shape = dict(zip(SHAPES, responses))
            assert by_shape[SHAPES[0]].ok or by_shape[SHAPES[0]].shed
            cold = [
                r
                for shape, r in by_shape.items()
                if shape not in SHAPES[:2] and r.shed
            ]
            assert cold and {r.shed_reason for r in cold} <= {"cold", "overload"}
            assert all(r.shed_reason == "cold" for r in cold)
            # The two warmed shapes were admitted past the soft limit.
            assert by_shape[SHAPES[0]].ok and by_shape[SHAPES[1]].ok

    asyncio.run(main())


def test_coalescible_requests_never_shed() -> None:
    async def main() -> None:
        async with make_cluster(
            soft_limit=1, hard_limit=2, shed_mode="abstain"
        ) as cluster:
            responses = await cluster.execute_many([(QUERY, READINGS)] * 12)
            assert all(r.ok for r in responses)
            assert sum(r.coalesced for r in responses) == 11

    asyncio.run(main())


def test_version_broadcast_syncs_all_shards() -> None:
    async def main() -> None:
        async with make_cluster(shards=3) as cluster:
            # Bump one shard out-of-band (as a drift replan would) and let
            # the next reply's piggybacked version drive the broadcast.
            servers = cluster._backend._servers
            servers[0].service.engine.bump_statistics_version()
            servers[0].service.engine.bump_statistics_version()
            target = servers[0].service.engine.statistics_version
            for _ in range(6):  # at least one request lands on shard 0
                await cluster.execute(QUERY, READINGS)
                await cluster.execute(SHAPES[5], READINGS)
            await asyncio.gather(*cluster._broadcast_tasks)
            assert cluster.statistics_version == target
            versions = {
                shard: server.service.engine.statistics_version
                for shard, server in servers.items()
            }
            assert set(versions.values()) == {target}

    asyncio.run(main())


def test_invalidate_all_advances_every_shard() -> None:
    async def main() -> None:
        async with make_cluster(shards=3) as cluster:
            before = cluster.statistics_version
            version = await cluster.invalidate_all()
            assert version == before + 1
            servers = cluster._backend._servers
            assert all(
                server.service.engine.statistics_version == version
                for server in servers.values()
            )
            # warm set was dropped: nothing is warm after invalidation
            assert cluster._warm == set()

    asyncio.run(main())


def _shard_of(query: str) -> int:
    async def main() -> int:
        async with make_cluster() as cluster:
            return (await cluster.execute(query, READINGS)).shard

    return asyncio.run(main())


def test_outage_abstain_sheds_pending_soundly() -> None:
    victim = _shard_of(QUERY)

    async def main() -> None:
        async with make_cluster(outage_mode="abstain") as cluster:
            tasks = [
                asyncio.ensure_future(cluster.execute(QUERY, READINGS))
                for _ in range(4)
            ]
            await asyncio.sleep(0)  # let requests open + dispatch
            cluster.induce_outage(victim)
            responses = await asyncio.gather(*tasks)
            assert all(r.shed and r.shed_reason == "outage" for r in responses)
            assert all(r.result is None for r in responses)
            assert cluster.live_shards == frozenset({1 - victim})
            # new traffic for the dead shard's keys is re-routed and served
            after = await cluster.execute(QUERY, READINGS)
            assert after.ok and after.shard == 1 - victim

    asyncio.run(main())


def test_outage_skip_reroutes_pending_correctly() -> None:
    victim = _shard_of(QUERY)

    async def expected_rows() -> tuple:
        async with make_cluster(shards=1) as cluster:
            return (await cluster.execute(QUERY, READINGS)).result.rows

    truth = asyncio.run(expected_rows())

    async def main() -> None:
        async with make_cluster(outage_mode="skip") as cluster:
            tasks = [
                asyncio.ensure_future(cluster.execute(QUERY, READINGS))
                for _ in range(4)
            ]
            await asyncio.sleep(0)
            cluster.induce_outage(victim)
            responses = await asyncio.gather(*tasks)
            assert all(r.ok for r in responses)
            assert all(r.result.rows == truth for r in responses)
            stats = cluster.front_door_stats()
            assert stats["counters"].get("requests_rerouted", 0) >= 1
            assert stats["counters"]["shard_outages"] == 1

    asyncio.run(main())


def test_outage_skip_reroutes_chaos_identically() -> None:
    async def baseline() -> object:
        async with make_cluster(shards=1) as cluster:
            response = await cluster.execute(
                QUERY,
                READINGS,
                fault_schedule=CHAOS,
                fault_seed=5,
                degradation="skip",
            )
            return response.payload

    truth = asyncio.run(baseline())
    victim = _shard_of(QUERY)

    async def main() -> None:
        async with make_cluster(outage_mode="skip") as cluster:
            task = asyncio.ensure_future(
                cluster.execute(
                    QUERY,
                    READINGS,
                    fault_schedule=CHAOS,
                    fault_seed=5,
                    degradation="skip",
                )
            )
            await asyncio.sleep(0)
            cluster.induce_outage(victim)
            response = await task
            assert response.ok
            # deterministic injection: the re-routed execution degraded
            # exactly the way the healthy baseline did
            assert response.payload.result.rows == truth.result.rows
            assert response.payload.abstained_rows == truth.abstained_rows
            assert response.payload.tuples_degraded == truth.tuples_degraded

    asyncio.run(main())


def test_last_shard_down_fails_loudly() -> None:
    async def main() -> None:
        async with make_cluster(shards=1) as cluster:
            cluster.induce_outage(0)
            with pytest.raises(ClusterError):
                await cluster.execute(QUERY, READINGS)

    asyncio.run(main())


def test_execute_requires_started_cluster() -> None:
    cluster = make_cluster()

    async def main() -> None:
        with pytest.raises(ClusterError):
            await cluster.execute(QUERY, READINGS)

    asyncio.run(main())


def test_stats_and_prometheus_cover_all_shards() -> None:
    async def main() -> None:
        async with make_cluster(shards=3) as cluster:
            await cluster.execute_many(
                [(shape, READINGS) for shape in SHAPES]
            )
            stats = await cluster.stats()
            assert sorted(stats["shards"]) == [0, 1, 2]
            merged = stats["merged_metrics"]
            assert merged["counters"]["queries"] >= 1
            front = stats["front_door"]
            assert front["counters"]["requests"] == len(SHAPES)
            exposition = await cluster.prometheus()
            assert 'shard="front_door"' in exposition
            for shard in range(3):
                assert f'shard="{shard}"' in exposition

    asyncio.run(main())


def test_bad_statement_fails_without_poisoning_the_batch() -> None:
    async def main() -> None:
        async with make_cluster() as cluster:
            good, bad = await asyncio.gather(
                cluster.execute(QUERY, READINGS),
                cluster.execute("SELECT nope WHERE nope = 1", READINGS),
                return_exceptions=True,
            )
            assert good.ok
            assert isinstance(bad, Exception)

    asyncio.run(main())
