"""Tests for battery-lifetime projection in the simulator."""

import numpy as np
import pytest

from repro.core import (
    Attribute,
    RangePredicate,
    Schema,
    SequentialNode,
    SequentialStep,
    VerdictLeaf,
)
from repro.exceptions import AcquisitionError
from repro.execution import Mote, SensorNetworkSimulator


@pytest.fixture
def schema() -> Schema:
    return Schema([Attribute("hour", 4, 1.0), Attribute("temp", 4, 100.0)])


def plan_reading_temp():
    return SequentialNode(
        steps=(
            SequentialStep(
                predicate=RangePredicate("temp", 4, 4), attribute_index=1
            ),
        )
    )


def make_simulator(schema, epochs: int = 50):
    rng = np.random.default_rng(0)
    motes = [
        Mote(
            mote_id,
            np.stack(
                [rng.integers(1, 5, epochs), rng.integers(1, 5, epochs)], axis=1
            ).astype(np.int64),
        )
        for mote_id in (1, 2)
    ]
    return SensorNetworkSimulator(
        schema, motes, radio_cost_per_byte=1.0, result_bytes=0
    )


class TestLifetimeProjection:
    def test_lifetime_matches_hand_computation(self, schema):
        simulator = make_simulator(schema)
        plan = plan_reading_temp()
        capacity = 100_000.0
        report = simulator.estimate_lifetime(plan, capacity)
        dissemination = simulator.dissemination_cost(plan)
        # Every epoch reads temp once: 100 units per epoch per mote.
        for mote_id, epochs in report.per_mote_epochs.items():
            assert report.mean_epoch_energy[mote_id] == pytest.approx(100.0)
            assert epochs == pytest.approx((capacity - dissemination) / 100.0)

    def test_network_lifetime_is_minimum(self, schema):
        simulator = make_simulator(schema)
        report = simulator.estimate_lifetime(plan_reading_temp(), 50_000.0)
        assert report.network_lifetime_epochs == min(
            report.per_mote_epochs.values()
        )
        assert report.bottleneck_mote in report.per_mote_epochs

    def test_cheaper_plan_lives_longer(self, schema):
        """The headline claim: halve the per-epoch energy, double the life."""
        simulator = make_simulator(schema)
        expensive = plan_reading_temp()
        free = VerdictLeaf(False)  # no acquisition at all
        lifetime_expensive = simulator.estimate_lifetime(
            expensive, 10_000.0
        ).network_lifetime_epochs
        lifetime_free = simulator.estimate_lifetime(free, 10_000.0)
        assert lifetime_free.network_lifetime_epochs == float("inf")
        assert lifetime_expensive < 10_000.0

    def test_result_reporting_drains_battery(self, schema):
        rng = np.random.default_rng(1)
        epochs = 40
        always_match = np.column_stack(
            [rng.integers(1, 5, epochs), np.full(epochs, 4, dtype=np.int64)]
        )
        simulator = SensorNetworkSimulator(
            schema,
            [Mote(1, always_match)],
            radio_cost_per_byte=1.0,
            result_bytes=10,
        )
        report = simulator.estimate_lifetime(plan_reading_temp(), 100_000.0)
        # 100 acquisition + 10 result bytes at 1.0/byte per epoch.
        assert report.mean_epoch_energy[1] == pytest.approx(110.0)

    def test_validation(self, schema):
        simulator = make_simulator(schema)
        with pytest.raises(AcquisitionError):
            simulator.estimate_lifetime(plan_reading_temp(), 0.0)
        with pytest.raises(AcquisitionError, match="dissemination"):
            simulator.estimate_lifetime(plan_reading_temp(), 1.0)
