"""Tests for acquisition sources and cost models."""

import pytest

from repro.core import Attribute, Schema
from repro.exceptions import AcquisitionError
from repro.execution import SensorBoardSource, TupleSource


@pytest.fixture
def schema() -> Schema:
    return Schema(
        [
            Attribute("id", 4, 1.0),
            Attribute("light", 4, 100.0),
            Attribute("temp", 4, 100.0),
        ]
    )


class TestTupleSource:
    def test_returns_values(self, schema):
        source = TupleSource(schema, [2, 3, 4])
        assert source.acquire(0) == 2
        assert source.acquire(2) == 4

    def test_charges_on_first_read_only(self, schema):
        source = TupleSource(schema, [2, 3, 4])
        source.acquire(1)
        assert source.total_cost == 100.0
        source.acquire(1)
        assert source.total_cost == 100.0  # cached, no second charge

    def test_accumulates_across_attributes(self, schema):
        source = TupleSource(schema, [2, 3, 4])
        source.acquire(0)
        source.acquire(1)
        assert source.total_cost == 101.0
        assert source.acquired_indices == frozenset({0, 1})

    def test_reset(self, schema):
        source = TupleSource(schema, [2, 3, 4])
        source.acquire(1)
        source.reset()
        assert source.total_cost == 0.0
        assert source.acquired_indices == frozenset()
        source.acquire(1)
        assert source.total_cost == 100.0

    def test_index_bounds_checked(self, schema):
        source = TupleSource(schema, [2, 3, 4])
        with pytest.raises(AcquisitionError):
            source.acquire(3)
        with pytest.raises(AcquisitionError):
            source.acquire(-1)

    def test_values_validated_against_schema(self, schema):
        with pytest.raises(Exception):
            TupleSource(schema, [9, 1, 1])


class TestSensorBoardSource:
    def test_first_board_read_pays_power_up(self, schema):
        source = SensorBoardSource(
            schema,
            [1, 2, 3],
            boards={1: "weather", 2: "weather"},
            power_up_cost=50.0,
            per_read_cost=2.0,
        )
        source.acquire(1)
        assert source.total_cost == 52.0  # power-up + read

    def test_second_read_same_board_is_cheap(self, schema):
        source = SensorBoardSource(
            schema,
            [1, 2, 3],
            boards={1: "weather", 2: "weather"},
            power_up_cost=50.0,
            per_read_cost=2.0,
        )
        source.acquire(1)
        source.acquire(2)
        assert source.total_cost == 54.0  # one power-up, two reads

    def test_unboarded_attribute_uses_schema_cost(self, schema):
        source = SensorBoardSource(
            schema,
            [1, 2, 3],
            boards={1: "weather"},
            power_up_cost=50.0,
        )
        source.acquire(0)
        assert source.total_cost == 1.0

    def test_distinct_boards_power_separately(self, schema):
        source = SensorBoardSource(
            schema,
            [1, 2, 3],
            boards={1: "a", 2: "b"},
            power_up_cost=10.0,
            per_read_cost=1.0,
        )
        source.acquire(1)
        source.acquire(2)
        assert source.total_cost == 22.0

    def test_reset_repowers_boards(self, schema):
        source = SensorBoardSource(
            schema,
            [1, 2, 3],
            boards={1: "a"},
            power_up_cost=10.0,
            per_read_cost=1.0,
        )
        source.acquire(1)
        source.reset()
        source.acquire(1)
        assert source.total_cost == 11.0

    def test_negative_costs_rejected(self, schema):
        with pytest.raises(AcquisitionError):
            SensorBoardSource(schema, [1, 1, 1], boards={}, power_up_cost=-1.0)
