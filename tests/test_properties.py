"""Property-based tests of the library's core invariants.

These encode the paper's guarantees as machine-checked properties over
randomized schemas, datasets, and queries:

1. **Correctness** (Section 8): every planner's plan returns exactly the
   query's truth value on every tuple — conditional plans change acquisition
   order, never answers.
2. **Model/data consistency**: Equation 3 under an unsmoothed empirical
   distribution equals Equation 4 over the same data, for every planner's
   output.
3. **Dominance**: exhaustive <= heuristic <= its base sequential plan, and
   OptSeq <= GreedySeq / Naive, all measured on the training distribution.
4. **Plan-structure sanity**: split budgets hold; simplification never
   changes verdicts and never grows the plan.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    Attribute,
    ConjunctiveQuery,
    RangePredicate,
    Schema,
    dataset_execution,
    empirical_cost,
    expected_cost,
    simplify_plan,
)
from repro.planning import (
    ExhaustivePlanner,
    GreedyConditionalPlanner,
    GreedySequentialPlanner,
    NaivePlanner,
    OptimalSequentialPlanner,
)
from repro.probability import EmpiricalDistribution

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def planning_instance(draw):
    """A random small schema + correlated dataset + query."""
    n_attributes = draw(st.integers(2, 4))
    domains = [draw(st.integers(2, 4)) for _ in range(n_attributes)]
    costs = [draw(st.sampled_from([0.0, 1.0, 10.0, 100.0])) for _ in range(n_attributes)]
    schema = Schema(
        [
            Attribute(f"x{i}", domains[i], costs[i])
            for i in range(n_attributes)
        ]
    )
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    n_rows = draw(st.integers(30, 200))
    # Generate with a latent regime so attributes are correlated.
    regime = rng.integers(0, 2, n_rows)
    columns = []
    for i in range(n_attributes):
        base = rng.integers(1, domains[i] + 1, n_rows)
        shifted = np.clip(base + regime, 1, domains[i])
        columns.append(np.where(rng.random(n_rows) < 0.6, shifted, base))
    data = np.stack(columns, axis=1).astype(np.int64)

    n_predicates = draw(st.integers(1, min(3, n_attributes)))
    indices = draw(
        st.permutations(range(n_attributes)).map(lambda p: p[:n_predicates])
    )
    predicates = []
    for index in indices:
        domain = domains[index]
        low = draw(st.integers(1, domain))
        high = draw(st.integers(low, domain))
        predicates.append(RangePredicate(f"x{index}", low, high))
    query = ConjunctiveQuery(schema, predicates)
    return schema, data, query


def all_planners(distribution):
    base = OptimalSequentialPlanner(distribution)
    return [
        NaivePlanner(distribution),
        GreedySequentialPlanner(distribution),
        base,
        GreedyConditionalPlanner(distribution, base, max_splits=3),
    ]


@SETTINGS
@given(instance=planning_instance())
def test_plans_never_change_answers(instance):
    schema, data, query = instance
    distribution = EmpiricalDistribution(schema, data)
    truth = np.fromiter(
        (query.evaluate(row) for row in data), dtype=bool, count=len(data)
    )
    for planner in all_planners(distribution):
        plan = planner.plan(query).plan
        outcome = dataset_execution(plan, data, schema)
        assert np.array_equal(outcome.verdicts, truth), planner.name


@SETTINGS
@given(instance=planning_instance())
def test_expected_cost_equals_empirical_on_training_data(instance):
    schema, data, query = instance
    distribution = EmpiricalDistribution(schema, data)
    for planner in all_planners(distribution):
        result = planner.plan(query)
        model = expected_cost(result.plan, distribution)
        empirical = empirical_cost(result.plan, data, schema)
        assert model == pytest.approx(empirical, rel=1e-9, abs=1e-9), planner.name


@SETTINGS
@given(instance=planning_instance())
def test_reported_cost_matches_plan(instance):
    schema, data, query = instance
    distribution = EmpiricalDistribution(schema, data)
    for planner in all_planners(distribution):
        result = planner.plan(query)
        assert result.expected_cost == pytest.approx(
            expected_cost(result.plan, distribution), rel=1e-9, abs=1e-9
        ), planner.name


@SETTINGS
@given(instance=planning_instance())
def test_planner_dominance_on_training_distribution(instance):
    schema, data, query = instance
    distribution = EmpiricalDistribution(schema, data)
    naive = NaivePlanner(distribution).plan(query).expected_cost
    greedy_seq = GreedySequentialPlanner(distribution).plan(query).expected_cost
    opt_seq = OptimalSequentialPlanner(distribution).plan(query).expected_cost
    heuristic = (
        GreedyConditionalPlanner(
            distribution, OptimalSequentialPlanner(distribution), max_splits=3
        )
        .plan(query)
        .expected_cost
    )
    assert opt_seq <= naive + 1e-9
    assert opt_seq <= greedy_seq + 1e-9
    assert heuristic <= opt_seq + 1e-9


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(instance=planning_instance())
def test_exhaustive_dominates_everything(instance):
    schema, data, query = instance
    distribution = EmpiricalDistribution(schema, data)
    exhaustive = ExhaustivePlanner(distribution).plan(query)
    for planner in all_planners(distribution):
        other = planner.plan(query).expected_cost
        assert exhaustive.expected_cost <= other + 1e-9, planner.name
    # And it, too, answers correctly.
    truth = np.fromiter(
        (query.evaluate(row) for row in data), dtype=bool, count=len(data)
    )
    outcome = dataset_execution(exhaustive.plan, data, schema)
    assert np.array_equal(outcome.verdicts, truth)


@SETTINGS
@given(instance=planning_instance(), budget=st.integers(0, 4))
def test_split_budget_respected(instance, budget):
    schema, data, query = instance
    distribution = EmpiricalDistribution(schema, data)
    result = GreedyConditionalPlanner(
        distribution, GreedySequentialPlanner(distribution), max_splits=budget
    ).plan(query)
    assert result.plan.condition_count() <= budget


@SETTINGS
@given(instance=planning_instance())
def test_simplification_preserves_verdicts_and_shrinks(instance):
    schema, data, query = instance
    distribution = EmpiricalDistribution(schema, data)
    plan = ExhaustivePlanner(distribution).plan(query).plan
    simplified = simplify_plan(plan)
    assert simplified.size_nodes() <= plan.size_nodes()
    assert simplified.size_bytes() <= plan.size_bytes()
    before = dataset_execution(plan, data, schema)
    after = dataset_execution(simplified, data, schema)
    assert np.array_equal(before.verdicts, after.verdicts)
    # Dropping no-op splits can only reduce per-tuple cost.
    assert (after.costs <= before.costs + 1e-9).all()


@SETTINGS
@given(instance=planning_instance())
def test_plan_roundtrips_through_dict(instance):
    from repro.core import plan_from_dict

    schema, data, query = instance
    distribution = EmpiricalDistribution(schema, data)
    plan = GreedyConditionalPlanner(
        distribution, GreedySequentialPlanner(distribution), max_splits=2
    ).plan(query).plan
    assert plan_from_dict(plan.to_dict()) == plan


@SETTINGS
@given(instance=planning_instance(), power_up=st.floats(0.0, 200.0))
def test_cost_model_invariants(instance, power_up):
    """Under a board cost model: verdicts are untouched, Equation 3 still
    equals Equation 4 on training data, and board-aware OptSeq never loses
    to flat-cost OptSeq when both are measured under the true costs."""
    from repro.core.cost_models import BoardAwareCostModel

    schema, data, query = instance
    # Put every even attribute on one shared board.
    boards = {index: "shared" for index in range(0, len(schema), 2)}
    model = BoardAwareCostModel(
        schema, boards, power_up_cost=power_up, per_read_cost=1.0
    )
    distribution = EmpiricalDistribution(schema, data)

    informed = OptimalSequentialPlanner(distribution, cost_model=model).plan(query)
    flat = OptimalSequentialPlanner(distribution).plan(query)

    truth = np.fromiter(
        (query.evaluate(row) for row in data), dtype=bool, count=len(data)
    )
    outcome = dataset_execution(informed.plan, data, schema)
    assert np.array_equal(outcome.verdicts, truth)

    assert informed.expected_cost == pytest.approx(
        empirical_cost(informed.plan, data, schema, model), rel=1e-9, abs=1e-9
    )
    flat_measured = empirical_cost(flat.plan, data, schema, model)
    assert informed.expected_cost <= flat_measured + 1e-9


@SETTINGS
@given(instance=planning_instance())
def test_conditioner_fast_path_matches_reference(instance):
    """The empirical row-set conditioner must agree exactly with the
    generic satisfied_given_satisfied reference on every prefix."""
    from repro.core import RangeVector
    from repro.probability.base import SequentialConditioner

    schema, data, query = instance
    distribution = EmpiricalDistribution(schema, data)
    ranges = RangeVector.full(schema)
    bindings = list(zip(query.predicates, query.attribute_indices))

    fast = distribution.sequential_conditioner(ranges)
    reference = SequentialConditioner(distribution, ranges)
    for binding in bindings:
        for probe in bindings:
            assert fast.pass_probability(probe) == pytest.approx(
                reference.pass_probability(probe), rel=1e-12, abs=1e-12
            )
        batched = fast.pass_probabilities(bindings)
        for position, probe in enumerate(bindings):
            assert batched[position] == pytest.approx(
                reference.pass_probability(probe), rel=1e-12, abs=1e-12
            )
        fast.condition_on(binding)
        reference.condition_on(binding)


@SETTINGS
@given(instance=planning_instance())
def test_bytecode_roundtrip_and_execution(instance):
    """Compiled plans are byte-exact with zeta(P), decompile losslessly,
    and the interpreter agrees with tree evaluation on every row."""
    from repro.execution.bytecode import (
        ByteCodeInterpreter,
        compile_plan,
        decompile_plan,
    )

    schema, data, query = instance
    distribution = EmpiricalDistribution(schema, data)
    plan = GreedyConditionalPlanner(
        distribution, GreedySequentialPlanner(distribution), max_splits=3
    ).plan(query).plan
    bytecode = compile_plan(plan)
    assert len(bytecode) == plan.size_bytes()
    assert decompile_plan(bytecode, schema) == plan
    interpreter = ByteCodeInterpreter(bytecode)
    for row in data[:40]:
        assert interpreter.execute(row) == plan.evaluate(row)
