"""Tests for the ``repro analyze`` CLI verb."""

import json

import pytest

from repro.cli import _analysis_self_test, build_parser, main
from repro.core import (
    Attribute,
    ConditionNode,
    ConjunctiveQuery,
    RangePredicate,
    Schema,
)
from repro.data.trace_io import load_plan, save_plan, save_schema
from repro.verify.mutations import canonical_conditional_plan


@pytest.fixture
def schema():
    return Schema(
        (
            Attribute("pressure", domain_size=8, cost=10.0),
            Attribute("flow", domain_size=8, cost=4.0),
        )
    )


@pytest.fixture
def query(schema):
    return ConjunctiveQuery(
        schema,
        (RangePredicate("pressure", 3, 6), RangePredicate("flow", 2, 7)),
    )


@pytest.fixture
def artifacts(tmp_path, schema, query):
    """schema.json + a clean plan + a plan with a dead re-split branch."""
    save_schema(schema, tmp_path / "schema.json")
    clean = canonical_conditional_plan(query)
    save_plan(clean, tmp_path / "clean.json")
    dirty = ConditionNode(
        attribute="pressure",
        attribute_index=0,
        split_value=3,
        below=ConditionNode(
            attribute="pressure",
            attribute_index=0,
            split_value=3,
            below=clean,
            above=clean,
        ),
        above=clean,
    )
    save_plan(dirty, tmp_path / "dirty.json")
    return tmp_path


QUERY_TEXT = "SELECT * WHERE pressure >= 3 AND pressure <= 6 AND flow >= 2 AND flow <= 7"


class TestParser:
    def test_analyze_args(self):
        args = build_parser().parse_args(
            ["analyze", "--schema", "s.json", "--plan", "p.json", "--fix"]
        )
        assert args.command == "analyze"
        assert args.fix and not args.suite

    def test_suite_flag(self):
        args = build_parser().parse_args(["analyze", "--suite"])
        assert args.suite


class TestFileMode:
    def test_clean_plan_exits_zero(self, artifacts, capsys):
        code = main(
            [
                "analyze",
                "--schema",
                str(artifacts / "schema.json"),
                "--plan",
                str(artifacts / "clean.json"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "root" in out and "clean" in out

    def test_dirty_plan_exits_one_and_reports_df(self, artifacts, capsys):
        code = main(
            [
                "analyze",
                "--schema",
                str(artifacts / "schema.json"),
                "--plan",
                str(artifacts / "dirty.json"),
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "DF004" in out and "DF001" in out

    def test_query_enables_truth_annotations(self, artifacts, capsys):
        code = main(
            [
                "analyze",
                "--schema",
                str(artifacts / "schema.json"),
                "--plan",
                str(artifacts / "clean.json"),
                "--query",
                QUERY_TEXT,
            ]
        )
        assert code == 0
        assert "always false" in capsys.readouterr().out

    def test_missing_plan_is_usage_error(self, artifacts, capsys):
        code = main(["analyze", "--schema", str(artifacts / "schema.json")])
        assert code == 2

    def test_json_output(self, artifacts, capsys):
        code = main(
            [
                "analyze",
                "--schema",
                str(artifacts / "schema.json"),
                "--plan",
                str(artifacts / "dirty.json"),
                "--json",
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["report"]["ok"] is False
        assert "root" in payload["states"]
        codes = {d["code"] for d in payload["report"]["diagnostics"]}
        assert "DF004" in codes


class TestFix:
    def test_fix_writes_smaller_plan(self, artifacts, capsys):
        out_path = artifacts / "fixed.json"
        code = main(
            [
                "analyze",
                "--schema",
                str(artifacts / "schema.json"),
                "--plan",
                str(artifacts / "dirty.json"),
                "--fix",
                "--out",
                str(out_path),
            ]
        )
        assert code == 1  # exit code reflects the *input* plan's findings
        dirty = load_plan(artifacts / "dirty.json")
        fixed = load_plan(out_path)
        assert fixed.size_nodes() < dirty.size_nodes()
        assert "fix: wrote optimized plan" in capsys.readouterr().out
        # The fixed plan is clean.
        assert (
            main(
                [
                    "analyze",
                    "--schema",
                    str(artifacts / "schema.json"),
                    "--plan",
                    str(out_path),
                ]
            )
            == 0
        )

    def test_fix_defaults_to_overwriting_plan(self, artifacts):
        plan_path = artifacts / "dirty.json"
        before = load_plan(plan_path).size_nodes()
        main(
            [
                "analyze",
                "--schema",
                str(artifacts / "schema.json"),
                "--plan",
                str(plan_path),
                "--fix",
            ]
        )
        assert load_plan(plan_path).size_nodes() < before

    def test_fix_keeps_clean_plan_identical(self, artifacts):
        plan_path = artifacts / "clean.json"
        before = load_plan(plan_path)
        code = main(
            [
                "analyze",
                "--schema",
                str(artifacts / "schema.json"),
                "--plan",
                str(plan_path),
                "--fix",
                "--query",
                QUERY_TEXT,
            ]
        )
        assert code == 0
        assert load_plan(plan_path) == before


class TestSuiteSelfTest:
    def test_mutation_corpus_self_test_is_clean(self):
        # The suite's DF corpus check: every seeded mutation fires, every
        # clean control stays silent.  Running it directly keeps the slow
        # planner sweep out of the unit-test tier.
        assert _analysis_self_test() == []
