"""Tests for GreedySplit (Figure 6) and GreedyPlan / Heuristic-k (Figure 7)."""

import numpy as np
import pytest

from repro.core import (
    ConjunctiveQuery,
    RangePredicate,
    RangeVector,
    Schema,
    Attribute,
    empirical_cost,
    expected_cost,
)
from repro.exceptions import PlanningError
from repro.execution import PlanExecutor
from repro.planning import (
    GreedyConditionalPlanner,
    GreedySequentialPlanner,
    OptimalSequentialPlanner,
    SplitPointPolicy,
    greedy_split,
)
from repro.probability import EmpiricalDistribution
from tests.conftest import correlated_dataset


@pytest.fixture
def setup(correlated, correlated_query):
    schema, data = correlated
    distribution = EmpiricalDistribution(schema, data)
    base = OptimalSequentialPlanner(distribution)
    return schema, data, distribution, correlated_query, base


class TestGreedySplit:
    def test_split_beats_or_ties_sequential(self, setup):
        schema, _data, distribution, query, base = setup
        ranges = RangeVector.full(schema)
        sequential_cost, _plan = base.plan_sequence(query, ranges)
        policy = SplitPointPolicy.full(schema).with_query_boundaries(query)
        choice = greedy_split(query, ranges, distribution, base, policy)
        assert choice is not None
        assert choice.cost <= sequential_cost + 1e-9

    def test_split_cost_decomposition(self, setup):
        """The reported split cost must equal acquisition + weighted sides."""
        schema, _data, distribution, query, base = setup
        ranges = RangeVector.full(schema)
        policy = SplitPointPolicy.full(schema).with_query_boundaries(query)
        choice = greedy_split(query, ranges, distribution, base, policy)
        acquisition = schema[choice.attribute_index].cost
        recomposed = (
            acquisition
            + choice.probability_below * choice.below_cost
            + (1.0 - choice.probability_below) * choice.above_cost
        )
        assert choice.cost == pytest.approx(recomposed, rel=1e-12)

    def test_no_candidates_returns_none(self, setup):
        schema, _data, distribution, query, base = setup
        empty_policy = SplitPointPolicy(schema, {})
        choice = greedy_split(
            query, RangeVector.full(schema), distribution, base, empty_policy
        )
        assert choice is None

    def test_picks_the_informative_cheap_attribute(self):
        """With a cheap attribute that predicts which of two expensive
        predicates will fail, the locally optimal split must observe it
        (the Figure 2 pattern: a single predicate can never benefit from
        conditioning, but ordering two of them can)."""
        rng = np.random.default_rng(3)
        n = 2000
        cheap = rng.integers(1, 3, n)
        # cheap=1 => exp_a's predicate almost surely fails;
        # cheap=2 => exp_b's predicate almost surely fails.
        exp_a = np.where(cheap == 1, 1, rng.integers(1, 3, n))
        exp_b = np.where(cheap == 2, 1, rng.integers(1, 3, n))
        noise = rng.integers(1, 3, n)
        schema = Schema(
            [
                Attribute("cheap", 2, 1.0),
                Attribute("noise", 2, 1.0),
                Attribute("exp_a", 2, 100.0),
                Attribute("exp_b", 2, 100.0),
            ]
        )
        data = np.stack([cheap, noise, exp_a, exp_b], axis=1).astype(np.int64)
        distribution = EmpiricalDistribution(schema, data)
        query = ConjunctiveQuery(
            schema, [RangePredicate("exp_a", 2, 2), RangePredicate("exp_b", 2, 2)]
        )
        base = OptimalSequentialPlanner(distribution)
        policy = SplitPointPolicy.full(schema).with_query_boundaries(query)
        choice = greedy_split(
            query, RangeVector.full(schema), distribution, base, policy
        )
        assert choice.attribute_index == 0


class TestHeuristicPlanner:
    def test_zero_splits_equals_base_plan(self, setup):
        _schema, _data, distribution, query, base = setup
        heuristic = GreedyConditionalPlanner(distribution, base, max_splits=0)
        result = heuristic.plan(query)
        base_cost, base_plan = base.plan_sequence(
            query, RangeVector.full(distribution.schema)
        )
        assert result.plan == base_plan
        assert result.expected_cost == pytest.approx(base_cost)

    def test_split_budget_respected(self, setup):
        _schema, _data, distribution, query, base = setup
        for budget in (0, 1, 2, 5):
            result = GreedyConditionalPlanner(
                distribution, base, max_splits=budget
            ).plan(query)
            assert result.plan.condition_count() <= budget

    def test_training_cost_monotone_in_splits(self, setup):
        """More split budget can never hurt on the training distribution."""
        _schema, _data, distribution, query, base = setup
        costs = [
            GreedyConditionalPlanner(distribution, base, max_splits=k)
            .plan(query)
            .expected_cost
            for k in (0, 1, 2, 4, 8)
        ]
        for earlier, later in zip(costs, costs[1:]):
            assert later <= earlier + 1e-9

    def test_reported_cost_matches_recomputed(self, setup):
        _schema, _data, distribution, query, base = setup
        result = GreedyConditionalPlanner(distribution, base, max_splits=5).plan(query)
        assert result.expected_cost == pytest.approx(
            expected_cost(result.plan, distribution), rel=1e-9
        )

    def test_expected_matches_empirical_on_training(self, setup):
        schema, data, distribution, query, base = setup
        result = GreedyConditionalPlanner(distribution, base, max_splits=5).plan(query)
        assert result.expected_cost == pytest.approx(
            empirical_cost(result.plan, data, schema), rel=1e-9
        )

    def test_verdicts_correct(self, setup):
        schema, data, distribution, query, base = setup
        result = GreedyConditionalPlanner(distribution, base, max_splits=6).plan(query)
        assert PlanExecutor(schema).verify(result.plan, query, data).correct

    def test_greedy_base_planner_also_works(self, setup):
        schema, data, distribution, query, _base = setup
        greedy_base = GreedySequentialPlanner(distribution)
        result = GreedyConditionalPlanner(
            distribution, greedy_base, max_splits=4
        ).plan(query)
        assert PlanExecutor(schema).verify(result.plan, query, data).correct

    def test_beats_sequential_on_correlated_data(self, setup):
        """On data with a predictive cheap attribute, conditioning must pay."""
        _schema, _data, distribution, query, base = setup
        sequential = base.plan(query).expected_cost
        conditional = (
            GreedyConditionalPlanner(distribution, base, max_splits=5)
            .plan(query)
            .expected_cost
        )
        assert conditional < sequential

    def test_planner_name_includes_budget(self, setup):
        _schema, _data, distribution, query, base = setup
        result = GreedyConditionalPlanner(distribution, base, max_splits=7).plan(query)
        assert result.planner == "heuristic-7"

    def test_negative_budget_rejected(self, setup):
        _schema, _data, distribution, _query, base = setup
        with pytest.raises(PlanningError):
            GreedyConditionalPlanner(distribution, base, max_splits=-1)

    def test_mismatched_distribution_rejected(self, setup):
        schema, data, distribution, _query, _base = setup
        other = EmpiricalDistribution(schema, data)
        with pytest.raises(PlanningError, match="share"):
            GreedyConditionalPlanner(
                distribution, OptimalSequentialPlanner(other), max_splits=2
            )

    def test_stops_when_no_split_helps(self):
        """On independent uniform data no split can beat the sequential
        plan, so the planner must stop early regardless of budget."""
        rng = np.random.default_rng(0)
        schema = Schema([Attribute("u", 4, 10.0), Attribute("v", 4, 10.0)])
        data = np.stack(
            [rng.integers(1, 5, 3000), rng.integers(1, 5, 3000)], axis=1
        ).astype(np.int64)
        distribution = EmpiricalDistribution(schema, data)
        query = ConjunctiveQuery(
            schema, [RangePredicate("u", 1, 2), RangePredicate("v", 1, 2)]
        )
        base = OptimalSequentialPlanner(distribution)
        result = GreedyConditionalPlanner(distribution, base, max_splits=10).plan(query)
        # Splitting on u or v boundaries is "free" relative to acquiring
        # them anyway, so a couple of splits may tie — but the planner must
        # not burn the whole budget on zero-gain expansions.
        assert result.plan.condition_count() < 10
        sequential_cost = base.plan(query).expected_cost
        assert result.expected_cost == pytest.approx(sequential_cost, rel=1e-9)


class TestGeneralization:
    def test_test_set_cost_usually_improves(self):
        """Across seeds, the conditional plan should beat Naive's order on
        held-out data in the typical case (paper Figures 10-11 show a small
        fraction of queries regress slightly; we assert the aggregate)."""
        from repro.planning import NaivePlanner

        wins = 0
        trials = 5
        for seed in range(trials):
            schema, data = correlated_dataset(n_rows=6000, seed=seed)
            train, test = data[:3000], data[3000:]
            distribution = EmpiricalDistribution(schema, train)
            query = ConjunctiveQuery(
                schema, [RangePredicate("a", 1, 2), RangePredicate("b", 3, 5)]
            )
            heuristic = GreedyConditionalPlanner(
                distribution, OptimalSequentialPlanner(distribution), max_splits=5
            ).plan(query)
            naive = NaivePlanner(distribution).plan(query)
            if empirical_cost(heuristic.plan, test, schema) <= empirical_cost(
                naive.plan, test, schema
            ):
                wins += 1
        assert wins >= trials - 1
