"""Tests for the real Intel Lab trace loader (using a synthetic file in
the published format)."""

import numpy as np
import pytest

from repro.data.intel_lab import load_intel_lab_trace
from repro.exceptions import SchemaError


def write_trace(path, lines):
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def valid_line(
    time="12:30:00.0",
    epoch=3,
    mote=1,
    temperature=19.98,
    humidity=37.09,
    light=45.08,
    voltage=2.69,
):
    return (
        f"2004-02-28 {time} {epoch} {mote} {temperature} {humidity} "
        f"{light} {voltage}"
    )


@pytest.fixture
def trace_file(tmp_path):
    rng = np.random.default_rng(0)
    lines = []
    for row in range(400):
        hour = int(rng.integers(0, 24))
        mote = int(rng.integers(1, 6))
        day = 8 <= hour < 19
        light = float(rng.uniform(200, 900)) if day else float(rng.uniform(0, 8))
        temperature = float(rng.uniform(20, 26)) if day else float(rng.uniform(15, 19))
        humidity = float(rng.uniform(30, 45)) if day else float(rng.uniform(45, 60))
        lines.append(
            valid_line(
                time=f"{hour:02d}:15:00.0",
                epoch=row,
                mote=mote,
                temperature=round(temperature, 3),
                humidity=round(humidity, 3),
                light=round(light, 2),
                voltage=round(float(rng.uniform(2.4, 2.9)), 4),
            )
        )
    path = tmp_path / "data.txt"
    write_trace(path, lines)
    return path


class TestLoading:
    def test_parses_published_format(self, trace_file):
        dataset = load_intel_lab_trace(trace_file)
        assert dataset.schema.names == (
            "nodeid",
            "hour",
            "voltage",
            "light",
            "temp",
            "humidity",
        )
        assert len(dataset.data) == 400
        assert dataset.n_motes == 5

    def test_costs_match_paper(self, trace_file):
        dataset = load_intel_lab_trace(trace_file)
        assert dataset.schema["light"].cost == 100.0
        assert dataset.schema["hour"].cost == 1.0

    def test_hour_derivation(self, tmp_path):
        path = tmp_path / "data.txt"
        write_trace(
            path,
            [valid_line(time="00:10:00.0"), valid_line(time="23:50:00.0")],
        )
        dataset = load_intel_lab_trace(path)
        hours = sorted(dataset.column("hour").tolist())
        assert hours[0] == 1  # just past midnight -> first bin
        assert hours[1] == 24  # just before midnight -> last bin

    def test_correlations_survive_loading(self, trace_file):
        """The hour <-> light structure the planners exploit must be
        present in the loaded, discretized data."""
        dataset = load_intel_lab_trace(trace_file)
        hour = dataset.column("hour")
        light = dataset.column("light")
        night = (hour <= 6) | (hour >= 21)
        assert light[night].mean() < light[~night].mean()

    def test_max_rows_cap(self, trace_file):
        dataset = load_intel_lab_trace(trace_file, max_rows=50)
        assert len(dataset.data) == 50

    def test_out_of_range_motes_dropped(self, tmp_path):
        path = tmp_path / "data.txt"
        write_trace(path, [valid_line(mote=1), valid_line(mote=77)])
        dataset = load_intel_lab_trace(path)
        assert len(dataset.data) == 1

    def test_sensor_artifacts_filtered(self, tmp_path):
        path = tmp_path / "data.txt"
        write_trace(
            path,
            [
                valid_line(),
                valid_line(temperature=122.153),  # classic failing-sensor value
                valid_line(humidity=-4.0),
                valid_line(voltage=0.009),
            ],
        )
        dataset = load_intel_lab_trace(path)
        assert len(dataset.data) == 1

    def test_truncated_lines_skipped(self, tmp_path):
        path = tmp_path / "data.txt"
        write_trace(path, [valid_line(), "2004-02-28 01:02:03.0 5 1 19.0"])
        dataset = load_intel_lab_trace(path)
        assert len(dataset.data) == 1

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SchemaError, match="not found"):
            load_intel_lab_trace(tmp_path / "nope.txt")

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("", encoding="utf-8")
        with pytest.raises(SchemaError, match="no valid readings"):
            load_intel_lab_trace(path)

    def test_loaded_dataset_plans_end_to_end(self, trace_file):
        """The loaded dataset drives the standard pipeline unchanged."""
        from repro.core import empirical_cost
        from repro.data import lab_queries, time_split
        from repro.planning import CorrSeqPlanner, GreedyConditionalPlanner, NaivePlanner
        from repro.probability import EmpiricalDistribution

        dataset = load_intel_lab_trace(trace_file)
        train, test = time_split(dataset.data, 0.5)
        distribution = EmpiricalDistribution(dataset.schema, train, smoothing=0.5)
        query = lab_queries(dataset, 1, seed=0)[0]
        naive = NaivePlanner(distribution).plan(query)
        heuristic = GreedyConditionalPlanner(
            distribution, CorrSeqPlanner(distribution), max_splits=5
        ).plan(query)
        assert empirical_cost(heuristic.plan, test, dataset.schema) <= (
            empirical_cost(naive.plan, test, dataset.schema) * 1.5
        )
