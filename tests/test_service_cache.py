"""Tests for the serving layer's plan cache and its invalidation story.

The contract under test: a cached plan is only served while the engine's
statistics version matches the version it was trained under.  Refitting
the distribution, an explicit bump, or an adaptive-stream replan must
all retire old-generation plans — and canonicalization must make every
spelling of a query land in the same slot.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Attribute, Schema
from repro.engine import AcquisitionalEngine
from repro.exceptions import ServiceError
from repro.service import (
    AcquisitionalService,
    PlanCache,
    fingerprint_statement,
)


@pytest.fixture
def schema() -> Schema:
    return Schema(
        [
            Attribute("hour", 4, 1.0),
            Attribute("temp", 4, 100.0),
            Attribute("light", 4, 100.0),
        ]
    )


def make_history(schema: Schema, seed: int = 0, shifted: bool = False) -> np.ndarray:
    """Correlated readings; ``shifted`` moves the sensor distributions.

    In the base world temp and light track the hour symmetrically, so a
    plan filters temp first.  In the shifted world light hardly ever
    reaches 3 while temp almost always does — flipping which predicate
    rejects tuples cheaply, hence which plan is optimal.
    """
    rng = np.random.default_rng(seed)
    n = 4000
    hour = rng.integers(1, 5, n)
    if shifted:
        temp = rng.integers(3, 5, n)
        light = np.where(
            rng.random(n) < 0.95, rng.integers(1, 3, n), rng.integers(3, 5, n)
        )
    else:
        day = hour >= 3
        temp = np.where(day, rng.integers(3, 5, n), rng.integers(1, 3, n))
        light = np.where(day, rng.integers(3, 5, n), rng.integers(1, 3, n))
    return np.stack([hour, temp, light], axis=1).astype(np.int64)


@pytest.fixture
def history(schema) -> np.ndarray:
    return make_history(schema)


@pytest.fixture
def engine(schema, history) -> AcquisitionalEngine:
    return AcquisitionalEngine(schema, history)


@pytest.fixture
def service(engine) -> AcquisitionalService:
    return AcquisitionalService(engine, cache_capacity=8)


class TestPlanCache:
    def test_round_trip(self):
        cache: PlanCache = PlanCache(capacity=2)
        cache.put("a", 1, "plan-a")
        assert cache.get("a", 1) == "plan-a"
        assert cache.get("missing", 1) is None
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 1
        assert stats.hit_rate == 0.5

    def test_version_mismatch_drops_entry(self):
        cache: PlanCache = PlanCache(capacity=2)
        cache.put("a", 1, "plan-a")
        assert cache.get("a", 2) is None
        assert "a" not in cache
        stats = cache.stats()
        assert stats.invalidations == 1 and stats.misses == 1

    def test_invalidate_stale_sweeps_old_generations(self):
        cache: PlanCache = PlanCache(capacity=4)
        cache.put("a", 1, "plan-a")
        cache.put("b", 1, "plan-b")
        cache.put("c", 2, "plan-c")
        assert cache.invalidate_stale(2) == 2
        assert len(cache) == 1 and "c" in cache

    def test_lru_evicts_least_recently_used(self):
        cache: PlanCache = PlanCache(capacity=2, policy="lru")
        cache.put("a", 1, "plan-a")
        cache.put("b", 1, "plan-b")
        cache.get("a", 1)  # refresh a
        cache.put("c", 1, "plan-c")  # evicts b
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats().evictions == 1

    def test_lfu_keeps_the_hot_entry(self):
        cache: PlanCache = PlanCache(capacity=2, policy="lfu")
        cache.put("hot", 1, "plan-hot")
        for _lookup in range(5):
            cache.get("hot", 1)
        cache.put("cold", 1, "plan-cold")
        cache.get("cold", 1)
        cache.put("new", 1, "plan-new")  # evicts cold (freq 1), not hot
        assert "hot" in cache and "new" in cache and "cold" not in cache

    def test_replacing_same_version_keeps_frequency(self):
        cache: PlanCache = PlanCache(capacity=4, policy="lfu")
        cache.put("a", 1, "old")
        cache.get("a", 1)
        cache.put("a", 1, "new")
        assert cache.get("a", 1) == "new"

    def test_configuration_validation(self):
        with pytest.raises(ServiceError):
            PlanCache(capacity=0)
        with pytest.raises(ServiceError):
            PlanCache(policy="mru")


class TestFingerprint:
    def test_predicate_permutation_shares_slot(self, schema):
        first = fingerprint_statement(
            "SELECT temp WHERE temp >= 3 AND light <= 2 AND hour >= 2", schema
        )
        second = fingerprint_statement(
            "SELECT temp WHERE hour >= 2 AND light <= 2 AND temp >= 3", schema
        )
        assert first == second
        assert first.digest == second.digest

    def test_select_star_resolves_to_schema_columns(self, schema):
        star = fingerprint_statement("SELECT * WHERE temp >= 3", schema)
        explicit = fingerprint_statement(
            "SELECT hour, temp, light WHERE temp >= 3", schema
        )
        assert star == explicit

    def test_projection_order_distinguishes(self, schema):
        first = fingerprint_statement("SELECT temp, light WHERE hour >= 2", schema)
        second = fingerprint_statement("SELECT light, temp WHERE hour >= 2", schema)
        assert first != second

    def test_literals_bucketed_onto_the_grid(self, schema):
        # Domain of temp is 4: both statements accept exactly temp in [3, 4].
        loose = fingerprint_statement("SELECT * WHERE temp BETWEEN 3 AND 9", schema)
        tight = fingerprint_statement("SELECT * WHERE temp BETWEEN 3 AND 4", schema)
        assert loose == tight

    def test_distinct_queries_do_not_collide(self, schema):
        first = fingerprint_statement("SELECT * WHERE temp >= 3", schema)
        second = fingerprint_statement("SELECT * WHERE temp >= 2", schema)
        third = fingerprint_statement("SELECT * WHERE light >= 3", schema)
        assert len({first, second, third}) == 3

    def test_disjunction_branch_order_normalized(self, schema):
        first = fingerprint_statement(
            "SELECT * WHERE temp >= 3 OR light >= 3 OR hour >= 2", schema
        )
        second = fingerprint_statement(
            "SELECT * WHERE hour >= 2 OR (light >= 3 OR temp >= 3)", schema
        )
        assert first == second

    @settings(max_examples=40, deadline=None)
    @given(
        bounds=st.lists(
            st.tuples(st.integers(1, 4), st.integers(1, 4)),
            min_size=3,
            max_size=3,
        ),
        order=st.permutations([0, 1, 2]),
        data=st.data(),
    )
    def test_any_conjunct_permutation_is_equivalent(self, bounds, order, data):
        schema = Schema(
            [
                Attribute("hour", 4, 1.0),
                Attribute("temp", 4, 100.0),
                Attribute("light", 4, 100.0),
            ]
        )
        names = ["hour", "temp", "light"]
        clauses = [
            f"{names[i]} BETWEEN {min(b)} AND {max(b)}"
            for i, b in enumerate(bounds)
        ]
        base = "SELECT * WHERE " + " AND ".join(clauses)
        shuffled = "SELECT * WHERE " + " AND ".join(
            clauses[i] for i in order
        )
        assert fingerprint_statement(base, schema) == fingerprint_statement(
            shuffled, schema
        )


class TestStatisticsInvalidation:
    QUERY = "SELECT * WHERE temp >= 3 AND light >= 3"

    def test_refit_bumps_version_and_uses_new_plan(self, schema, service):
        live = make_history(schema, seed=7)
        service.execute(self.QUERY, live)
        before = service.plan_for(self.QUERY)
        assert service.cache.stats().hits >= 1

        # Shifted world: light now rejects almost every tuple, so the new
        # optimal plan must filter light before temp.
        service.refit(make_history(schema, seed=8, shifted=True))

        after = service.plan_for(self.QUERY)
        assert after.statistics_version == before.statistics_version + 1
        assert after is not before
        assert after.plan != before.plan
        assert service.cache.stats().invalidations >= 1
        # The freshly planned statement serves subsequent requests.
        assert service.plan_for(self.QUERY) is after

    def test_engine_refit_clears_prepared_statements(self, schema, engine):
        first = engine.prepare(self.QUERY)
        assert engine.prepare(self.QUERY) is first
        engine.refit(make_history(schema, seed=9, shifted=True))
        second = engine.prepare(self.QUERY)
        assert second is not first
        assert second.statistics_version == first.statistics_version + 1

    def test_explicit_bump_invalidates(self, service):
        service.plan_for(self.QUERY)
        assert len(service.cache) == 1
        service.engine.bump_statistics_version()
        assert len(service.cache) == 0
        assert service.cache.stats().invalidations == 1

    def test_stream_replan_invalidates_cached_plans(self, schema, service):
        service.plan_for(self.QUERY)
        version = service.engine.statistics_version
        executor = service.stream_executor(
            self.QUERY, window=400, replan_interval=300, drift_threshold=None
        )
        report = executor.process(make_history(schema, seed=11)[:1000])
        assert len(report.replans) >= 1
        assert service.engine.statistics_version == version + len(report.replans)
        assert len(service.cache) == 0
        assert (
            service.stats()["counters"]["stream_replans"]
            == len(report.replans)
        )


class TestPreparedQueryContract:
    def test_prepared_query_is_hashable_and_frozen(self, engine):
        prepared = engine.prepare("SELECT temp WHERE temp >= 3 AND light <= 2")
        assert isinstance(hash(prepared), int)
        assert {prepared: "slot"}[prepared] == "slot"
        with pytest.raises(dataclasses.FrozenInstanceError):
            prepared.text = "mutated"

    def test_execute_reuses_prepared_statement(self, schema, engine):
        live = make_history(schema, seed=5)[:100]
        text = "SELECT * WHERE temp >= 3 AND light >= 3"
        engine.execute(text, live)
        prepared = engine.prepare(text)
        engine.execute(text, live)
        assert engine.prepare(text) is prepared
