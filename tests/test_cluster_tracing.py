"""Distributed tracing across the sharded tier, driven in-process.

Every request — leaders, coalesced followers, shed, re-routed, chaos —
must come back with a ``trace_id`` naming a *complete single-root span
tree* in the front door's merged tracer, and the acquisition cost those
spans attribute must reconcile with each shard's Eq. 3 ledger.  With an
injected counting clock the whole merged trace is byte-identical across
runs, chaos included.
"""

from __future__ import annotations

import asyncio
import io

from tests.conftest import make_day_night_data
from repro.cluster import ClusterConfig, ShardConfig, ShardedServiceCluster
from repro.core import Attribute, Schema
from repro.obs import Tracer, assemble_traces, reconcile_costs, segments

SCHEMA = Schema(
    [
        Attribute("hour", 2, 0.0),
        Attribute("temp", 2, 1.0),
        Attribute("light", 2, 1.0),
    ]
)
HISTORY = make_day_night_data()
READINGS = HISTORY[:40]
QUERY = "SELECT temp WHERE temp = 2 AND light = 2"
CHAOS = {"faults": {"temp": {"drop_rate": 0.4}}}
SHAPES = [
    "SELECT temp WHERE temp = 2",
    "SELECT light WHERE light = 2",
    "SELECT temp WHERE temp = 1 AND light = 2",
    "SELECT light WHERE temp = 2 AND light = 1",
    "SELECT temp, light WHERE temp = 2 AND light = 2",
    "SELECT hour WHERE hour = 2",
]


def counting_clock():
    """A deterministic clock: each read advances 1ms."""
    state = {"now": 0.0}

    def clock() -> float:
        state["now"] += 0.001
        return state["now"]

    return clock


def make_cluster(
    stream: io.StringIO | None = None, **overrides
) -> ShardedServiceCluster:
    clock = overrides.pop("clock", None) or counting_clock()
    config = ClusterConfig(
        shard_config=ShardConfig(schema=SCHEMA, history=HISTORY),
        shards=overrides.pop("shards", 2),
        backend="inproc",
        tracing=True,
        trace_clock=clock,
        **overrides,
    )
    tracer = Tracer(stream=stream, name="fd", clock=clock)
    return ShardedServiceCluster(config, tracer=tracer)


def trees_of(cluster: ShardedServiceCluster) -> dict:
    return assemble_traces(
        event.as_dict() for event in cluster.tracer.events
    )


def _shard_of(query: str) -> int:
    async def main() -> int:
        async with make_cluster() as cluster:
            return (await cluster.execute(query, READINGS)).shard

    return asyncio.run(main())


def test_every_request_is_a_complete_single_root_tree() -> None:
    async def main() -> None:
        async with make_cluster() as cluster:
            wave = [(QUERY, READINGS)] * 6 + [
                (shape, READINGS) for shape in SHAPES
            ]
            responses = await cluster.execute_many(wave)
            assert all(r.ok for r in responses)
            trees = trees_of(cluster)
            # One tree per request, including coalesced followers.
            assert len(trees) == len(responses)
            for response in responses:
                assert response.trace_id
                tree = trees[response.trace_id]
                assert tree.complete, tree.trace_id
                root = tree.root
                assert root["phase"] == "request"
                assert bool(root.get("coalesced")) == response.coalesced
            # Leaders carry the shard's execution span; followers point
            # at their leader's trace instead.
            leaders = [r for r in responses if not r.coalesced]
            followers = [r for r in responses if r.coalesced]
            assert followers, "wave should have coalesced"
            for leader in leaders:
                tree = trees[leader.trace_id]
                executes = tree.phase_events("shard-execute")
                assert len(executes) == 1
                assert executes[0]["shard"] == leader.shard
                assert executes[0]["parent"] in tree.span_ids
            leader_traces = {r.trace_id for r in leaders}
            for follower in followers:
                tree = trees[follower.trace_id]
                assert not tree.phase_events("shard-execute")
                (attach,) = tree.phase_events("coalesce-attach")
                assert attach["leader_trace"] in leader_traces

    asyncio.run(main())


def test_shed_request_tree_carries_avoided_cost() -> None:
    async def main() -> None:
        async with make_cluster(
            soft_limit=2, hard_limit=4, shed_mode="abstain"
        ) as cluster:
            # Warm one shape so its Eq. 3 cost is known to the front door.
            warm = await cluster.execute(SHAPES[0], READINGS)
            assert warm.ok
            responses = await cluster.execute_many(
                [(shape, READINGS) for shape in SHAPES]
            )
            shed = [r for r in responses if r.shed]
            assert shed
            trees = trees_of(cluster)
            stats = cluster.front_door_stats()
            total_avoided = 0.0
            for response in shed:
                tree = trees[response.trace_id]
                assert tree.complete
                assert tree.root["shed"] is True
                (event,) = tree.phase_events("shed")
                assert event["reason"] == response.shed_reason
                total_avoided += float(event["cost_avoided"])
            # The events mirror the admission ledger exactly.
            assert total_avoided == stats["admission"]["shed_cost_avoided"]

    asyncio.run(main())


def test_chaos_execution_spans_annotate_degradation() -> None:
    async def main() -> None:
        async with make_cluster() as cluster:
            response = await cluster.execute(
                QUERY,
                READINGS,
                fault_schedule=CHAOS,
                fault_seed=23,
                degradation="skip",
            )
            assert response.ok
            trees = trees_of(cluster)
            tree = trees[response.trace_id]
            assert tree.complete
            (execute,) = tree.phase_events("shard-execute")
            # The resilient path's story is on the span: retries,
            # degraded tuples, the retry slice of where_cost.
            assert "retries" in execute
            assert "degraded" in execute
            assert "retry_cost" in execute
            assert execute["ok"] is True

    asyncio.run(main())


def test_outage_reroute_span_parents_under_original_root() -> None:
    victim = _shard_of(QUERY)

    async def main() -> None:
        async with make_cluster(outage_mode="skip") as cluster:
            tasks = [
                asyncio.ensure_future(cluster.execute(QUERY, READINGS))
                for _ in range(4)
            ]
            await asyncio.sleep(0)  # let requests open + dispatch
            cluster.induce_outage(victim)
            responses = await asyncio.gather(*tasks)
            assert all(r.ok for r in responses)
            assert all(r.shard == 1 - victim for r in responses)
            trees = trees_of(cluster)
            leaders = [r for r in responses if not r.coalesced]
            assert len(leaders) == 1
            tree = trees[leaders[0].trace_id]
            assert tree.complete
            root = tree.root
            (reroute,) = tree.phase_events("reroute")
            assert reroute["parent"] == root["span"]
            assert reroute["from_shard"] == victim
            assert reroute["to_shard"] == 1 - victim
            # The re-dispatched execution hangs under the reroute span,
            # keeping the whole story in one tree.
            (execute,) = tree.phase_events("shard-execute")
            assert execute["parent"] == reroute["span"]
            assert execute["shard"] == 1 - victim
            # Followers still close as complete coalesced trees.
            for follower in (r for r in responses if r.coalesced):
                assert trees[follower.trace_id].complete

    asyncio.run(main())


def test_outage_abstain_shed_tree_stays_complete() -> None:
    victim = _shard_of(QUERY)

    async def main() -> None:
        async with make_cluster(outage_mode="abstain") as cluster:
            warm = await cluster.execute(QUERY, READINGS)
            assert warm.ok
            tasks = [
                asyncio.ensure_future(cluster.execute(QUERY, READINGS))
                for _ in range(3)
            ]
            await asyncio.sleep(0)
            cluster.induce_outage(victim)
            responses = await asyncio.gather(*tasks)
            assert all(r.shed and r.shed_reason == "outage" for r in responses)
            trees = trees_of(cluster)
            leader_tree = trees[responses[0].trace_id]
            assert leader_tree.complete
            (event,) = leader_tree.phase_events("outage-shed")
            assert event["parent"] == leader_tree.root["span"]
            assert event["shard"] == victim
            assert event["waiters"] == 3
            # The avoided cost on the event mirrors the admission ledger
            # (the shape was warmed, so the cost is known and non-zero).
            stats = cluster.front_door_stats()
            assert event["cost_avoided"] > 0
            assert (
                event["cost_avoided"]
                == stats["admission"]["shed_cost_avoided"]
            )

    asyncio.run(main())


def test_span_costs_reconcile_with_shard_ledgers() -> None:
    async def main() -> None:
        async with make_cluster(shards=3) as cluster:
            await cluster.execute_many(
                [(shape, READINGS) for shape in SHAPES] * 2
            )
            await cluster.execute(
                QUERY,
                READINGS,
                fault_schedule=CHAOS,
                fault_seed=7,
                degradation="skip",
            )
            stats = await cluster.stats()
            trees = list(trees_of(cluster).values())
            report = reconcile_costs(
                trees,
                stats["shards"],
                stats["front_door"]["admission"],
            )
            assert report["ok"], report
            # Something was actually attributed on every live shard that
            # executed work, and at least one shard saw real cost.
            attributed = [
                row["attributed"] for row in report["shards"].values()
            ]
            assert sum(attributed) > 0

    asyncio.run(main())


def test_queue_time_flows_from_sent_ts_baggage() -> None:
    async def main() -> None:
        async with make_cluster() as cluster:
            response = await cluster.execute(QUERY, READINGS)
            trees = trees_of(cluster)
            tree = trees[response.trace_id]
            (execute,) = tree.phase_events("shard-execute")
            # The counting clock advances 1ms per read, so the dispatch
            # -> execution gap is a positive, deterministic queue time.
            assert execute["queue_ms"] > 0
            row = segments(tree)
            assert row["queue"] == execute["queue_ms"]
            assert row["total"] > 0

    asyncio.run(main())


def test_traces_are_byte_identical_under_fixed_clock() -> None:
    def run() -> str:
        stream = io.StringIO()

        async def main() -> None:
            async with make_cluster(stream=stream) as cluster:
                wave = [(QUERY, READINGS)] * 4 + [
                    (shape, READINGS) for shape in SHAPES
                ]
                responses = await cluster.execute_many(wave)
                assert all(r.ok for r in responses)
                chaos = await cluster.execute(
                    QUERY,
                    READINGS,
                    fault_schedule=CHAOS,
                    fault_seed=23,
                    degradation="skip",
                )
                assert chaos.ok

        asyncio.run(main())
        return stream.getvalue()

    first = run()
    second = run()
    assert first, "trace stream should not be empty"
    assert first == second

    async def main() -> None:
        async with make_cluster() as cluster:
            response = await cluster.execute(QUERY, READINGS)
            assert response.ok

    asyncio.run(main())


def test_untraced_cluster_has_no_tracer_overhead_hooks() -> None:
    async def main() -> None:
        config = ClusterConfig(
            shard_config=ShardConfig(schema=SCHEMA, history=HISTORY),
            shards=2,
            backend="inproc",
        )
        async with ShardedServiceCluster(config) as cluster:
            response = await cluster.execute(QUERY, READINGS)
            assert response.ok
            assert response.trace_id == ""
            assert cluster.tracer is None

    asyncio.run(main())
