"""Unit tests for the PAO confidence machinery (repro.learn.pao)."""

import math

from repro.learn.pao import (
    commit_warranted,
    confidence_radius,
    detection_threshold,
    paired_radius,
    swap_warranted,
)


class TestConfidenceRadius:
    def test_unobserved_arm_is_vacuous(self):
        assert confidence_radius(0.0, 10, 100.0, 0.05, 3) == math.inf

    def test_zero_span_means_zero_radius(self):
        assert confidence_radius(5.0, 10, 0.0, 0.05, 3) == 0.0

    def test_shrinks_with_pulls(self):
        wide = confidence_radius(2.0, 10, 100.0, 0.05, 3)
        narrow = confidence_radius(20.0, 10, 100.0, 0.05, 3)
        assert 0.0 < narrow < wide

    def test_grows_with_rounds_and_arms(self):
        base = confidence_radius(5.0, 10, 100.0, 0.05, 3)
        later = confidence_radius(5.0, 1000, 100.0, 0.05, 3)
        wider_union = confidence_radius(5.0, 10, 100.0, 0.05, 30)
        assert later > base
        assert wider_union > base

    def test_scales_linearly_with_span(self):
        one = confidence_radius(5.0, 10, 1.0, 0.05, 3)
        hundred = confidence_radius(5.0, 10, 100.0, 0.05, 3)
        assert hundred == 100.0 * one


class TestPairedRadius:
    def test_needs_two_effective_observations(self):
        assert paired_radius(4.0, 1.9, 0.05, 3) == math.inf
        assert paired_radius(4.0, 2.0, 0.05, 3) < math.inf

    def test_zero_variance_gives_zero_radius(self):
        assert paired_radius(0.0, 10.0, 0.05, 3) == 0.0
        # A tiny negative variance (float noise) is clamped, not sqrt'd.
        assert paired_radius(-1e-12, 10.0, 0.05, 3) == 0.0

    def test_shrinks_with_weight_grows_with_variance(self):
        base = paired_radius(4.0, 10.0, 0.05, 3)
        assert paired_radius(4.0, 40.0, 0.05, 3) == base / 2.0
        assert paired_radius(16.0, 10.0, 0.05, 3) == base * 2.0


class TestDetectionThreshold:
    def test_needs_two_effective_observations(self):
        assert detection_threshold(1.0, 1.0, 0.05) == math.inf

    def test_one_shot_bound_ignores_arm_count(self):
        # Unlike paired_radius there is no union over arms: same inputs,
        # same threshold, regardless of how many orders exist.
        value = detection_threshold(1.0, 50.0, 0.05)
        assert value == math.sqrt(2.0 * math.log(1.0 / 0.05) / 50.0)


class TestDecisions:
    def test_swap_requires_strict_separation(self):
        assert swap_warranted(9.0, 10.0)
        assert not swap_warranted(10.0, 10.0)
        assert not swap_warranted(11.0, 10.0)

    def test_commit_needs_every_challenger_cleared(self):
        assert commit_warranted(10.0, [10.0, 12.0])
        assert not commit_warranted(10.0, [9.9, 12.0])

    def test_commit_vacuous_with_no_challengers(self):
        assert commit_warranted(123.0, [])

    def test_infinite_radius_blocks_both_decisions(self):
        # An unpulled arm has UCB=+inf and LCB=-inf: it can never be
        # provably worse than the incumbent, and the incumbent can never
        # be committed past it.
        assert not swap_warranted(math.inf, 10.0)
        assert not commit_warranted(10.0, [-math.inf])
