"""Tests for the subset-lattice (superset-sum) transforms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DistributionError
from repro.probability import conditional_from_superset_sums, superset_sums


def brute_superset_sums(joint: np.ndarray) -> np.ndarray:
    size = len(joint)
    out = np.zeros(size)
    for state in range(size):
        out[state] = sum(
            joint[outcome] for outcome in range(size) if (outcome & state) == state
        )
    return out


class TestSupersetSums:
    def test_trivial_single_entry(self):
        assert superset_sums(np.array([1.0])).tolist() == [1.0]

    def test_two_predicates_by_hand(self):
        # joint over (b1, b0): P(00)=.1 P(01)=.2 P(10)=.3 P(11)=.4
        joint = np.array([0.1, 0.2, 0.3, 0.4])
        sums = superset_sums(joint)
        assert sums[0b00] == pytest.approx(1.0)
        assert sums[0b01] == pytest.approx(0.6)  # outcomes 01, 11
        assert sums[0b10] == pytest.approx(0.7)  # outcomes 10, 11
        assert sums[0b11] == pytest.approx(0.4)

    def test_matches_brute_force_three_bits(self):
        rng = np.random.default_rng(1)
        joint = rng.random(8)
        joint /= joint.sum()
        assert np.allclose(superset_sums(joint), brute_superset_sums(joint))

    def test_non_power_of_two_rejected(self):
        with pytest.raises(DistributionError):
            superset_sums(np.ones(3))

    def test_empty_rejected(self):
        with pytest.raises(DistributionError):
            superset_sums(np.ones(0))

    @settings(max_examples=40, deadline=None)
    @given(bits=st.integers(1, 6), seed=st.integers(0, 10_000))
    def test_property_matches_brute_force(self, bits, seed):
        rng = np.random.default_rng(seed)
        joint = rng.random(1 << bits)
        assert np.allclose(superset_sums(joint), brute_superset_sums(joint))

    def test_input_not_mutated(self):
        joint = np.array([0.25, 0.25, 0.25, 0.25])
        original = joint.copy()
        superset_sums(joint)
        assert np.array_equal(joint, original)


class TestConditional:
    def test_basic_ratio(self):
        joint = np.array([0.1, 0.2, 0.3, 0.4])
        sums = superset_sums(joint)
        # P(bit1 | bit0) = P(11)/P(*1) = 0.4/0.6
        assert conditional_from_superset_sums(sums, 0b01, 0b10) == pytest.approx(
            0.4 / 0.6
        )

    def test_already_satisfied_returns_one(self):
        sums = superset_sums(np.array([0.5, 0.5]))
        assert conditional_from_superset_sums(sums, 0b1, 0b1) == 1.0

    def test_zero_mass_condition_returns_half(self):
        joint = np.array([1.0, 0.0, 0.0, 0.0])  # only outcome 00 possible
        sums = superset_sums(joint)
        assert conditional_from_superset_sums(sums, 0b01, 0b10) == 0.5
