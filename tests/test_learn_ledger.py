"""Unit tests for the two-sided regret ledger (repro.learn.ledger)."""

import math

import pytest

from repro.exceptions import LearningError
from repro.learn import RegretLedger


class TestCharges:
    def test_sides_accumulate_independently(self):
        ledger = RegretLedger(100.0)
        ledger.charge_warmup(10.0)
        ledger.charge_conditioning(2.0)
        ledger.charge_exploit(30.0)
        ledger.charge_explore(50.0, 45.0)
        assert ledger.warmup_cost == 10.0
        assert ledger.conditioning_cost == 2.0
        assert ledger.base_cost == 30.0 + 45.0
        assert ledger.exploration_cost == 5.0
        assert ledger.exploit_pulls == 1
        assert ledger.exploration_pulls == 1

    def test_total_is_the_sum_of_sides(self):
        ledger = RegretLedger(100.0)
        ledger.charge_warmup(7.0)
        ledger.charge_exploit(11.0)
        ledger.charge_explore(13.0, 4.0)
        assert ledger.total_cost == pytest.approx(7.0 + 11.0 + 13.0)

    def test_explore_split_is_exact(self):
        """charge_explore books cost - excess to base, excess to explore."""
        ledger = RegretLedger(100.0)
        ledger.charge_explore(120.0, 100.0)
        assert ledger.base_cost == pytest.approx(100.0)
        assert ledger.exploration_cost == pytest.approx(20.0)
        assert ledger.total_cost == pytest.approx(120.0)

    def test_cheaper_than_reference_charges_zero_exploration(self):
        ledger = RegretLedger(100.0)
        ledger.charge_explore(80.0, 100.0)
        assert ledger.exploration_cost == 0.0
        assert ledger.base_cost == pytest.approx(80.0)

    def test_negative_and_nonfinite_charges_rejected(self):
        ledger = RegretLedger(100.0)
        with pytest.raises(LearningError):
            ledger.charge_exploit(-1.0)
        with pytest.raises(LearningError):
            ledger.charge_warmup(math.nan)
        with pytest.raises(LearningError):
            ledger.charge_explore(math.inf, 0.0)
        with pytest.raises(LearningError):
            ledger.charge_explore(1.0, -0.5)


class TestBudgetGate:
    def test_can_explore_is_a_hard_gate(self):
        ledger = RegretLedger(10.0)
        assert ledger.can_explore(10.0)
        ledger.charge_explore(8.0, 0.0)
        assert ledger.can_explore(2.0)
        assert not ledger.can_explore(2.0001)

    def test_budget_remaining_clamps_at_zero(self):
        ledger = RegretLedger(5.0)
        ledger.charge_explore(9.0, 0.0)  # the gate is the caller's job
        assert ledger.budget_remaining == 0.0

    def test_invalid_budget_rejected(self):
        with pytest.raises(LearningError):
            RegretLedger(-1.0)
        with pytest.raises(LearningError):
            RegretLedger(math.nan)

    def test_infinite_budget_allowed(self):
        ledger = RegretLedger(math.inf)
        assert ledger.can_explore(1e18)


class TestSnapshot:
    def test_snapshot_is_frozen_copy(self):
        ledger = RegretLedger(50.0)
        ledger.charge_exploit(5.0)
        snap = ledger.snapshot()
        ledger.charge_exploit(5.0)
        assert snap.base_cost == 5.0
        assert ledger.base_cost == 10.0

    def test_conserved_against_observed_total(self):
        ledger = RegretLedger(50.0)
        ledger.charge_warmup(3.0)
        ledger.charge_exploit(4.0)
        ledger.charge_explore(6.0, 2.0)
        snap = ledger.snapshot()
        assert snap.conserved(13.0)
        assert not snap.conserved(14.0)
        assert snap.gap(13.0) == pytest.approx(0.0)

    def test_as_dict_round_trips_fields(self):
        ledger = RegretLedger(50.0)
        ledger.charge_exploit(4.0)
        payload = ledger.snapshot().as_dict()
        assert payload["budget"] == 50.0
        assert payload["base_cost"] == 4.0
        assert payload["exploit_pulls"] == 1
