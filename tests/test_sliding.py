"""Tests for the sliding-window incremental distribution."""

import numpy as np
import pytest

from repro.core import Attribute, RangePredicate, RangeVector, Schema
from repro.exceptions import DistributionError
from repro.probability import EmpiricalDistribution, SlidingWindowDistribution


@pytest.fixture
def schema() -> Schema:
    return Schema([Attribute("a", 3), Attribute("b", 4)])


def rows(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    a = rng.integers(1, 4, n)
    b = np.clip(a + rng.integers(0, 2, n), 1, 4)
    return np.stack([a, b], axis=1).astype(np.int64)


class TestWindowMaintenance:
    def test_grows_until_capacity(self, schema):
        window = SlidingWindowDistribution(schema, capacity=3)
        assert len(window) == 0
        window.append([1, 1])
        window.append([2, 2])
        assert len(window) == 2 and not window.is_full
        window.append([3, 3])
        assert window.is_full

    def test_eviction_is_fifo(self, schema):
        window = SlidingWindowDistribution(schema, capacity=2)
        window.append([1, 1])
        window.append([2, 2])
        window.append([3, 3])
        assert window.window().tolist() == [[2, 2], [3, 3]]

    def test_window_order_preserved(self, schema):
        window = SlidingWindowDistribution(schema, capacity=4)
        data = rows(10)
        window.extend(data)
        assert np.array_equal(window.window(), data[-4:])

    def test_empty_window_queries_rejected(self, schema):
        window = SlidingWindowDistribution(schema, capacity=3)
        with pytest.raises(DistributionError):
            window.window()
        with pytest.raises(DistributionError):
            window.marginal_histogram(0)

    def test_validation(self, schema):
        with pytest.raises(DistributionError):
            SlidingWindowDistribution(schema, capacity=0)
        with pytest.raises(DistributionError):
            SlidingWindowDistribution(schema, capacity=5, smoothing=-1)
        window = SlidingWindowDistribution(schema, capacity=3)
        with pytest.raises(Exception):
            window.append([9, 9])  # out of domain


class TestIncrementalMarginals:
    def test_marginal_matches_window_counts(self, schema):
        window = SlidingWindowDistribution(schema, capacity=50)
        data = rows(120, seed=1)
        window.extend(data)
        current = window.window()
        for index in range(2):
            histogram = window.marginal_histogram(index)
            for value in range(1, schema[index].domain_size + 1):
                assert histogram[value - 1] == pytest.approx(
                    np.mean(current[:, index] == value)
                )

    def test_marginals_track_evictions(self, schema):
        window = SlidingWindowDistribution(schema, capacity=2)
        window.append([1, 1])
        window.append([1, 1])
        window.append([3, 4])
        histogram = window.marginal_histogram(0)
        assert histogram[0] == pytest.approx(0.5)
        assert histogram[2] == pytest.approx(0.5)


class TestDriftDetection:
    def test_zero_shift_against_self(self, schema):
        window = SlidingWindowDistribution(schema, capacity=20)
        window.extend(rows(20, seed=2))
        assert window.marginal_shift(window.marginal_snapshot()) == 0.0

    def test_shift_grows_with_regime_change(self, schema):
        window = SlidingWindowDistribution(schema, capacity=30)
        window.extend(np.tile([[1, 1]], (30, 1)))
        reference = window.marginal_snapshot()
        window.extend(np.tile([[3, 4]], (30, 1)))
        assert window.marginal_shift(reference) == pytest.approx(1.0)

    def test_reference_validation(self, schema):
        window = SlidingWindowDistribution(schema, capacity=5)
        window.append([1, 1])
        with pytest.raises(DistributionError):
            window.marginal_shift([np.ones(3)])


class TestDistributionDelegation:
    def test_queries_match_empirical_over_window(self, schema):
        window = SlidingWindowDistribution(schema, capacity=40)
        data = rows(100, seed=3)
        window.extend(data)
        reference = EmpiricalDistribution(schema, window.window())
        full = RangeVector.full(schema)
        binding = (RangePredicate("b", 2, 3), 1)
        assert window.conjunction_probability(
            [binding], full
        ) == pytest.approx(reference.conjunction_probability([binding], full))
        assert np.allclose(
            window.attribute_histogram(0, full),
            reference.attribute_histogram(0, full),
        )

    def test_snapshot_invalidated_on_append(self, schema):
        window = SlidingWindowDistribution(schema, capacity=3)
        window.append([1, 1])
        full = RangeVector.full(schema)
        before = window.attribute_histogram(0, full)[0]
        window.append([3, 4])
        after = window.attribute_histogram(0, full)[0]
        assert before == 1.0 and after == pytest.approx(0.5)

    def test_planning_against_window(self, schema):
        """Planners accept the window as a drop-in Distribution."""
        from repro.core import ConjunctiveQuery
        from repro.planning import GreedySequentialPlanner

        window = SlidingWindowDistribution(schema, capacity=60)
        window.extend(rows(100, seed=4))
        query = ConjunctiveQuery(
            schema, [RangePredicate("a", 2, 3), RangePredicate("b", 3, 4)]
        )
        result = GreedySequentialPlanner(window).plan(query)
        assert result.expected_cost >= 0.0
        assert result.plan is not None
