"""Tests for conditional acquisition cost models (Section 7)."""

import numpy as np
import pytest

from repro.core import (
    Attribute,
    ConjunctiveQuery,
    RangePredicate,
    RangeVector,
    Schema,
    SequentialNode,
    SequentialStep,
    dataset_execution,
    empirical_cost,
    expected_cost,
    traversal_cost,
)
from repro.core.cost_models import BoardAwareCostModel, SchemaCostModel
from repro.exceptions import SchemaError
from repro.planning import (
    GreedyConditionalPlanner,
    GreedySequentialPlanner,
    NaivePlanner,
    OptimalSequentialPlanner,
)
from repro.probability import EmpiricalDistribution


@pytest.fixture
def schema() -> Schema:
    return Schema(
        [
            Attribute("id", 4, 1.0),
            Attribute("light", 4, 100.0),  # weather board
            Attribute("temp", 4, 100.0),  # weather board
            Attribute("sound", 4, 100.0),  # acoustic board
        ]
    )


@pytest.fixture
def board_model(schema) -> BoardAwareCostModel:
    return BoardAwareCostModel(
        schema,
        boards={1: "weather", 2: "weather", 3: "acoustic"},
        power_up_cost=90.0,
        per_read_cost=10.0,
    )


def seq(*specs):
    return SequentialNode(
        steps=tuple(
            SequentialStep(
                predicate=RangePredicate(name, low, high), attribute_index=index
            )
            for name, index, low, high in specs
        )
    )


class TestModels:
    def test_schema_model_matches_flat_costs(self, schema):
        model = SchemaCostModel(schema)
        assert model.cost(1, frozenset()) == 100.0
        assert model.cost(1, frozenset({2, 3})) == 100.0  # no conditioning

    def test_board_first_read_pays_power_up(self, schema, board_model):
        assert board_model.cost(1, frozenset()) == 100.0  # 90 + 10

    def test_board_mate_read_is_cheap(self, schema, board_model):
        assert board_model.cost(2, frozenset({1})) == 10.0

    def test_other_board_still_pays(self, schema, board_model):
        assert board_model.cost(3, frozenset({1, 2})) == 100.0

    def test_unboarded_attribute_uses_schema_cost(self, schema, board_model):
        assert board_model.cost(0, frozenset()) == 1.0

    def test_validation(self, schema):
        with pytest.raises(SchemaError):
            BoardAwareCostModel(schema, {1: "b"}, power_up_cost=-1.0)
        with pytest.raises(SchemaError):
            BoardAwareCostModel(schema, {9: "b"}, power_up_cost=1.0)


class TestCostingUnderModels:
    def test_traversal_cost_order_sensitivity(self, schema, board_model):
        """Reading two weather sensors back to back shares the power-up."""
        both_weather = seq(("light", 1, 1, 4), ("temp", 2, 1, 4))
        split_boards = seq(("light", 1, 1, 4), ("sound", 3, 1, 4))
        row = [1, 2, 2, 2]
        assert traversal_cost(both_weather, row, schema, board_model) == 110.0
        assert traversal_cost(split_boards, row, schema, board_model) == 200.0

    def test_dataset_execution_matches_traversal(self, schema, board_model):
        rng = np.random.default_rng(0)
        data = rng.integers(1, 5, size=(200, 4)).astype(np.int64)
        plan = seq(("light", 1, 2, 4), ("temp", 2, 1, 3), ("sound", 3, 1, 2))
        outcome = dataset_execution(plan, data, schema, board_model)
        for row_index in range(len(data)):
            assert outcome.costs[row_index] == traversal_cost(
                plan, data[row_index], schema, board_model
            )

    def test_expected_cost_matches_empirical(self, schema, board_model):
        rng = np.random.default_rng(1)
        data = rng.integers(1, 5, size=(1500, 4)).astype(np.int64)
        distribution = EmpiricalDistribution(schema, data)
        plan = seq(("light", 1, 2, 4), ("temp", 2, 1, 3))
        model_cost = expected_cost(plan, distribution, cost_model=board_model)
        measured = empirical_cost(plan, data, schema, board_model)
        assert model_cost == pytest.approx(measured, rel=1e-9)

    def test_board_source_agrees_with_cost_model(self, schema, board_model):
        """The runtime SensorBoardSource and the planning-time
        BoardAwareCostModel must meter identically."""
        from repro.execution import PlanExecutor, SensorBoardSource

        plan = seq(("light", 1, 1, 4), ("temp", 2, 1, 4), ("sound", 3, 1, 4))
        row = [1, 2, 2, 2]
        source = SensorBoardSource(
            schema,
            row,
            boards={1: "weather", 2: "weather", 3: "acoustic"},
            power_up_cost=90.0,
            per_read_cost=10.0,
        )
        runtime = PlanExecutor(schema).execute_source(plan, source)
        assert runtime.cost == traversal_cost(plan, row, schema, board_model)


class TestPlanningUnderModels:
    def make_data(self, n: int = 5000, seed: int = 2) -> np.ndarray:
        rng = np.random.default_rng(seed)
        ident = rng.integers(1, 5, n)
        light = rng.integers(1, 5, n)
        temp = rng.integers(1, 5, n)
        sound = rng.integers(1, 5, n)
        return np.stack([ident, light, temp, sound], axis=1).astype(np.int64)

    def test_optseq_groups_board_mates(self, schema, board_model):
        """With near-equal selectivities, the optimal order under board
        costs evaluates the two weather sensors consecutively."""
        data = self.make_data()
        distribution = EmpiricalDistribution(schema, data)
        query = ConjunctiveQuery(
            schema,
            [
                RangePredicate("light", 1, 2),
                RangePredicate("sound", 1, 2),
                RangePredicate("temp", 1, 2),
            ],
        )
        result = OptimalSequentialPlanner(
            distribution, cost_model=board_model
        ).plan(query)
        order = [step.predicate.attribute for step in result.plan.steps]
        light_pos = order.index("light")
        temp_pos = order.index("temp")
        assert abs(light_pos - temp_pos) == 1, order

    def test_optseq_beats_or_ties_flat_cost_order(self, schema, board_model):
        """Planning *with* the true cost model cannot lose to planning with
        flat costs, when both are measured under the true model."""
        data = self.make_data(seed=3)
        distribution = EmpiricalDistribution(schema, data)
        query = ConjunctiveQuery(
            schema,
            [
                RangePredicate("light", 1, 2),
                RangePredicate("sound", 1, 2),
                RangePredicate("temp", 1, 2),
            ],
        )
        informed = OptimalSequentialPlanner(
            distribution, cost_model=board_model
        ).plan(query)
        flat = OptimalSequentialPlanner(distribution).plan(query)
        informed_cost = empirical_cost(informed.plan, data, schema, board_model)
        flat_cost = empirical_cost(flat.plan, data, schema, board_model)
        assert informed_cost <= flat_cost + 1e-9

    def test_greedy_seq_supports_models(self, schema, board_model):
        data = self.make_data(seed=4)
        distribution = EmpiricalDistribution(schema, data)
        query = ConjunctiveQuery(
            schema,
            [RangePredicate("light", 1, 2), RangePredicate("temp", 1, 2)],
        )
        result = GreedySequentialPlanner(
            distribution, cost_model=board_model
        ).plan(query)
        assert result.expected_cost == pytest.approx(
            empirical_cost(result.plan, data, schema, board_model), rel=1e-9
        )

    def test_heuristic_requires_matching_cost_models(self, schema, board_model):
        data = self.make_data(seed=5)
        distribution = EmpiricalDistribution(schema, data)
        from repro.exceptions import PlanningError

        with pytest.raises(PlanningError, match="cost model"):
            GreedyConditionalPlanner(
                distribution,
                OptimalSequentialPlanner(distribution),  # flat-cost base
                max_splits=2,
                cost_model=board_model,
            )

    def test_heuristic_with_model_is_consistent(self, schema, board_model):
        data = self.make_data(seed=6)
        distribution = EmpiricalDistribution(schema, data)
        query = ConjunctiveQuery(
            schema,
            [RangePredicate("light", 1, 2), RangePredicate("temp", 1, 2)],
        )
        base = OptimalSequentialPlanner(distribution, cost_model=board_model)
        result = GreedyConditionalPlanner(
            distribution, base, max_splits=3, cost_model=board_model
        ).plan(query)
        assert result.expected_cost == pytest.approx(
            expected_cost(result.plan, distribution, cost_model=board_model),
            rel=1e-9,
        )
        truth = np.fromiter(
            (query.evaluate(row) for row in data), dtype=bool, count=len(data)
        )
        outcome = dataset_execution(result.plan, data, schema, board_model)
        assert np.array_equal(outcome.verdicts, truth)

    def test_naive_supports_models(self, schema, board_model):
        data = self.make_data(seed=7)
        distribution = EmpiricalDistribution(schema, data)
        query = ConjunctiveQuery(
            schema,
            [RangePredicate("light", 1, 2), RangePredicate("sound", 1, 2)],
        )
        result = NaivePlanner(distribution, cost_model=board_model).plan(query)
        assert result.expected_cost > 0
