"""Tests for the plan dataflow analyzer (abstract interpretation + DF rules).

Every DF* code gets a firing test (a seeded mutation known to contain the
defect) and a non-firing test (the clean canonical corpus must stay silent)
— the same discipline the verifier's mutation tests apply to STR/SEM/RNG.
"""

import pytest

from repro.analysis import (
    AbstractState,
    analyze_plan,
    check_dataflow,
    dataflow_mutations,
    render_analysis,
)
from repro.core import (
    Attribute,
    ConditionNode,
    ConjunctiveQuery,
    RangePredicate,
    Schema,
    SequentialNode,
    VerdictLeaf,
)
from repro.core.predicates import Truth
from repro.verify import verify_plan
from repro.verify.mutations import (
    canonical_conditional_plan,
    canonical_sequential_plan,
)


@pytest.fixture
def schema():
    return Schema(
        (
            Attribute("pressure", domain_size=8, cost=10.0),
            Attribute("flow", domain_size=8, cost=4.0),
        )
    )


@pytest.fixture
def query(schema):
    return ConjunctiveQuery(
        schema,
        (RangePredicate("pressure", 3, 6), RangePredicate("flow", 2, 7)),
    )


def codes(findings):
    return {finding.code for finding in findings}


class TestAbstractState:
    def test_top_is_full_and_unobserved(self, schema):
        state = AbstractState.top(schema)
        assert state.feasible
        assert state.observed == frozenset()
        assert state.interval(0).low == 1 and state.interval(0).high == 8

    def test_assume_split_partitions_and_observes(self, schema):
        state = AbstractState.top(schema)
        below, above = state.assume_split(0, 4)
        assert below.interval(0).high == 3
        assert above.interval(0).low == 4
        assert 0 in below.observed and 0 in above.observed

    def test_assume_split_outside_interval_is_bottom(self, schema):
        state = AbstractState.top(schema)
        below, _ = state.assume_split(0, 2)  # pressure now in [1, 1]
        _, above = below.assume_split(0, 2)  # nothing can be >= 2 here
        assert not above.feasible

    def test_assume_pass_narrows_to_predicate(self, schema):
        state = AbstractState.top(schema)
        passed = state.assume_pass(RangePredicate("pressure", 3, 6), 0)
        assert passed.interval(0).low == 3 and passed.interval(0).high == 6

    def test_truth_of_decided_predicate(self, schema):
        state = AbstractState.top(schema)
        below, above = state.assume_split(0, 7)
        assert below.truth_of(RangePredicate("pressure", 1, 6), 0) is Truth.TRUE
        assert above.truth_of(RangePredicate("pressure", 1, 6), 0) is Truth.FALSE

    def test_bottom_describe(self, schema):
        assert AbstractState.bottom().describe(schema) == "unreachable"


class TestCleanCorpusStaysQuiet:
    def test_canonical_sequential(self, schema, query):
        assert check_dataflow(canonical_sequential_plan(query), schema, query=query) == []

    def test_canonical_conditional(self, schema, query):
        assert check_dataflow(canonical_conditional_plan(query), schema, query=query) == []

    def test_clean_plans_without_query_context(self, schema, query):
        # The rules must not need the query to stay silent on clean plans.
        assert check_dataflow(canonical_conditional_plan(query), schema) == []


class TestMutationsFire:
    """Each seeded mutation fires its documented code."""

    @pytest.mark.parametrize(
        "name",
        ["dead-branch", "decided-step", "redundant-reacquisition", "infeasible-split"],
    )
    def test_case_fires_expected_code(self, query, schema, name):
        case = {c.name: c for c in dataflow_mutations(query)}[name]
        found = codes(check_dataflow(case.plan, schema, query=query))
        assert case.expected_code in found, (name, found)

    def test_df001_dead_branch(self, schema, query):
        # Re-splitting at the same value makes the inner `above` unreachable.
        inner = ConditionNode(
            attribute="pressure",
            attribute_index=0,
            split_value=3,
            below=VerdictLeaf(False),
            above=VerdictLeaf(True),
        )
        plan = ConditionNode(
            attribute="pressure",
            attribute_index=0,
            split_value=3,
            below=inner,
            above=VerdictLeaf(True),
        )
        findings = check_dataflow(plan, schema)
        dead = [f for f in findings if f.code == "DF001"]
        assert [f.path for f in dead] == ["root/below/above"]

    def test_df002_decided_step(self, schema, query):
        # Below pressure < 3 the pressure predicate is always false.
        plan = ConditionNode(
            attribute="pressure",
            attribute_index=0,
            split_value=3,
            below=canonical_sequential_plan(query),
            above=VerdictLeaf(True),
        )
        findings = check_dataflow(plan, schema, query=query)
        assert "DF002" in codes(findings)

    def test_df003_redundant_reacquisition(self, schema, query):
        plan = ConditionNode(
            attribute="pressure",
            attribute_index=0,
            split_value=3,
            below=canonical_sequential_plan(query),
            above=VerdictLeaf(True),
        )
        redundant = [
            f for f in check_dataflow(plan, schema, query=query) if f.code == "DF003"
        ]
        assert redundant and all("pressure" in f.message for f in redundant)

    def test_df004_infeasible_split(self, schema):
        plan = ConditionNode(
            attribute="pressure",
            attribute_index=0,
            split_value=3,
            below=ConditionNode(
                attribute="pressure",
                attribute_index=0,
                split_value=3,
                below=VerdictLeaf(False),
                above=VerdictLeaf(True),
            ),
            above=VerdictLeaf(True),
        )
        infeasible = [
            f for f in check_dataflow(plan, schema) if f.code == "DF004"
        ]
        assert [f.path for f in infeasible] == ["root/below"]

    def test_df004_is_error_severity(self, schema, query):
        case = {c.name: c for c in dataflow_mutations(query)}["infeasible-split"]
        report = verify_plan(case.plan, schema, query=query)
        assert not report.ok
        assert any(f.code == "DF004" for f in report.errors)


class TestAnalyzePlanFacts:
    def test_every_reachable_node_has_facts(self, schema, query):
        plan = canonical_conditional_plan(query)
        analysis = analyze_plan(plan, schema, query=query)
        assert analysis.at("root").reachable
        for facts in analysis:
            assert facts.state is not None

    def test_query_truth_recorded(self, schema, query):
        # canonical_conditional_plan proves FALSE below the first predicate.
        plan = canonical_conditional_plan(query)
        analysis = analyze_plan(plan, schema, query=query)
        below = analysis.at("root/below")
        assert below.query_truth is Truth.FALSE

    def test_sequential_step_facts_thread_state(self, schema, query):
        plan = canonical_sequential_plan(query)
        analysis = analyze_plan(plan, schema, query=query)
        root = analysis.at("root")
        assert len(root.steps) == len(query.predicates)
        # After passing step 0 the first attribute's interval equals it.
        after_first = root.steps[1].state
        assert after_first.interval(root.node.steps[0].attribute_index).low >= 3

    def test_broken_index_stops_analysis_below(self, schema):
        plan = ConditionNode(
            attribute="ghost",
            attribute_index=99,
            split_value=3,
            below=VerdictLeaf(False),
            above=VerdictLeaf(True),
        )
        analysis = analyze_plan(plan, schema)
        assert analysis.at("root").reachable
        assert analysis.at("root/below") is None  # structural rules own this


class TestRender:
    def test_render_mentions_nodes_and_states(self, schema, query):
        plan = canonical_conditional_plan(query)
        text = render_analysis(analyze_plan(plan, schema, query=query))
        assert "root" in text
        assert "pressure" in text
        assert "always false" in text

    def test_render_marks_unreachable(self, schema):
        plan = ConditionNode(
            attribute="pressure",
            attribute_index=0,
            split_value=3,
            below=ConditionNode(
                attribute="pressure",
                attribute_index=0,
                split_value=3,
                below=VerdictLeaf(False),
                above=VerdictLeaf(True),
            ),
            above=VerdictLeaf(True),
        )
        text = render_analysis(analyze_plan(plan, schema))
        assert "unreachable" in text


class TestVerifierIntegration:
    def test_verify_plan_runs_dataflow_rules(self, schema, query):
        case = {c.name: c for c in dataflow_mutations(query)}["dead-branch"]
        report = verify_plan(case.plan, schema, query=query)
        assert "DF001" in codes(report.diagnostics)

    def test_clean_plan_report_still_ok(self, schema, query):
        report = verify_plan(canonical_conditional_plan(query), schema, query=query)
        assert report.ok and not report.diagnostics

    def test_sequentialnode_empty_is_true_leaf_not_flagged(self, schema):
        # An empty sequential node is the TRUE leaf encoding, not dead code.
        assert check_dataflow(SequentialNode(steps=()), schema) == []

    def test_warning_only_findings_keep_report_ok(self, schema, query):
        plan = ConditionNode(
            attribute="pressure",
            attribute_index=0,
            split_value=3,
            below=canonical_sequential_plan(query),
            above=VerdictLeaf(True),
        )
        report = verify_plan(plan, schema, query=query)
        assert {"DF002", "DF003"} <= codes(report.diagnostics)
        # DF002/DF003 are warnings, not errors.
        assert not any(f.code in ("DF002", "DF003") for f in report.errors)
