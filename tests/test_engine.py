"""Tests for the acquisitional query engine facade."""

import numpy as np
import pytest

from repro.core import Attribute, Schema
from repro.engine import AcquisitionalEngine
from repro.exceptions import QueryError
from repro.planning import NaivePlanner


@pytest.fixture
def schema() -> Schema:
    return Schema(
        [
            Attribute("hour", 4, 1.0),
            Attribute("temp", 4, 100.0),
            Attribute("light", 4, 100.0),
        ]
    )


@pytest.fixture
def history(schema) -> np.ndarray:
    rng = np.random.default_rng(0)
    n = 4000
    hour = rng.integers(1, 5, n)
    day = hour >= 3
    temp = np.where(day, rng.integers(3, 5, n), rng.integers(1, 3, n))
    light = np.where(day, rng.integers(3, 5, n), rng.integers(1, 3, n))
    return np.stack([hour, temp, light], axis=1).astype(np.int64)


@pytest.fixture
def engine(schema, history) -> AcquisitionalEngine:
    return AcquisitionalEngine(schema, history)


class TestPrepare:
    def test_prepared_query_has_plan(self, engine):
        prepared = engine.prepare("SELECT * WHERE temp >= 3 AND light <= 2")
        assert prepared.plan is not None
        assert prepared.expected_where_cost > 0
        assert prepared.planner.startswith("heuristic")

    def test_prepare_is_cached(self, engine):
        first = engine.prepare("SELECT * WHERE temp >= 3")
        second = engine.prepare("SELECT * WHERE temp >= 3")
        assert first is second

    def test_custom_planner_factory(self, schema, history):
        engine = AcquisitionalEngine(
            schema, history, planner_factory=lambda dist: NaivePlanner(dist)
        )
        prepared = engine.prepare("SELECT * WHERE temp >= 3 AND light <= 2")
        assert prepared.planner == "naive"


class TestExecute:
    def test_returns_matching_rows(self, engine, history):
        text = "SELECT hour WHERE temp >= 3 AND light >= 3"
        result = engine.execute(text, history[:500])
        expected = {
            (int(row[0]),)
            for row in history[:500]
            if row[1] >= 3 and row[2] >= 3
        }
        assert set(result.rows) == expected
        assert result.columns == ("hour",)
        assert result.tuples_scanned == 500

    def test_select_star_returns_full_rows(self, engine, history):
        result = engine.execute("SELECT * WHERE temp >= 3 AND light >= 3", history[:200])
        assert result.columns == ("hour", "temp", "light")
        for row in result.rows:
            assert len(row) == 3

    def test_row_count_matches_direct_evaluation(self, engine, history):
        text = "SELECT * WHERE temp >= 3 AND light <= 2"
        result = engine.execute(text, history[:1000])
        query = engine.prepare(text).query
        truth = sum(query.evaluate(row) for row in history[:1000])
        assert len(result.rows) == truth

    def test_where_cost_positive(self, engine, history):
        result = engine.execute("SELECT * WHERE temp >= 3", history[:100])
        assert result.where_cost > 0
        assert result.total_cost >= result.where_cost

    def test_projection_costs_only_unread_attributes(self, schema, history):
        engine = AcquisitionalEngine(schema, history)
        # Selecting only the filtered attribute: it is always read by the
        # WHERE plan on matching tuples, so projection adds nothing.
        cheap = engine.execute("SELECT temp WHERE temp >= 3", history[:500])
        assert cheap.projection_cost == 0.0
        # Selecting an attribute the WHERE never touches costs extra for
        # every matching tuple.
        costly = engine.execute("SELECT light WHERE temp >= 3", history[:500])
        matches = len(costly.rows)
        assert costly.projection_cost == pytest.approx(matches * 100.0)

    def test_mean_cost_per_tuple(self, engine, history):
        result = engine.execute("SELECT * WHERE temp >= 3", history[:100])
        assert result.mean_cost_per_tuple == pytest.approx(
            result.total_cost / 100
        )

    def test_bad_readings_shape_rejected(self, engine):
        with pytest.raises(QueryError):
            engine.execute("SELECT * WHERE temp >= 3", np.ones((5, 2), dtype=int))


class TestExplain:
    def test_explain_mentions_plan_and_probabilities(self, engine):
        text = engine.explain("SELECT * WHERE temp >= 3 AND light <= 2")
        assert "planner: heuristic" in text
        assert "expected WHERE cost/tuple" in text
        assert "p=" in text  # annotated branch probabilities

    def test_conditional_plan_uses_cheap_attribute(self, engine):
        prepared = engine.prepare("SELECT * WHERE temp >= 3 AND light <= 2")
        from repro.core import ConditionNode

        assert isinstance(prepared.plan, ConditionNode)
        assert prepared.plan.attribute == "hour"
