"""Tests for the plan executor."""

import numpy as np
import pytest

from repro.core import (
    Attribute,
    ConjunctiveQuery,
    RangePredicate,
    Schema,
    SequentialNode,
    SequentialStep,
    VerdictLeaf,
    traversal_cost,
)
from repro.exceptions import PlanError
from repro.execution import PlanExecutor, SensorBoardSource, TupleSource
from repro.planning import GreedyConditionalPlanner, OptimalSequentialPlanner
from repro.probability import EmpiricalDistribution
from tests.conftest import correlated_dataset


@pytest.fixture
def schema() -> Schema:
    return Schema(
        [Attribute("x", 3, 1.0), Attribute("y", 3, 10.0), Attribute("z", 3, 100.0)]
    )


def seq(*specs):
    return SequentialNode(
        steps=tuple(
            SequentialStep(
                predicate=RangePredicate(name, low, high), attribute_index=index
            )
            for name, index, low, high in specs
        )
    )


class TestExecute:
    def test_verdict_and_cost(self, schema):
        executor = PlanExecutor(schema)
        plan = seq(("y", 1, 2, 3), ("z", 2, 1, 2))
        result = executor.execute(plan, [1, 2, 1])
        assert result.verdict is True
        assert result.cost == 110.0
        assert result.acquired == frozenset({1, 2})

    def test_fail_fast_cost(self, schema):
        executor = PlanExecutor(schema)
        plan = seq(("y", 1, 2, 3), ("z", 2, 1, 2))
        result = executor.execute(plan, [1, 1, 1])
        assert result.verdict is False
        assert result.cost == 10.0
        assert result.reads == 1

    def test_matches_traversal_cost(self, schema):
        executor = PlanExecutor(schema)
        plan = seq(("x", 0, 1, 1), ("z", 2, 3, 3))
        for row in ([1, 1, 3], [2, 1, 3], [1, 2, 2]):
            assert executor.execute(plan, row).cost == traversal_cost(
                plan, row, schema
            )

    def test_board_source_costing(self, schema):
        executor = PlanExecutor(schema)
        plan = seq(("y", 1, 1, 3), ("z", 2, 1, 3))
        source = SensorBoardSource(
            schema,
            [1, 2, 3],
            boards={1: "board", 2: "board"},
            power_up_cost=40.0,
            per_read_cost=5.0,
        )
        result = executor.execute_source(plan, source)
        assert result.verdict is True
        assert result.cost == 50.0  # 40 power-up + 2 reads at 5

    def test_source_schema_mismatch_rejected(self, schema):
        other = Schema([Attribute("x", 3, 1.0)])
        executor = PlanExecutor(schema)
        source = TupleSource(other, [1])
        with pytest.raises(PlanError, match="schema"):
            executor.execute_source(VerdictLeaf(True), source)


class TestRunAndVerify:
    def test_run_matches_per_tuple_execution(self, schema):
        rng = np.random.default_rng(0)
        data = rng.integers(1, 4, size=(50, 3)).astype(np.int64)
        executor = PlanExecutor(schema)
        plan = seq(("x", 0, 1, 2), ("y", 1, 2, 3))
        outcome = executor.run(plan, data)
        for i, row in enumerate(data):
            single = executor.execute(plan, row)
            assert outcome.costs[i] == single.cost
            assert outcome.verdicts[i] == single.verdict

    def test_verify_accepts_correct_plan(self):
        schema, data = correlated_dataset(n_rows=1500, seed=4)
        distribution = EmpiricalDistribution(schema, data)
        query = ConjunctiveQuery(
            schema, [RangePredicate("a", 1, 2), RangePredicate("b", 3, 5)]
        )
        plan = GreedyConditionalPlanner(
            distribution, OptimalSequentialPlanner(distribution), max_splits=4
        ).plan(query).plan
        report = PlanExecutor(schema).verify(plan, query, data)
        assert report.correct
        assert report.rows == len(data)

    def test_verify_flags_broken_plan(self, schema):
        data = np.array([[1, 1, 1], [2, 2, 2]], dtype=np.int64)
        query = ConjunctiveQuery(schema, [RangePredicate("x", 1, 1)])
        wrong = VerdictLeaf(True)  # claims every row matches
        report = PlanExecutor(schema).verify(wrong, query, data)
        assert not report.correct
        assert report.mismatches == (1,)
