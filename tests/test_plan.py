"""Unit tests for the plan tree: structure, evaluation, size, round-trips."""

import pytest

from repro.core import (
    ConditionNode,
    RangePredicate,
    SequentialNode,
    SequentialStep,
    VerdictLeaf,
    plan_from_dict,
    simplify_plan,
)
from repro.exceptions import PlanError


def step(attribute: str, index: int, low: int, high: int) -> SequentialStep:
    return SequentialStep(
        predicate=RangePredicate(attribute, low, high), attribute_index=index
    )


def sample_plan() -> ConditionNode:
    """if x0 < 2: seq(a) else: seq(b -> a)."""
    return ConditionNode(
        attribute="x0",
        attribute_index=0,
        split_value=2,
        below=SequentialNode(steps=(step("a", 1, 2, 3),)),
        above=SequentialNode(steps=(step("b", 2, 1, 1), step("a", 1, 2, 3))),
    )


class TestVerdictLeaf:
    def test_evaluate(self):
        assert VerdictLeaf(True).evaluate([]) is True
        assert VerdictLeaf(False).evaluate([]) is False

    def test_sizes(self):
        leaf = VerdictLeaf(True)
        assert leaf.size_nodes() == 1
        assert leaf.size_bytes() == 1
        assert leaf.depth() == 0
        assert leaf.condition_count() == 0

    def test_pretty(self):
        assert VerdictLeaf(True).pretty() == "=> T"
        assert VerdictLeaf(False).pretty() == "=> F"


class TestSequentialNode:
    def test_conjunctive_semantics(self):
        node = SequentialNode(steps=(step("a", 0, 2, 3), step("b", 1, 1, 1)))
        assert node.evaluate([2, 1]) is True
        assert node.evaluate([1, 1]) is False
        assert node.evaluate([2, 2]) is False

    def test_fail_fast_stops_acquiring(self):
        node = SequentialNode(steps=(step("a", 0, 2, 3), step("b", 1, 1, 1)))
        acquired = []
        node.evaluate([1, 1], on_acquire=acquired.append)
        assert acquired == [0]  # b never read after a fails

    def test_empty_steps_is_true(self):
        assert SequentialNode(steps=()).evaluate([1, 2, 3]) is True

    def test_size_bytes_scales_with_steps(self):
        one = SequentialNode(steps=(step("a", 0, 1, 1),))
        two = SequentialNode(steps=(step("a", 0, 1, 1), step("b", 1, 1, 1)))
        assert two.size_bytes() > one.size_bytes()

    def test_pretty_shows_chain(self):
        node = SequentialNode(steps=(step("a", 0, 2, 3), step("b", 1, 1, 1)))
        assert "->" in node.pretty()


class TestConditionNode:
    def test_routing(self):
        plan = sample_plan()
        # x0=1 routes below: needs only attribute a in [2,3]
        assert plan.evaluate([1, 2, 9]) is True
        assert plan.evaluate([1, 4, 9]) is False
        # x0=2 routes above: b must be 1 and a in [2,3]
        assert plan.evaluate([2, 2, 1]) is True
        assert plan.evaluate([2, 2, 2]) is False

    def test_on_acquire_fires_once_per_attribute(self):
        plan = ConditionNode(
            attribute="x0",
            attribute_index=0,
            split_value=2,
            below=SequentialNode(steps=(step("x0", 0, 1, 1),)),
            above=VerdictLeaf(False),
        )
        acquired = []
        plan.evaluate([1], on_acquire=acquired.append)
        assert acquired == [0]  # second read of x0 is cached

    def test_structure_metrics(self):
        plan = sample_plan()
        assert plan.size_nodes() == 3
        assert plan.depth() == 1
        assert plan.condition_count() == 1

    def test_split_value_must_be_at_least_two(self):
        with pytest.raises(PlanError):
            ConditionNode(
                attribute="x",
                attribute_index=0,
                split_value=1,
                below=VerdictLeaf(False),
                above=VerdictLeaf(True),
            )

    def test_iter_nodes_preorder(self):
        plan = sample_plan()
        kinds = [type(node).__name__ for node in plan.iter_nodes()]
        assert kinds == ["ConditionNode", "SequentialNode", "SequentialNode"]

    def test_size_bytes_sums_children(self):
        plan = sample_plan()
        assert plan.size_bytes() == 7 + plan.below.size_bytes() + plan.above.size_bytes()


class TestSerialization:
    def test_roundtrip_preserves_structure(self):
        plan = sample_plan()
        assert plan_from_dict(plan.to_dict()) == plan

    def test_roundtrip_leaf(self):
        assert plan_from_dict(VerdictLeaf(False).to_dict()) == VerdictLeaf(False)

    def test_roundtrip_not_range_step(self):
        from repro.core import NotRangePredicate

        node = SequentialNode(
            steps=(
                SequentialStep(
                    predicate=NotRangePredicate("x", 2, 3), attribute_index=0
                ),
            )
        )
        assert plan_from_dict(node.to_dict()) == node

    def test_unknown_kind_rejected(self):
        with pytest.raises(PlanError):
            plan_from_dict({"kind": "mystery"})


class TestSimplify:
    def test_merges_identical_branches(self):
        same = SequentialNode(steps=(step("a", 1, 2, 3),))
        plan = ConditionNode(
            attribute="x0",
            attribute_index=0,
            split_value=2,
            below=same,
            above=SequentialNode(steps=(step("a", 1, 2, 3),)),
        )
        assert simplify_plan(plan) == same

    def test_empty_sequential_becomes_true_leaf(self):
        assert simplify_plan(SequentialNode(steps=())) == VerdictLeaf(True)

    def test_keeps_meaningful_splits(self):
        plan = sample_plan()
        assert simplify_plan(plan) == plan

    def test_recursive_collapse(self):
        inner = ConditionNode(
            attribute="x1",
            attribute_index=1,
            split_value=2,
            below=VerdictLeaf(True),
            above=VerdictLeaf(True),
        )
        outer = ConditionNode(
            attribute="x0",
            attribute_index=0,
            split_value=2,
            below=inner,
            above=VerdictLeaf(True),
        )
        assert simplify_plan(outer) == VerdictLeaf(True)

    def test_simplified_plan_equivalent_on_all_inputs(self):
        plan = ConditionNode(
            attribute="x0",
            attribute_index=0,
            split_value=2,
            below=SequentialNode(steps=(step("a", 1, 2, 2),)),
            above=SequentialNode(steps=(step("a", 1, 2, 2),)),
        )
        simplified = simplify_plan(plan)
        for x0 in (1, 2):
            for a in (1, 2, 3):
                assert plan.evaluate([x0, a]) == simplified.evaluate([x0, a])
