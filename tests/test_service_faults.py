"""The serving layer's resilient path: metrics, FT gating, outage invalidation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import AcquisitionalEngine, ResilientQueryResult
from repro.exceptions import FaultConfigError, PlanVerificationError
from repro.faults import (
    AttributeFaults,
    DegradationMode,
    FaultPolicy,
    FaultSchedule,
)
from repro.faults.policy import NO_RETRY
from repro.obs import Tracer
from repro.service import AcquisitionalService

from tests.conftest import correlated_dataset

STATEMENT = "SELECT * WHERE a <= 2 AND b >= 3"


@pytest.fixture
def parts():
    schema, data = correlated_dataset(n_rows=1500, seed=8)
    engine = AcquisitionalEngine(schema, data[:1000])
    service = AcquisitionalService(engine)
    return schema, data[1000:1300], service


def storm(schema, rate=0.3):
    return FaultSchedule.uniform(schema, drop_rate=rate)


class TestExecuteResilient:
    def test_counts_fault_metrics(self, parts):
        schema, live, service = parts
        outcome = service.execute_resilient(
            STATEMENT,
            live,
            storm(schema),
            np.random.default_rng(0),
            policy=FaultPolicy(retry=NO_RETRY),
        )
        assert isinstance(outcome, ResilientQueryResult)
        snapshot = {
            name: service.metrics.counter(name).value
            for name in (
                "acquisitions_failed",
                "retries_total",
                "tuples_degraded",
                "tuples_abstained",
            )
        }
        assert snapshot["acquisitions_failed"] == outcome.acquisitions_failed > 0
        assert snapshot["retries_total"] == outcome.retries_total == 0
        assert snapshot["tuples_degraded"] == outcome.tuples_degraded > 0
        assert snapshot["tuples_abstained"] == outcome.tuples_abstained > 0
        assert outcome.tuples_abstained == len(outcome.abstained_rows)

    def test_metrics_accumulate_across_calls(self, parts):
        schema, live, service = parts
        rng = np.random.default_rng(1)
        first = service.execute_resilient(STATEMENT, live, storm(schema), rng)
        second = service.execute_resilient(STATEMENT, live, storm(schema), rng)
        counter = service.metrics.counter("acquisitions_failed").value
        assert counter == first.acquisitions_failed + second.acquisitions_failed

    def test_zero_schedule_matches_plain_execute(self, parts):
        schema, live, service = parts
        plain = service.execute(STATEMENT, live)
        resilient = service.execute_resilient(
            STATEMENT, live, FaultSchedule.zero(), np.random.default_rng(0)
        )
        assert resilient.result.rows == plain.rows
        assert resilient.result.where_cost == plain.where_cost
        assert resilient.tuples_abstained == 0
        assert resilient.retry_cost == 0.0

    def test_ft_gate_rejects_unsound_policy(self, parts):
        schema, live, service = parts
        unsound = FaultPolicy(
            degradation=DegradationMode.IMPUTE, confirm_positives=False
        )
        with pytest.raises(PlanVerificationError, match="FT001"):
            service.execute_resilient(
                STATEMENT, live, storm(schema), np.random.default_rng(0),
                policy=unsound,
            )
        assert service.metrics.counter("plans_rejected").value == 1

    def test_disjunctive_statement_needs_abstain(self, parts):
        schema, live, service = parts
        with pytest.raises((PlanVerificationError, FaultConfigError)):
            service.execute_resilient(
                "SELECT * WHERE a <= 2 OR b >= 3",
                live,
                storm(schema),
                np.random.default_rng(0),
                policy=FaultPolicy(degradation=DegradationMode.SKIP),
            )


class TestOutageInvalidation:
    def test_sustained_outage_bumps_statistics_version(self, parts):
        schema, live, _service = parts
        policy = FaultPolicy(
            retry=NO_RETRY,
            degradation=DegradationMode.ABSTAIN,
            outage_replan_threshold=0.2,
        )
        tracer = Tracer()
        service = AcquisitionalService(
            AcquisitionalEngine(schema, live), tracer=tracer
        )
        before = service.engine.statistics_version
        service.execute_resilient(
            STATEMENT,
            live,
            FaultSchedule.uniform(schema, drop_rate=0.6),
            np.random.default_rng(0),
            policy=policy,
        )
        assert service.engine.statistics_version == before + 1
        assert service.metrics.counter("outage_invalidations").value == 1
        replans = [e for e in tracer.events if e.phase == "replan"]
        assert replans and replans[0].fields["reason"] == "outage"

    def test_quiet_run_does_not_invalidate(self, parts):
        schema, live, service = parts
        policy = FaultPolicy(outage_replan_threshold=0.9)
        before = service.engine.statistics_version
        service.execute_resilient(
            STATEMENT,
            live,
            FaultSchedule.uniform(schema, drop_rate=0.05),
            np.random.default_rng(0),
            policy=policy,
        )
        assert service.engine.statistics_version == before
        assert service.metrics.counter("outage_invalidations").value == 0

    def test_threshold_none_disables_trigger(self, parts):
        schema, live, service = parts
        before = service.engine.statistics_version
        service.execute_resilient(
            STATEMENT,
            live,
            FaultSchedule.uniform(schema, drop_rate=0.6),
            np.random.default_rng(0),
            policy=FaultPolicy(retry=NO_RETRY),
        )
        assert service.engine.statistics_version == before
