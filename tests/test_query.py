"""Unit tests for query classes."""

import pytest

from repro.core import (
    Attribute,
    ConjunctiveQuery,
    ExistentialQuery,
    LimitQuery,
    Range,
    RangePredicate,
    RangeVector,
    Schema,
    Truth,
)
from repro.exceptions import QueryError


@pytest.fixture
def schema() -> Schema:
    return Schema(
        [Attribute("a", 4, 1.0), Attribute("b", 4, 10.0), Attribute("c", 4, 100.0)]
    )


class TestConjunctiveQuery:
    def test_evaluate(self, schema):
        query = ConjunctiveQuery(
            schema, [RangePredicate("a", 1, 2), RangePredicate("c", 3, 4)]
        )
        assert query.evaluate([1, 1, 3])
        assert not query.evaluate([3, 1, 3])
        assert not query.evaluate([1, 1, 2])

    def test_attribute_indices(self, schema):
        query = ConjunctiveQuery(
            schema, [RangePredicate("c", 1, 2), RangePredicate("a", 1, 2)]
        )
        assert query.attribute_indices == (2, 0)

    def test_len(self, schema):
        query = ConjunctiveQuery(schema, [RangePredicate("a", 1, 2)])
        assert len(query) == 1

    def test_duplicate_attribute_rejected(self, schema):
        with pytest.raises(QueryError, match="duplicate"):
            ConjunctiveQuery(
                schema, [RangePredicate("a", 1, 2), RangePredicate("a", 3, 4)]
            )

    def test_unknown_attribute_rejected(self, schema):
        with pytest.raises(Exception):
            ConjunctiveQuery(schema, [RangePredicate("zzz", 1, 2)])

    def test_out_of_domain_predicate_rejected(self, schema):
        with pytest.raises(QueryError, match="exceeds domain"):
            ConjunctiveQuery(schema, [RangePredicate("a", 1, 9)])

    def test_empty_query_rejected(self, schema):
        with pytest.raises(QueryError):
            ConjunctiveQuery(schema, [])

    def test_truth_under_full_ranges_undetermined(self, schema):
        query = ConjunctiveQuery(
            schema, [RangePredicate("a", 1, 2), RangePredicate("b", 3, 4)]
        )
        assert query.truth_under(RangeVector.full(schema)) is Truth.UNDETERMINED

    def test_truth_under_false_short_circuits(self, schema):
        query = ConjunctiveQuery(
            schema, [RangePredicate("a", 1, 2), RangePredicate("b", 3, 4)]
        )
        ranges = RangeVector.full(schema).with_range(0, Range(3, 4))
        assert query.truth_under(ranges) is Truth.FALSE

    def test_truth_under_all_proven_true(self, schema):
        query = ConjunctiveQuery(
            schema, [RangePredicate("a", 1, 2), RangePredicate("b", 3, 4)]
        )
        ranges = (
            RangeVector.full(schema)
            .with_range(0, Range(1, 2))
            .with_range(1, Range(3, 4))
        )
        assert query.truth_under(ranges) is Truth.TRUE

    def test_undetermined_predicates(self, schema):
        query = ConjunctiveQuery(
            schema, [RangePredicate("a", 1, 2), RangePredicate("b", 3, 4)]
        )
        ranges = RangeVector.full(schema).with_range(0, Range(1, 2))
        remaining = query.undetermined_predicates(ranges)
        assert len(remaining) == 1
        assert remaining[0][1] == 1  # only the b predicate remains

    def test_describe(self, schema):
        query = ConjunctiveQuery(
            schema, [RangePredicate("a", 1, 2), RangePredicate("b", 3, 4)]
        )
        assert query.describe() == "1 <= a <= 2 AND 3 <= b <= 4"


class TestFleetQueries:
    def inner(self, schema) -> ConjunctiveQuery:
        return ConjunctiveQuery(schema, [RangePredicate("a", 2, 2)])

    def test_existential_true(self, schema):
        query = ExistentialQuery(self.inner(schema))
        assert query.evaluate([[1, 1, 1], [2, 1, 1]])

    def test_existential_false(self, schema):
        query = ExistentialQuery(self.inner(schema))
        assert not query.evaluate([[1, 1, 1], [3, 1, 1]])

    def test_existential_short_circuits(self, schema):
        query = ExistentialQuery(self.inner(schema))

        def rows():
            yield [2, 1, 1]
            raise AssertionError("second row must not be evaluated")

        assert query.evaluate(rows())

    def test_limit_collects_up_to_k(self, schema):
        query = LimitQuery(self.inner(schema), limit=2)
        rows = [[2, 1, 1], [1, 1, 1], [2, 2, 2], [2, 3, 3]]
        assert query.evaluate(rows) == [(2, 1, 1), (2, 2, 2)]

    def test_limit_fewer_matches(self, schema):
        query = LimitQuery(self.inner(schema), limit=5)
        assert query.evaluate([[1, 1, 1], [2, 1, 1]]) == [(2, 1, 1)]

    def test_limit_validates(self, schema):
        with pytest.raises(QueryError):
            LimitQuery(self.inner(schema), limit=0)
