"""The repro-lint violation corpus: every rule must fire, cleanly."""

from repro.lint import (
    LINT_CATALOG,
    clean_cases,
    lint_source,
    run_corpus,
    violation_cases,
)


class TestCorpusSelfTest:
    def test_run_corpus_is_green(self):
        assert run_corpus() == []

    def test_every_violation_case_fires_its_documented_code(self):
        for case in violation_cases():
            report = lint_source(case.source, module=case.module)
            assert report.has(case.expected_code), (
                f"{case.name} expected {case.expected_code}, "
                f"got {sorted(report.codes())}"
            )

    def test_clean_cases_stay_silent(self):
        for case in clean_cases():
            report = lint_source(case.source, module=case.module)
            assert not report.findings, (
                f"clean case {case.name} fired {sorted(report.codes())}"
            )

    def test_corpus_exercises_every_cataloged_code(self):
        exercised = {case.expected_code for case in violation_cases()}
        assert exercised == set(LINT_CATALOG), (
            "codes with no corpus case: "
            f"{sorted(set(LINT_CATALOG) - exercised)}"
        )

    def test_expected_codes_carry_catalog_severities(self):
        for case in violation_cases():
            assert case.expected_code in LINT_CATALOG
            report = lint_source(case.source, module=case.module)
            matching = [
                f for f in report.findings if f.code == case.expected_code
            ]
            assert matching
            severity, _title = LINT_CATALOG[case.expected_code]
            assert all(f.severity is severity for f in matching)

    def test_case_names_and_modules_are_unique(self):
        names = [case.name for case in violation_cases() + clean_cases()]
        assert len(names) == len(set(names))
