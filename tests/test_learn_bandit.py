"""Unit tests for BranchBandit, OrderBanditEnsemble, and BanditStateStore."""

import pytest

from repro.core import ConjunctiveQuery, RangePredicate
from repro.core.plan import ConditionNode, SequentialNode
from repro.core.ranges import RangeVector
from repro.exceptions import LearningError
from repro.learn import BanditStateStore, OrderBanditEnsemble, RegretLedger
from repro.learn.arms import ArmSpace
from repro.learn.bandit import BranchBandit
from repro.probability import EmpiricalDistribution


def make_branch(
    schema,
    *,
    priors=(100.0, 150.0),
    budget=1e9,
    burst=4,
    delta=0.1,
    decay=1.0,
    step_rates=None,
    span=200.0,
):
    """A two-arm branch over tiny_schema's expensive predicates."""
    query = ConjunctiveQuery(
        schema,
        [RangePredicate("exp_a", 2, 2), RangePredicate("exp_b", 2, 2)],
    )
    ledger = RegretLedger(budget)
    space = ArmSpace(query, RangeVector.full(schema))
    branch = BranchBandit(
        "root",
        space,
        priors,
        ledger,
        span=span,
        delta=delta,
        burst_pulls=burst,
        decay=decay,
        step_rates=step_rates,
    )
    return branch, ledger


class TestConstruction:
    def test_fresh_branch_opens_validation_burst(self, tiny_schema):
        branch, _ = make_branch(tiny_schema)
        assert branch.bursting
        assert not branch.committed
        assert branch.served == 0  # lowest prior wins
        assert branch.select() == 0

    def test_single_arm_branch_commits_immediately(self, tiny_schema):
        query = ConjunctiveQuery(tiny_schema, [RangePredicate("exp_a", 2, 2)])
        ledger = RegretLedger(1e9)
        space = ArmSpace(query, RangeVector.full(tiny_schema))
        branch = BranchBandit(
            "root", space, (100.0,), ledger, span=100.0, delta=0.1,
            burst_pulls=4, decay=1.0,
        )
        assert branch.committed
        assert not branch.bursting
        assert not branch.wants_full_pull()

    def test_mismatched_priors_rejected(self, tiny_schema):
        with pytest.raises(LearningError, match="priors"):
            make_branch(tiny_schema, priors=(100.0,))

    def test_mismatched_step_rates_rejected(self, tiny_schema):
        with pytest.raises(LearningError, match="step-rate"):
            make_branch(tiny_schema, step_rates=((0.5,),))


class TestLedgerCharges:
    def test_served_pull_charges_exploit_side(self, tiny_schema):
        branch, ledger = make_branch(tiny_schema)
        branch.record(branch.served, 120.0)
        assert ledger.base_cost == pytest.approx(120.0)
        assert ledger.exploration_cost == 0.0
        assert branch.rounds == 1

    def test_full_pull_splits_against_incumbent_replay(self, tiny_schema):
        branch, ledger = make_branch(tiny_schema)
        branch.record_full(200.0, [110.0, 90.0])
        # Incumbent's replay cost (arm 0) is the exploit reference.
        assert ledger.base_cost == pytest.approx(110.0)
        assert ledger.exploration_cost == pytest.approx(90.0)
        assert branch.paired_mean(1) == pytest.approx(90.0 - 110.0)

    def test_full_pull_requires_cost_per_arm(self, tiny_schema):
        branch, _ = make_branch(tiny_schema)
        with pytest.raises(LearningError, match="counterfactual"):
            branch.record_full(200.0, [100.0])

    def test_failed_full_pull_charges_but_teaches_nothing(self, tiny_schema):
        branch, ledger = make_branch(tiny_schema)
        mean_before = branch.mean(0)
        branch.record_full_failure(250.0)
        assert branch.mean(0) == mean_before
        assert ledger.total_cost == pytest.approx(250.0)
        assert ledger.exploration_cost > 0.0
        assert branch.rounds == 1

    def test_budget_denial_abandons_the_burst(self, tiny_schema):
        branch, _ = make_branch(tiny_schema, budget=10.0, span=200.0)
        assert branch.bursting
        assert not branch.wants_full_pull()  # span 200 > budget 10
        assert not branch.bursting


class TestBurstLifecycle:
    def test_burst_settles_when_incumbent_confirmed(self, tiny_schema):
        branch, _ = make_branch(tiny_schema, burst=4)
        for _ in range(4):
            assert branch.wants_full_pull()
            branch.record_full(200.0, [100.0, 150.0])
            assert branch.maybe_swap() is None
        assert not branch.bursting
        assert branch.served == 0

    def test_provable_challenger_dethrones_incumbent(self, tiny_schema):
        branch, _ = make_branch(tiny_schema, burst=4)
        swapped = None
        for _ in range(4 * 4):  # within the hard cap
            branch.record_full(200.0, [150.0, 100.0])
            swapped = branch.maybe_swap()
            if swapped is not None:
                break
        assert swapped == 1
        assert branch.served == 1
        # The swap restarts the confirmation clock: the burst stays open
        # and the new incumbent's paired evidence starts from scratch.
        assert branch.bursting
        assert branch.paired_mean(0) == 0.0
        for _ in range(4):
            branch.record_full(200.0, [150.0, 100.0])
            assert branch.maybe_swap() is None
        assert not branch.bursting
        assert branch.served == 1

    def test_capped_burst_resolves_by_preponderance(self, tiny_schema):
        branch, _ = make_branch(tiny_schema, burst=4, delta=0.01)
        # Alternating diffs: mean -5 (past the deadband of 4.0) but the
        # variance is so large the PAO bound never proves the swap.
        flips = [[150.0, 45.0], [150.0, 245.0]]
        swapped = None
        pulls = 0
        while branch.bursting:
            branch.record_full(300.0, flips[pulls % 2])
            pulls += 1
            swapped = branch.maybe_swap()
            if swapped is not None:
                break
            assert pulls <= 4 * 4 + 1, "burst outlived its hard cap"
        assert swapped == 1
        assert branch.served == 1
        assert not branch.bursting

    def test_check_commit_needs_minimum_burst_length(self, tiny_schema):
        branch, _ = make_branch(tiny_schema, burst=4)
        for _ in range(3):
            branch.record_full(200.0, [100.0, 150.0])
            assert not branch.check_commit()
        assert branch.bursting

    def test_check_commit_latches_on_airtight_bounds(self, tiny_schema):
        branch, _ = make_branch(tiny_schema, burst=4)
        for _ in range(3):
            branch.record_full(200.0, [100.0, 150.0])
        # Zero-variance diffs give the challenger an exact +50 bound.
        # record_full would settle the burst on the next pull, so drive
        # the commit check directly at the threshold.
        branch._burst_done = branch._burst
        assert branch.check_commit()
        assert branch.committed
        assert not branch.bursting
        assert not branch.check_commit()  # transition reported once

    def test_check_commit_noop_outside_burst(self, tiny_schema):
        branch, _ = make_branch(tiny_schema, burst=2)
        for _ in range(2):
            branch.record_full(200.0, [100.0, 150.0])
        assert not branch.bursting
        assert not branch.check_commit()


class TestChangeDetector:
    RATES = ((0.9, 0.5), (0.5, 0.9))

    def drain_burst(self, branch):
        while branch.bursting:
            branch.record_full(200.0, [100.0, 150.0])
            branch.maybe_swap()

    def test_deviant_selectivity_reopens_burst(self, tiny_schema):
        branch, _ = make_branch(tiny_schema, burst=2, step_rates=self.RATES)
        self.drain_burst(branch)
        # Observed pass rate 0.0 against model 0.9: fires once the
        # detector has its minimum weight.
        for _ in range(16):
            branch.record(branch.served, 100.0, passes=(False,))
            if branch.bursting:
                break
        assert branch.bursting

    def test_on_model_selectivity_stays_quiet(self, tiny_schema):
        branch, _ = make_branch(tiny_schema, burst=2, step_rates=self.RATES)
        self.drain_burst(branch)
        for index in range(200):
            passed = index % 10 != 0  # observed 0.9, model 0.9
            branch.record(branch.served, 100.0, passes=(passed,))
        assert not branch.bursting

    def test_stale_model_disarms_until_warm_start(self, tiny_schema):
        branch, _ = make_branch(tiny_schema, burst=2, step_rates=self.RATES)
        self.drain_burst(branch)
        for _ in range(16):
            branch.record(branch.served, 100.0, passes=(False,))
            if branch.bursting:
                break
        self.drain_burst(branch)  # stale fire -> detector disarmed
        for _ in range(32):
            branch.record(branch.served, 100.0, passes=(False,))
        assert not branch.bursting
        branch.warm_start((100.0, 150.0), 0.25, self.RATES)
        for _ in range(16):
            branch.record(branch.served, 100.0, passes=(False,))
            if branch.bursting:
                break
        assert branch.bursting


class TestRefitsAndPersistence:
    def test_warm_start_re_priors_and_reserves(self, tiny_schema):
        branch, _ = make_branch(tiny_schema, burst=2)
        self_drain = TestChangeDetector().drain_burst
        self_drain(branch)
        branch.warm_start((300.0, 50.0), 0.25)
        assert branch.served == 1  # fresh priors flipped the ranking
        assert not branch.bursting  # refits serve immediately, no burst

    def test_warm_start_rejects_mismatched_arm_count(self, tiny_schema):
        branch, _ = make_branch(tiny_schema)
        with pytest.raises(LearningError, match="mismatched arm count"):
            branch.warm_start((1.0,), 0.25)
        with pytest.raises(LearningError, match="step-rate"):
            branch.warm_start((1.0, 2.0), 0.25, ((0.5,),))

    def test_export_adopt_round_trip(self, tiny_schema):
        branch, _ = make_branch(tiny_schema, burst=2)
        for _ in range(2):
            branch.record_full(200.0, [150.0, 100.0])
            branch.maybe_swap()
        stored = branch.export()
        assert stored.path == "root"
        assert stored.orders == ((1, 2), (2, 1))

        fresh, _ = make_branch(tiny_schema, burst=2)
        fresh.adopt(stored, discount=1.0)
        assert fresh.served == branch.served
        assert fresh.rounds == branch.rounds
        assert fresh.mean(0) == pytest.approx(branch.mean(0))
        assert not fresh.bursting  # adopted evidence skips the fresh burst

    def test_adopt_discount_shrinks_evidence_weight(self, tiny_schema):
        branch, _ = make_branch(tiny_schema, burst=2)
        for _ in range(2):
            branch.record_full(200.0, [100.0, 150.0])
        stored = branch.export()
        fresh, _ = make_branch(tiny_schema, burst=2)
        fresh.adopt(stored, discount=0.5)
        exported = fresh.export()
        for adopted, original in zip(exported.posteriors, stored.posteriors):
            assert adopted.weight == pytest.approx(original.weight * 0.5)

    def test_provenance_reflects_posterior_state(self, tiny_schema):
        branch, _ = make_branch(tiny_schema, burst=2)
        branch.record_full(200.0, [100.0, 150.0])
        record = branch.provenance()
        assert record.path == "root"
        assert record.served_arm == branch.served
        assert record.span == branch.span
        assert len(record.arms) == 2
        for arm in record.arms:
            assert arm.lcb <= arm.mean <= arm.ucb


@pytest.fixture
def flat_ensemble(day_night_schema, day_night_query, day_night_distribution):
    return OrderBanditEnsemble(
        day_night_schema,
        day_night_query,
        day_night_distribution,
        budget=1e9,
    )


class TestEnsemble:
    def test_parameter_validation(
        self, day_night_schema, day_night_query, day_night_distribution
    ):
        build = lambda **kw: OrderBanditEnsemble(  # noqa: E731
            day_night_schema,
            day_night_query,
            day_night_distribution,
            budget=1e9,
            **kw,
        )
        with pytest.raises(LearningError):
            build(delta=0.0)
        with pytest.raises(LearningError):
            build(burst_pulls=0)
        with pytest.raises(LearningError):
            build(decay=1.5)
        with pytest.raises(LearningError):
            build(span_inflation=0.5)

    def test_flat_ensemble_routes_to_single_branch(self, flat_ensemble):
        assert flat_ensemble.flat
        assert len(flat_ensemble.branches) == 1
        acquired = set()
        branch, visits, cost = flat_ensemble.route([1, 2, 2], acquired)
        assert branch is flat_ensemble.branches[0]
        assert visits == []
        assert cost == 0.0

    def test_skeleton_splits_into_branch_bandits(
        self, day_night_schema, day_night_query, day_night_distribution
    ):
        skeleton = ConditionNode(
            attribute="hour",
            attribute_index=0,
            split_value=2,
            below=SequentialNode(steps=()),
            above=SequentialNode(steps=()),
        )
        ensemble = OrderBanditEnsemble(
            day_night_schema,
            day_night_query,
            day_night_distribution,
            budget=1e9,
            skeleton=skeleton,
        )
        assert not ensemble.flat
        assert {branch.path for branch in ensemble.branches} == {
            "root/below",
            "root/above",
        }
        acquired = set()
        branch, visits, _cost = ensemble.route([1, 2, 2], acquired)
        assert branch.path == "root/below"
        assert len(visits) == 1
        assert visits[0].below
        assert 0 in acquired
        branch, _, _ = ensemble.route([2, 2, 2], set())
        assert branch.path == "root/above"
        plan = ensemble.composite_plan()
        assert isinstance(plan, ConditionNode)
        assert isinstance(plan.below, SequentialNode)

    def test_expected_cost_matches_composite_plan(
        self, flat_ensemble, day_night_distribution
    ):
        from repro.core.cost import expected_cost

        assert flat_ensemble.expected_cost(day_night_distribution) == pytest.approx(
            expected_cost(
                flat_ensemble.composite_plan(), day_night_distribution, None
            )
        )

    def test_export_adopt_between_matching_ensembles(
        self, day_night_schema, day_night_query, day_night_distribution
    ):
        first = OrderBanditEnsemble(
            day_night_schema, day_night_query, day_night_distribution, budget=1e9
        )
        branch = first.branches[0]
        for _ in range(3):
            branch.record_full(2.0, [1.5, 1.0])
            branch.maybe_swap()
        state = first.export_state()

        second = OrderBanditEnsemble(
            day_night_schema, day_night_query, day_night_distribution, budget=1e9
        )
        assert second.adopt(state, discount=0.5)
        assert second.branches[0].served == branch.served
        assert second.total_rounds == first.total_rounds

    def test_adopt_refuses_mismatched_shape(
        self,
        day_night_schema,
        day_night_query,
        day_night_distribution,
        flat_ensemble,
    ):
        other_query = ConjunctiveQuery(
            day_night_schema, [RangePredicate("temp", 2, 2)]
        )
        other = OrderBanditEnsemble(
            day_night_schema, other_query, day_night_distribution, budget=1e9
        )
        assert not flat_ensemble.adopt(other.export_state(), discount=0.5)

    def test_provenance_snapshot(self, flat_ensemble):
        record = flat_ensemble.provenance(observed_total=12.5)
        assert record.observed_total == 12.5
        assert record.delta == 0.05
        assert len(record.branches) == 1
        assert record.ledger.budget == 1e9
        assert not record.committed
        assert record.total_pulls == 0


class TestBanditStateStore:
    def make_state(self, flat_ensemble):
        return flat_ensemble.export_state()

    def test_put_get_roundtrip(self, flat_ensemble):
        store = BanditStateStore()
        state = self.make_state(flat_ensemble)
        store.put("q1", 3, state)
        assert store.get("q1", 3) is state
        assert store.get("q1", 4) is None
        assert store.get("q2", 3) is None

    def test_latest_and_versions(self, flat_ensemble):
        store = BanditStateStore()
        old = self.make_state(flat_ensemble)
        new = self.make_state(flat_ensemble)
        store.put("q1", 1, old)
        store.put("q1", 5, new)
        store.put("q2", 9, old)
        assert store.versions("q1") == (1, 5)
        latest = store.latest("q1")
        assert latest is not None
        assert latest[0] == 5
        assert latest[1] is new
        assert store.latest("missing") is None

    def test_lru_eviction(self, flat_ensemble):
        store = BanditStateStore(capacity=2)
        state = self.make_state(flat_ensemble)
        store.put("a", 1, state)
        store.put("b", 1, state)
        assert store.get("a", 1) is state  # refresh "a"
        store.put("c", 1, state)  # evicts "b", the least recent
        assert store.get("b", 1) is None
        assert store.get("a", 1) is state
        assert len(store) == 2

    def test_capacity_validated_and_clear(self, flat_ensemble):
        with pytest.raises(LearningError):
            BanditStateStore(capacity=0)
        store = BanditStateStore()
        store.put("a", 1, self.make_state(flat_ensemble))
        store.clear()
        assert len(store) == 0
