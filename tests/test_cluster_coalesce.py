"""Units: the coalescing map and the admission controller."""

from __future__ import annotations

import asyncio

import pytest

from repro.cluster.admission import AdmissionController
from repro.cluster.coalesce import CoalescingMap
from repro.exceptions import ClusterError
from repro.faults.policy import DegradationMode

KEY_A = ("digest-a", "readings-1", None)
KEY_B = ("digest-b", "readings-1", None)


def _future() -> asyncio.Future:
    return asyncio.new_event_loop().create_future()


class TestCoalescingMap:
    def test_join_before_open_returns_none(self) -> None:
        coalescer = CoalescingMap()
        assert coalescer.join(KEY_A, _future()) is None
        assert coalescer.dispatched_requests == 0

    def test_join_attaches_to_open_entry(self) -> None:
        coalescer = CoalescingMap()
        first, second = _future(), _future()
        entry = coalescer.open(KEY_A, shard=0, request_id=1, text="q", future=first)
        joined = coalescer.join(KEY_A, second)
        assert joined is entry
        assert entry.fanout == 2
        assert coalescer.coalesced_requests == 1
        assert coalescer.inflight_requests == 2

    def test_distinct_keys_do_not_coalesce(self) -> None:
        coalescer = CoalescingMap()
        coalescer.open(KEY_A, 0, 1, "q", _future())
        assert coalescer.join(KEY_B, _future()) is None

    def test_resolve_pops_entry_once(self) -> None:
        coalescer = CoalescingMap()
        coalescer.open(KEY_A, 0, 1, "q", _future())
        coalescer.join(KEY_A, _future())
        entry = coalescer.resolve(1)
        assert entry is not None and entry.fanout == 2
        assert coalescer.resolve(1) is None
        assert len(coalescer) == 0
        # the key is free again: the next request dispatches fresh
        assert coalescer.join(KEY_A, _future()) is None

    def test_reassign_moves_shard_and_request_id(self) -> None:
        coalescer = CoalescingMap()
        entry = coalescer.open(KEY_A, 0, 1, "q", _future())
        coalescer.reassign(entry, shard=3, request_id=9)
        assert coalescer.resolve(1) is None  # old id is dead
        assert coalescer.pending_on(3) == [entry]
        assert coalescer.resolve(9) is entry

    def test_pending_on_filters_by_shard(self) -> None:
        coalescer = CoalescingMap()
        a = coalescer.open(KEY_A, 0, 1, "qa", _future())
        b = coalescer.open(KEY_B, 1, 2, "qb", _future())
        assert coalescer.pending_on(0) == [a]
        assert coalescer.pending_on(1) == [b]
        assert coalescer.pending_on(2) == []
        assert {id(e) for e in coalescer.entries()} == {id(a), id(b)}


class TestAdmissionController:
    def test_under_soft_limit_everything_flows(self) -> None:
        controller = AdmissionController(soft_limit=4, hard_limit=8)
        decision = controller.decide(
            inflight=3, shard_depth=3, warm=False, joinable=False
        )
        assert decision.admitted

    def test_abstain_sheds_between_limits(self) -> None:
        controller = AdmissionController(
            soft_limit=4, hard_limit=8, shed_mode=DegradationMode.ABSTAIN
        )
        decision = controller.decide(
            inflight=5, shard_depth=0, warm=True, joinable=False
        )
        assert not decision.admitted and decision.reason == "overload"

    def test_skip_admits_warm_sheds_cold_between_limits(self) -> None:
        controller = AdmissionController(
            soft_limit=4, hard_limit=8, shed_mode=DegradationMode.SKIP
        )
        warm = controller.decide(inflight=5, shard_depth=0, warm=True, joinable=False)
        cold = controller.decide(inflight=5, shard_depth=0, warm=False, joinable=False)
        assert warm.admitted
        assert not cold.admitted and cold.reason == "cold"

    def test_hard_limit_sheds_even_warm_skip(self) -> None:
        controller = AdmissionController(
            soft_limit=4, hard_limit=8, shed_mode=DegradationMode.SKIP
        )
        decision = controller.decide(
            inflight=8, shard_depth=0, warm=True, joinable=False
        )
        assert not decision.admitted and decision.reason == "overload"

    def test_joinable_always_admitted(self) -> None:
        controller = AdmissionController(soft_limit=1, hard_limit=1)
        decision = controller.decide(
            inflight=10_000, shard_depth=10_000, warm=False, joinable=True
        )
        assert decision.admitted

    def test_shard_depth_limit(self) -> None:
        controller = AdmissionController(
            soft_limit=100, hard_limit=200, max_shard_depth=2
        )
        decision = controller.decide(
            inflight=1, shard_depth=2, warm=True, joinable=False
        )
        assert not decision.admitted and decision.reason == "queue-depth"

    def test_shed_ledger_charges_eq3_cost(self) -> None:
        controller = AdmissionController()
        controller.charge_shed(expected_where_cost=2.5, rows=40)
        controller.charge_shed(expected_where_cost=0.0, rows=40)  # unknown cost
        snapshot = controller.snapshot()
        assert snapshot["requests_shed"] == 2
        assert snapshot["shed_cost_avoided"] == pytest.approx(100.0)

    def test_invalid_limits_rejected(self) -> None:
        with pytest.raises(ClusterError):
            AdmissionController(soft_limit=0)
        with pytest.raises(ClusterError):
            AdmissionController(soft_limit=10, hard_limit=5)
        with pytest.raises(ClusterError):
            AdmissionController(max_shard_depth=0)
