"""Service integration for the learned streaming path.

The service supplies the glue the bare executor leaves open: metrics
counters and the regret gauge, ``learn`` trace events, statistics-
version bumps on drift refits, and the fingerprint-keyed bandit state
store that deliberately survives those bumps.
"""

import pytest

from repro.engine import AcquisitionalEngine
from repro.exceptions import QueryError, ServiceError
from repro.learn import LearnedStreamExecutor, adversarial_stream
from repro.obs import Tracer
from repro.service import AcquisitionalService

TEXT = "SELECT mode WHERE mode <= 3 AND p <= 2 AND q <= 2"


@pytest.fixture(scope="module")
def workload():
    return adversarial_stream(n_segments=2, segment_length=200, seed=2)


@pytest.fixture
def engine(workload):
    return AcquisitionalEngine(workload.schema, workload.data[:256])


@pytest.fixture
def service(engine):
    return AcquisitionalService(engine)


def run(service, workload, **kwargs):
    defaults = dict(window=96, warmup=48, smoothing=0.5, burst_pulls=6)
    defaults.update(kwargs)
    executor = service.learned_stream_executor(TEXT, **defaults)
    return executor.process(workload.data)


class TestWiring:
    def test_returns_a_learned_executor(self, service):
        executor = service.learned_stream_executor(TEXT)
        assert isinstance(executor, LearnedStreamExecutor)

    def test_owned_kwargs_rejected(self, service):
        for owned in (
            "on_replan",
            "state_store",
            "state_key",
            "version_provider",
        ):
            with pytest.raises(ServiceError, match=owned):
                service.learned_stream_executor(TEXT, **{owned: None})

    def test_non_conjunctive_query_rejected(self, service):
        with pytest.raises(QueryError, match="conjunctive"):
            service.learned_stream_executor(
                "SELECT mode WHERE p <= 2 OR q <= 2"
            )


class TestMetricsAndTracing:
    def test_replan_events_land_in_counters_and_gauge(
        self, service, workload
    ):
        report = run(service, workload)
        reasons = [event.reason for event in report.replans]
        swaps = service.metrics.counter("learned_order_swaps").value
        refits = service.metrics.counter("learned_drift_refits").value
        assert swaps == reasons.count("order-swap")
        assert refits == reasons.count("drift-refit") + reasons.count("outage")
        assert swaps + refits > 0  # the adversarial flip forces adaptation
        gauge = service.metrics.gauge("learned_regret_remaining").value
        assert gauge == pytest.approx(report.replans[-1].budget_remaining)

    def test_drift_refit_bumps_statistics_version(
        self, engine, service, workload
    ):
        before = engine.statistics_version
        report = run(service, workload)
        refits = sum(
            event.reason in ("drift-refit", "outage")
            for event in report.replans
        )
        assert engine.statistics_version == before + refits

    def test_learn_events_traced_with_fingerprint(self, engine, workload):
        tracer = Tracer()
        service = AcquisitionalService(engine, tracer=tracer)
        report = run(service, workload)
        learn_events = [
            event for event in tracer.events if event.phase == "learn"
        ]
        assert len(learn_events) == len(report.replans)
        fingerprints = {event.fingerprint for event in learn_events}
        assert len(fingerprints) == 1
        assert {event.fields["reason"] for event in learn_events} == {
            event.reason for event in report.replans
        }


class TestStateAcrossVersions:
    def test_states_keyed_by_statistics_version(
        self, engine, service, workload
    ):
        run(service, workload)
        store = service.bandit_store
        assert len(store) > 0
        # Every stored version is one the engine actually had.
        (key,) = {key for key, _version in store._entries}
        assert all(
            version <= engine.statistics_version
            for version in store.versions(key)
        )

    def test_bandit_store_survives_version_bumps(
        self, engine, service, workload
    ):
        run(service, workload)
        stored_before = len(service.bandit_store)
        engine.bump_statistics_version()
        assert len(service.bandit_store) == stored_before

    def test_second_run_warm_starts_from_stored_state(
        self, engine, service, workload
    ):
        run(service, workload)
        engine.bump_statistics_version()  # simulated cache invalidation
        rerun = run(service, workload)
        warmup = rerun.replans[0]
        assert warmup.reason == "warmup"
        assert warmup.warm

    def test_different_statements_do_not_share_state(self, service, workload):
        run(service, workload)
        other = service.learned_stream_executor(
            "SELECT mode WHERE mode <= 3 AND p <= 2",
            window=96,
            warmup=48,
            smoothing=0.5,
        )
        report = other.process(workload.data)
        assert not report.replans[0].warm
