"""Tests for the attribute-independence probability model."""

import numpy as np
import pytest

from repro.core import (
    Attribute,
    ConjunctiveQuery,
    Range,
    RangePredicate,
    RangeVector,
    Schema,
)
from repro.exceptions import DistributionError
from repro.probability import EmpiricalDistribution, IndependenceDistribution


@pytest.fixture
def schema() -> Schema:
    return Schema([Attribute("a", 4), Attribute("b", 4)])


def correlated_data(n: int = 4000, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    a = rng.integers(1, 5, n)
    b = np.clip(a + rng.integers(-1, 2, n), 1, 4)  # b tracks a
    return np.stack([a, b], axis=1).astype(np.int64)


class TestFitting:
    def test_rejects_bad_shape(self, schema):
        with pytest.raises(DistributionError):
            IndependenceDistribution(schema, np.ones((5, 3), dtype=np.int64))

    def test_rejects_empty(self, schema):
        with pytest.raises(DistributionError):
            IndependenceDistribution(schema, np.empty((0, 2), dtype=np.int64))

    def test_marginals_match_data(self, schema):
        data = correlated_data()
        model = IndependenceDistribution(schema, data, smoothing=0.0)
        full = RangeVector.full(schema)
        histogram = model.attribute_histogram(0, full)
        for value in range(1, 5):
            assert histogram[value - 1] == pytest.approx(
                np.mean(data[:, 0] == value)
            )


class TestIndependenceSemantics:
    def test_range_probability_is_product(self, schema):
        data = correlated_data()
        model = IndependenceDistribution(schema, data, smoothing=0.0)
        ranges = (
            RangeVector.full(schema)
            .with_range(0, Range(1, 2))
            .with_range(1, Range(3, 4))
        )
        p_a = np.mean(data[:, 0] <= 2)
        p_b = np.mean(data[:, 1] >= 3)
        assert model.range_probability(ranges) == pytest.approx(p_a * p_b)

    def test_conditioning_has_no_effect(self, schema):
        data = correlated_data()
        model = IndependenceDistribution(schema, data)
        full = RangeVector.full(schema)
        target = (RangePredicate("b", 3, 4), 1)
        given = [(RangePredicate("a", 3, 4), 0)]
        assert model.satisfied_given_satisfied(
            target, given, full
        ) == model.satisfied_given_satisfied(target, [], full)

    def test_empirical_disagrees_on_correlated_data(self, schema):
        """Sanity: the two models must differ exactly where correlation
        lives — the conditional probability."""
        data = correlated_data()
        independent = IndependenceDistribution(schema, data, smoothing=0.0)
        empirical = EmpiricalDistribution(schema, data)
        full = RangeVector.full(schema)
        target = (RangePredicate("b", 3, 4), 1)
        given = [(RangePredicate("a", 3, 4), 0)]
        independent_value = independent.satisfied_given_satisfied(
            target, given, full
        )
        empirical_value = empirical.satisfied_given_satisfied(target, given, full)
        assert abs(independent_value - empirical_value) > 0.15

    def test_predicate_joint_factorizes(self, schema):
        data = correlated_data()
        model = IndependenceDistribution(schema, data, smoothing=0.0)
        full = RangeVector.full(schema)
        bindings = [
            (RangePredicate("a", 1, 2), 0),
            (RangePredicate("b", 3, 4), 1),
        ]
        joint = model.predicate_joint(bindings, full)
        assert joint.sum() == pytest.approx(1.0)
        p_a = model.conjunction_probability([bindings[0]], full)
        p_b = model.conjunction_probability([bindings[1]], full)
        assert joint[0b11] == pytest.approx(p_a * p_b)
        assert joint[0b00] == pytest.approx((1 - p_a) * (1 - p_b))


class TestPlanningAgainstIndependence:
    def test_planners_run_and_stay_correct(self, schema):
        """Plans built on wrong (independence) statistics still answer
        correctly — only their cost suffers."""
        from repro.core import dataset_execution
        from repro.planning import GreedyConditionalPlanner, OptimalSequentialPlanner

        data = correlated_data()
        model = IndependenceDistribution(schema, data)
        query = ConjunctiveQuery(
            schema, [RangePredicate("a", 1, 2), RangePredicate("b", 3, 4)]
        )
        result = GreedyConditionalPlanner(
            model, OptimalSequentialPlanner(model), max_splits=3
        ).plan(query)
        truth = np.fromiter(
            (query.evaluate(row) for row in data), dtype=bool, count=len(data)
        )
        outcome = dataset_execution(result.plan, data, schema)
        assert np.array_equal(outcome.verdicts, truth)

    def test_correlation_blindness_costs_at_execution(self):
        """Planning against independence statistics can only do as well as
        (usually worse than) planning against the truth, measured on the
        real data."""
        from repro.core import empirical_cost
        from repro.planning import GreedyConditionalPlanner, OptimalSequentialPlanner

        schema = Schema(
            [
                Attribute("cheap", 2, 1.0),
                Attribute("x", 2, 100.0),
                Attribute("y", 2, 100.0),
            ]
        )
        rng = np.random.default_rng(1)
        n = 6000
        cheap = rng.integers(1, 3, n)
        x = np.where(cheap == 1, 1, rng.integers(1, 3, n))
        y = np.where(cheap == 2, 1, rng.integers(1, 3, n))
        data = np.stack([cheap, x, y], axis=1).astype(np.int64)
        query = ConjunctiveQuery(
            schema, [RangePredicate("x", 2, 2), RangePredicate("y", 2, 2)]
        )

        blind_model = IndependenceDistribution(schema, data)
        true_model = EmpiricalDistribution(schema, data)
        blind_plan = GreedyConditionalPlanner(
            blind_model, OptimalSequentialPlanner(blind_model), max_splits=5
        ).plan(query).plan
        informed_plan = GreedyConditionalPlanner(
            true_model, OptimalSequentialPlanner(true_model), max_splits=5
        ).plan(query).plan
        assert empirical_cost(informed_plan, data, schema) <= empirical_cost(
            blind_plan, data, schema
        )
