"""Canonicalization stability: every spelling of a shape, one fingerprint.

The sharded front door routes on the fingerprint digest and the plan
cache keys on the fingerprint itself, so these invariances are load-
bearing: a spelling that escaped canonicalization would land on a
different shard with a cold cache.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Attribute, Schema
from repro.service.fingerprint import QueryFingerprint, fingerprint_statement

SCHEMA = Schema(
    [
        Attribute("hour", 24, 1.0),
        Attribute("light", 12, 100.0),
        Attribute("temp", 12, 100.0),
    ]
)


def fp(text: str) -> QueryFingerprint:
    return fingerprint_statement(text, SCHEMA)


class TestPredicateReordering:
    def test_conjunct_order_is_irrelevant(self) -> None:
        a = fp("SELECT temp WHERE temp >= 3 AND light <= 4 AND hour >= 12")
        b = fp("SELECT temp WHERE hour >= 12 AND temp >= 3 AND light <= 4")
        c = fp("SELECT temp WHERE light <= 4 AND hour >= 12 AND temp >= 3")
        assert a == b == c
        assert a.digest == b.digest == c.digest

    def test_all_permutations_of_three_conjuncts(self) -> None:
        conjuncts = ["temp >= 3", "light <= 4", "hour BETWEEN 2 AND 20"]
        fingerprints = set()
        rng = random.Random(7)
        for _ in range(10):
            rng.shuffle(conjuncts)
            fingerprints.add(fp("SELECT * WHERE " + " AND ".join(conjuncts)))
        assert len(fingerprints) == 1

    def test_or_branch_order_is_irrelevant(self) -> None:
        a = fp("SELECT temp WHERE temp >= 9 OR light <= 2")
        b = fp("SELECT temp WHERE light <= 2 OR temp >= 9")
        assert a == b


class TestRangeNormalization:
    def test_bounds_clamp_to_domain(self) -> None:
        # temp has 12 buckets: `temp <= 50` and `temp <= 12` accept the
        # same tuples, as do `temp >= -3` and `temp >= 1`.
        assert fp("SELECT * WHERE temp <= 50") == fp("SELECT * WHERE temp <= 12")
        assert fp("SELECT * WHERE temp >= 1") == fp(
            "SELECT * WHERE temp BETWEEN 1 AND 12"
        )

    def test_between_equals_two_sided_spelling(self) -> None:
        assert fp("SELECT * WHERE temp BETWEEN 3 AND 7") == fp(
            "SELECT * WHERE temp >= 3 AND temp <= 7"
        )

    def test_equality_is_a_degenerate_range(self) -> None:
        assert fp("SELECT * WHERE hour = 5") == fp(
            "SELECT * WHERE hour BETWEEN 5 AND 5"
        )

    def test_strict_comparisons_normalize_to_inclusive(self) -> None:
        assert fp("SELECT * WHERE temp > 3") == fp("SELECT * WHERE temp >= 4")
        assert fp("SELECT * WHERE temp < 7") == fp("SELECT * WHERE temp <= 6")


class TestBooleanForms:
    def test_nested_ands_flatten(self) -> None:
        flat = fp("SELECT * WHERE temp >= 3 AND light <= 4 AND hour >= 2")
        nested = fp("SELECT * WHERE (temp >= 3 AND light <= 4) AND hour >= 2")
        nested2 = fp("SELECT * WHERE temp >= 3 AND (light <= 4 AND hour >= 2)")
        assert flat == nested == nested2

    def test_nested_ors_flatten(self) -> None:
        a = fp("SELECT * WHERE (temp >= 9 OR light <= 2) OR hour >= 22")
        b = fp("SELECT * WHERE temp >= 9 OR (light <= 2 OR hour >= 22)")
        c = fp("SELECT * WHERE hour >= 22 OR temp >= 9 OR light <= 2")
        assert a == b == c

    def test_distributed_form_keeps_structure(self) -> None:
        # (a OR b) AND c is *not* the same shape as a OR (b AND c):
        # canonicalization must never conflate genuinely different
        # semantics.
        a = fp("SELECT * WHERE (temp >= 9 OR light <= 2) AND hour >= 12")
        b = fp("SELECT * WHERE temp >= 9 OR (light <= 2 AND hour >= 12)")
        assert a != b

    def test_not_between_is_distinct(self) -> None:
        assert fp("SELECT * WHERE NOT temp BETWEEN 3 AND 7") != fp(
            "SELECT * WHERE temp BETWEEN 3 AND 7"
        )


class TestProjectionResolution:
    def test_star_resolves_to_schema_order(self) -> None:
        star = fp("SELECT * WHERE temp >= 3")
        explicit = fp("SELECT hour, light, temp WHERE temp >= 3")
        assert star == explicit
        assert star.select == ("hour", "light", "temp")

    def test_projection_order_is_significant(self) -> None:
        # column order changes the returned rows' shape — not conflated
        a = fp("SELECT light, temp WHERE temp >= 3")
        b = fp("SELECT temp, light WHERE temp >= 3")
        assert a != b


class TestDigestProperties:
    def test_distinct_shapes_get_distinct_fingerprints(self) -> None:
        shapes = [
            "SELECT temp WHERE temp >= 3",
            "SELECT temp WHERE temp >= 4",
            "SELECT light WHERE temp >= 3",
            "SELECT temp WHERE light >= 3",
            "SELECT temp WHERE temp >= 3 AND light >= 3",
            "SELECT temp WHERE temp >= 3 OR light >= 3",
        ]
        fingerprints = [fp(s) for s in shapes]
        assert len(set(fingerprints)) == len(shapes)
        assert len({f.digest for f in fingerprints}) == len(shapes)

    def test_digest_is_pinned_across_processes(self) -> None:
        # sha256-derived, so stable across runs and PYTHONHASHSEED values
        # (routing depends on this agreement between processes).
        fingerprint = fp("SELECT temp WHERE temp >= 3 AND light <= 4")
        assert fingerprint.digest == fp(
            "SELECT temp WHERE light <= 4 AND temp >= 3"
        ).digest
        assert len(fingerprint.digest) == 16
        int(fingerprint.digest, 16)  # hex digest

    def test_str_is_digest(self) -> None:
        fingerprint = fp("SELECT temp WHERE temp >= 3")
        assert str(fingerprint) == fingerprint.digest


@settings(max_examples=60, deadline=None)
@given(
    bounds=st.lists(
        st.tuples(
            st.sampled_from(["hour", "light", "temp"]),
            st.integers(min_value=-5, max_value=30),
            st.integers(min_value=0, max_value=40),
        ),
        min_size=1,
        max_size=3,
        unique_by=lambda t: t[0],
    ),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_random_conjunct_permutations_share_a_fingerprint(bounds, seed) -> None:
    domains = {"hour": 24, "light": 12, "temp": 12}
    conjuncts = []
    for name, low, high in bounds:
        low_c = max(1, min(low, domains[name]))
        high_c = max(low_c, min(high, domains[name]))
        conjuncts.append(f"{name} BETWEEN {low_c} AND {high_c}")
    baseline = fp("SELECT * WHERE " + " AND ".join(conjuncts))
    shuffled = conjuncts[:]
    random.Random(seed).shuffle(shuffled)
    assert fp("SELECT * WHERE " + " AND ".join(shuffled)) == baseline


def test_unknown_attribute_still_rejected() -> None:
    with pytest.raises(Exception):
        fp("SELECT * WHERE banana >= 2")
