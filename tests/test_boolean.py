"""Tests for general boolean queries (AND/OR formulas)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    And,
    Attribute,
    BooleanQuery,
    Leaf,
    NotRangePredicate,
    Or,
    Range,
    RangePredicate,
    RangeVector,
    Schema,
    Truth,
    dataset_execution,
)
from repro.exceptions import QueryError
from repro.planning import ExhaustivePlanner
from repro.probability import EmpiricalDistribution


@pytest.fixture
def schema() -> Schema:
    return Schema(
        [
            Attribute("mode", 2, 1.0),
            Attribute("x", 3, 50.0),
            Attribute("y", 3, 80.0),
            Attribute("z", 3, 30.0),
        ]
    )


def sample_formula():
    return Or(
        And(Leaf(RangePredicate("x", 3, 3)), Leaf(RangePredicate("y", 3, 3))),
        Leaf(NotRangePredicate("z", 1, 2)),
    )


class TestFormulaEvaluation:
    def test_and_or_semantics(self, schema):
        query = BooleanQuery(schema, sample_formula())
        # (x=3 AND y=3) OR z=3
        assert query.evaluate([1, 3, 3, 1])
        assert query.evaluate([1, 1, 1, 3])
        assert not query.evaluate([1, 3, 1, 1])
        assert not query.evaluate([1, 1, 3, 2])

    def test_describe(self, schema):
        query = BooleanQuery(schema, sample_formula())
        text = query.describe()
        assert "OR" in text and "AND" in text

    def test_arity_validation(self):
        with pytest.raises(QueryError):
            And(Leaf(RangePredicate("x", 1, 1)))
        with pytest.raises(QueryError):
            Or(Leaf(RangePredicate("x", 1, 1)))

    def test_unknown_attribute_rejected(self, schema):
        with pytest.raises(Exception):
            BooleanQuery(schema, Leaf(RangePredicate("nope", 1, 1)))


class TestTruthUnder:
    def test_or_true_dominates(self, schema):
        query = BooleanQuery(schema, sample_formula())
        ranges = RangeVector.full(schema).with_range(3, Range(3, 3))  # z = 3
        assert query.truth_under(ranges) is Truth.TRUE

    def test_and_false_dominates(self, schema):
        query = BooleanQuery(schema, sample_formula())
        ranges = (
            RangeVector.full(schema)
            .with_range(1, Range(1, 2))  # x != 3: AND branch dead
            .with_range(3, Range(1, 2))  # z in [1,2]: OR leaf dead
        )
        assert query.truth_under(ranges) is Truth.FALSE

    def test_partial_knowledge_undetermined(self, schema):
        query = BooleanQuery(schema, sample_formula())
        assert query.truth_under(RangeVector.full(schema)) is Truth.UNDETERMINED

    def test_undetermined_predicates_deduplicates_attributes(self, schema):
        formula = Or(
            Leaf(RangePredicate("x", 1, 1)),
            Leaf(RangePredicate("x", 3, 3)),
        )
        query = BooleanQuery(schema, formula)
        remaining = query.undetermined_predicates(RangeVector.full(schema))
        assert len(remaining) == 1  # both leaves share attribute x

    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        x_low=st.integers(1, 3),
        x_high=st.integers(1, 3),
        z_low=st.integers(1, 3),
        z_high=st.integers(1, 3),
    )
    def test_truth_under_consistent_with_enumeration(
        self, schema, x_low, x_high, z_low, z_high
    ):
        """Three-valued formula truth equals the summary of evaluating every
        tuple consistent with the ranges."""
        if x_low > x_high or z_low > z_high:
            return
        query = BooleanQuery(schema, sample_formula())
        ranges = (
            RangeVector.full(schema)
            .with_range(1, Range(x_low, x_high))
            .with_range(3, Range(z_low, z_high))
        )
        outcomes = {
            query.evaluate([mode, x, y, z])
            for mode in (1, 2)
            for x in range(x_low, x_high + 1)
            for y in (1, 2, 3)
            for z in range(z_low, z_high + 1)
        }
        expected = (
            Truth.TRUE
            if outcomes == {True}
            else Truth.FALSE
            if outcomes == {False}
            else Truth.UNDETERMINED
        )
        assert query.truth_under(ranges) is expected


class TestExhaustivePlanningOverFormulas:
    def make_data(self, n: int = 2500, seed: int = 3) -> np.ndarray:
        rng = np.random.default_rng(seed)
        mode = rng.integers(1, 3, n)
        x = np.where(mode == 1, rng.integers(1, 3, n), rng.integers(2, 4, n))
        y = np.where(mode == 2, rng.integers(1, 3, n), rng.integers(2, 4, n))
        z = rng.integers(1, 4, n)
        return np.stack([mode, x, y, z], axis=1).astype(np.int64)

    def test_plans_answer_disjunctions_correctly(self, schema):
        data = self.make_data()
        distribution = EmpiricalDistribution(schema, data)
        query = BooleanQuery(schema, sample_formula())
        result = ExhaustivePlanner(distribution).plan(query)
        truth = np.fromiter(
            (query.evaluate(row) for row in data), dtype=bool, count=len(data)
        )
        outcome = dataset_execution(result.plan, data, schema)
        assert np.array_equal(outcome.verdicts, truth)

    def test_cheaper_than_acquire_everything(self, schema):
        data = self.make_data()
        distribution = EmpiricalDistribution(schema, data)
        query = BooleanQuery(schema, sample_formula())
        result = ExhaustivePlanner(distribution).plan(query)
        acquire_all = sum(
            schema[index].cost for index in set(query.attribute_indices)
        )
        assert result.expected_cost < acquire_all

    def test_or_short_circuits_on_cheap_disjunct(self, schema):
        """With a cheap, frequently-true disjunct, the plan should check it
        early and skip the expensive conjunction."""
        rng = np.random.default_rng(4)
        n = 2500
        z = rng.integers(1, 4, n)  # z=3 one third of the time
        data = np.stack(
            [
                rng.integers(1, 3, n),
                rng.integers(1, 4, n),
                rng.integers(1, 4, n),
                z,
            ],
            axis=1,
        ).astype(np.int64)
        distribution = EmpiricalDistribution(schema, data)
        query = BooleanQuery(schema, sample_formula())
        plan = ExhaustivePlanner(distribution).plan(query).plan
        # For a tuple whose z satisfies the OR leaf, the expensive pair may
        # be skipped entirely.
        acquired: list[int] = []
        plan.evaluate([1, 1, 1, 3], on_acquire=acquired.append)
        touched = {schema[index].name for index in acquired}
        assert not {"x", "y"} <= touched
