"""Shared fixtures: small schemas, correlated datasets, and queries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Attribute, ConjunctiveQuery, RangePredicate, Schema
from repro.probability import EmpiricalDistribution


@pytest.fixture
def tiny_schema() -> Schema:
    """Three binary attributes: one cheap, two expensive."""
    return Schema(
        [
            Attribute("cheap", 2, 1.0),
            Attribute("exp_a", 2, 100.0),
            Attribute("exp_b", 2, 100.0),
        ]
    )


@pytest.fixture
def day_night_schema() -> Schema:
    """The Figure 2 setup: hour is cheap, temp and light cost 1 unit each."""
    return Schema(
        [
            Attribute("hour", 2, 0.0),
            Attribute("temp", 2, 1.0),
            Attribute("light", 2, 1.0),
        ]
    )


def make_day_night_data() -> np.ndarray:
    """The paper's Figure 2 example as explicit counts.

    hour=1 is night, hour=2 is day.  ``temp=2`` means "temp > 20C holds",
    ``light=2`` means "light < 100 Lux holds".  Marginal selectivity of
    each predicate is 1/2; conditioned on night the temp predicate holds
    with probability 1/10, conditioned on day the light predicate holds
    with probability 1/10; temp and light are independent given hour.
    """
    rows = []
    for hour, temp_pass_prob, light_pass_prob in ((1, 0.1, 0.9), (2, 0.9, 0.1)):
        for temp_value, temp_weight in ((2, temp_pass_prob), (1, 1 - temp_pass_prob)):
            for light_value, light_weight in (
                (2, light_pass_prob),
                (1, 1 - light_pass_prob),
            ):
                count = int(round(100 * temp_weight * light_weight))
                rows.extend([[hour, temp_value, light_value]] * count)
    return np.asarray(rows, dtype=np.int64)


@pytest.fixture
def day_night_data() -> np.ndarray:
    return make_day_night_data()


@pytest.fixture
def day_night_distribution(day_night_schema, day_night_data) -> EmpiricalDistribution:
    return EmpiricalDistribution(day_night_schema, day_night_data)


@pytest.fixture
def day_night_query(day_night_schema) -> ConjunctiveQuery:
    """temp > 20C AND light < 100 Lux, in rediscretized form."""
    return ConjunctiveQuery(
        day_night_schema,
        [RangePredicate("temp", 2, 2), RangePredicate("light", 2, 2)],
    )


def correlated_dataset(
    n_rows: int = 4000, seed: int = 0
) -> tuple[Schema, np.ndarray]:
    """A 4-attribute dataset where a cheap attribute predicts expensive ones.

    ``mode`` (cheap, K=4) selects a regime; ``a``/``b`` (expensive, K=5)
    concentrate in different parts of their domains per regime; ``c`` is
    independent noise.
    """
    rng = np.random.default_rng(seed)
    mode = rng.integers(1, 5, n_rows)
    a = np.where(mode <= 2, rng.integers(1, 3, n_rows), rng.integers(3, 6, n_rows))
    b = np.where(mode % 2 == 0, rng.integers(1, 3, n_rows), rng.integers(3, 6, n_rows))
    c = rng.integers(1, 6, n_rows)
    schema = Schema(
        [
            Attribute("mode", 4, 1.0),
            Attribute("a", 5, 100.0),
            Attribute("b", 5, 100.0),
            Attribute("c", 5, 50.0),
        ]
    )
    data = np.stack([mode, a, b, c], axis=1).astype(np.int64)
    return schema, data


@pytest.fixture
def correlated() -> tuple[Schema, np.ndarray]:
    return correlated_dataset()


@pytest.fixture
def correlated_distribution(correlated) -> EmpiricalDistribution:
    schema, data = correlated
    return EmpiricalDistribution(schema, data)


@pytest.fixture
def correlated_query(correlated) -> ConjunctiveQuery:
    schema, _data = correlated
    return ConjunctiveQuery(
        schema,
        [RangePredicate("a", 1, 2), RangePredicate("b", 3, 5)],
    )
