"""Tests for the Section 6 workload generators."""

import numpy as np
import pytest

from repro.core import NotRangePredicate, RangePredicate
from repro.data import (
    garden_queries,
    generate_garden_dataset,
    generate_lab_dataset,
    lab_queries,
    random_range_query,
)
from repro.exceptions import QueryError


@pytest.fixture(scope="module")
def lab():
    return generate_lab_dataset(n_readings=10_000, n_motes=6, seed=0)


@pytest.fixture(scope="module")
def garden():
    return generate_garden_dataset(n_motes=4, n_epochs=3000, seed=0)


class TestLabQueries:
    def test_predicate_count_and_targets(self, lab):
        queries = lab_queries(lab, 10, seed=1)
        assert len(queries) == 10
        for query in queries:
            assert len(query) == 3
            attrs = {p.attribute for p in query.predicates}
            assert attrs == {"light", "temp", "humidity"}

    def test_widths_are_two_standard_deviations(self, lab):
        queries = lab_queries(lab, 5, seed=2, width_stds=2.0)
        for query in queries:
            for predicate in query.predicates:
                column = lab.column(predicate.attribute)
                expected_width = max(
                    1, int(round(2.0 * float(column.std())))
                )
                domain = lab.schema[predicate.attribute].domain_size
                expected_width = min(expected_width, domain - 1)
                assert predicate.high - predicate.low == expected_width

    def test_predicates_within_domain(self, lab):
        for query in lab_queries(lab, 20, seed=3):
            for predicate in query.predicates:
                domain = lab.schema[predicate.attribute].domain_size
                assert 1 <= predicate.low <= predicate.high <= domain

    def test_reproducible(self, lab):
        first = lab_queries(lab, 4, seed=9)
        second = lab_queries(lab, 4, seed=9)
        assert [q.describe() for q in first] == [q.describe() for q in second]

    def test_individual_selectivities_moderate(self, lab):
        """The paper's challenging regime: predicates pass a large fraction
        (around half) of rows individually."""
        queries = lab_queries(lab, 20, seed=4)
        rates = []
        for query in queries:
            for predicate, index in zip(query.predicates, query.attribute_indices):
                column = lab.data[:, index]
                rates.append(
                    np.mean((column >= predicate.low) & (column <= predicate.high))
                )
        assert 0.3 < np.mean(rates) < 0.95

    def test_validation(self, lab):
        with pytest.raises(QueryError):
            lab_queries(lab, 0)


class TestGardenQueries:
    def test_predicates_replicated_across_motes(self, garden):
        queries = garden_queries(garden, 5, seed=1)
        for query in queries:
            assert len(query) == 2 * garden.n_motes
            temp_preds = [
                p for p in query.predicates if p.attribute.endswith("_temp")
            ]
            ranges = {(p.low, p.high) for p in temp_preds}
            assert len(ranges) == 1  # identical across motes

    def test_negated_variant(self, garden):
        queries = garden_queries(garden, 3, seed=2, negated=True)
        for query in queries:
            assert all(
                isinstance(p, NotRangePredicate) for p in query.predicates
            )

    def test_plain_variant_uses_ranges(self, garden):
        queries = garden_queries(garden, 3, seed=3)
        for query in queries:
            assert all(isinstance(p, RangePredicate) for p in query.predicates)

    def test_width_respects_divisor_range(self, garden):
        domain = garden.schema["m1_temp"].domain_size
        for query in garden_queries(garden, 20, seed=4, divisor_range=(2.0, 2.0)):
            temp_pred = next(
                p for p in query.predicates if p.attribute == "m1_temp"
            )
            assert temp_pred.high - temp_pred.low + 1 == max(
                1, int(round(domain / 2.0))
            ) or temp_pred.high - temp_pred.low + 1 == min(
                max(1, int(round(domain / 2.0))) + 1, domain
            )

    def test_validation(self, garden):
        with pytest.raises(QueryError):
            garden_queries(garden, 0)


class TestRandomRangeQuery:
    def test_targets_requested_attributes(self, lab):
        query = random_range_query(lab.schema, ["light", "voltage"], seed=5)
        assert [p.attribute for p in query.predicates] == ["light", "voltage"]

    def test_within_domain(self, lab):
        for seed in range(10):
            query = random_range_query(lab.schema, ["temp"], seed=seed)
            predicate = query.predicates[0]
            domain = lab.schema["temp"].domain_size
            assert 1 <= predicate.low <= predicate.high <= domain
