"""Unit tests for attributes and schemas."""

import pytest

from repro.core import Attribute, Schema
from repro.exceptions import SchemaError


class TestAttribute:
    def test_basic_construction(self):
        attribute = Attribute("light", 16, 100.0)
        assert attribute.name == "light"
        assert attribute.domain_size == 16
        assert attribute.cost == 100.0

    def test_default_cost_is_one(self):
        assert Attribute("hour", 24).cost == 1.0

    def test_values_span_domain(self):
        attribute = Attribute("x", 4)
        assert list(attribute.values) == [1, 2, 3, 4]

    def test_zero_cost_allowed(self):
        assert Attribute("free", 2, 0.0).cost == 0.0

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("", 4)

    def test_nonpositive_domain_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("x", 0)

    def test_negative_cost_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("x", 4, -1.0)

    def test_frozen(self):
        attribute = Attribute("x", 4)
        with pytest.raises(AttributeError):
            attribute.cost = 5.0


class TestSchema:
    def make(self) -> Schema:
        return Schema(
            [Attribute("a", 2, 1.0), Attribute("b", 3, 10.0), Attribute("c", 4, 100.0)]
        )

    def test_length_and_iteration(self):
        schema = self.make()
        assert len(schema) == 3
        assert [attribute.name for attribute in schema] == ["a", "b", "c"]

    def test_lookup_by_index_and_name(self):
        schema = self.make()
        assert schema[1].name == "b"
        assert schema["c"].domain_size == 4

    def test_index_of(self):
        assert self.make().index_of("b") == 1

    def test_index_of_unknown_raises(self):
        with pytest.raises(SchemaError, match="unknown attribute"):
            self.make().index_of("nope")

    def test_contains(self):
        schema = self.make()
        assert "a" in schema
        assert "z" not in schema
        assert 0 not in schema  # only names are members

    def test_names_domains_costs(self):
        schema = self.make()
        assert schema.names == ("a", "b", "c")
        assert schema.domain_sizes == (2, 3, 4)
        assert schema.costs == (1.0, 10.0, 100.0)

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema([Attribute("a", 2), Attribute("a", 3)])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_validate_tuple_ok(self):
        assert self.make().validate_tuple([1, 3, 4]) == (1, 3, 4)

    def test_validate_tuple_wrong_arity(self):
        with pytest.raises(SchemaError, match="values"):
            self.make().validate_tuple([1, 2])

    def test_validate_tuple_out_of_domain(self):
        with pytest.raises(SchemaError, match="out of domain"):
            self.make().validate_tuple([1, 4, 4])

    def test_validate_tuple_below_domain(self):
        with pytest.raises(SchemaError, match="out of domain"):
            self.make().validate_tuple([0, 1, 1])
