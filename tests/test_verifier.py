"""Unit tests for the static plan verifier's rule families."""

import numpy as np
import pytest

from repro.core import (
    Attribute,
    BooleanQuery,
    ConditionNode,
    ConjunctiveQuery,
    Leaf,
    Or,
    PlanNode,
    RangePredicate,
    Schema,
    SequentialNode,
    SequentialStep,
    VerdictLeaf,
    validate_plan,
)
from repro.exceptions import PlanError, PlanVerificationError
from repro.execution import compile_plan
from repro.probability import EmpiricalDistribution
from repro.verify import (
    CODE_CATALOG,
    PlanVerifier,
    Severity,
    assert_valid_plan,
    verify_bytecode,
    verify_plan,
)
from repro.verify.mutations import (
    canonical_conditional_plan,
    canonical_sequential_plan,
)


@pytest.fixture
def schema() -> Schema:
    return Schema(
        [
            Attribute("a", 8, 1.0),
            Attribute("b", 8, 2.0),
            Attribute("c", 8, 4.0),
        ]
    )


@pytest.fixture
def query(schema) -> ConjunctiveQuery:
    return ConjunctiveQuery(
        schema,
        [
            RangePredicate("a", 3, 6),
            RangePredicate("b", 2, 5),
            RangePredicate("c", 4, 7),
        ],
    )


@pytest.fixture
def distribution(schema) -> EmpiricalDistribution:
    rng = np.random.default_rng(0)
    history = rng.integers(1, 9, size=(500, 3))
    return EmpiricalDistribution(schema, history, smoothing=0.5)


def step(query: ConjunctiveQuery, position: int) -> SequentialStep:
    return SequentialStep(
        predicate=query.predicates[position],
        attribute_index=query.attribute_indices[position],
    )


class TestCatalog:
    def test_codes_are_unique_and_prefixed(self):
        assert len(CODE_CATALOG) == len(set(CODE_CATALOG))
        for code, (severity, title) in CODE_CATALOG.items():
            assert code[:3] in (
                "STR",
                "SEM",
                "RNG",
                "COS",
                "BC0",
                "DF0",
                "DF1",
                "FT0",
                "TV0",
                "LRN",
            )
            assert isinstance(severity, Severity)
            assert title

    def test_every_diagnostic_code_is_registered(self, schema, query):
        plan = SequentialNode(steps=(step(query, 0),))
        report = verify_plan(plan, schema, query=query)
        for diagnostic in report:
            assert diagnostic.code in CODE_CATALOG


class TestStructuralRules:
    def test_clean_plans(self, schema, query):
        for plan in (
            canonical_sequential_plan(query),
            canonical_conditional_plan(query),
        ):
            assert verify_plan(plan, schema, query=query).ok

    def test_condition_index_out_of_range(self, schema):
        plan = ConditionNode(
            attribute="ghost",
            attribute_index=9,
            split_value=3,
            below=VerdictLeaf(verdict=False),
            above=VerdictLeaf(verdict=True),
        )
        report = verify_plan(plan, schema)
        assert report.has("STR002")
        assert not report.ok

    def test_condition_name_mismatch(self, schema):
        plan = ConditionNode(
            attribute="b",
            attribute_index=0,
            split_value=3,
            below=VerdictLeaf(verdict=False),
            above=VerdictLeaf(verdict=True),
        )
        assert verify_plan(plan, schema).has("STR003")

    def test_step_bounds_exceed_domain(self, schema):
        plan = SequentialNode(
            steps=(
                SequentialStep(
                    predicate=RangePredicate("a", 1, 20), attribute_index=0
                ),
            )
        )
        assert verify_plan(plan, schema).has("STR004")

    def test_unknown_node_type(self, schema):
        class Mystery(PlanNode):
            pass

        assert verify_plan(Mystery(), schema).has("STR001")


class TestSemanticRules:
    def test_dropped_conjunct(self, schema, query):
        plan = SequentialNode(steps=(step(query, 0), step(query, 1)))
        report = verify_plan(plan, schema, query=query)
        assert report.has("SEM001")

    def test_duplicate_step(self, schema, query):
        plan = SequentialNode(
            steps=(step(query, 0), step(query, 0), step(query, 1), step(query, 2))
        )
        assert verify_plan(plan, schema, query=query).has("SEM002")

    def test_foreign_predicate(self, schema, query):
        foreign = SequentialStep(
            predicate=RangePredicate("c", 1, 2), attribute_index=2
        )
        plan = SequentialNode(steps=(step(query, 0), step(query, 1), foreign))
        assert verify_plan(plan, schema, query=query).has("SEM003")

    def test_retest_of_decided_predicate_is_warning(self, schema, query):
        # Context [3, 6] on `a` proves its predicate TRUE; re-testing it is
        # wasted acquisition, not wrong answers.
        plan = ConditionNode(
            attribute="a",
            attribute_index=0,
            split_value=3,
            below=VerdictLeaf(verdict=False),
            above=ConditionNode(
                attribute="a",
                attribute_index=0,
                split_value=7,
                below=canonical_sequential_plan(query),
                above=VerdictLeaf(verdict=False),
            ),
        )
        report = verify_plan(plan, schema, query=query)
        assert report.has("SEM004")
        assert report.ok  # warning only

    def test_unjustified_verdict(self, schema, query):
        report = verify_plan(VerdictLeaf(verdict=True), schema, query=query)
        assert report.has("SEM005")

    def test_contradicting_verdict(self, schema, query):
        plan = ConditionNode(
            attribute="a",
            attribute_index=0,
            split_value=3,
            below=VerdictLeaf(verdict=True),  # a in [1, 2] proves FALSE
            above=canonical_sequential_plan(query),
        )
        assert verify_plan(plan, schema, query=query).has("SEM006")

    def test_leaf_ignoring_failed_conjunct(self, schema, query):
        # Context proves `a`'s predicate false, but the leaf only tests b/c:
        # some tuple can pass every step and be wrongly accepted.
        plan = ConditionNode(
            attribute="a",
            attribute_index=0,
            split_value=3,
            below=SequentialNode(steps=(step(query, 1), step(query, 2))),
            above=canonical_sequential_plan(query),
        )
        assert verify_plan(plan, schema, query=query).has("SEM006")

    def test_leaf_testing_failed_conjunct_is_equivalent(self, schema, query):
        # The leaf re-tests the proven-false conjunct, so it always answers
        # False — semantically exact, just not minimal.
        plan = ConditionNode(
            attribute="a",
            attribute_index=0,
            split_value=3,
            below=SequentialNode(steps=(step(query, 0),)),
            above=canonical_sequential_plan(query),
        )
        report = verify_plan(plan, schema, query=query)
        assert report.ok

    def test_sequential_leaf_under_boolean_query(self, schema, query):
        boolean = BooleanQuery(
            schema,
            Or(
                Leaf(RangePredicate("a", 3, 6)),
                Leaf(RangePredicate("b", 2, 5)),
            ),
        )
        plan = SequentialNode(steps=(step(query, 0),))
        assert verify_plan(plan, schema, query=boolean).has("SEM007")

    def test_boolean_verdicts_still_checked(self, schema):
        boolean = BooleanQuery(
            schema,
            Or(
                Leaf(RangePredicate("a", 3, 6)),
                Leaf(RangePredicate("b", 2, 5)),
            ),
        )
        assert verify_plan(
            VerdictLeaf(verdict=False), schema, query=boolean
        ).has("SEM005")


class TestRangeRules:
    def test_unreachable_repeated_split(self, schema, query):
        inner = ConditionNode(
            attribute="a",
            attribute_index=0,
            split_value=5,
            below=VerdictLeaf(verdict=False),
            above=VerdictLeaf(verdict=False),
        )
        plan = ConditionNode(
            attribute="a",
            attribute_index=0,
            split_value=5,
            below=inner,
            above=canonical_sequential_plan(query),
        )
        assert verify_plan(plan, schema, query=query).has("RNG001")

    def test_split_below_decided_context_is_warning(self, schema):
        # One-predicate query: the below branch already proves it false,
        # yet the plan conditions again before answering.
        query = ConjunctiveQuery(schema, [RangePredicate("a", 5, 8)])
        plan = ConditionNode(
            attribute="a",
            attribute_index=0,
            split_value=5,
            below=ConditionNode(
                attribute="b",
                attribute_index=1,
                split_value=4,
                below=VerdictLeaf(verdict=False),
                above=VerdictLeaf(verdict=False),
            ),
            above=VerdictLeaf(verdict=True),
        )
        report = verify_plan(plan, schema, query=query)
        assert report.has("RNG002")
        assert report.ok

    def test_degenerate_split_is_unconstructible(self):
        with pytest.raises(PlanError):
            ConditionNode(
                attribute="a",
                attribute_index=0,
                split_value=1,
                below=VerdictLeaf(verdict=False),
                above=VerdictLeaf(verdict=True),
            )


class TestCostRules:
    def test_correct_claimed_cost_passes(self, schema, query, distribution):
        from repro.core import expected_cost

        plan = canonical_conditional_plan(query)
        claimed = expected_cost(plan, distribution)
        report = verify_plan(
            plan, schema, query=query, distribution=distribution,
            claimed_cost=claimed,
        )
        assert report.ok

    def test_wrong_claimed_cost(self, schema, query, distribution):
        plan = canonical_conditional_plan(query)
        report = verify_plan(
            plan, schema, query=query, distribution=distribution,
            claimed_cost=1e9,
        )
        assert report.has("COST001")

    def test_dead_branch_is_warning(self, schema, query):
        # Unsmoothed statistics where `a` never falls below 5: the below
        # branch of a split at 5 has zero probability.
        history = np.full((200, 3), 5, dtype=np.int64)
        distribution = EmpiricalDistribution(schema, history, smoothing=0.0)
        plan = ConditionNode(
            attribute="a",
            attribute_index=0,
            split_value=5,
            below=VerdictLeaf(verdict=False),
            above=canonical_sequential_plan(query),
        )
        report = verify_plan(plan, schema, distribution=distribution)
        assert report.has("COST004")
        assert report.ok

    def test_probability_outside_unit_interval(self, schema, distribution):
        class BrokenDistribution:
            def __init__(self, inner):
                self._inner = inner
                self.schema = inner.schema

            def split_probability(self, index, value, ranges):
                return 1.5

            def sequential_conditioner(self, ranges):
                return self._inner.sequential_conditioner(ranges)

        plan = ConditionNode(
            attribute="a",
            attribute_index=0,
            split_value=5,
            below=VerdictLeaf(verdict=False),
            above=VerdictLeaf(verdict=True),
        )
        report = verify_plan(
            plan, schema, distribution=BrokenDistribution(distribution)
        )
        assert report.has("COST002")


class TestEntryPoints:
    def test_check_compiled_round_trip(self, schema, query, distribution):
        plan = canonical_conditional_plan(query)
        report = verify_plan(
            plan, schema, query=query, distribution=distribution,
            check_compiled=True,
        )
        assert report.ok

    def test_verify_bytecode_clean(self, schema, query, distribution):
        code = compile_plan(canonical_conditional_plan(query))
        report = verify_bytecode(
            code, schema, query=query, distribution=distribution
        )
        assert report.ok

    def test_assert_valid_plan_raises_with_report(self, schema, query):
        with pytest.raises(PlanVerificationError) as excinfo:
            assert_valid_plan(VerdictLeaf(verdict=True), schema, query=query)
        assert excinfo.value.report is not None
        assert excinfo.value.report.has("SEM005")

    def test_plan_verifier_admit(self, schema, query, distribution):
        verifier = PlanVerifier(schema, distribution=distribution)
        assert verifier.admit(canonical_sequential_plan(query), query=query)
        assert not verifier.admit(VerdictLeaf(verdict=True), query=query)

    def test_report_formatting_and_dict(self, schema, query):
        report = verify_plan(VerdictLeaf(verdict=True), schema, query=query)
        text = report.format()
        assert "SEM005" in text and "ERROR" in text
        payload = report.as_dict()
        assert payload["ok"] is False
        assert payload["diagnostics"][0]["code"] == "SEM005"

    def test_errors_sort_before_warnings(self, schema, query):
        # A plan with both a warning (re-test) and an error (dropped conjunct).
        plan = ConditionNode(
            attribute="a",
            attribute_index=0,
            split_value=3,
            below=VerdictLeaf(verdict=False),
            above=ConditionNode(
                attribute="a",
                attribute_index=0,
                split_value=7,
                below=SequentialNode(steps=(step(query, 0), step(query, 1))),
                above=VerdictLeaf(verdict=False),
            ),
        )
        report = verify_plan(plan, schema, query=query)
        assert not report.ok
        severities = [d.severity for d in report]
        assert severities == sorted(
            severities, key=lambda s: -s.rank
        )


class TestValidatePlanWrapper:
    def test_validate_plan_matches_verifier_errors(self, schema, query):
        plan = SequentialNode(steps=(step(query, 0), step(query, 1)))
        problems = validate_plan(plan, schema, query=query)
        report = verify_plan(plan, schema, query=query)
        assert problems == [d.message for d in report.errors]

    def test_validate_plan_clean(self, schema, query):
        assert validate_plan(canonical_sequential_plan(query), schema, query=query) == []
