"""Convergence harness: stationary streams must land near the oracle.

On a stream with *no* drift, the learned executor has every advantage it
will ever get — the validation burst plus (at most) detector-triggered
re-bursts must steer the served composite plan to within ``EPSILON`` of
the :class:`~repro.planning.ExhaustivePlanner` Eq. 3 optimum computed on
the full dataset's statistics.  Three datasets, two distributions each:

- ``adversarial``  — the benchmark's workload frozen in one regime
  (killer ``p`` / killer ``q``): order choice is worth ~25% of cost;
- ``day-night``    — the paper's Figure 2 correlation, normal and
  flipped: the win lives in the conditioning skeleton, so these run
  with a skeleton planner;
- ``correlated``   — the 4-attribute regime dataset under two different
  predicate pairs (strongly mode-correlated vs noise-bound).

The oracle is clairvoyant (whole dataset, no smoothing); the learner
sees a sliding window with Laplace smoothing — ``EPSILON`` absorbs that
statistics gap, not planning mistakes.
"""

import numpy as np
import pytest

from repro.core import (
    Attribute,
    ConjunctiveQuery,
    RangePredicate,
    Schema,
)
from repro.core.cost import expected_cost
from repro.learn import LearnedStreamExecutor, adversarial_stream
from repro.planning import (
    CorrSeqPlanner,
    ExhaustivePlanner,
    GreedyConditionalPlanner,
)
from repro.probability import EmpiricalDistribution

from tests.conftest import correlated_dataset, make_day_night_data

EPSILON = 0.10
N_TUPLES = 800


def day_night_case(flipped: bool) -> tuple[Schema, ConjunctiveQuery, np.ndarray]:
    schema = Schema(
        [
            Attribute("hour", 2, 0.0),
            Attribute("temp", 2, 1.0),
            Attribute("light", 2, 1.0),
        ]
    )
    query = ConjunctiveQuery(
        schema,
        [RangePredicate("temp", 2, 2), RangePredicate("light", 2, 2)],
    )
    base = make_day_night_data()
    if flipped:
        base = base.copy()
        base[:, 0] = 3 - base[:, 0]  # day<->night: the correlation flips
    rng = np.random.default_rng(7)
    rows = base[rng.integers(0, base.shape[0], size=N_TUPLES)]
    return schema, query, rows


def adversarial_case(regime: str) -> tuple[Schema, ConjunctiveQuery, np.ndarray]:
    workload = adversarial_stream(n_segments=2, segment_length=N_TUPLES, seed=5)
    segment = workload.segment_slices()[0 if regime == "p" else 1]
    return workload.schema, workload.query, workload.data[segment]


def correlated_case(pair: str) -> tuple[Schema, ConjunctiveQuery, np.ndarray]:
    schema, data = correlated_dataset(n_rows=N_TUPLES, seed=11)
    if pair == "strong":
        predicates = [RangePredicate("a", 1, 2), RangePredicate("b", 3, 5)]
    else:
        predicates = [RangePredicate("b", 1, 2), RangePredicate("c", 3, 5)]
    return schema, ConjunctiveQuery(schema, predicates), data


CASES = {
    "adversarial-p": (lambda: adversarial_case("p"), False),
    "adversarial-q": (lambda: adversarial_case("q"), False),
    "day-night-normal": (lambda: day_night_case(False), True),
    "day-night-flipped": (lambda: day_night_case(True), True),
    "correlated-strong": (lambda: correlated_case("strong"), True),
    "correlated-weak": (lambda: correlated_case("weak"), True),
}


def skeleton_factory(distribution):
    return GreedyConditionalPlanner(
        distribution, CorrSeqPlanner(distribution), max_splits=2
    )


@pytest.mark.parametrize("case", sorted(CASES))
def test_stationary_stream_converges_to_oracle(case):
    build, conditioned = CASES[case]
    schema, query, data = build()

    executor = LearnedStreamExecutor(
        schema,
        query,
        window=256,
        warmup=96,
        smoothing=0.5,
        delta=0.2,
        burst_pulls=8,
        skeleton_planner=skeleton_factory if conditioned else None,
    )
    report = executor.process(data)

    reference = EmpiricalDistribution(schema, data, smoothing=0.0)
    oracle = ExhaustivePlanner(reference).plan(query)
    learned_cost = expected_cost(report.plan, reference, None)

    assert learned_cost <= oracle.expected_cost * (1.0 + EPSILON), (
        f"{case}: learned plan costs {learned_cost:.4f}, oracle "
        f"{oracle.expected_cost:.4f} "
        f"(+{100 * (learned_cost / oracle.expected_cost - 1):.2f}%)"
    )
    # Convergence must be honest: books balanced, budget respected.
    assert report.ledger_conserved()
    assert report.exploration_within_budget()


@pytest.mark.parametrize("case", ["adversarial-p", "day-night-normal"])
def test_stationary_stream_stops_exploring(case):
    """On stationary data the burst machinery must go quiet.

    The validation burst (and any detector false-fire bursts) are
    budget-capped, but convergence also means they *end*: the tail of a
    stationary run must be served pulls on a settled incumbent, not a
    near-budget exploration churn.
    """
    build, conditioned = CASES[case]
    schema, query, data = build()
    executor = LearnedStreamExecutor(
        schema,
        query,
        window=256,
        warmup=96,
        smoothing=0.5,
        delta=0.2,
        burst_pulls=8,
        skeleton_planner=skeleton_factory if conditioned else None,
    )
    report = executor.process(data)
    assert report.ledger.exploration_cost < report.ledger.budget * 0.5
    tail = report.replans[-1].position if report.replans else 0
    assert tail < data.shape[0] * 0.9, (
        "plan decisions kept happening into the run's tail: "
        f"{[(e.position, e.reason) for e in report.replans]}"
    )
