"""Tests for per-node plan profiles (repro.obs.profile)."""

import numpy as np
import pytest

from repro.core import (
    Attribute,
    ConjunctiveQuery,
    RangePredicate,
    Schema,
    dataset_execution,
)
from repro.obs import PlanProfile, TeeSink, profiled_evaluate
from repro.planning import CorrSeqPlanner, GreedyConditionalPlanner
from repro.probability import EmpiricalDistribution
from repro.verify import ROOT_PATH


@pytest.fixture
def schema() -> Schema:
    return Schema(
        [
            Attribute("mode", 2, 1.0),
            Attribute("p", 2, 100.0),
            Attribute("q", 2, 100.0),
        ]
    )


@pytest.fixture
def query(schema) -> ConjunctiveQuery:
    return ConjunctiveQuery(
        schema, [RangePredicate("p", 2, 2), RangePredicate("q", 2, 2)]
    )


def regime_data(n: int, flipped: bool, seed: int) -> np.ndarray:
    """mode predicts which predicate fails; `flipped` swaps the mapping."""
    rng = np.random.default_rng(seed)
    mode = rng.integers(1, 3, n)
    fail_p = (mode == 1) != flipped
    p = np.where(fail_p, 1, rng.integers(1, 3, n))
    q = np.where(~fail_p, 1, rng.integers(1, 3, n))
    return np.stack([mode, p, q], axis=1).astype(np.int64)


@pytest.fixture
def train(schema) -> np.ndarray:
    return regime_data(2000, flipped=False, seed=1)


@pytest.fixture
def plan(schema, query, train):
    distribution = EmpiricalDistribution(schema, train, smoothing=0.5)
    planner = GreedyConditionalPlanner(
        distribution, CorrSeqPlanner(distribution), max_splits=3
    )
    return planner.plan(query).plan


class TestPlanProfile:
    def test_counts_cover_every_tuple(self, schema, plan, train):
        profile = PlanProfile(schema)
        dataset_execution(plan, train, schema, observer=profile)
        assert profile.tuples == len(train)
        root = profile.counters(ROOT_PATH)
        assert root is not None
        assert root.visits == len(train)

    def test_condition_branches_partition_visits(self, schema, plan, train):
        profile = PlanProfile(schema)
        dataset_execution(plan, train, schema, observer=profile)
        for counters in profile.nodes.values():
            if counters.kind == "condition":
                assert counters.below + counters.above == counters.visits
                assert 0.0 <= counters.below_fraction <= 1.0

    def test_observed_cost_matches_execution_outcome(self, schema, plan, train):
        profile = PlanProfile(schema)
        outcome = dataset_execution(plan, train, schema, observer=profile)
        assert profile.observed_cost() == pytest.approx(outcome.total_cost)
        assert profile.observed_mean_cost() == pytest.approx(outcome.mean_cost)

    def test_accumulates_across_calls(self, schema, plan, train):
        profile = PlanProfile(schema)
        dataset_execution(plan, train[:500], schema, observer=profile)
        dataset_execution(plan, train[500:], schema, observer=profile)
        assert profile.tuples == len(train)

    def test_merge_equals_single_pass(self, schema, plan, train):
        whole = PlanProfile(schema)
        dataset_execution(plan, train, schema, observer=whole)
        left, right = PlanProfile(schema), PlanProfile(schema)
        dataset_execution(plan, train[:700], schema, observer=left)
        dataset_execution(plan, train[700:], schema, observer=right)
        left.merge(right)
        assert left.as_dict() == whole.as_dict()

    def test_reset_clears_everything(self, schema, plan, train):
        profile = PlanProfile(schema)
        dataset_execution(plan, train, schema, observer=profile)
        profile.reset()
        assert profile.tuples == 0
        assert profile.nodes == {}
        assert profile.observed_cost() == 0.0

    def test_attribute_acquisition_counts(self, schema, plan, train):
        profile = PlanProfile(schema)
        dataset_execution(plan, train, schema, observer=profile)
        totals = profile.attribute_acquisition_counts()
        assert set(totals) == set(schema.names)
        # Every acquisition is charged at most once per tuple.
        assert all(0 <= count <= len(train) for count in totals.values())
        billed = sum(
            count * schema[name].cost for name, count in totals.items()
        )
        assert billed == pytest.approx(profile.observed_cost())

    def test_as_dict_is_json_ready(self, schema, plan, train):
        import json

        profile = PlanProfile(schema)
        dataset_execution(plan, train, schema, observer=profile)
        payload = profile.as_dict()
        json.dumps(payload)  # must not raise
        assert payload["tuples"] == len(train)
        assert ROOT_PATH in payload["nodes"]


class TestProfiledEvaluate:
    def test_matches_vectorized_event_stream(self, schema, plan, train):
        rows = train[:400]
        vectorized = PlanProfile(schema)
        dataset_execution(plan, rows, schema, observer=vectorized)
        per_tuple = PlanProfile(schema)
        for row in rows:
            profiled_evaluate(plan, row, per_tuple)
        assert per_tuple.as_dict() == vectorized.as_dict()

    def test_verdicts_match_plan_evaluate(self, schema, plan, train):
        profile = PlanProfile(schema)
        for row in train[:200]:
            assert profiled_evaluate(plan, row, profile) == plan.evaluate(row)


class TestTeeSink:
    def test_forwards_to_every_sink(self, schema, plan, train):
        first, second = PlanProfile(schema), PlanProfile(schema)
        tee = TeeSink(first, second)
        dataset_execution(plan, train[:300], schema, observer=tee)
        assert first.as_dict() == second.as_dict()
        assert first.tuples == 300
