"""Differential execution: every runtime agrees on verdicts and Eq. 3 costs.

The repo grew five ways to run a plan — the scalar per-tuple executor,
the vectorized dataset walker, the bytecode interpreter, the
sensor-network simulator, and the translation-validated columnar kernel
— and until now nothing cross-checked them.  For every planner's plan
over the same data, all five must produce the identical selected-tuple
set, and the cost paths must reconcile exactly: per-row scalar costs
equal the vectorized cost vector, the compiled kernel's cost vector is
bit-identical to the walker's, the simulator's per-mote acquisition
energy equals the vectorized total over that mote's window, and the
unsmoothed Eq. 3 expectation equals the measured mean.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compile import compile_plan as compile_kernel
from repro.compile import execute_compiled
from repro.core import (
    ConjunctiveQuery,
    RangePredicate,
    dataset_execution,
    expected_cost,
)
from repro.execution import (
    ByteCodeInterpreter,
    Mote,
    PlanExecutor,
    SensorNetworkSimulator,
    compile_plan,
)
from repro.planning import (
    CorrSeqPlanner,
    ExhaustivePlanner,
    GreedyConditionalPlanner,
    GreedySequentialPlanner,
    NaivePlanner,
    OptimalSequentialPlanner,
    SizeAwareConditionalPlanner,
)
from repro.probability import EmpiricalDistribution

from tests.conftest import correlated_dataset

PLANNERS = {
    "naive": lambda d: NaivePlanner(d),
    "optseq": lambda d: OptimalSequentialPlanner(d),
    "greedy-seq": lambda d: GreedySequentialPlanner(d),
    "greedy-split": lambda d: GreedyConditionalPlanner(
        d, CorrSeqPlanner(d), max_splits=3
    ),
    "exhaustive": lambda d: ExhaustivePlanner(d),
    "bounded": lambda d: SizeAwareConditionalPlanner(
        d, CorrSeqPlanner(d), alpha=0.05
    ),
}


@pytest.fixture(scope="module")
def instance():
    schema, data = correlated_dataset(n_rows=1000, seed=21)
    train, test = data[:700], data[700:]
    distribution = EmpiricalDistribution(schema, train, smoothing=0.5)
    query = ConjunctiveQuery(
        schema, [RangePredicate("a", 1, 2), RangePredicate("b", 3, 5)]
    )
    return schema, distribution, query, train, test


@pytest.fixture(scope="module", params=sorted(PLANNERS))
def planned(request, instance):
    schema, distribution, query, train, test = instance
    plan = PLANNERS[request.param](distribution).plan(query).plan
    return schema, query, train, test, plan


def selected_set(verdicts) -> set[int]:
    return {i for i, verdict in enumerate(verdicts) if verdict}


class TestExecutorAgreement:
    def test_scalar_executor_matches_vectorized_walker(self, planned):
        schema, _query, _train, test, plan = planned
        vectorized = dataset_execution(plan, test, schema)
        executor = PlanExecutor(schema)
        scalar = [executor.execute(plan, row) for row in test]
        assert selected_set(r.verdict for r in scalar) == selected_set(
            vectorized.verdicts
        )
        scalar_costs = np.array([r.cost for r in scalar])
        assert np.array_equal(scalar_costs, vectorized.costs)
        assert float(scalar_costs.sum()) == vectorized.total_cost

    def test_bytecode_interpreter_matches_vectorized_walker(self, planned):
        schema, _query, _train, test, plan = planned
        vectorized = dataset_execution(plan, test, schema)
        interpreter = ByteCodeInterpreter(compile_plan(plan))
        verdicts = [interpreter.execute(row) for row in test]
        assert selected_set(verdicts) == selected_set(vectorized.verdicts)

    def test_simulator_matches_vectorized_walker(self, planned):
        schema, _query, _train, test, plan = planned
        third = len(test) // 3
        windows = [test[:third], test[third : 2 * third], test[2 * third :]]
        motes = [Mote(i, window) for i, window in enumerate(windows)]
        simulator = SensorNetworkSimulator(schema, motes)
        report = simulator.run(plan)
        per_mote = [dataset_execution(plan, w, schema) for w in windows]
        assert report.matches == sum(
            int(outcome.verdicts.sum()) for outcome in per_mote
        )
        for mote_id, outcome in enumerate(per_mote):
            assert report.acquisition_energy[mote_id] == outcome.total_cost

    def test_compiled_kernel_matches_vectorized_walker(self, planned):
        schema, _query, _train, test, plan = planned
        vectorized = dataset_execution(plan, test, schema)
        kernel, report = compile_kernel(plan, schema)
        assert report.ok, report.format()
        compiled = execute_compiled(kernel, test)
        assert np.array_equal(compiled.verdicts, vectorized.verdicts)
        # Charges are emitted in the walker's pre-order, so the per-row
        # cost vector is bit-identical, not merely close.
        assert np.array_equal(compiled.costs, vectorized.costs)
        assert compiled.total_cost == vectorized.total_cost

    def test_verdicts_equal_ground_truth(self, planned):
        schema, query, _train, test, plan = planned
        vectorized = dataset_execution(plan, test, schema)
        truth = [query.evaluate(row) for row in test]
        assert list(vectorized.verdicts) == truth


class TestCostModelAgreement:
    def test_eq3_expectation_matches_measured_mean_on_training_data(
        self, planned
    ):
        # Equation 3 under the *unsmoothed* empirical distribution of a
        # dataset is exactly the mean measured cost over that dataset.
        schema, _query, train, _test, plan = planned
        exact = EmpiricalDistribution(schema, train, smoothing=0.0)
        predicted = expected_cost(plan, exact)
        measured = dataset_execution(plan, train, schema).mean_cost
        assert predicted == pytest.approx(measured, rel=1e-9)
