"""Tests for the size-aware planner (Section 2.4 joint objective)."""

import numpy as np
import pytest

from repro.core import (
    ConjunctiveQuery,
    RangePredicate,
    combined_objective,
)
from repro.exceptions import PlanningError
from repro.planning import (
    GreedyConditionalPlanner,
    OptimalSequentialPlanner,
    SizeAwareConditionalPlanner,
    plan_for_lifetime,
)
from repro.probability import EmpiricalDistribution
from tests.conftest import correlated_dataset


@pytest.fixture
def setup():
    schema, data = correlated_dataset(n_rows=4000, seed=5)
    distribution = EmpiricalDistribution(schema, data)
    query = ConjunctiveQuery(
        schema, [RangePredicate("a", 1, 2), RangePredicate("b", 3, 5)]
    )
    return schema, data, distribution, query


class TestStoppingRule:
    def test_zero_alpha_matches_unbounded_greedy(self, setup):
        _schema, _data, distribution, query = setup
        base = OptimalSequentialPlanner(distribution)
        unbounded = GreedyConditionalPlanner(
            distribution, base, max_splits=64
        ).plan(query)
        size_aware = SizeAwareConditionalPlanner(
            distribution, base, alpha=0.0
        ).plan(query)
        assert size_aware.plan == unbounded.plan

    def test_huge_alpha_stays_sequential(self, setup):
        _schema, _data, distribution, query = setup
        base = OptimalSequentialPlanner(distribution)
        result = SizeAwareConditionalPlanner(
            distribution, base, alpha=1e9
        ).plan(query)
        assert result.plan.condition_count() == 0

    def test_plan_size_monotone_in_alpha(self, setup):
        _schema, _data, distribution, query = setup
        base = OptimalSequentialPlanner(distribution)
        sizes = []
        for alpha in (0.0, 0.05, 1.0, 100.0):
            result = SizeAwareConditionalPlanner(
                distribution, base, alpha=alpha
            ).plan(query)
            sizes.append(result.plan.size_bytes())
        for bigger, smaller in zip(sizes, sizes[1:]):
            assert smaller <= bigger

    def test_reported_cost_is_combined_objective(self, setup):
        _schema, _data, distribution, query = setup
        base = OptimalSequentialPlanner(distribution)
        alpha = 0.02
        result = SizeAwareConditionalPlanner(
            distribution, base, alpha=alpha
        ).plan(query)
        assert result.expected_cost == pytest.approx(
            combined_objective(result.plan, distribution, alpha), rel=1e-6
        )

    def test_objective_no_worse_than_extremes(self, setup):
        """The size-aware plan's combined objective must not lose to either
        the unsplit plan or the unbounded greedy plan at the same alpha."""
        _schema, _data, distribution, query = setup
        base = OptimalSequentialPlanner(distribution)
        alpha = 0.05
        size_aware = SizeAwareConditionalPlanner(
            distribution, base, alpha=alpha
        ).plan(query)
        sequential = GreedyConditionalPlanner(
            distribution, base, max_splits=0
        ).plan(query)
        unbounded = GreedyConditionalPlanner(
            distribution, base, max_splits=64
        ).plan(query)
        own = combined_objective(size_aware.plan, distribution, alpha)
        assert own <= combined_objective(sequential.plan, distribution, alpha) + 1e-6
        assert own <= combined_objective(unbounded.plan, distribution, alpha) + 1e-6


class TestLifetimeWrapper:
    def test_alpha_derivation(self, setup):
        _schema, _data, distribution, query = setup
        base = OptimalSequentialPlanner(distribution)
        short = plan_for_lifetime(
            distribution, base, query, radio_cost_per_byte=10.0, lifetime_tuples=1
        )
        long_lived = plan_for_lifetime(
            distribution,
            base,
            query,
            radio_cost_per_byte=10.0,
            lifetime_tuples=10_000_000,
        )
        assert short.plan.size_bytes() <= long_lived.plan.size_bytes()

    def test_validation(self, setup):
        _schema, _data, distribution, query = setup
        base = OptimalSequentialPlanner(distribution)
        with pytest.raises(PlanningError):
            plan_for_lifetime(distribution, base, query, 1.0, 0)
        with pytest.raises(PlanningError):
            plan_for_lifetime(distribution, base, query, -1.0, 10)
        with pytest.raises(PlanningError):
            SizeAwareConditionalPlanner(distribution, base, alpha=-0.1)


class TestCorrectness:
    def test_plans_answer_correctly(self, setup):
        schema, data, distribution, query = setup
        base = OptimalSequentialPlanner(distribution)
        for alpha in (0.0, 0.1, 10.0):
            result = SizeAwareConditionalPlanner(
                distribution, base, alpha=alpha
            ).plan(query)
            truth = np.fromiter(
                (query.evaluate(row) for row in data), dtype=bool, count=len(data)
            )
            from repro.core import dataset_execution

            outcome = dataset_execution(result.plan, data, schema)
            assert np.array_equal(outcome.verdicts, truth)
