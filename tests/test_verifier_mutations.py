"""Mutation-based self-test of the verifier.

Each :func:`~repro.verify.plan_mutations` /
:func:`~repro.verify.bytecode_mutations` case seeds one known defect
class into an otherwise-correct plan; the verifier must flag every one
with its documented error code.  This is the verifier's own regression
harness: a rule that silently stops firing breaks these tests, not a
production run.
"""

import pytest

from repro.core import (
    Attribute,
    ConjunctiveQuery,
    RangePredicate,
    Schema,
    expected_cost,
)
from repro.execution import compile_plan
from repro.verify import (
    CODE_CATALOG,
    bytecode_mutations,
    plan_mutations,
    verify_bytecode,
    verify_plan,
)
from repro.verify.mutations import (
    canonical_conditional_plan,
    canonical_sequential_plan,
)


@pytest.fixture(scope="module")
def schema() -> Schema:
    return Schema(
        [
            Attribute("a", 8, 1.0),
            Attribute("b", 8, 2.0),
            Attribute("c", 8, 4.0),
        ]
    )


@pytest.fixture(scope="module")
def query(schema) -> ConjunctiveQuery:
    return ConjunctiveQuery(
        schema,
        [
            RangePredicate("a", 3, 6),
            RangePredicate("b", 2, 5),
            RangePredicate("c", 4, 7),
        ],
    )


def test_canonical_plans_verify_clean(schema, query):
    for plan in (
        canonical_sequential_plan(query),
        canonical_conditional_plan(query),
    ):
        report = verify_plan(plan, schema, query=query, check_compiled=True)
        assert report.ok, report.format()


def test_every_expected_code_is_documented(query):
    for case in plan_mutations(query) + bytecode_mutations(query):
        assert case.expected_code in CODE_CATALOG, case.name


def test_plan_mutation_corpus_covers_issue_classes(query):
    # The acceptance list from the issue: dropped conjunct, flipped
    # verdict, overlapping split ranges (plus the extra seeded classes).
    names = {case.name for case in plan_mutations(query)}
    assert {
        "dropped-conjunct",
        "flipped-verdict",
        "overlapping-split",
    } <= names


def test_bytecode_mutation_corpus_covers_issue_classes(query):
    # Out-of-bounds offset and wrong size_bytes, per the issue.
    names = {case.name for case in bytecode_mutations(query)}
    assert {"oob-offset", "wrong-size"} <= names


@pytest.mark.parametrize(
    "case",
    plan_mutations(
        ConjunctiveQuery(
            Schema(
                [
                    Attribute("a", 8, 1.0),
                    Attribute("b", 8, 2.0),
                    Attribute("c", 8, 4.0),
                ]
            ),
            [
                RangePredicate("a", 3, 6),
                RangePredicate("b", 2, 5),
                RangePredicate("c", 4, 7),
            ],
        )
    ),
    ids=lambda case: case.name,
)
def test_plan_mutation_detected_with_documented_code(case, schema, query):
    report = verify_plan(case.plan, schema, query=query)
    assert report.has(case.expected_code), (
        f"{case.name}: expected {case.expected_code}, got "
        f"{sorted(report.codes())}"
    )
    assert not report.ok


@pytest.mark.parametrize(
    "case",
    bytecode_mutations(
        ConjunctiveQuery(
            Schema(
                [
                    Attribute("a", 8, 1.0),
                    Attribute("b", 8, 2.0),
                    Attribute("c", 8, 4.0),
                ]
            ),
            [
                RangePredicate("a", 3, 6),
                RangePredicate("b", 2, 5),
                RangePredicate("c", 4, 7),
            ],
        )
    ),
    ids=lambda case: case.name,
)
def test_bytecode_mutation_detected_with_documented_code(case, schema):
    report = verify_bytecode(case.code, schema)
    assert report.has(case.expected_code), (
        f"{case.name}: expected {case.expected_code}, got "
        f"{sorted(report.codes())}"
    )
    assert not report.ok


def test_mutated_plans_differ_from_canonical(schema, query):
    # Sanity: every mutation really changed something (otherwise the
    # detection test above would be vacuous).
    sequential = canonical_sequential_plan(query)
    conditional = canonical_conditional_plan(query)
    for case in plan_mutations(query):
        assert case.plan not in (sequential, conditional), case.name
    baseline = compile_plan(conditional)
    for case in bytecode_mutations(query):
        assert case.code != baseline, case.name


def test_wrong_cost_mutation_via_claimed_cost(schema, query):
    # COST001 isn't seeded through a tree mutation — it is a claim about
    # the tree — so exercise it directly here alongside the corpus.
    import numpy as np

    from repro.probability import EmpiricalDistribution

    rng = np.random.default_rng(0)
    distribution = EmpiricalDistribution(
        schema, rng.integers(1, 9, size=(500, 3)), smoothing=0.5
    )
    plan = canonical_conditional_plan(query)
    true_cost = expected_cost(plan, distribution)
    assert verify_plan(
        plan, schema, query=query, distribution=distribution,
        claimed_cost=true_cost,
    ).ok
    assert verify_plan(
        plan, schema, query=query, distribution=distribution,
        claimed_cost=true_cost * 2 + 1,
    ).has("COST001")
