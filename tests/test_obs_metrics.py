"""Tests for the metrics instruments and Prometheus exposition."""

import pytest

from repro.exceptions import ServiceError
from repro.obs import parse_prometheus, render_prometheus
from repro.service import Gauge, LabeledCounter, MetricsRegistry, merge_snapshots


class TestGauge:
    def test_set_and_increment(self):
        gauge = Gauge()
        assert gauge.value == 0.0
        gauge.set(3)
        gauge.increment()
        gauge.increment(-1.5)
        assert gauge.value == pytest.approx(2.5)


class TestLabeledCounter:
    def test_children_keyed_by_label_values(self):
        family = LabeledCounter(("event",))
        family.labels(event="hit").increment(2)
        family.labels(event="miss").increment()
        assert family.labels(event="hit").value == 2
        snapshot = family.snapshot()
        assert snapshot["labels"] == ["event"]
        assert {
            series["labels"]["event"]: series["value"]
            for series in snapshot["series"]
        } == {"hit": 2, "miss": 1}

    def test_rejects_empty_or_invalid_label_names(self):
        with pytest.raises(ServiceError):
            LabeledCounter(())
        with pytest.raises(ServiceError):
            LabeledCounter(("bad-name",))

    def test_rejects_wrong_label_set(self):
        family = LabeledCounter(("event",))
        with pytest.raises(ServiceError):
            family.labels(outcome="hit")


class TestRegistry:
    def test_gauges_and_labeled_counters_are_reused(self):
        registry = MetricsRegistry()
        assert registry.gauge("g") is registry.gauge("g")
        family = registry.labeled_counter("events", "event")
        assert registry.labeled_counter("events") is family

    def test_label_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.labeled_counter("events", "event")
        with pytest.raises(ServiceError):
            registry.labeled_counter("events", "other")

    def test_snapshot_includes_every_instrument_kind(self):
        registry = MetricsRegistry()
        registry.counter("c").increment()
        registry.gauge("g").set(2.5)
        registry.labeled_counter("events", "event").labels(
            event="hit"
        ).increment()
        registry.histogram("h").observe(0.001)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 1}
        assert snapshot["gauges"] == {"g": 2.5}
        assert snapshot["labeled_counters"]["events"]["series"]
        histogram = snapshot["histograms"]["h"]
        assert histogram["count"] == 1
        assert "p50_ms_window" in histogram
        assert histogram["window"] == 1


class TestPrometheusExposition:
    @pytest.fixture
    def snapshot(self):
        registry = MetricsRegistry()
        registry.counter("queries").increment(7)
        registry.gauge("cache_size").set(3)
        registry.labeled_counter("cache_events", "event").labels(
            event="hit"
        ).increment(5)
        registry.labeled_counter("cache_events", "event").labels(
            event="miss"
        ).increment(2)
        registry.histogram("planning").observe(0.004)
        return registry.snapshot()

    def test_round_trips_through_the_parser(self, snapshot):
        text = render_prometheus(snapshot)
        samples = parse_prometheus(text)
        assert samples["repro_queries_total"] == 7
        assert samples["repro_cache_size"] == 3
        assert samples['repro_cache_events_total{event="hit"}'] == 5
        assert samples['repro_cache_events_total{event="miss"}'] == 2
        assert samples["repro_planning_count"] == 1

    def test_type_lines_precede_samples(self, snapshot):
        lines = render_prometheus(snapshot).splitlines()
        assert "# TYPE repro_queries_total counter" in lines
        assert "# TYPE repro_cache_size gauge" in lines

    def test_prefix_is_configurable(self, snapshot):
        samples = parse_prometheus(render_prometheus(snapshot, prefix="svc"))
        assert "svc_queries_total" in samples

    def test_parser_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            parse_prometheus("this is { not a sample\n")
        with pytest.raises(ValueError):
            parse_prometheus("metric_name not_a_number\n")

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus({}) == ""
        assert parse_prometheus("") == {}


class TestMergeSnapshotEdgeCases:
    """The awkward inputs the front door's aggregation must survive."""

    def test_disjoint_series_merge_without_cross_talk(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.labeled_counter("cache_events", "event").labels(event="hit").increment(4)
        b.labeled_counter("cache_events", "event").labels(event="miss").increment(9)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        series = {
            tuple(sorted(s["labels"].items())): s["value"]
            for s in merged["labeled_counters"]["cache_events"]["series"]
        }
        assert series == {(("event", "hit"),): 4, (("event", "miss"),): 9}

    def test_disjoint_label_names_keep_their_own_series(self):
        # Two shards exporting the same family name with different label
        # names is a deployment bug, but the merge must not corrupt
        # either side: series are keyed by their full label items, so
        # both survive verbatim.
        a = {
            "labeled_counters": {
                "events": {
                    "labels": ["kind"],
                    "series": [{"labels": {"kind": "hit"}, "value": 2}],
                }
            }
        }
        b = {
            "labeled_counters": {
                "events": {
                    "labels": ["route"],
                    "series": [{"labels": {"route": "fast"}, "value": 5}],
                }
            }
        }
        merged = merge_snapshots([a, b])
        series = {
            tuple(sorted(s["labels"].items())): s["value"]
            for s in merged["labeled_counters"]["events"]["series"]
        }
        assert series == {(("kind", "hit"),): 2, (("route", "fast"),): 5}

    def test_counter_and_gauge_sharing_a_name_stay_separate(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.counter("queries").increment(3)
        b.gauge("queries").set(11)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["counters"]["queries"] == 3
        assert merged["gauges"]["queries"] == 11
        # Exposition disambiguates by the counter's _total suffix, so
        # the scrape carries both without a duplicate sample name.
        samples = parse_prometheus(render_prometheus(merged))
        assert samples["repro_queries_total"] == 3
        assert samples["repro_queries"] == 11

    def test_empty_and_partial_snapshots_are_harmless(self):
        a = MetricsRegistry()
        a.counter("queries").increment(2)
        a.histogram("latency").observe(0.010)
        merged = merge_snapshots([{}, a.snapshot(), {"counters": {}}])
        assert merged["counters"] == {"queries": 2}
        assert merged["histograms"]["latency"]["count"] == 1
        all_empty = merge_snapshots([{}, {}])
        assert all_empty["counters"] == {}
        assert render_prometheus(all_empty) == ""

    def test_merged_view_renders_and_round_trips(self):
        shards = []
        for shard in range(3):
            registry = MetricsRegistry()
            registry.counter("requests").increment(10 * (shard + 1))
            registry.gauge("statistics_version").set(shard + 1)
            registry.gauge("cache_size").set(4)
            for _ in range(5):
                registry.histogram("request").observe(0.002 * (shard + 1))
            shards.append(registry.snapshot())
        merged = merge_snapshots(shards)
        samples = parse_prometheus(render_prometheus(merged))
        assert samples["repro_requests_total"] == 60
        assert samples["repro_statistics_version"] == 3  # watermark, not sum
        assert samples["repro_cache_size"] == 12
        assert samples["repro_request_count"] == 15
        assert samples["repro_request_max_ms"] == pytest.approx(6.0, rel=1e-6)
