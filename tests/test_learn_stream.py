"""LearnedStreamExecutor: bandit loop, drift fusion, state, and faults."""

import numpy as np
import pytest

from repro.exceptions import FaultConfigError, LearningError, PlanningError
from repro.faults.model import AttributeFaults, FaultSchedule
from repro.learn import (
    BanditStateStore,
    LearnedStreamExecutor,
    adversarial_stream,
    drifting_stream,
)
from repro.verify.learn import check_learned


@pytest.fixture(scope="module")
def workload():
    return adversarial_stream(n_segments=2, segment_length=200, seed=0)


def make_executor(workload, **kwargs):
    defaults = dict(window=96, warmup=48, smoothing=0.5, burst_pulls=6)
    defaults.update(kwargs)
    return LearnedStreamExecutor(workload.schema, workload.query, **defaults)


@pytest.fixture(scope="module")
def report(workload):
    return make_executor(workload).process(workload.data)


class TestValidation:
    def test_parameter_bounds(self, workload):
        bad = [
            dict(window=0),
            dict(warmup=0),
            dict(smoothing=-0.1),
            dict(regret_budget=-1.0),
            dict(drift_check_every=0),
            dict(drift_min_tuples=0),
            dict(warm_discount=0.0),
            dict(warm_discount=1.5),
            dict(state_store=BanditStateStore()),  # no state_key
        ]
        for kwargs in bad:
            with pytest.raises(LearningError):
                make_executor(workload, **kwargs)

    def test_fault_schedule_needs_rng(self, workload):
        schedule = FaultSchedule(profiles={1: AttributeFaults(drop_rate=0.1)})
        with pytest.raises(FaultConfigError, match="fault_rng"):
            make_executor(workload, fault_schedule=schedule)

    def test_fault_schedule_forbids_skeleton(self, workload):
        from repro.planning import CorrSeqPlanner

        schedule = FaultSchedule(profiles={1: AttributeFaults(drop_rate=0.1)})
        with pytest.raises(FaultConfigError, match="flat"):
            make_executor(
                workload,
                fault_schedule=schedule,
                fault_rng=np.random.default_rng(0),
                skeleton_planner=lambda d: CorrSeqPlanner(d),
            )

    def test_stream_shape_checked(self, workload):
        executor = make_executor(workload)
        with pytest.raises(PlanningError, match="incompatible"):
            executor.process(np.zeros((10, 7), dtype=np.int64))
        with pytest.raises(LearningError, match="empty"):
            executor.process(np.zeros((0, 3), dtype=np.int64))


class TestFaultFreeRun:
    def test_report_shapes_and_trace(self, workload, report):
        n = workload.data.shape[0]
        assert report.costs.shape == (n,)
        assert report.verdicts.shape == (n,)
        assert report.pulls.shape == (n,)
        assert report.abstained is None
        assert report.faults is None
        # Warmup tuples carry no arm pull; post-warmup tuples all do.
        assert (report.pulls[:48] == -1).all()
        assert (report.pulls[48:] >= 0).all()
        assert report.replans[0].reason == "warmup"
        assert report.replans[0].position == 48

    def test_verdicts_are_exact(self, workload, report):
        expected = np.array(
            [workload.query.evaluate(row) for row in workload.data]
        )
        assert (report.verdicts == expected).all()

    def test_ledger_conserved_and_within_budget(self, report):
        assert report.ledger_conserved()
        assert report.ledger_gap() == pytest.approx(0.0, abs=1e-6)
        assert report.exploration_within_budget()
        assert report.ledger.total_cost == pytest.approx(report.total_cost)

    def test_provenance_passes_lrn_rules(self, report):
        assert check_learned(report.plan, report.provenance) == []
        assert report.provenance.observed_total == pytest.approx(
            report.total_cost
        )

    def test_regime_flip_triggers_adaptation(self, workload, report):
        reasons = {event.reason for event in report.replans}
        assert reasons & {"order-swap", "drift-refit"}, reasons
        # Something happened after the flip boundary.
        boundary = workload.boundaries[0]
        assert any(
            event.position > boundary
            for event in report.replans
            if event.reason != "warmup"
        )

    def test_as_dict_summarizes(self, workload, report):
        payload = report.as_dict()
        assert payload["tuples"] == workload.data.shape[0]
        assert payload["replans"] == len(report.replans)
        assert payload["ledger"]["budget"] == report.ledger.budget

    def test_on_replan_sees_every_event(self, workload):
        seen = []
        run = make_executor(workload, on_replan=seen.append).process(
            workload.data
        )
        assert tuple(seen) == run.replans

    def test_disabled_monitor_never_refits(self, workload):
        run = make_executor(workload, drift_threshold=None).process(
            workload.data
        )
        assert all(
            event.reason != "drift-refit" for event in run.replans
        )


class TestStatePersistence:
    def test_states_stored_under_provided_version(self, workload):
        store = BanditStateStore()
        make_executor(
            workload,
            state_store=store,
            state_key="q",
            version_provider=lambda: 7,
        ).process(workload.data)
        assert store.versions("q") == (7,)
        assert store.get("q", 7) is not None

    def test_second_run_adopts_stored_evidence(self, workload):
        store = BanditStateStore()
        make_executor(
            workload, state_store=store, state_key="q"
        ).process(workload.data)
        rerun = make_executor(
            workload, state_store=store, state_key="q"
        ).process(workload.data)
        warmup = rerun.replans[0]
        assert warmup.reason == "warmup"
        assert warmup.warm  # posteriors survived into the new run

    def test_cold_start_reports_no_adoption(self, workload, report):
        assert not report.replans[0].warm


class TestFaultedRun:
    @pytest.fixture(scope="class")
    def faulted(self):
        workload = drifting_stream(n_tuples=400, flip_at=0.5, seed=1)
        schedule = FaultSchedule(
            profiles={
                1: AttributeFaults(drop_rate=0.05),
                2: AttributeFaults(noise_rate=0.05),
            }
        )
        executor = LearnedStreamExecutor(
            workload.schema,
            workload.query,
            window=96,
            warmup=48,
            smoothing=0.5,
            burst_pulls=6,
            fault_schedule=schedule,
            fault_rng=np.random.default_rng(3),
        )
        return executor.process(workload.data)

    def test_fault_stats_and_abstentions_reported(self, faulted):
        assert faulted.faults is not None
        assert faulted.abstained is not None
        assert faulted.faults.acquisitions_failed > 0
        assert faulted.faults.tuples_abstained == int(faulted.abstained.sum())

    def test_ledger_survives_the_storm(self, faulted):
        assert faulted.ledger_conserved()
        assert faulted.exploration_within_budget()

    def test_provenance_still_verifies(self, faulted):
        assert check_learned(faulted.plan, faulted.provenance) == []
