"""Tests for the cost models: Equations 1, 3, 4, and the Section 2.4
combined objective.

The central consistency invariant: for *any* plan, the Equation 3 expected
cost computed against an unsmoothed EmpiricalDistribution over dataset D
must equal the Equation 4 empirical mean traversal cost over the same D —
the model *is* the data.
"""

import numpy as np
import pytest

from repro.core import (
    Attribute,
    ConditionNode,
    ConjunctiveQuery,
    RangePredicate,
    Schema,
    SequentialNode,
    SequentialStep,
    VerdictLeaf,
    combined_objective,
    dataset_execution,
    empirical_cost,
    expected_cost,
    traversal_cost,
)
from repro.core.cost import predicate_mask
from repro.exceptions import PlanError
from repro.planning import GreedyConditionalPlanner, GreedySequentialPlanner
from repro.probability import EmpiricalDistribution
from tests.conftest import correlated_dataset


def seq(*specs) -> SequentialNode:
    steps = tuple(
        SequentialStep(
            predicate=RangePredicate(name, low, high), attribute_index=index
        )
        for name, index, low, high in specs
    )
    return SequentialNode(steps=steps)


@pytest.fixture
def schema() -> Schema:
    return Schema(
        [Attribute("x", 2, 1.0), Attribute("y", 2, 10.0), Attribute("z", 2, 100.0)]
    )


class TestTraversalCost:
    def test_sequential_pays_until_failure(self, schema):
        plan = seq(("y", 1, 2, 2), ("z", 2, 2, 2))
        assert traversal_cost(plan, [1, 1, 1], schema) == 10.0  # y fails first
        assert traversal_cost(plan, [1, 2, 1], schema) == 110.0  # both read

    def test_condition_node_charges_first_read_only(self, schema):
        plan = ConditionNode(
            attribute="y",
            attribute_index=1,
            split_value=2,
            below=seq(("y", 1, 2, 2)),  # re-tests y: free
            above=VerdictLeaf(True),
        )
        assert traversal_cost(plan, [1, 1, 1], schema) == 10.0

    def test_leaf_costs_nothing(self, schema):
        assert traversal_cost(VerdictLeaf(True), [1, 1, 1], schema) == 0.0


class TestDatasetExecution:
    def test_matches_per_tuple_traversal(self, schema):
        rng = np.random.default_rng(3)
        data = rng.integers(1, 3, size=(300, 3)).astype(np.int64)
        plan = ConditionNode(
            attribute="x",
            attribute_index=0,
            split_value=2,
            below=seq(("y", 1, 2, 2), ("z", 2, 2, 2)),
            above=seq(("z", 2, 1, 1), ("y", 1, 1, 2)),
        )
        outcome = dataset_execution(plan, data, schema)
        for row_index in range(len(data)):
            assert outcome.costs[row_index] == traversal_cost(
                plan, data[row_index], schema
            )
            assert outcome.verdicts[row_index] == plan.evaluate(data[row_index])

    def test_aggregates(self, schema):
        data = np.array([[1, 2, 2], [1, 1, 1]], dtype=np.int64)
        plan = seq(("y", 1, 2, 2))
        outcome = dataset_execution(plan, data, schema)
        assert outcome.total_cost == 20.0
        assert outcome.mean_cost == 10.0
        assert outcome.pass_fraction == 0.5

    def test_shape_validation(self, schema):
        with pytest.raises(PlanError):
            dataset_execution(VerdictLeaf(True), np.ones((4, 2), dtype=np.int64), schema)

    def test_empirical_cost_helper(self, schema):
        data = np.array([[1, 1, 1]], dtype=np.int64)
        assert empirical_cost(seq(("x", 0, 1, 1)), data, schema) == 1.0


class TestExpectedCost:
    def test_matches_empirical_on_training_data(self):
        """Equation 3 over the empirical model == Equation 4 over the data."""
        schema, data = correlated_dataset(n_rows=2500, seed=11)
        distribution = EmpiricalDistribution(schema, data)
        query = ConjunctiveQuery(
            schema, [RangePredicate("a", 1, 2), RangePredicate("b", 3, 5)]
        )
        planner = GreedyConditionalPlanner(
            distribution, GreedySequentialPlanner(distribution), max_splits=4
        )
        plan = planner.plan(query).plan
        model = expected_cost(plan, distribution)
        empirical = empirical_cost(plan, data, schema)
        assert model == pytest.approx(empirical, rel=1e-9)

    def test_planner_reported_cost_matches_recomputation(self):
        schema, data = correlated_dataset(n_rows=2000, seed=12)
        distribution = EmpiricalDistribution(schema, data)
        query = ConjunctiveQuery(
            schema, [RangePredicate("a", 2, 4), RangePredicate("b", 1, 3)]
        )
        result = GreedyConditionalPlanner(
            distribution, GreedySequentialPlanner(distribution), max_splits=3
        ).plan(query)
        assert result.expected_cost == pytest.approx(
            expected_cost(result.plan, distribution), rel=1e-9
        )

    def test_condition_probabilities_weight_branches(self, schema):
        # 75% of rows have x=1; below branch reads y (10), above reads z (100).
        data = np.array(
            [[1, 1, 1]] * 75 + [[2, 1, 1]] * 25, dtype=np.int64
        )
        distribution = EmpiricalDistribution(schema, data)
        plan = ConditionNode(
            attribute="x",
            attribute_index=0,
            split_value=2,
            below=seq(("y", 1, 2, 2)),
            above=seq(("z", 2, 2, 2)),
        )
        expected = 1.0 + 0.75 * 10.0 + 0.25 * 100.0
        assert expected_cost(plan, distribution) == pytest.approx(expected)

    def test_unreachable_split_rejected(self, schema):
        data = np.array([[1, 1, 1]], dtype=np.int64)
        distribution = EmpiricalDistribution(schema, data)
        inner = ConditionNode(
            attribute="x",
            attribute_index=0,
            split_value=2,
            below=VerdictLeaf(True),
            above=VerdictLeaf(False),
        )
        outer = ConditionNode(
            attribute="x",
            attribute_index=0,
            split_value=2,
            below=inner,  # x already pinned below 2: split unreachable
            above=VerdictLeaf(False),
        )
        with pytest.raises(PlanError, match="outside"):
            expected_cost(outer, distribution)

    def test_leaf_is_free(self, schema):
        data = np.array([[1, 1, 1]], dtype=np.int64)
        distribution = EmpiricalDistribution(schema, data)
        assert expected_cost(VerdictLeaf(True), distribution) == 0.0


class TestCombinedObjective:
    def test_adds_scaled_plan_size(self, schema):
        data = np.array([[1, 1, 1], [2, 2, 2]], dtype=np.int64)
        distribution = EmpiricalDistribution(schema, data)
        plan = seq(("x", 0, 1, 1))
        base = expected_cost(plan, distribution)
        assert combined_objective(plan, distribution, alpha=0.0) == base
        assert combined_objective(plan, distribution, alpha=2.0) == pytest.approx(
            base + 2.0 * plan.size_bytes()
        )

    def test_negative_alpha_rejected(self, schema):
        data = np.array([[1, 1, 1]], dtype=np.int64)
        distribution = EmpiricalDistribution(schema, data)
        with pytest.raises(PlanError):
            combined_objective(VerdictLeaf(True), distribution, alpha=-1.0)


class TestPredicateMask:
    def test_range(self):
        values = np.array([1, 2, 3, 4, 5])
        mask = predicate_mask(RangePredicate("x", 2, 4), values)
        assert mask.tolist() == [False, True, True, True, False]

    def test_not_range(self):
        from repro.core import NotRangePredicate

        values = np.array([1, 2, 3])
        mask = predicate_mask(NotRangePredicate("x", 2, 2), values)
        assert mask.tolist() == [True, False, True]
