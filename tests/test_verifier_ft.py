"""The verifier's FT rule family: degraded paths must stay sound."""

from __future__ import annotations

import pytest

from repro.core import (
    Attribute,
    ConditionNode,
    ConjunctiveQuery,
    RangePredicate,
    Schema,
    SequentialNode,
    SequentialStep,
)
from repro.faults import DegradationMode, FaultPolicy
from repro.verify import check_fault_tolerance, verify_plan
from repro.verify.diagnostics import CODE_CATALOG, Severity


@pytest.fixture
def schema() -> Schema:
    return Schema(
        [
            Attribute("mode", 2, 1.0),
            Attribute("a", 4, 50.0),
            Attribute("b", 4, 50.0),
        ]
    )


@pytest.fixture
def query(schema) -> ConjunctiveQuery:
    return ConjunctiveQuery(
        schema, [RangePredicate("a", 3, 4), RangePredicate("b", 1, 2)]
    )


def seq(query) -> SequentialNode:
    return SequentialNode(
        steps=tuple(
            SequentialStep(predicate=p, attribute_index=i)
            for p, i in zip(query.predicates, query.attribute_indices)
        )
    )


@pytest.fixture
def conditioning_plan(query) -> ConditionNode:
    """Conditions on ``mode``, which the query itself never tests."""
    return ConditionNode(
        attribute="mode",
        attribute_index=0,
        split_value=2,
        below=seq(query),
        above=seq(query),
    )


def codes(findings) -> list[str]:
    return [finding.code for finding in findings]


class TestCatalog:
    def test_ft_codes_registered(self):
        assert CODE_CATALOG["FT001"][0] is Severity.ERROR
        assert CODE_CATALOG["FT002"][0] is Severity.ERROR
        assert CODE_CATALOG["FT003"][0] is Severity.WARNING


class TestFT001:
    def test_unconfirmed_impute_is_an_error(self, conditioning_plan, schema, query):
        policy = FaultPolicy(
            degradation=DegradationMode.IMPUTE, confirm_positives=False
        )
        findings = check_fault_tolerance(
            conditioning_plan, schema, policy, query=query
        )
        assert "FT001" in codes(findings)

    def test_confirmed_impute_is_clean(self, conditioning_plan, schema, query):
        policy = FaultPolicy(degradation=DegradationMode.IMPUTE)
        findings = check_fault_tolerance(
            conditioning_plan, schema, policy, query=query
        )
        assert "FT001" not in codes(findings)


class TestFT002:
    @pytest.mark.parametrize(
        "mode", (DegradationMode.SKIP, DegradationMode.IMPUTE)
    )
    def test_fallback_modes_need_the_query(self, conditioning_plan, schema, mode):
        findings = check_fault_tolerance(
            conditioning_plan, schema, FaultPolicy(degradation=mode), query=None
        )
        assert "FT002" in codes(findings)

    def test_abstain_never_needs_the_query(self, conditioning_plan, schema):
        findings = check_fault_tolerance(
            conditioning_plan, schema, FaultPolicy(), query=None
        )
        assert "FT002" not in codes(findings)


class TestFT003:
    def test_conditioning_only_attribute_warns_under_abstain(
        self, conditioning_plan, schema, query
    ):
        findings = check_fault_tolerance(
            conditioning_plan, schema, FaultPolicy(), query=query
        )
        ft3 = [f for f in findings if f.code == "FT003"]
        assert len(ft3) == 1  # one warning per attribute, not per node
        assert "mode" in ft3[0].message

    def test_skip_silences_the_spof_warning(
        self, conditioning_plan, schema, query
    ):
        policy = FaultPolicy(degradation=DegradationMode.SKIP)
        findings = check_fault_tolerance(
            conditioning_plan, schema, policy, query=query
        )
        assert "FT003" not in codes(findings)

    def test_query_tested_conditioner_is_fine(self, schema, query):
        plan = ConditionNode(
            attribute="a",
            attribute_index=1,
            split_value=3,
            below=seq(query),
            above=seq(query),
        )
        findings = check_fault_tolerance(plan, schema, FaultPolicy(), query=query)
        assert "FT003" not in codes(findings)


class TestVerifyPlanIntegration:
    def test_fault_policy_parameter_runs_ft_rules(
        self, conditioning_plan, schema, query
    ):
        policy = FaultPolicy(
            degradation=DegradationMode.IMPUTE, confirm_positives=False
        )
        report = verify_plan(
            conditioning_plan, schema, query=query, fault_policy=policy
        )
        assert not report.ok
        assert "FT001" in [d.code for d in report.diagnostics]

    def test_without_fault_policy_no_ft_diagnostics(
        self, conditioning_plan, schema, query
    ):
        report = verify_plan(conditioning_plan, schema, query=query)
        assert not any(
            d.code.startswith("FT") for d in report.diagnostics
        )

    def test_sound_policy_passes_the_gate(self, conditioning_plan, schema, query):
        report = verify_plan(
            conditioning_plan,
            schema,
            query=query,
            fault_policy=FaultPolicy(degradation=DegradationMode.SKIP),
        )
        assert report.ok  # FT003 would be a warning; SKIP has none
