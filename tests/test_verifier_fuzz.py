"""Property-based tests for the verifier and bytecode checker.

Two properties, per the issue:

- every structurally valid plan the generator can build compiles,
  verifies clean (structure + bytecode rules), and decompiles back to
  itself;
- arbitrary byte-level corruption of compiled plans never crashes the
  bytecode checker — it either reports diagnostics or accepts bytes
  that genuinely decode to a valid plan.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Attribute,
    ConditionNode,
    ConjunctiveQuery,
    PlanNode,
    RangePredicate,
    Schema,
    SequentialNode,
    SequentialStep,
    VerdictLeaf,
)
from repro.core.ranges import RangeVector
from repro.execution import compile_plan, decompile_plan
from repro.verify import verify_bytecode, verify_plan

SCHEMA = Schema(
    [
        Attribute("a", 8, 1.0),
        Attribute("b", 6, 2.0),
        Attribute("c", 8, 4.0),
        Attribute("d", 5, 3.0),
    ]
)

QUERY = ConjunctiveQuery(
    SCHEMA,
    [
        RangePredicate("a", 3, 6),
        RangePredicate("b", 2, 5),
        RangePredicate("c", 4, 7),
        RangePredicate("d", 2, 4),
    ],
)


def _leaf_for(ranges: RangeVector, draw) -> PlanNode:
    """A semantically correct leaf for the current branch context."""
    from repro.core import Truth

    verdict = QUERY.truth_under(ranges)
    if verdict is not Truth.UNDETERMINED:
        return VerdictLeaf(verdict=verdict is Truth.TRUE)
    bindings = QUERY.undetermined_predicates(ranges)
    if draw(st.booleans()):
        bindings = list(reversed(bindings))
    return SequentialNode(
        steps=tuple(
            SequentialStep(predicate=predicate, attribute_index=index)
            for predicate, index in bindings
        )
    )


@st.composite
def valid_plans(draw, max_depth: int = 4):
    """Random structurally + semantically valid plans for ``QUERY``."""

    def build(ranges: RangeVector, depth: int) -> PlanNode:
        splittable = [
            index
            for index in range(len(SCHEMA))
            if ranges[index].low < ranges[index].high
            and max(2, ranges[index].low + 1) <= ranges[index].high
        ]
        if depth >= max_depth or not splittable or draw(st.booleans()):
            return _leaf_for(ranges, draw)
        index = draw(st.sampled_from(splittable))
        interval = ranges[index]
        split = draw(
            st.integers(
                min_value=max(2, interval.low + 1), max_value=interval.high
            )
        )
        below_ranges, above_ranges = ranges.split(index, split)
        return ConditionNode(
            attribute=SCHEMA[index].name,
            attribute_index=index,
            split_value=split,
            below=build(below_ranges, depth + 1),
            above=build(above_ranges, depth + 1),
        )

    return build(RangeVector.full(SCHEMA), 0)


@settings(max_examples=150, deadline=None)
@given(plan=valid_plans())
def test_valid_plans_round_trip_and_verify_clean(plan):
    report = verify_plan(plan, SCHEMA, query=QUERY, check_compiled=True)
    assert report.ok, report.format()
    code = compile_plan(plan)
    assert len(code) == plan.size_bytes()
    assert decompile_plan(code, SCHEMA) == plan


@settings(max_examples=200, deadline=None)
@given(
    plan=valid_plans(),
    data=st.data(),
)
def test_byte_mutations_never_crash_the_checker(plan, data):
    code = bytearray(compile_plan(plan))
    n_flips = data.draw(st.integers(min_value=1, max_value=4))
    for _ in range(n_flips):
        position = data.draw(
            st.integers(min_value=0, max_value=len(code) - 1)
        )
        code[position] = data.draw(st.integers(min_value=0, max_value=255))
    mutated = bytes(code)

    # Must not raise, whatever the bytes are.
    report = verify_bytecode(mutated, SCHEMA)

    if report.ok:
        # A mutation can land on a don't-care bit or produce another
        # valid plan; if the checker accepts it, decoding must succeed
        # and the decoded plan must itself verify structurally clean.
        decoded = decompile_plan(mutated, SCHEMA)
        assert verify_plan(decoded, SCHEMA).ok


@settings(max_examples=150, deadline=None)
@given(blob=st.binary(min_size=0, max_size=64))
def test_arbitrary_blobs_never_crash_the_checker(blob):
    report = verify_bytecode(blob, SCHEMA)
    if report.ok:
        assert decompile_plan(blob, SCHEMA) is not None
