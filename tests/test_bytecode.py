"""Tests for the plan compiler and on-mote interpreter."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    Attribute,
    ConditionNode,
    ConjunctiveQuery,
    NotRangePredicate,
    RangePredicate,
    Schema,
    SequentialNode,
    SequentialStep,
    VerdictLeaf,
)
from repro.exceptions import PlanError
from repro.execution.bytecode import (
    ByteCodeInterpreter,
    compile_plan,
    decompile_plan,
)
from repro.planning import GreedyConditionalPlanner, OptimalSequentialPlanner
from repro.probability import EmpiricalDistribution
from tests.conftest import correlated_dataset


@pytest.fixture
def schema() -> Schema:
    return Schema(
        [Attribute("mode", 4, 1.0), Attribute("a", 5, 100.0), Attribute("b", 5, 100.0)]
    )


def step(name: str, index: int, low: int, high: int, negated: bool = False):
    cls = NotRangePredicate if negated else RangePredicate
    return SequentialStep(predicate=cls(name, low, high), attribute_index=index)


def sample_plan() -> ConditionNode:
    return ConditionNode(
        attribute="mode",
        attribute_index=0,
        split_value=3,
        below=SequentialNode(steps=(step("a", 1, 2, 4), step("b", 2, 1, 3, True))),
        above=ConditionNode(
            attribute="a",
            attribute_index=1,
            split_value=2,
            below=VerdictLeaf(False),
            above=SequentialNode(steps=(step("b", 2, 3, 5),)),
        ),
    )


class TestCompile:
    def test_length_equals_size_bytes(self):
        plan = sample_plan()
        assert len(compile_plan(plan)) == plan.size_bytes()

    def test_leaf_encodings(self):
        assert len(compile_plan(VerdictLeaf(True))) == 1
        assert len(compile_plan(VerdictLeaf(False))) == 1
        assert compile_plan(VerdictLeaf(True)) != compile_plan(VerdictLeaf(False))

    def test_roundtrip(self, schema):
        plan = sample_plan()
        assert decompile_plan(compile_plan(plan), schema) == plan

    def test_roundtrip_empty_sequential(self, schema):
        plan = SequentialNode(steps=())
        assert decompile_plan(compile_plan(plan), schema) == plan

    def test_attribute_index_limit(self):
        wide = Schema([Attribute(f"x{i}", 2, 1.0) for i in range(70)])
        plan = ConditionNode(
            attribute="x65",
            attribute_index=65,
            split_value=2,
            below=VerdictLeaf(False),
            above=VerdictLeaf(True),
        )
        with pytest.raises(PlanError, match="6-bit"):
            compile_plan(plan)
        del wide

    def test_generic_predicate_rejected(self, schema):
        class Weird(RangePredicate):
            pass

        weird = Weird("a", 1, 2)
        object.__setattr__(weird, "low", None)
        plan = SequentialNode(
            steps=(SequentialStep(predicate=weird, attribute_index=1),)
        )
        with pytest.raises(PlanError, match="wire encoding"):
            compile_plan(plan)


class TestInterpreter:
    def test_agrees_with_tree_evaluation(self, schema):
        plan = sample_plan()
        interpreter = ByteCodeInterpreter(compile_plan(plan))
        rng = np.random.default_rng(0)
        for _trial in range(200):
            row = [
                int(rng.integers(1, attribute.domain_size + 1))
                for attribute in schema
            ]
            assert interpreter.execute(row) == plan.evaluate(row)

    def test_acquisition_order_matches(self, schema):
        plan = sample_plan()
        interpreter = ByteCodeInterpreter(compile_plan(plan))
        for row in ([1, 3, 4], [4, 1, 3], [3, 3, 4]):
            tree_reads: list[int] = []
            byte_reads: list[int] = []
            plan.evaluate(row, on_acquire=tree_reads.append)
            interpreter.execute(row, on_acquire=byte_reads.append)
            assert tree_reads == byte_reads

    def test_empty_bytecode_rejected(self):
        with pytest.raises(PlanError):
            ByteCodeInterpreter(b"")

    def test_size_property(self):
        plan = sample_plan()
        interpreter = ByteCodeInterpreter(compile_plan(plan))
        assert interpreter.size_bytes == plan.size_bytes()


class TestEndToEnd:
    def test_planner_output_survives_compilation(self):
        """Plan -> compile -> interpret must answer like the query itself."""
        schema, data = correlated_dataset(n_rows=1500, seed=8)
        distribution = EmpiricalDistribution(schema, data)
        query = ConjunctiveQuery(
            schema, [RangePredicate("a", 1, 2), RangePredicate("b", 3, 5)]
        )
        plan = GreedyConditionalPlanner(
            distribution, OptimalSequentialPlanner(distribution), max_splits=4
        ).plan(query).plan
        interpreter = ByteCodeInterpreter(compile_plan(plan))
        for row in data[:400]:
            assert interpreter.execute(row) == query.evaluate(row)

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(seed=st.integers(0, 500))
    def test_roundtrip_property_on_planner_output(self, schema, seed):
        rng = np.random.default_rng(seed)
        n = 300
        mode = rng.integers(1, 5, n)
        a = np.clip(mode + rng.integers(0, 2, n), 1, 5)
        b = rng.integers(1, 6, n)
        data = np.stack([mode, a, b], axis=1).astype(np.int64)
        distribution = EmpiricalDistribution(schema, data)
        low = int(rng.integers(1, 4))
        query = ConjunctiveQuery(
            schema,
            [RangePredicate("a", low, low + 1), RangePredicate("b", 2, 4)],
        )
        plan = GreedyConditionalPlanner(
            distribution, OptimalSequentialPlanner(distribution), max_splits=3
        ).plan(query).plan
        bytecode = compile_plan(plan)
        assert len(bytecode) == plan.size_bytes()
        assert decompile_plan(bytecode, schema) == plan
