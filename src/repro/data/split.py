"""Train/test splitting by time windows (Section 6, "Test v. Training").

The paper builds plans on a *training* window of historical readings and
costs them on a disjoint, later, *test* window — simulating a model trained
once and then deployed in the network for days or weeks.  Rows are assumed
to be in time order (all generators in :mod:`repro.data` emit them that
way), so the split is a simple prefix/suffix cut, never a shuffle.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SchemaError

__all__ = ["time_split"]


def time_split(
    data: np.ndarray, train_fraction: float = 0.5
) -> tuple[np.ndarray, np.ndarray]:
    """Split time-ordered rows into (train, test) non-overlapping windows."""
    if not 0.0 < train_fraction < 1.0:
        raise SchemaError(
            f"train_fraction must be in (0, 1), got {train_fraction}"
        )
    matrix = np.asarray(data)
    if matrix.ndim != 2:
        raise SchemaError(f"data must be 2-D, got shape {matrix.shape}")
    cut = int(round(matrix.shape[0] * train_fraction))
    cut = min(max(cut, 1), matrix.shape[0] - 1)
    return matrix[:cut], matrix[cut:]
