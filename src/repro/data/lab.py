"""Synthetic Intel-Lab-style dataset (evaluation Section 6.1).

The paper's Lab dataset is a several-month trace of ~45 motes in the Intel
Research Berkeley lab: per reading it carries expensive sensors (*light*,
*temperature*, *humidity*, cost 100 each) and cheap metadata (*node id*,
*hour of day*, battery *voltage*, cost 1 each).  The trace itself is not
redistributable, so — per the substitution rule in DESIGN.md — this module
generates data with the same schema, costs, and, crucially, the same
*correlation structure* the paper exploits:

- **hour ↔ light** (Figure 1): light is tightly banded near zero at night
  and high, variable, during the day;
- **nodeid ↔ light regime** (Figure 9): motes 1-6 sit in a lab zone unused
  at night (dark outside working hours); higher-numbered motes are in a
  zone occupied into the night, where evening light is unpredictable;
- **hour ↔ temperature**: diurnal cycle plus HVAC that holds daytime
  temperature near a setpoint and lets nights drift cool;
- **hour/temperature ↔ humidity** (Figure 9's discussion): HVAC keeps
  daytime humidity low; nights are more humid;
- **voltage**: slow per-mote battery decay, weakly correlated with time.

Readings are generated on a 2-minute epoch schedule across motes, matching
the paper's collection cadence, then discretized with
:class:`~repro.data.discretize.EqualWidthDiscretizer`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.attributes import Attribute, Schema
from repro.data.discretize import EqualWidthDiscretizer
from repro.exceptions import SchemaError

__all__ = ["LabDataset", "generate_lab_dataset", "LAB_ATTRIBUTES"]

# Schema order and acquisition costs (Section 6: 100 for the physical
# sensors, 1 for metadata).
LAB_ATTRIBUTES: tuple[tuple[str, float], ...] = (
    ("nodeid", 1.0),
    ("hour", 1.0),
    ("voltage", 1.0),
    ("light", 100.0),
    ("temp", 100.0),
    ("humidity", 100.0),
)

_DEFAULT_DOMAINS: Mapping[str, int] = {
    "hour": 24,
    "voltage": 8,
    "light": 12,
    "temp": 12,
    "humidity": 12,
}

_EPOCH_MINUTES = 2.0
# Motes 1..NIGHT_QUIET_ZONE_MAX sit in the zone that empties at night.
NIGHT_QUIET_ZONE_MAX = 6


@dataclass(frozen=True)
class LabDataset:
    """Generated lab trace: discretized data plus raw values and metadata."""

    schema: Schema
    data: np.ndarray
    raw: np.ndarray
    discretizer: EqualWidthDiscretizer
    n_motes: int

    def column(self, name: str) -> np.ndarray:
        """Discretized values of one attribute."""
        return self.data[:, self.schema.index_of(name)]

    def raw_column(self, name: str) -> np.ndarray:
        """Raw (pre-discretization) values of one attribute."""
        return self.raw[:, self.schema.index_of(name)]

    def project(self, names: Sequence[str]) -> tuple[Schema, np.ndarray]:
        """Schema and data restricted to a subset of attributes.

        Handy for the exhaustive-planner experiments, which are only
        feasible over a few attributes at a time.
        """
        indices = [self.schema.index_of(name) for name in names]
        schema = Schema([self.schema[index] for index in indices])
        return schema, self.data[:, indices]


def generate_lab_dataset(
    n_readings: int = 100_000,
    n_motes: int = 45,
    seed: int = 0,
    domain_sizes: Mapping[str, int] | None = None,
) -> LabDataset:
    """Generate an Intel-Lab-like trace.

    Parameters
    ----------
    n_readings:
        Total rows (the paper's trace has 400k; 100k keeps tests fast while
        leaving per-subproblem counts healthy).
    n_motes:
        Fleet size; also the ``nodeid`` domain size.
    seed:
        RNG seed.
    domain_sizes:
        Overrides for the discretized domain sizes (keys from
        ``hour``, ``voltage``, ``light``, ``temp``, ``humidity``).
    """
    if n_readings < 1:
        raise SchemaError(f"n_readings must be >= 1, got {n_readings}")
    if n_motes < 1:
        raise SchemaError(f"n_motes must be >= 1, got {n_motes}")
    domains = dict(_DEFAULT_DOMAINS)
    if domain_sizes:
        domains.update(domain_sizes)

    rng = np.random.default_rng(seed)
    index = np.arange(n_readings)
    mote = (index % n_motes) + 1
    epoch = index // n_motes
    minute_of_day = (epoch * _EPOCH_MINUTES) % (24 * 60)
    hour_float = minute_of_day / 60.0
    day_number = (epoch * _EPOCH_MINUTES) // (24 * 60)
    weekday = (day_number % 7) < 5

    light = _light(rng, hour_float, mote, weekday)
    temp = _temperature(rng, hour_float, mote)
    humidity = _humidity(rng, hour_float, temp)
    voltage = _voltage(rng, epoch, mote, n_motes)

    raw = np.stack(
        [mote.astype(np.float64), hour_float, voltage, light, temp, humidity],
        axis=1,
    )

    sizes = [
        n_motes,
        domains["hour"],
        domains["voltage"],
        domains["light"],
        domains["temp"],
        domains["humidity"],
    ]
    discretizer = EqualWidthDiscretizer(sizes)
    # nodeid and hour have natural integer encodings; fix their spans so the
    # bins align with whole ids / hours instead of the observed min/max.
    discretizer.fit(raw)
    data = discretizer.transform(raw)
    data[:, 0] = mote
    data[:, 1] = np.minimum(np.floor(hour_float * domains["hour"] / 24.0), domains["hour"] - 1).astype(np.int64) + 1

    attributes = [
        Attribute(name, size, cost)
        for (name, cost), size in zip(LAB_ATTRIBUTES, sizes)
    ]
    return LabDataset(
        schema=Schema(attributes),
        data=data,
        raw=raw,
        discretizer=discretizer,
        n_motes=n_motes,
    )


def _daylight(hour: np.ndarray) -> np.ndarray:
    """Normalized outdoor daylight intensity: 0 at night, 1 at solar noon."""
    return np.clip(np.sin(np.pi * (hour - 6.0) / 12.0), 0.0, None)


def _light(
    rng: np.random.Generator,
    hour: np.ndarray,
    mote: np.ndarray,
    weekday: np.ndarray,
) -> np.ndarray:
    """Light in Lux: daylight through windows plus occupancy lighting."""
    n = hour.shape[0]
    daylight = _daylight(hour) * 600.0  # window-filtered sunlight
    quiet_zone = mote <= NIGHT_QUIET_ZONE_MAX

    # Occupancy probability by hour: the quiet zone follows office hours on
    # weekdays only; the other zone is often used into the night.
    office_hours = (hour >= 9.0) & (hour < 18.0)
    evening = (hour >= 18.0) & (hour < 24.0)
    occupancy_probability = np.where(
        quiet_zone,
        np.where(office_hours & weekday, 0.9, 0.02),
        np.where(
            office_hours,
            0.9,
            np.where(evening, 0.5, 0.05),
        ),
    )
    occupied = rng.random(n) < occupancy_probability
    artificial = occupied * rng.normal(420.0, 60.0, n)

    light = daylight + np.clip(artificial, 0.0, None) + rng.normal(5.0, 4.0, n)
    return np.clip(light, 0.0, 1100.0)


def _temperature(
    rng: np.random.Generator, hour: np.ndarray, mote: np.ndarray
) -> np.ndarray:
    """Temperature in Celsius: HVAC-held by day, cool drift at night."""
    n = hour.shape[0]
    hvac_on = (hour >= 7.0) & (hour < 19.0)
    diurnal = 2.5 * np.sin(np.pi * (hour - 10.0) / 12.0)
    baseline = np.where(hvac_on, 21.5 + 0.3 * diurnal, 17.0 + diurnal)
    mote_offset = 0.8 * np.sin(mote.astype(np.float64))  # spatial variation
    return baseline + mote_offset + rng.normal(0.0, 0.7, n)


def _humidity(
    rng: np.random.Generator, hour: np.ndarray, temp: np.ndarray
) -> np.ndarray:
    """Relative humidity: HVAC dries daytime air; nights run humid."""
    n = hour.shape[0]
    hvac_on = (hour >= 7.0) & (hour < 19.0)
    baseline = np.where(hvac_on, 38.0, 52.0)
    coupling = -0.9 * (temp - 20.0)  # warmer air reads drier
    return np.clip(baseline + coupling + rng.normal(0.0, 3.0, n), 5.0, 95.0)


def _voltage(
    rng: np.random.Generator,
    epoch: np.ndarray,
    mote: np.ndarray,
    n_motes: int,
) -> np.ndarray:
    """Battery voltage: per-mote decay from ~3.0 V plus read noise."""
    n = epoch.shape[0]
    horizon = max(float(epoch.max()), 1.0)
    per_mote_rate = 0.25 + 0.15 * (mote.astype(np.float64) / n_motes)
    decay = per_mote_rate * (epoch / horizon)
    return 3.0 - decay + rng.normal(0.0, 0.01, n)
