"""Saving and loading traces, schemas, and plans.

The paper's architecture separates the basestation (plans, statistics)
from the network (execution); a released system needs durable formats for
the artifacts that cross that boundary:

- **schemas** round-trip through JSON (names, domains, costs);
- **traces** (discretized readings) through CSV with a header row, so they
  interoperate with any data tooling;
- **plans** through JSON via :meth:`PlanNode.to_dict` — the payload a real
  deployment would compile into the on-mote byte format modelled by
  ``zeta(P)``.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from repro.core.attributes import Attribute, Schema
from repro.core.plan import PlanNode, plan_from_dict
from repro.exceptions import SchemaError

__all__ = [
    "schema_to_json",
    "schema_from_json",
    "save_schema",
    "load_schema",
    "save_trace",
    "load_trace",
    "save_plan",
    "load_plan",
]


def schema_to_json(schema: Schema) -> str:
    """Serialize a schema to a JSON string."""
    payload = {
        "attributes": [
            {
                "name": attribute.name,
                "domain_size": attribute.domain_size,
                "cost": attribute.cost,
            }
            for attribute in schema
        ]
    }
    return json.dumps(payload, indent=2)


def schema_from_json(text: str) -> Schema:
    """Parse a schema from :func:`schema_to_json` output."""
    try:
        payload = json.loads(text)
        attributes = [
            Attribute(
                name=entry["name"],
                domain_size=int(entry["domain_size"]),
                cost=float(entry.get("cost", 1.0)),
            )
            for entry in payload["attributes"]
        ]
    except (KeyError, TypeError, ValueError, json.JSONDecodeError) as error:
        raise SchemaError(f"malformed schema JSON: {error}") from error
    return Schema(attributes)


def save_schema(schema: Schema, path: str | Path) -> None:
    Path(path).write_text(schema_to_json(schema), encoding="utf-8")


def load_schema(path: str | Path) -> Schema:
    return schema_from_json(Path(path).read_text(encoding="utf-8"))


def save_trace(data: np.ndarray, schema: Schema, path: str | Path) -> None:
    """Write a discretized trace as CSV with attribute-name header."""
    matrix = np.asarray(data)
    if matrix.ndim != 2 or matrix.shape[1] != len(schema):
        raise SchemaError(
            f"trace shape {matrix.shape} incompatible with schema of "
            f"{len(schema)} attributes"
        )
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(schema.names)
        writer.writerows(matrix.tolist())


def load_trace(path: str | Path, schema: Schema) -> np.ndarray:
    """Read a CSV trace, validating the header against the schema."""
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"empty trace file {path}") from None
        if tuple(header) != schema.names:
            raise SchemaError(
                f"trace header {tuple(header)} does not match schema "
                f"{schema.names}"
            )
        rows = [[int(cell) for cell in row] for row in reader if row]
    if not rows:
        raise SchemaError(f"trace file {path} contains no data rows")
    matrix = np.asarray(rows, dtype=np.int64)
    for index, attribute in enumerate(schema):
        column = matrix[:, index]
        if column.min() < 1 or column.max() > attribute.domain_size:
            raise SchemaError(
                f"trace column {attribute.name!r} outside domain "
                f"[1, {attribute.domain_size}]"
            )
    return matrix


def save_plan(plan: PlanNode, path: str | Path) -> None:
    """Write a plan as JSON (the basestation-to-network payload)."""
    Path(path).write_text(
        json.dumps(plan.to_dict(), indent=2), encoding="utf-8"
    )


def load_plan(path: str | Path) -> PlanNode:
    """Read a plan written by :func:`save_plan`."""
    return plan_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))
