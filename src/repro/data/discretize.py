"""Equal-width discretization of real-valued sensor data (Section 4.3).

The planners operate on integer domains ``1 .. K_i``; real-valued sensor
readings must be discretized first.  The paper uses the natural quantization
of the sensors' ADCs; for finer control (and for the SPSF experiments, which
vary the effective resolution) this module provides an equal-width
discretizer that remembers its bin edges so real-valued query ranges can be
translated into bin ranges and bin values mapped back to representative
real values.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DiscretizationError

__all__ = ["EqualWidthDiscretizer"]


class EqualWidthDiscretizer:
    """Per-column equal-width binning onto ``1 .. K`` integer domains.

    Parameters
    ----------
    domain_sizes:
        Number of bins per column.
    """

    def __init__(self, domain_sizes: list[int] | tuple[int, ...]) -> None:
        if not domain_sizes:
            raise DiscretizationError("need at least one column")
        for size in domain_sizes:
            if size < 1:
                raise DiscretizationError(f"domain size must be >= 1, got {size}")
        self._domain_sizes = tuple(int(size) for size in domain_sizes)
        self._lows: np.ndarray | None = None
        self._widths: np.ndarray | None = None

    @property
    def domain_sizes(self) -> tuple[int, ...]:
        return self._domain_sizes

    @property
    def is_fitted(self) -> bool:
        return self._lows is not None

    def fit(self, matrix: np.ndarray) -> "EqualWidthDiscretizer":
        """Learn per-column [min, max] spans from training data."""
        data = np.asarray(matrix, dtype=np.float64)
        if data.ndim != 2 or data.shape[1] != len(self._domain_sizes):
            raise DiscretizationError(
                f"expected shape (*, {len(self._domain_sizes)}), got {data.shape}"
            )
        if data.shape[0] == 0:
            raise DiscretizationError("cannot fit on an empty matrix")
        if not np.isfinite(data).all():
            raise DiscretizationError("training data contains NaN or infinity")
        lows = data.min(axis=0)
        highs = data.max(axis=0)
        spans = highs - lows
        # Degenerate (constant) columns get a unit span so every value maps
        # to bin 1 without dividing by zero.
        spans[spans <= 0.0] = 1.0
        self._lows = lows
        self._widths = spans / np.asarray(self._domain_sizes, dtype=np.float64)
        return self

    def transform(self, matrix: np.ndarray) -> np.ndarray:
        """Map real values to bins ``1 .. K``; out-of-span values clamp."""
        self._require_fitted()
        data = np.asarray(matrix, dtype=np.float64)
        if data.ndim != 2 or data.shape[1] != len(self._domain_sizes):
            raise DiscretizationError(
                f"expected shape (*, {len(self._domain_sizes)}), got {data.shape}"
            )
        bins = np.floor((data - self._lows) / self._widths).astype(np.int64) + 1
        sizes = np.asarray(self._domain_sizes, dtype=np.int64)
        return np.clip(bins, 1, sizes)

    def fit_transform(self, matrix: np.ndarray) -> np.ndarray:
        return self.fit(matrix).transform(matrix)

    def bin_of(self, column: int, value: float) -> int:
        """The bin a single real value falls into."""
        self._require_fitted()
        size = self._domain_sizes[column]
        offset = (value - self._lows[column]) / self._widths[column]
        return int(np.clip(int(np.floor(offset)) + 1, 1, size))

    def bin_range(self, column: int, low: float, high: float) -> tuple[int, int]:
        """Smallest bin interval covering the real interval ``[low, high]``.

        Used to translate a real-valued query predicate into the integer
        range predicate the planners understand.
        """
        if low > high:
            raise DiscretizationError(f"empty interval [{low}, {high}]")
        return self.bin_of(column, low), self.bin_of(column, high)

    def bin_center(self, column: int, bin_value: int) -> float:
        """Representative real value (midpoint) of a bin."""
        self._require_fitted()
        size = self._domain_sizes[column]
        if not 1 <= bin_value <= size:
            raise DiscretizationError(
                f"bin {bin_value} out of domain [1, {size}] for column {column}"
            )
        width = self._widths[column]
        return float(self._lows[column] + (bin_value - 0.5) * width)

    def _require_fitted(self) -> None:
        if self._lows is None or self._widths is None:
            raise DiscretizationError("discretizer has not been fitted")
