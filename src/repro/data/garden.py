"""Synthetic Garden dataset: a forest mote deployment (Section 6.2).

The paper's Garden dataset covers 11 motes in a forest, each reporting
*temperature*, *voltage*, and *humidity*; queries treat the network as one
wide table of ``3 * n_motes + 1`` attributes (3 per mote, plus time), i.e.
16 attributes for Garden-5 and 34 for Garden-11.  Temperature and humidity
cost 100 units; voltage and time cost 1.

The structure the experiments exploit is **cross-mote correlation**: motes
share the forest's micro-climate, so one mote's (cheap-to-infer) state
predicts its neighbours'.  The generator drives all motes from a shared
weather process — a diurnal cycle plus slowly-varying AR(1) weather noise —
with small per-mote canopy offsets, so cross-mote temperature correlations
are strong, exactly the regime in which the paper reports up to 4x gains
over Naive (Figure 11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.attributes import Attribute, Schema
from repro.data.discretize import EqualWidthDiscretizer
from repro.exceptions import SchemaError

__all__ = ["GardenDataset", "generate_garden_dataset"]

_DEFAULT_DOMAINS: Mapping[str, int] = {
    "hour": 24,
    "temp": 10,
    "humidity": 10,
    "voltage": 8,
}

EXPENSIVE_COST = 100.0
CHEAP_COST = 1.0

_EPOCH_MINUTES = 5.0


@dataclass(frozen=True)
class GardenDataset:
    """Generated garden trace; one row per epoch over the whole network."""

    schema: Schema
    data: np.ndarray
    raw: np.ndarray
    discretizer: EqualWidthDiscretizer
    n_motes: int

    def attribute_names(self, kind: str) -> list[str]:
        """Names of one sensor kind across motes (e.g. all temperatures)."""
        return [f"m{mote}_{kind}" for mote in range(1, self.n_motes + 1)]

    def project(self, names: Sequence[str]) -> tuple[Schema, np.ndarray]:
        """Schema and data restricted to a subset of attributes."""
        indices = [self.schema.index_of(name) for name in names]
        schema = Schema([self.schema[index] for index in indices])
        return schema, self.data[:, indices]


def generate_garden_dataset(
    n_motes: int = 11,
    n_epochs: int = 20_000,
    seed: int = 0,
    domain_sizes: Mapping[str, int] | None = None,
) -> GardenDataset:
    """Generate a Garden-style trace with ``3 * n_motes + 1`` attributes.

    Parameters
    ----------
    n_motes:
        Deployment size: 5 reproduces Garden-5, 11 reproduces Garden-11.
    n_epochs:
        Rows to generate — each row is a network-wide snapshot.
    seed:
        RNG seed.
    domain_sizes:
        Overrides for discretized domains (keys ``hour``, ``temp``,
        ``humidity``, ``voltage``).
    """
    if n_motes < 1:
        raise SchemaError(f"n_motes must be >= 1, got {n_motes}")
    if n_epochs < 1:
        raise SchemaError(f"n_epochs must be >= 1, got {n_epochs}")
    domains = dict(_DEFAULT_DOMAINS)
    if domain_sizes:
        domains.update(domain_sizes)

    rng = np.random.default_rng(seed)
    epoch = np.arange(n_epochs)
    hour = (epoch * _EPOCH_MINUTES / 60.0) % 24.0

    # Shared forest micro-climate: diurnal cycle plus AR(1) weather drift.
    diurnal = 6.0 * np.sin(np.pi * (hour - 9.0) / 12.0)
    weather = _ar1(rng, n_epochs, phi=0.995, sigma=0.25, scale=3.0)
    base_temp = 12.0 + diurnal + weather

    moisture = _ar1(rng, n_epochs, phi=0.99, sigma=0.4, scale=6.0)

    columns = [hour]
    names_costs: list[tuple[str, float]] = [("hour", CHEAP_COST)]
    horizon = max(n_epochs - 1, 1)
    for mote in range(1, n_motes + 1):
        canopy = rng.normal(0.0, 1.2)  # fixed per-mote shade offset
        # Sun fleck: each mote sits under a different canopy gap, so direct
        # sun hits it during its own daily window.  This per-mote,
        # time-localized effect is what makes *which* mote's predicate
        # fails depend on the hour — the structure conditional plans
        # exploit beyond a static correlation-aware order.
        fleck_start = rng.uniform(8.0, 15.0)
        fleck_length = rng.uniform(1.5, 4.0)
        fleck_gain = rng.uniform(3.0, 8.0)
        in_fleck = (hour >= fleck_start) & (hour < fleck_start + fleck_length)
        fleck = fleck_gain * in_fleck * rng.uniform(0.7, 1.0, n_epochs)
        temp = base_temp + canopy + fleck + rng.normal(0.0, 0.5, n_epochs)
        humidity = np.clip(
            85.0 - 1.8 * (temp - 12.0) + moisture + rng.normal(0.0, 2.0, n_epochs),
            10.0,
            100.0,
        )
        decay_rate = 0.2 + 0.2 * rng.random()
        voltage = 3.0 - decay_rate * (epoch / horizon) + rng.normal(0.0, 0.01, n_epochs)
        columns.extend([temp, voltage, humidity])
        names_costs.extend(
            [
                (f"m{mote}_temp", EXPENSIVE_COST),
                (f"m{mote}_voltage", CHEAP_COST),
                (f"m{mote}_humidity", EXPENSIVE_COST),
            ]
        )

    raw = np.stack(columns, axis=1)
    sizes = [
        domains["hour"]
        if name == "hour"
        else domains[name.split("_", 1)[1]]
        for name, _cost in names_costs
    ]
    discretizer = EqualWidthDiscretizer(sizes)
    data = discretizer.fit_transform(raw)

    attributes = [
        Attribute(name, size, cost)
        for (name, cost), size in zip(names_costs, sizes)
    ]
    return GardenDataset(
        schema=Schema(attributes),
        data=data,
        raw=raw,
        discretizer=discretizer,
        n_motes=n_motes,
    )


def _ar1(
    rng: np.random.Generator, n: int, phi: float, sigma: float, scale: float
) -> np.ndarray:
    """A stationary AR(1) series scaled to roughly +-``scale``."""
    noise = rng.normal(0.0, sigma, n)
    series = np.empty(n)
    series[0] = noise[0] / np.sqrt(1.0 - phi * phi)
    for step in range(1, n):
        series[step] = phi * series[step - 1] + noise[step]
    deviation = series.std()
    if deviation > 0.0:
        series = series / deviation
    return series * scale
