"""Query workload generators reproducing the Section 6 recipes.

- :func:`lab_queries` (Section 6.1): multi-predicate range queries over the
  lab's expensive sensors; each predicate's width is two standard deviations
  of its attribute and the left endpoint is uniform at random — the paper's
  deliberately challenging ~50 %-selectivity regime.
- :func:`garden_queries` (Section 6.2): identical range (or negated-range)
  predicates over temperature and humidity across *all* motes; the range
  covers ``domain / f`` for a divisor ``f`` drawn from [1.25, 3.25].
- Synthetic queries come from
  :meth:`repro.data.synthetic.SyntheticDataset.query` (all expensive
  attributes equal to 1).
"""

from __future__ import annotations

import numpy as np

from repro.core.attributes import Schema
from repro.core.predicates import NotRangePredicate, RangePredicate
from repro.core.query import ConjunctiveQuery
from repro.data.garden import GardenDataset
from repro.data.lab import LabDataset
from repro.exceptions import QueryError

__all__ = [
    "lab_queries",
    "garden_queries",
    "random_range_query",
    "query_text",
    "zipf_draws",
]

_LAB_EXPENSIVE = ("light", "temp", "humidity")


def lab_queries(
    dataset: LabDataset,
    n_queries: int,
    seed: int = 0,
    width_stds: float = 2.0,
    attributes: tuple[str, ...] = _LAB_EXPENSIVE,
) -> list[ConjunctiveQuery]:
    """Random lab queries: one two-standard-deviation range per sensor.

    Follows Section 6.1: "we select, uniformly and at random, the left
    endpoint of the range of the query; the width of each predicate is
    chosen to be two standard deviations of the attribute which it is
    over."
    """
    if n_queries < 1:
        raise QueryError(f"n_queries must be >= 1, got {n_queries}")
    rng = np.random.default_rng(seed)
    schema = dataset.schema
    queries = []
    for _query_number in range(n_queries):
        predicates = []
        for name in attributes:
            column = dataset.column(name)
            domain = schema[name].domain_size
            width = max(1, int(round(width_stds * float(column.std()))))
            width = min(width, domain - 1)
            left = int(rng.integers(1, domain - width + 1))
            predicates.append(RangePredicate(name, left, left + width))
        queries.append(ConjunctiveQuery(schema, predicates))
    return queries


def garden_queries(
    dataset: GardenDataset,
    n_queries: int,
    seed: int = 0,
    divisor_range: tuple[float, float] = (1.25, 3.25),
    negated: bool = False,
) -> list[ConjunctiveQuery]:
    """Random garden queries: identical predicates replicated across motes.

    Each query carries one temperature range and one humidity range, applied
    to every mote (``2 * n_motes`` predicates).  The range covers
    ``domain_size / f`` values for ``f`` uniform in ``divisor_range``; with
    ``negated=True`` the predicates become ``not(a <= X <= b)`` — the
    paper's second query set.
    """
    if n_queries < 1:
        raise QueryError(f"n_queries must be >= 1, got {n_queries}")
    rng = np.random.default_rng(seed)
    schema = dataset.schema
    predicate_cls = NotRangePredicate if negated else RangePredicate
    queries = []
    for _query_number in range(n_queries):
        predicates = []
        for kind in ("temp", "humidity"):
            names = dataset.attribute_names(kind)
            domain = schema[names[0]].domain_size
            divisor = rng.uniform(*divisor_range)
            width = max(1, int(round(domain / divisor)))
            width = min(width, domain - 1)
            left = int(rng.integers(1, domain - width + 1))
            for name in names:
                predicates.append(predicate_cls(name, left, left + width))
        queries.append(ConjunctiveQuery(schema, predicates))
    return queries


def query_text(
    query: ConjunctiveQuery, select: tuple[str, ...] = ("*",)
) -> str:
    """Render a conjunctive query in the engine's statement language.

    The inverse of :func:`repro.engine.language.parse_query` for the
    range-predicate class — used to feed programmatically-generated
    workloads through the textual serving layer.
    """
    clauses = []
    for predicate in query.predicates:
        clause = f"{predicate.attribute} BETWEEN {predicate.low} AND {predicate.high}"
        if isinstance(predicate, NotRangePredicate):
            clause = f"NOT {clause}"
        clauses.append(clause)
    return f"SELECT {', '.join(select)} WHERE {' AND '.join(clauses)}"


def zipf_draws(
    n_draws: int, n_shapes: int, skew: float = 1.1, seed: int = 0
) -> np.ndarray:
    """Zipf-distributed shape indices: ``P(rank r) ∝ 1 / r**skew``.

    Models the skewed production reality the serving layer exploits — a
    few hot query shapes dominate the request stream.  ``skew=0`` is
    uniform; larger values concentrate mass on the head.
    """
    if n_shapes < 1:
        raise QueryError(f"n_shapes must be >= 1, got {n_shapes}")
    if skew < 0:
        raise QueryError(f"skew must be >= 0, got {skew}")
    weights = 1.0 / np.arange(1, n_shapes + 1, dtype=np.float64) ** skew
    rng = np.random.default_rng(seed)
    return rng.choice(n_shapes, size=n_draws, p=weights / weights.sum())


def random_range_query(
    schema: Schema,
    attributes: list[str],
    seed: int = 0,
    max_width_fraction: float = 0.75,
) -> ConjunctiveQuery:
    """A generic random conjunctive range query (used by tests/examples)."""
    rng = np.random.default_rng(seed)
    predicates = []
    for name in attributes:
        domain = schema[name].domain_size
        width = max(0, int(rng.integers(0, max(1, int(domain * max_width_fraction)))))
        width = min(width, domain - 1)
        left = int(rng.integers(1, domain - width + 1))
        predicates.append(RangePredicate(name, left, left + width))
    return ConjunctiveQuery(schema, predicates)
