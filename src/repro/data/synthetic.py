"""The correlated synthetic generator adapted from Babu et al. (Section 6).

The paper describes the generator precisely: ``n`` binary attributes are
divided into groups of ``Gamma + 1``; any two attributes in the same group
take identical values for ~80 % of tuples while attributes in different
groups are independent, and every attribute's marginal probability of being
1 is approximately ``sel``.  One attribute per group is *cheap* (cost 1);
the rest cost 100 — the cheap attribute is the correlated proxy a
conditional plan can observe to predict its expensive group-mates.

We realize the 80 %-agreement property the way Babu et al. do: with
probability :data:`AGREEMENT` the whole group copies a single Bernoulli(sel)
draw; otherwise every member draws independently.  Two group members then
agree with probability ``0.8 + 0.2 * (sel**2 + (1-sel)**2) >= 80 %``.

Values are stored 1-based (domain ``{1, 2}``; bin 2 means "attribute = 1")
to match the library's discretized-domain convention.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.attributes import Attribute, Schema
from repro.core.predicates import RangePredicate
from repro.core.query import ConjunctiveQuery
from repro.exceptions import SchemaError

__all__ = ["SyntheticDataset", "generate_synthetic_dataset", "AGREEMENT"]

# Fraction of tuples for which a group is perfectly coherent.
AGREEMENT = 0.8

EXPENSIVE_COST = 100.0
CHEAP_COST = 1.0


@dataclass(frozen=True)
class SyntheticDataset:
    """A generated dataset plus its schema and group structure."""

    schema: Schema
    data: np.ndarray
    groups: tuple[tuple[int, ...], ...]
    cheap_indices: tuple[int, ...]
    selectivity: float
    gamma: int

    @property
    def expensive_indices(self) -> tuple[int, ...]:
        cheap = set(self.cheap_indices)
        return tuple(
            index for index in range(len(self.schema)) if index not in cheap
        )

    def query(self) -> ConjunctiveQuery:
        """The paper's synthetic workload: every expensive attribute = 1.

        (= bin 2 in the library's 1-based encoding.)
        """
        predicates = [
            RangePredicate(self.schema[index].name, 2, 2)
            for index in self.expensive_indices
        ]
        return ConjunctiveQuery(self.schema, predicates)


def generate_synthetic_dataset(
    n_attributes: int,
    gamma: int,
    selectivity: float,
    n_rows: int = 20_000,
    seed: int = 0,
) -> SyntheticDataset:
    """Generate the Section 6.3 synthetic dataset.

    Parameters
    ----------
    n_attributes:
        Total attribute count ``n``.
    gamma:
        Correlation factor: groups contain ``gamma + 1`` attributes each
        (a final smaller group absorbs any remainder).
    selectivity:
        Unconditional marginal ``P(attribute = 1)`` (``sel``).
    n_rows:
        Number of tuples to generate.
    seed:
        RNG seed for reproducibility.
    """
    if n_attributes < 1:
        raise SchemaError(f"n_attributes must be >= 1, got {n_attributes}")
    if gamma < 0:
        raise SchemaError(f"gamma must be >= 0, got {gamma}")
    if not 0.0 < selectivity < 1.0:
        raise SchemaError(f"selectivity must be in (0, 1), got {selectivity}")
    if n_rows < 1:
        raise SchemaError(f"n_rows must be >= 1, got {n_rows}")

    rng = np.random.default_rng(seed)
    group_size = gamma + 1
    groups: list[tuple[int, ...]] = []
    start = 0
    while start < n_attributes:
        stop = min(start + group_size, n_attributes)
        groups.append(tuple(range(start, stop)))
        start = stop

    values = np.empty((n_rows, n_attributes), dtype=np.int64)
    for group in groups:
        coherent = rng.random(n_rows) < AGREEMENT
        shared = rng.random(n_rows) < selectivity
        for index in group:
            independent = rng.random(n_rows) < selectivity
            column = np.where(coherent, shared, independent)
            values[:, index] = column.astype(np.int64) + 1  # {0,1} -> {1,2}

    cheap = tuple(group[0] for group in groups)
    cheap_set = set(cheap)
    attributes = [
        Attribute(
            name=f"x{index}",
            domain_size=2,
            cost=CHEAP_COST if index in cheap_set else EXPENSIVE_COST,
        )
        for index in range(n_attributes)
    ]
    return SyntheticDataset(
        schema=Schema(attributes),
        data=values,
        groups=tuple(groups),
        cheap_indices=cheap,
        selectivity=selectivity,
        gamma=gamma,
    )
