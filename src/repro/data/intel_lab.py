"""Loader for the real Intel Lab trace (for users who have it).

The paper's Lab dataset is the well-known Intel Research Berkeley trace.
It is not redistributable with this repository — the bundled
:mod:`repro.data.lab` generator synthesizes a drop-in replacement — but
the original file is publicly archived, and anyone holding a copy can run
every experiment on the real data through this loader.

The published format (``data.txt``, whitespace-separated, one reading per
line)::

    date time epoch moteid temperature humidity light voltage
    2004-02-28 00:59:16.02785 3 1 19.9884 37.0933 45.08 2.69964

:func:`load_intel_lab_trace` parses that format, derives the cheap
``hour`` attribute from the timestamp, filters implausible readings (the
trace contains failing-sensor artifacts), discretizes onto the same
six-attribute schema the synthetic generator uses, and returns a
:class:`~repro.data.lab.LabDataset` — so real and synthetic traces are
interchangeable everywhere in the library and benchmarks.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping

import numpy as np

from repro.core.attributes import Attribute, Schema
from repro.data.discretize import EqualWidthDiscretizer
from repro.data.lab import LAB_ATTRIBUTES, LabDataset
from repro.exceptions import SchemaError

__all__ = ["load_intel_lab_trace", "INTEL_LAB_COLUMNS"]

# Column layout of the published data.txt.
INTEL_LAB_COLUMNS = (
    "date",
    "time",
    "epoch",
    "moteid",
    "temperature",
    "humidity",
    "light",
    "voltage",
)

# Plausibility windows, from the deployment's documented sensor specs;
# readings outside are failing-sensor artifacts and are dropped.
_TEMPERATURE_RANGE = (-10.0, 60.0)
_HUMIDITY_RANGE = (0.0, 100.0)
_LIGHT_RANGE = (0.0, 2000.0)
_VOLTAGE_RANGE = (1.5, 3.5)

_DEFAULT_DOMAINS: Mapping[str, int] = {
    "hour": 24,
    "voltage": 8,
    "light": 12,
    "temp": 12,
    "humidity": 12,
}


def load_intel_lab_trace(
    path: str | Path,
    max_rows: int | None = None,
    max_motes: int = 54,
    domain_sizes: Mapping[str, int] | None = None,
) -> LabDataset:
    """Parse the Intel Lab ``data.txt`` into a :class:`LabDataset`.

    Parameters
    ----------
    path:
        Path to the (decompressed) trace file.
    max_rows:
        Optional cap on parsed readings (the full trace has 2.3M lines).
    max_motes:
        Keep only motes with id ``1..max_motes`` (the deployment had 54;
        ids beyond that are artifacts).
    domain_sizes:
        Discretization overrides, as for
        :func:`repro.data.lab.generate_lab_dataset`.
    """
    trace_path = Path(path)
    if not trace_path.exists():
        raise SchemaError(f"trace file not found: {trace_path}")
    domains = dict(_DEFAULT_DOMAINS)
    if domain_sizes:
        domains.update(domain_sizes)

    rows: list[tuple[float, float, float, float, float, float]] = []
    seen_motes: set[int] = set()
    with open(trace_path, encoding="utf-8") as handle:
        for line in handle:
            parts = line.split()
            if len(parts) != len(INTEL_LAB_COLUMNS):
                continue  # truncated lines occur in the published file
            try:
                hour = _hour_of_day(parts[1])
                mote = int(parts[3])
                temperature = float(parts[4])
                humidity = float(parts[5])
                light = float(parts[6])
                voltage = float(parts[7])
            except ValueError:
                continue
            if not 1 <= mote <= max_motes:
                continue
            if not _TEMPERATURE_RANGE[0] <= temperature <= _TEMPERATURE_RANGE[1]:
                continue
            if not _HUMIDITY_RANGE[0] <= humidity <= _HUMIDITY_RANGE[1]:
                continue
            if not _LIGHT_RANGE[0] <= light <= _LIGHT_RANGE[1]:
                continue
            if not _VOLTAGE_RANGE[0] <= voltage <= _VOLTAGE_RANGE[1]:
                continue
            seen_motes.add(mote)
            rows.append((mote, hour, voltage, light, temperature, humidity))
            if max_rows is not None and len(rows) >= max_rows:
                break
    if not rows:
        raise SchemaError(
            f"no valid readings parsed from {trace_path}; is it the "
            "published Intel Lab data.txt format?"
        )

    raw = np.asarray(rows, dtype=np.float64)
    n_motes = max(seen_motes)
    sizes = [
        n_motes,
        domains["hour"],
        domains["voltage"],
        domains["light"],
        domains["temp"],
        domains["humidity"],
    ]
    discretizer = EqualWidthDiscretizer(sizes)
    discretizer.fit(raw)
    data = discretizer.transform(raw)
    # nodeid and hour have natural integer encodings.
    data[:, 0] = raw[:, 0].astype(np.int64)
    data[:, 1] = (
        np.minimum(
            np.floor(raw[:, 1] * domains["hour"] / 24.0), domains["hour"] - 1
        ).astype(np.int64)
        + 1
    )

    attributes = [
        Attribute(name, size, cost)
        for (name, cost), size in zip(LAB_ATTRIBUTES, sizes)
    ]
    return LabDataset(
        schema=Schema(attributes),
        data=data,
        raw=raw,
        discretizer=discretizer,
        n_motes=n_motes,
    )


def _hour_of_day(time_text: str) -> float:
    """Fractional hour from a ``HH:MM:SS.ffff`` timestamp."""
    pieces = time_text.split(":")
    if len(pieces) != 3:
        raise ValueError(f"malformed time {time_text!r}")
    hours = int(pieces[0])
    minutes = int(pieces[1])
    seconds = float(pieces[2])
    if not (0 <= hours < 24 and 0 <= minutes < 60 and 0.0 <= seconds < 61.0):
        raise ValueError(f"time out of range: {time_text!r}")
    return hours + minutes / 60.0 + seconds / 3600.0
