"""Dataset substrates: generators, discretization, splitting, workloads."""

from repro.data.discretize import EqualWidthDiscretizer
from repro.data.garden import GardenDataset, generate_garden_dataset
from repro.data.intel_lab import load_intel_lab_trace
from repro.data.lab import LabDataset, generate_lab_dataset
from repro.data.split import time_split
from repro.data.synthetic import SyntheticDataset, generate_synthetic_dataset
from repro.data.trace_io import (
    load_plan,
    load_schema,
    load_trace,
    save_plan,
    save_schema,
    save_trace,
    schema_from_json,
    schema_to_json,
)
from repro.data.workload import (
    garden_queries,
    lab_queries,
    query_text,
    random_range_query,
    zipf_draws,
)

__all__ = [
    "EqualWidthDiscretizer",
    "LabDataset",
    "generate_lab_dataset",
    "load_intel_lab_trace",
    "GardenDataset",
    "generate_garden_dataset",
    "SyntheticDataset",
    "generate_synthetic_dataset",
    "time_split",
    "save_schema",
    "load_schema",
    "schema_to_json",
    "schema_from_json",
    "save_trace",
    "load_trace",
    "save_plan",
    "load_plan",
    "lab_queries",
    "garden_queries",
    "random_range_query",
    "query_text",
    "zipf_draws",
]
