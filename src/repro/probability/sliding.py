"""Sliding-window statistics for continuous queries (Section 7).

"Our methods for computing probabilities from a data set in Section 5 can
be modified to compute probabilities incrementally over a sliding window
of data."  :class:`SlidingWindowDistribution` is that modification:

- a fixed-capacity ring buffer holds the most recent tuples;
- per-attribute marginal histograms are maintained **incrementally** —
  O(n) counter updates per append/evict, never a rescan;
- full planner queries (subproblem conditioning, joints) are answered by
  an internal :class:`~repro.probability.empirical.EmpiricalDistribution`
  over the window, rebuilt lazily only when the window changed since the
  last planning pass — matching the usage pattern of periodic replanning;
- :meth:`marginal_shift` quantifies distribution drift between the current
  window and a reference snapshot (total-variation distance averaged over
  attributes), the signal an adaptive executor replans on.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.attributes import Schema
from repro.core.ranges import RangeVector
from repro.exceptions import DistributionError
from repro.probability.base import Distribution, PredicateBinding
from repro.probability.empirical import EmpiricalDistribution

__all__ = ["SlidingWindowDistribution"]


class SlidingWindowDistribution(Distribution):
    """Incrementally-maintained statistics over the last ``capacity`` rows."""

    def __init__(
        self, schema: Schema, capacity: int, smoothing: float = 0.0
    ) -> None:
        super().__init__(schema)
        if capacity < 1:
            raise DistributionError(f"capacity must be >= 1, got {capacity}")
        if smoothing < 0:
            raise DistributionError(f"smoothing must be >= 0, got {smoothing}")
        self._capacity = int(capacity)
        self._smoothing = float(smoothing)
        self._buffer = np.zeros((self._capacity, len(schema)), dtype=np.int64)
        self._next = 0
        self._count = 0
        self._marginal_counts = [
            np.zeros(attribute.domain_size, dtype=np.int64) for attribute in schema
        ]
        self._snapshot: EmpiricalDistribution | None = None

    # ------------------------------------------------------------------
    # Window maintenance
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return self._count

    @property
    def is_full(self) -> bool:
        return self._count == self._capacity

    def append(self, row: Sequence[int]) -> None:
        """Add one tuple, evicting the oldest when at capacity."""
        values = self._schema.validate_tuple(row)
        if self._count == self._capacity:
            evicted = self._buffer[self._next]
            for index in range(len(self._schema)):
                self._marginal_counts[index][evicted[index] - 1] -= 1
        else:
            self._count += 1
        self._buffer[self._next] = values
        for index, value in enumerate(values):
            self._marginal_counts[index][value - 1] += 1
        self._next = (self._next + 1) % self._capacity
        self._snapshot = None

    def extend(self, rows: np.ndarray) -> None:
        """Append many tuples in arrival order."""
        for row in np.asarray(rows):
            self.append(row)

    def window(self) -> np.ndarray:
        """The current window's rows, oldest first."""
        if self._count == 0:
            raise DistributionError("window is empty")
        if self._count < self._capacity:
            return self._buffer[: self._count].copy()
        return np.vstack(
            [self._buffer[self._next :], self._buffer[: self._next]]
        )

    # ------------------------------------------------------------------
    # Incremental marginals and drift
    # ------------------------------------------------------------------

    def marginal_histogram(self, attribute_index: int) -> np.ndarray:
        """Incrementally-maintained marginal pmf of one attribute."""
        if self._count == 0:
            raise DistributionError("window is empty")
        counts = self._marginal_counts[attribute_index].astype(np.float64)
        counts += self._smoothing
        return counts / counts.sum()

    def marginal_snapshot(self) -> list[np.ndarray]:
        """All marginal pmfs — a cheap reference for drift detection."""
        return [
            self.marginal_histogram(index) for index in range(len(self._schema))
        ]

    def marginal_shift(self, reference: list[np.ndarray]) -> float:
        """Mean total-variation distance to a reference snapshot.

        0 means identical marginals, 1 means disjoint support; adaptive
        executors replan when this exceeds a threshold.
        """
        if len(reference) != len(self._schema):
            raise DistributionError(
                f"reference has {len(reference)} histograms for "
                f"{len(self._schema)} attributes"
            )
        distances = []
        for index, expected in enumerate(reference):
            current = self.marginal_histogram(index)
            if expected.shape != current.shape:
                raise DistributionError(
                    f"reference histogram {index} has wrong length"
                )
            distances.append(0.5 * float(np.abs(current - expected).sum()))
        return float(np.mean(distances))

    # ------------------------------------------------------------------
    # Distribution interface (lazy snapshot delegation)
    # ------------------------------------------------------------------

    def _distribution(self) -> EmpiricalDistribution:
        if self._snapshot is None:
            self._snapshot = EmpiricalDistribution(
                self._schema, self.window(), smoothing=self._smoothing
            )
        return self._snapshot

    def range_probability(self, ranges: RangeVector) -> float:
        return self._distribution().range_probability(ranges)

    def attribute_histogram(
        self, attribute_index: int, ranges: RangeVector
    ) -> np.ndarray:
        return self._distribution().attribute_histogram(attribute_index, ranges)

    def conjunction_probability(
        self, bindings: Sequence[PredicateBinding], ranges: RangeVector
    ) -> float:
        return self._distribution().conjunction_probability(bindings, ranges)

    def predicate_joint(
        self, bindings: Sequence[PredicateBinding], ranges: RangeVector
    ) -> np.ndarray:
        return self._distribution().predicate_joint(bindings, ranges)

    def satisfied_given_satisfied(
        self,
        target: PredicateBinding,
        satisfied: Sequence[PredicateBinding],
        ranges: RangeVector,
    ) -> float:
        return self._distribution().satisfied_given_satisfied(
            target, satisfied, ranges
        )

    def sequential_conditioner(self, ranges: RangeVector):
        return self._distribution().sequential_conditioner(ranges)
