"""Attribute-independence probability model — the classical optimizer's
assumption.

Traditional selectivity estimation treats attributes as independent: the
joint is the product of per-attribute marginals.  The paper's Naive
baseline behaves *as if* this model were true; making the model explicit
lets experiments separate two effects that are otherwise conflated:

- how much a planner loses by **ignoring correlations in its statistics**
  (plan any algorithm against :class:`IndependenceDistribution` and cost
  the result against the empirical data), versus
- how much a *sequential* planner loses against a *conditional* one when
  both see the true statistics.

The model fits per-attribute marginal histograms (Laplace-smoothed) and
answers every :class:`~repro.probability.base.Distribution` query by
multiplying marginals.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.attributes import Schema
from repro.core.ranges import RangeVector
from repro.exceptions import DistributionError
from repro.probability.base import Distribution, PredicateBinding

__all__ = ["IndependenceDistribution"]

_MAX_JOINT_PREDICATES = 20


class IndependenceDistribution(Distribution):
    """Product-of-marginals model fit from data."""

    def __init__(
        self, schema: Schema, data: np.ndarray, smoothing: float = 0.5
    ) -> None:
        super().__init__(schema)
        matrix = np.asarray(data)
        if matrix.ndim != 2 or matrix.shape[1] != len(schema):
            raise DistributionError(
                f"data shape {matrix.shape} incompatible with schema of "
                f"{len(schema)} attributes"
            )
        if matrix.shape[0] == 0:
            raise DistributionError("data must contain at least one row")
        if smoothing < 0:
            raise DistributionError(f"smoothing must be >= 0, got {smoothing}")
        self._marginals: list[np.ndarray] = []
        for index, attribute in enumerate(schema):
            counts = np.bincount(
                matrix[:, index] - 1, minlength=attribute.domain_size
            ).astype(np.float64)
            counts += smoothing
            total = counts.sum()
            if total <= 0.0:
                raise DistributionError(
                    f"attribute {attribute.name!r} has no mass; "
                    "use positive smoothing"
                )
            self._marginals.append(counts / total)

    # ------------------------------------------------------------------
    # Distribution interface
    # ------------------------------------------------------------------

    def range_probability(self, ranges: RangeVector) -> float:
        probability = 1.0
        for index in range(len(ranges)):
            interval = ranges[index]
            probability *= float(
                self._marginals[index][interval.low - 1 : interval.high].sum()
            )
        return probability

    def attribute_histogram(
        self, attribute_index: int, ranges: RangeVector
    ) -> np.ndarray:
        interval = ranges[attribute_index]
        window = self._marginals[attribute_index][
            interval.low - 1 : interval.high
        ].copy()
        total = window.sum()
        if total <= 0.0:
            return np.zeros(len(interval), dtype=np.float64)
        return window / total

    def conjunction_probability(
        self, bindings: Sequence[PredicateBinding], ranges: RangeVector
    ) -> float:
        probability = 1.0
        for binding in bindings:
            probability *= self._predicate_probability(binding, ranges)
        return probability

    def predicate_joint(
        self, bindings: Sequence[PredicateBinding], ranges: RangeVector
    ) -> np.ndarray:
        count = len(bindings)
        if count > _MAX_JOINT_PREDICATES:
            raise DistributionError(
                f"joint over {count} predicates would need 2**{count} entries"
            )
        single = [self._predicate_probability(b, ranges) for b in bindings]
        joint = np.ones(1 << count, dtype=np.float64)
        for outcome in range(1 << count):
            for bit, probability in enumerate(single):
                joint[outcome] *= (
                    probability if outcome & (1 << bit) else 1.0 - probability
                )
        return joint

    def satisfied_given_satisfied(
        self,
        target: PredicateBinding,
        satisfied: Sequence[PredicateBinding],
        ranges: RangeVector,
    ) -> float:
        # Independence: conditioning on other predicates changes nothing.
        return self._predicate_probability(target, ranges)

    # ------------------------------------------------------------------

    def _predicate_probability(
        self, binding: PredicateBinding, ranges: RangeVector
    ) -> float:
        """``P(predicate holds | X_i in R_i)`` under the marginal."""
        predicate, index = binding
        interval = ranges[index]
        window = self._marginals[index][interval.low - 1 : interval.high]
        total = float(window.sum())
        if total <= 0.0:
            return 0.0
        mass = 0.0
        for offset, value in enumerate(interval):
            if predicate.satisfied_by(value):
                mass += float(window[offset])
        return mass / total
