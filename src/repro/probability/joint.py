"""Subset-lattice transforms over predicate-outcome joints.

OptSeq's dynamic program (Section 4.1.2) walks the lattice of
*satisfied-predicate sets*: its states are subsets ``S`` of predicates known
to hold, and its transition probabilities are
``P(pred_j holds | all of S hold)``.  Given the joint pmf over outcome
bitmasks produced by :meth:`Distribution.predicate_joint`, every such
conditional is a ratio of *superset sums*:

    P(all of S hold) = sum over outcomes t with t ⊇ S of P(t)

:func:`superset_sums` computes all ``2**m`` sums simultaneously with the
standard sum-over-subsets dynamic program in ``O(m * 2**m)`` — the same
incremental-histogram spirit as Equation 7, lifted to the predicate lattice.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DistributionError

__all__ = ["superset_sums", "conditional_from_superset_sums"]


def superset_sums(joint: np.ndarray) -> np.ndarray:
    """For each bitmask ``S``, the total mass of outcomes ``t ⊇ S``.

    ``joint`` must have length ``2**m`` for some ``m >= 0``.  Entry ``S`` of
    the result is ``sum(joint[t] for t where (t & S) == S)``.
    """
    size = joint.shape[0]
    if size == 0 or size & (size - 1):
        raise DistributionError(
            f"joint length must be a power of two, got {size}"
        )
    sums = joint.astype(np.float64).copy()
    bit = 1
    while bit < size:
        # Indices with this bit clear absorb the mass of their set-bit twin:
        # after processing bit b, sums[S] aggregates outcomes matching S on
        # bits <= b and arbitrary elsewhere.
        clear = (np.arange(size) & bit) == 0
        sums[clear] += sums[~clear]
        bit <<= 1
    return sums


def conditional_from_superset_sums(
    sums: np.ndarray, satisfied: int, predicate_bit: int
) -> float:
    """``P(predicate holds | predicates in ``satisfied`` hold)``.

    ``satisfied`` is the bitmask of predicates known to hold and
    ``predicate_bit`` the single-bit mask of the predicate being tested.
    Returns 0.5 when the conditioning event has zero mass (no training row
    satisfied the whole set): an uninformative prior that keeps the DP
    well-defined in data-starved corners.
    """
    if predicate_bit & satisfied:
        return 1.0
    denominator = float(sums[satisfied])
    if denominator <= 0.0:
        return 0.5
    return float(sums[satisfied | predicate_bit]) / denominator
