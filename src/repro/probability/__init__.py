"""Probability models answering the planners' conditional queries."""

from repro.probability.base import (
    Distribution,
    PredicateBinding,
    SequentialConditioner,
)
from repro.probability.empirical import EmpiricalDistribution
from repro.probability.graphical import ChowLiuDistribution
from repro.probability.independence import IndependenceDistribution
from repro.probability.sliding import SlidingWindowDistribution
from repro.probability.joint import conditional_from_superset_sums, superset_sums

__all__ = [
    "Distribution",
    "PredicateBinding",
    "SequentialConditioner",
    "EmpiricalDistribution",
    "ChowLiuDistribution",
    "IndependenceDistribution",
    "SlidingWindowDistribution",
    "superset_sums",
    "conditional_from_superset_sums",
]
