"""The probability interface consumed by every planner.

Planners need four kinds of quantities (Sections 2.3 and 5):

- the absolute probability of reaching a subproblem, ``P(R_1 .. R_n)`` —
  GreedyPlan's leaf priorities (Figure 7);
- split probabilities ``P(X_i < x | R_1 .. R_n)`` — Equation 5 / Figure 5;
- per-attribute histograms within a subproblem — the incremental range
  probabilities of Equation 7;
- conjunction / joint probabilities over the *rediscretized* predicate
  outcomes ``X'_1 .. X'_m`` — the sequential planners of Section 4.1.

:class:`Distribution` abstracts those so the planners run unchanged against
the empirical dataset model (:mod:`repro.probability.empirical`) or the
Chow–Liu graphical model (:mod:`repro.probability.graphical`, the Section 7
extension).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.core.attributes import Schema
from repro.core.predicates import Predicate
from repro.core.ranges import RangeVector

__all__ = ["Distribution", "PredicateBinding", "SequentialConditioner"]

# A predicate paired with its attribute's schema index — the planners resolve
# indices once via ConjunctiveQuery.attribute_indices and pass bindings down.
PredicateBinding = tuple[Predicate, int]


class Distribution(ABC):
    """Conditional probabilities over a schema's attribute space."""

    def __init__(self, schema: Schema) -> None:
        self._schema = schema

    @property
    def schema(self) -> Schema:
        return self._schema

    @abstractmethod
    def range_probability(self, ranges: RangeVector) -> float:
        """Absolute probability ``P(X_1 in R_1, ..., X_n in R_n)``."""

    @abstractmethod
    def attribute_histogram(self, attribute_index: int, ranges: RangeVector) -> np.ndarray:
        """Conditional pmf of one attribute within a subproblem.

        Returns an array of length ``len(ranges[attribute_index])`` whose
        ``j``-th entry is ``P(X_i = low + j | R_1 .. R_n)``; entries sum to 1
        (or to 0 for an unreachable subproblem when the implementation does
        not smooth).
        """

    def split_probability(
        self, attribute_index: int, split_value: int, ranges: RangeVector
    ) -> float:
        """``P(X_i < split_value | R_1 .. R_n)`` for an interior split point.

        The default implementation accumulates the attribute histogram,
        which is exactly the incremental rule of Equation 7.
        """
        interval = ranges[attribute_index]
        histogram = self.attribute_histogram(attribute_index, ranges)
        total = float(histogram.sum())
        if total <= 0.0:
            # Unreachable subproblem: fall back to a uniform spread so the
            # planners still receive a usable (if uninformative) number.
            return (split_value - interval.low) / len(interval)
        below = float(histogram[: split_value - interval.low].sum())
        return below / total

    @abstractmethod
    def conjunction_probability(
        self, bindings: Sequence[PredicateBinding], ranges: RangeVector
    ) -> float:
        """``P(all predicates satisfied | R_1 .. R_n)``."""

    @abstractmethod
    def predicate_joint(
        self, bindings: Sequence[PredicateBinding], ranges: RangeVector
    ) -> np.ndarray:
        """Joint pmf over predicate-outcome bitmasks within a subproblem.

        Returns an array of length ``2**m`` where entry ``s`` is the
        probability that exactly the predicates whose bit is set in ``s``
        are satisfied (bit ``j`` corresponds to ``bindings[j]``), given the
        subproblem ranges.  This is the rediscretized joint distribution of
        Section 4.1.2 / 5.2.
        """

    def satisfied_given_satisfied(
        self,
        target: PredicateBinding,
        satisfied: Sequence[PredicateBinding],
        ranges: RangeVector,
    ) -> float:
        """``P(target satisfied | satisfied predicates hold, R_1 .. R_n)``.

        The quantity GreedySeq recomputes at every step (Section 4.1.3).
        The default implementation takes a ratio of conjunction
        probabilities; dataset-backed models override it with direct counts.
        """
        denominator = self.conjunction_probability(satisfied, ranges)
        if denominator <= 0.0:
            # No mass on the conditioning event: assume independence and
            # fall back to the target's marginal within the subproblem.
            return self.conjunction_probability([target], ranges)
        numerator = self.conjunction_probability([*satisfied, target], ranges)
        return numerator / denominator

    def sequential_conditioner(self, ranges: RangeVector) -> "SequentialConditioner":
        """An incremental view for walking one predicate order.

        Sequential planning and sequential-plan costing repeatedly ask
        "given the predicates accepted so far, will the next one pass?".
        Naively each such query re-derives the conditioning event from
        scratch; a conditioner carries the event forward step by step, so
        dataset-backed models can shrink a row set instead of re-ANDing
        masks (the incremental spirit of Equation 7 applied to the
        satisfied-predicate prefix).  The default implementation simply
        delegates to :meth:`satisfied_given_satisfied`.
        """
        return SequentialConditioner(self, ranges)


class SequentialConditioner:
    """Incremental conditioning on a growing satisfied-predicate prefix."""

    def __init__(self, distribution: Distribution, ranges: RangeVector) -> None:
        self._distribution = distribution
        self._ranges = ranges
        self._satisfied: list[PredicateBinding] = []

    def pass_probability(self, binding: PredicateBinding) -> float:
        """``P(binding holds | everything conditioned so far holds)``."""
        return self._distribution.satisfied_given_satisfied(
            binding, self._satisfied, self._ranges
        )

    def pass_probabilities(
        self, bindings: Sequence[PredicateBinding]
    ) -> np.ndarray:
        """Vector of :meth:`pass_probability` over many candidates.

        GreedySeq evaluates every remaining predicate at every step;
        dataset-backed conditioners override this with one batched
        column-mean instead of per-predicate queries.
        """
        return np.fromiter(
            (self.pass_probability(binding) for binding in bindings),
            dtype=np.float64,
            count=len(bindings),
        )

    def condition_on(self, binding: PredicateBinding) -> None:
        """Extend the conditioning event: ``binding`` was observed to hold."""
        self._satisfied.append(binding)
