"""Graphical-model probability estimation (the Section 7 extension).

Estimating conditionals directly from data has two failure modes the paper
calls out: each probability costs a pass over the dataset, and after a few
conditioning splits the matching row set shrinks exponentially, so estimates
become high-variance and plans overfit.  The remedy it proposes is a
*probabilistic graphical model* — a compact parametric joint that supports
efficient conditional queries.

:class:`ChowLiuDistribution` implements the classic tree-structured choice:

- **structure**: the maximum-spanning tree of the pairwise mutual-
  information graph (Chow & Liu, 1968) — the best tree-factored
  approximation of the empirical joint;
- **parameters**: Laplace-smoothed edge conditionals ``P(child | parent)``;
- **inference**: exact sum-product message passing.  Every planner query
  reduces to masked partition functions: evidence (subproblem ranges,
  predicate outcomes) enters as per-attribute value masks and one upward
  pass computes the total probability mass consistent with the masks in
  ``O(n * K^2)``.

The model is a drop-in :class:`~repro.probability.base.Distribution`, so
every planner runs against it unchanged — benchmarks compare it with raw
empirical counting under shrinking training data (ablation ``abl2``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.attributes import Schema
from repro.core.ranges import RangeVector
from repro.exceptions import DistributionError
from repro.probability.base import Distribution, PredicateBinding

__all__ = ["ChowLiuDistribution"]

_MAX_JOINT_PREDICATES = 16


class ChowLiuDistribution(Distribution):
    """Tree-structured Bayesian network fit by the Chow–Liu procedure.

    Parameters
    ----------
    schema:
        Table schema.
    data:
        Integer training matrix, values in ``1 .. K_i`` per column.
    smoothing:
        Laplace pseudo-count per cell of each pairwise contingency table
        (must be positive: the model's robustness to sparse data is the
        point of using it).
    """

    def __init__(
        self, schema: Schema, data: np.ndarray, smoothing: float = 0.5
    ) -> None:
        super().__init__(schema)
        matrix = np.asarray(data)
        if matrix.ndim != 2 or matrix.shape[1] != len(schema):
            raise DistributionError(
                f"data shape {matrix.shape} incompatible with schema of "
                f"{len(schema)} attributes"
            )
        if matrix.shape[0] == 0:
            raise DistributionError("data must contain at least one row")
        if smoothing <= 0:
            raise DistributionError(
                f"smoothing must be > 0 for a graphical model, got {smoothing}"
            )
        self._smoothing = float(smoothing)
        self._domains = schema.domain_sizes
        marginals, pairwise = self._count_tables(matrix)
        self._marginals = marginals
        edges = self._mutual_information_edges(marginals, pairwise)
        self._parents, self._order = self._build_tree(edges, len(schema))
        self._conditionals = self._fit_conditionals(pairwise)

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------

    def _count_tables(self, matrix: np.ndarray):
        """Smoothed marginal and pairwise probability tables."""
        n = len(self._schema)
        rows = matrix.shape[0]
        marginals: list[np.ndarray] = []
        for index in range(n):
            counts = np.bincount(
                matrix[:, index] - 1, minlength=self._domains[index]
            ).astype(np.float64)
            counts += self._smoothing
            marginals.append(counts / counts.sum())
        pairwise: dict[tuple[int, int], np.ndarray] = {}
        for a in range(n):
            ka = self._domains[a]
            for b in range(a + 1, n):
                kb = self._domains[b]
                codes = (matrix[:, a] - 1) * kb + (matrix[:, b] - 1)
                counts = np.bincount(codes, minlength=ka * kb).astype(np.float64)
                table = counts.reshape(ka, kb) + self._smoothing
                pairwise[(a, b)] = table / table.sum()
        del rows
        return marginals, pairwise

    def _mutual_information_edges(self, marginals, pairwise):
        """All pairwise MI values, as (weight, a, b) triples."""
        edges = []
        for (a, b), joint in pairwise.items():
            independent = np.outer(marginals[a], marginals[b])
            with np.errstate(divide="ignore", invalid="ignore"):
                ratio = np.where(joint > 0, joint / independent, 1.0)
                information = float(np.sum(joint * np.log(ratio)))
            edges.append((information, a, b))
        return edges

    @staticmethod
    def _build_tree(edges, n: int):
        """Maximum-spanning tree via Kruskal; returns parents and a
        root-first elimination order.

        networkx would do this in two lines, but the model is core library
        (not the optional ``graphical`` extra's plotting/IO helpers), so a
        small union-find keeps the dependency soft.
        """
        parent_set = list(range(n))

        def find(x: int) -> int:
            while parent_set[x] != x:
                parent_set[x] = parent_set[parent_set[x]]
                x = parent_set[x]
            return x

        adjacency: dict[int, list[int]] = {index: [] for index in range(n)}
        for _information, a, b in sorted(edges, reverse=True):
            root_a, root_b = find(a), find(b)
            if root_a != root_b:
                parent_set[root_a] = root_b
                adjacency[a].append(b)
                adjacency[b].append(a)

        # Root the tree at attribute 0 and derive parent pointers by BFS.
        parents = [-1] * n
        order = [0]
        seen = {0}
        queue = [0]
        while queue:
            node = queue.pop()
            for neighbor in adjacency[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    parents[neighbor] = node
                    order.append(neighbor)
                    queue.append(neighbor)
        if len(order) != n:
            # Degenerate single-attribute schemas (or n == 1) reach here
            # trivially; anything else indicates a disconnected MI graph,
            # which Kruskal over the complete graph cannot produce.
            for node in range(n):
                if node not in seen:
                    order.append(node)
                    seen.add(node)
        return parents, order

    def _fit_conditionals(self, pairwise):
        """``P(child | parent)`` tables for every tree edge."""
        conditionals: dict[int, np.ndarray] = {}
        for child, parent in enumerate(self._parents):
            if parent < 0:
                continue
            key = (parent, child) if parent < child else (child, parent)
            joint = pairwise[key]
            if parent > child:
                joint = joint.T  # orient as (parent, child)
            row_sums = joint.sum(axis=1, keepdims=True)
            conditionals[child] = joint / row_sums
        return conditionals

    # ------------------------------------------------------------------
    # Inference: masked partition functions by sum-product
    # ------------------------------------------------------------------

    def _masked_partition(self, masks: Sequence[np.ndarray]) -> float:
        """Total probability mass of assignments consistent with the masks.

        ``masks[i]`` is a float (or bool) vector of length ``K_i``; the
        partition function sums ``prod_i masks[i][x_i] * P(x)`` over all
        assignments, in one leaves-to-root sweep over the tree.
        """
        n = len(self._schema)
        beliefs = [
            np.asarray(masks[index], dtype=np.float64).copy() for index in range(n)
        ]
        # Children first (reverse of the root-first order): fold each
        # child's belief into its parent through the edge conditional.
        for node in reversed(self._order):
            parent = self._parents[node]
            if parent < 0:
                continue
            message = self._conditionals[node] @ beliefs[node]
            beliefs[parent] *= message
        root = self._order[0]
        return float(np.dot(self._marginals[root], beliefs[root]))

    def _range_masks(self, ranges: RangeVector) -> list[np.ndarray]:
        masks = []
        for index in range(len(ranges)):
            mask = np.zeros(self._domains[index], dtype=np.float64)
            interval = ranges[index]
            mask[interval.low - 1 : interval.high] = 1.0
            masks.append(mask)
        return masks

    def _predicate_mask(self, binding: PredicateBinding, satisfied: bool) -> np.ndarray:
        predicate, index = binding
        table = np.fromiter(
            (
                predicate.satisfied_by(value) == satisfied
                for value in range(1, self._domains[index] + 1)
            ),
            dtype=np.float64,
            count=self._domains[index],
        )
        return table

    # ------------------------------------------------------------------
    # Distribution interface
    # ------------------------------------------------------------------

    def range_probability(self, ranges: RangeVector) -> float:
        return self._masked_partition(self._range_masks(ranges))

    def attribute_histogram(
        self, attribute_index: int, ranges: RangeVector
    ) -> np.ndarray:
        masks = self._range_masks(ranges)
        interval = ranges[attribute_index]
        base_mask = masks[attribute_index]
        histogram = np.zeros(len(interval), dtype=np.float64)
        for offset, value in enumerate(interval):
            point = np.zeros_like(base_mask)
            point[value - 1] = 1.0
            masks[attribute_index] = point
            histogram[offset] = self._masked_partition(masks)
        masks[attribute_index] = base_mask
        total = histogram.sum()
        if total <= 0.0:
            return np.zeros(len(interval), dtype=np.float64)
        return histogram / total

    def conjunction_probability(
        self, bindings: Sequence[PredicateBinding], ranges: RangeVector
    ) -> float:
        masks = self._range_masks(ranges)
        denominator = self._masked_partition(masks)
        if denominator <= 0.0:
            return 0.0
        for binding in bindings:
            masks[binding[1]] *= self._predicate_mask(binding, satisfied=True)
        return self._masked_partition(masks) / denominator

    def predicate_joint(
        self, bindings: Sequence[PredicateBinding], ranges: RangeVector
    ) -> np.ndarray:
        count = len(bindings)
        if count > _MAX_JOINT_PREDICATES:
            raise DistributionError(
                f"joint over {count} predicates needs 2**{count} partition "
                "computations; use conditional queries instead"
            )
        base_masks = self._range_masks(ranges)
        denominator = self._masked_partition(base_masks)
        size = 1 << count
        joint = np.zeros(size, dtype=np.float64)
        if denominator <= 0.0:
            return joint
        for outcome in range(size):
            masks = [mask.copy() for mask in base_masks]
            for bit, binding in enumerate(bindings):
                satisfied = bool(outcome & (1 << bit))
                masks[binding[1]] *= self._predicate_mask(binding, satisfied)
            joint[outcome] = self._masked_partition(masks) / denominator
        return joint

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def tree_edges(self) -> list[tuple[str, str]]:
        """The learned dependency edges as (parent, child) name pairs."""
        names = self._schema.names
        return [
            (names[parent], names[child])
            for child, parent in enumerate(self._parents)
            if parent >= 0
        ]
