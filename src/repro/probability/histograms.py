"""Histogram helpers shared by the probability models.

Section 5.1 observes that every probability the planners need within one
subproblem can be read off *per-attribute normalized histograms* of the rows
matching the subproblem, and that range probabilities accumulate
incrementally (Equation 7).  These helpers implement those primitives on
numpy integer matrices.
"""

from __future__ import annotations

import numpy as np

from repro.core.ranges import Range

__all__ = [
    "value_histogram",
    "cumulative_below",
    "range_mass",
]


def value_histogram(values: np.ndarray, interval: Range) -> np.ndarray:
    """Count occurrences of each value of ``interval`` in ``values``.

    ``values`` must already be restricted to the subproblem's rows; values
    outside ``interval`` are ignored (they cannot occur when the caller
    filtered rows correctly, but robustness is cheap).  Returns an integer
    array of length ``len(interval)`` where entry ``j`` counts value
    ``interval.low + j``.
    """
    if values.size == 0:
        return np.zeros(len(interval), dtype=np.int64)
    shifted = values - interval.low
    mask = (shifted >= 0) & (shifted < len(interval))
    return np.bincount(shifted[mask], minlength=len(interval)).astype(np.int64)


def cumulative_below(histogram: np.ndarray) -> np.ndarray:
    """Counts of values strictly below each split point (Equation 7).

    Entry ``j`` is the number of rows with value below ``low + j + 1`` —
    i.e. the numerator of ``P(X < split)`` for ``split = low + j + 1``.
    """
    return np.cumsum(histogram)


def range_mass(histogram: np.ndarray, interval: Range, sub: Range) -> int:
    """Total count of values falling in ``sub`` within ``interval``'s histogram."""
    if not sub.is_subset_of(interval):
        intersection = sub.intersection(interval)
        if intersection is None:
            return 0
        sub = intersection
    start = sub.low - interval.low
    stop = sub.high - interval.low + 1
    return int(histogram[start:stop].sum())
