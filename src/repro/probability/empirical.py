"""Dataset-backed probability estimation (Sections 2.3 and 5).

:class:`EmpiricalDistribution` answers every planner probability query by
counting rows of a historical dataset, using the efficiency devices of
Section 5:

- subproblem row sets are materialized once per :class:`RangeVector` and
  cached (the per-attribute *index* trick of Section 5.1);
- per-attribute histograms within a subproblem are built with a single
  ``bincount`` pass and range probabilities accumulate via their cumulative
  sums (Equation 7);
- per-predicate satisfaction masks over the full dataset are computed once
  and reused across every subproblem (the rediscretized attributes
  ``X'_i`` of Section 4.1.2).

Optional Laplace smoothing guards against the high-variance estimates the
paper warns about once many conditioning predicates have shrunk the matching
row set (Section 7, "Graphical Models" discussion).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.attributes import Schema
from repro.core.predicates import Predicate
from repro.core.ranges import RangeVector
from repro.exceptions import DistributionError
from repro.probability.base import (
    Distribution,
    PredicateBinding,
    SequentialConditioner,
)
from repro.probability.histograms import value_histogram

__all__ = ["EmpiricalDistribution"]

# Joint tables over predicate outcomes are 2**m entries; beyond this many
# predicates callers should use GreedySeq, which never materializes the joint.
_MAX_JOINT_PREDICATES = 20


class EmpiricalDistribution(Distribution):
    """Empirical conditional probabilities over a discretized dataset.

    Parameters
    ----------
    schema:
        Table schema; fixes domains and attribute order.
    data:
        Integer matrix of shape ``(d, n)`` with values in ``1 .. K_i`` per
        column — the historical training data collected at the basestation.
    smoothing:
        Laplace pseudo-count added per outcome when estimating conditional
        probabilities.  ``0.0`` (default) reproduces the paper's raw counting;
        small positive values stabilize estimates in data-starved
        subproblems.
    max_cached_subproblems:
        Bound on the number of row-index sets kept; the cache is cleared
        wholesale when the bound is hit (exhaustive planning on small
        domains generates many subproblems, each cheap to recompute).
    """

    def __init__(
        self,
        schema: Schema,
        data: np.ndarray,
        smoothing: float = 0.0,
        max_cached_subproblems: int = 100_000,
    ) -> None:
        super().__init__(schema)
        matrix = np.asarray(data)
        if matrix.ndim != 2:
            raise DistributionError(
                f"data must be a 2-D matrix, got shape {matrix.shape}"
            )
        if matrix.shape[1] != len(schema):
            raise DistributionError(
                f"data has {matrix.shape[1]} columns but schema has "
                f"{len(schema)} attributes"
            )
        if matrix.shape[0] == 0:
            raise DistributionError("data must contain at least one row")
        if not np.issubdtype(matrix.dtype, np.integer):
            raise DistributionError(
                f"data must be integer-valued (discretize first), "
                f"got dtype {matrix.dtype}"
            )
        for column, attribute in enumerate(schema):
            low = int(matrix[:, column].min())
            high = int(matrix[:, column].max())
            if low < 1 or high > attribute.domain_size:
                raise DistributionError(
                    f"column {attribute.name!r} has values in [{low}, {high}] "
                    f"outside domain [1, {attribute.domain_size}]"
                )
        if smoothing < 0:
            raise DistributionError(f"smoothing must be >= 0, got {smoothing}")
        self._data = np.ascontiguousarray(matrix, dtype=np.int64)
        self._smoothing = float(smoothing)
        self._max_cached = int(max_cached_subproblems)
        self._row_cache: dict[RangeVector, np.ndarray] = {}
        self._predicate_masks: dict[tuple, np.ndarray] = {}
        self._full_rows = np.arange(self._data.shape[0])

    # ------------------------------------------------------------------
    # Row-set management (Section 5.1 indices)
    # ------------------------------------------------------------------

    @property
    def data(self) -> np.ndarray:
        """The underlying training matrix (read-only view)."""
        view = self._data.view()
        view.flags.writeable = False
        return view

    @property
    def row_total(self) -> int:
        return self._data.shape[0]

    @property
    def smoothing(self) -> float:
        return self._smoothing

    def rows_matching(self, ranges: RangeVector) -> np.ndarray:
        """Indices of training rows consistent with every range.

        Results are cached per subproblem; only narrowed attributes are
        tested, so the match cost is ``O(d * #narrowed)``.
        """
        cached = self._row_cache.get(ranges)
        if cached is not None:
            return cached
        mask: np.ndarray | None = None
        for index in range(len(ranges)):
            if not ranges.is_acquired(index):
                continue
            interval = ranges[index]
            column = self._data[:, index]
            column_mask = (column >= interval.low) & (column <= interval.high)
            mask = column_mask if mask is None else (mask & column_mask)
        rows = self._full_rows if mask is None else np.flatnonzero(mask)
        if len(self._row_cache) >= self._max_cached:
            self._row_cache.clear()
        self._row_cache[ranges] = rows
        return rows

    def row_count(self, ranges: RangeVector) -> int:
        """Number of training rows inside a subproblem."""
        return int(self.rows_matching(ranges).size)

    # ------------------------------------------------------------------
    # Distribution interface
    # ------------------------------------------------------------------

    def range_probability(self, ranges: RangeVector) -> float:
        return self.row_count(ranges) / self.row_total

    def attribute_histogram(
        self, attribute_index: int, ranges: RangeVector
    ) -> np.ndarray:
        rows = self.rows_matching(ranges)
        interval = ranges[attribute_index]
        counts = value_histogram(self._data[rows, attribute_index], interval)
        smoothed = counts.astype(np.float64) + self._smoothing
        total = smoothed.sum()
        if total <= 0.0:
            return np.zeros(len(interval), dtype=np.float64)
        return smoothed / total

    def conjunction_probability(
        self, bindings: Sequence[PredicateBinding], ranges: RangeVector
    ) -> float:
        rows = self.rows_matching(ranges)
        denominator = rows.size + 2.0 * self._smoothing
        if denominator <= 0.0:
            return 0.0
        satisfied = self._conjunction_mask(bindings, rows)
        return (float(satisfied.sum()) + self._smoothing) / denominator

    def predicate_joint(
        self, bindings: Sequence[PredicateBinding], ranges: RangeVector
    ) -> np.ndarray:
        if len(bindings) > _MAX_JOINT_PREDICATES:
            raise DistributionError(
                f"joint over {len(bindings)} predicates would need "
                f"2**{len(bindings)} entries; use GreedySeq-style conditional "
                "queries instead"
            )
        rows = self.rows_matching(ranges)
        size = 1 << len(bindings)
        if rows.size == 0:
            return np.zeros(size, dtype=np.float64)
        codes = np.zeros(rows.size, dtype=np.int64)
        for bit, binding in enumerate(bindings):
            codes |= self._satisfaction_mask(binding)[rows].astype(np.int64) << bit
        counts = np.bincount(codes, minlength=size).astype(np.float64)
        if self._smoothing:
            counts += self._smoothing
        return counts / counts.sum()

    def satisfied_given_satisfied(
        self,
        target: PredicateBinding,
        satisfied: Sequence[PredicateBinding],
        ranges: RangeVector,
    ) -> float:
        rows = self.rows_matching(ranges)
        condition = self._conjunction_mask(satisfied, rows)
        denominator = float(condition.sum()) + 2.0 * self._smoothing
        if denominator <= 0.0:
            # Conditioning event unseen in training data: fall back to the
            # target's marginal within the subproblem.
            return self.conjunction_probability([target], ranges)
        hits = condition & self._satisfaction_mask(target)[rows]
        return (float(hits.sum()) + self._smoothing) / denominator

    def sequential_conditioner(
        self, ranges: RangeVector
    ) -> "_RowSetConditioner":
        return _RowSetConditioner(self, ranges)

    # ------------------------------------------------------------------
    # Predicate satisfaction masks (rediscretized attributes X'_i)
    # ------------------------------------------------------------------

    def _satisfaction_mask(self, binding: PredicateBinding) -> np.ndarray:
        """Boolean mask over the full dataset: does the predicate hold?"""
        predicate, index = binding
        key = self._mask_key(predicate, index)
        mask = self._predicate_masks.get(key)
        if mask is None:
            column = self._data[:, index]
            low = getattr(predicate, "low", None)
            high = getattr(predicate, "high", None)
            if low is not None and high is not None:
                inside = (column >= low) & (column <= high)
                mask = inside if predicate.satisfied_by(low) else ~inside
            else:
                # Generic predicate: vectorize via the scalar test per value.
                domain = self._schema[index].domain_size
                table = np.fromiter(
                    (predicate.satisfied_by(value) for value in range(1, domain + 1)),
                    dtype=bool,
                    count=domain,
                )
                mask = table[column - 1]
            self._predicate_masks[key] = mask
        return mask

    def _conjunction_mask(
        self, bindings: Sequence[PredicateBinding], rows: np.ndarray
    ) -> np.ndarray:
        """Mask over ``rows``: do all predicates hold simultaneously?"""
        result = np.ones(rows.size, dtype=bool)
        for binding in bindings:
            result &= self._satisfaction_mask(binding)[rows]
        return result

    @staticmethod
    def _mask_key(predicate: Predicate, index: int) -> tuple:
        return (
            type(predicate).__name__,
            index,
            getattr(predicate, "low", None),
            getattr(predicate, "high", None),
        )

    # ------------------------------------------------------------------
    # Convenience statistics
    # ------------------------------------------------------------------

    def marginal_selectivity(self, binding: PredicateBinding) -> float:
        """Marginal ``P(predicate satisfied)`` over the full dataset.

        This is the only statistic the Naive planner consults
        (Section 4.1.1).
        """
        mask = self._satisfaction_mask(binding)
        denominator = self.row_total + 2.0 * self._smoothing
        return (float(mask.sum()) + self._smoothing) / denominator

    def clear_caches(self) -> None:
        """Drop cached row sets and predicate masks (frees memory)."""
        self._row_cache.clear()
        self._predicate_masks.clear()


class _RowSetConditioner(SequentialConditioner):
    """Incremental conditioning by shrinking a row-index set.

    Each :meth:`condition_on` filters the surviving rows through the new
    predicate's satisfaction mask, so every probability query is one mask
    gather plus a mean — O(rows) instead of re-ANDing the whole prefix.
    This is the hot path of GreedySeq and of Equation 3 costing for
    sequential plans.
    """

    def __init__(self, distribution: EmpiricalDistribution, ranges: RangeVector):
        super().__init__(distribution, ranges)
        self._empirical = distribution
        self._rows = distribution.rows_matching(ranges)
        # Lazily-built satisfaction matrix over the bindings seen so far:
        # row k holds predicate k's outcomes on the *surviving* rows, so
        # condition_on only has to column-filter it.
        self._matrix: np.ndarray | None = None
        self._matrix_index: dict[tuple, int] = {}

    def pass_probability(self, binding: PredicateBinding) -> float:
        smoothing = self._empirical.smoothing
        denominator = self._rows.size + 2.0 * smoothing
        if denominator <= 0.0:
            # Conditioning event unseen: fall back to the subproblem
            # marginal, matching satisfied_given_satisfied's behaviour.
            return self._empirical.conjunction_probability(
                [binding], self._ranges
            )
        hits = self._empirical._satisfaction_mask(binding)[self._rows]
        return (float(hits.sum()) + smoothing) / denominator

    def pass_probabilities(self, bindings) -> np.ndarray:
        smoothing = self._empirical.smoothing
        denominator = self._rows.size + 2.0 * smoothing
        if denominator <= 0.0:
            return super().pass_probabilities(bindings)
        matrix_rows = [self._matrix_row(binding) for binding in bindings]
        sums = self._matrix[matrix_rows].sum(axis=1)
        return (sums + smoothing) / denominator

    def condition_on(self, binding: PredicateBinding) -> None:
        super().condition_on(binding)
        mask = self._empirical._satisfaction_mask(binding)[self._rows]
        self._rows = self._rows[mask]
        if self._matrix is not None:
            self._matrix = self._matrix[:, mask]

    def _matrix_row(self, binding: PredicateBinding) -> int:
        """Index of the binding's outcome row, gathering it on first use."""
        key = self._empirical._mask_key(*binding)
        index = self._matrix_index.get(key)
        if index is None:
            outcomes = self._empirical._satisfaction_mask(binding)[self._rows]
            if self._matrix is None:
                self._matrix = outcomes[None, :]
            else:
                self._matrix = np.vstack([self._matrix, outcomes[None, :]])
            index = self._matrix.shape[0] - 1
            self._matrix_index[key] = index
        return index
