"""Structured JSON-lines tracing for the serving layer.

Every interesting moment in a query's life — parse/plan, verification,
cache hit or miss, execution, replan — becomes one :class:`TraceEvent`:
a flat, JSON-serializable record carrying a span id (grouping all events
of one service call), the query fingerprint, the phase name, a duration
in milliseconds where one applies, and free-form extra fields.

A :class:`Tracer` both buffers recent events in a bounded deque (for
tests and the ``stats()``-style introspection) and, when given a stream,
appends each event as one JSON line the moment it is emitted — the
format ``repro serve-bench --trace-out`` writes and
``docs/OBSERVABILITY.md`` documents.  Timestamps come from the tracer's
*injectable clock* — a zero-argument callable handed to the
constructor, defaulting to wall-clock ``time.time`` — so tests replay
traces deterministically by injecting a fake clock; durations are
measured by callers with a monotonic clock and passed in.  The default
parameter below is the one allowlisted wall-clock site the ``DET002``
lint rule permits (``docs/LINTING.md``).
"""

from __future__ import annotations

import itertools
import json
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, IO, Iterator

__all__ = ["TRACE_PHASES", "TraceEvent", "Tracer"]

# The phase vocabulary emitted by AcquisitionalService.  Tracers accept
# arbitrary phase strings (the schema is open), but these are the ones a
# dashboard can rely on.
TRACE_PHASES = (
    "plan",
    "verify",
    "cache-hit",
    "cache-miss",
    "execute",
    "replan",
)


@dataclass(frozen=True)
class TraceEvent:
    """One structured trace record."""

    ts: float
    span: str
    phase: str
    fingerprint: str = ""
    ms: float | None = None
    fields: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {
            "ts": round(self.ts, 6),
            "span": self.span,
            "phase": self.phase,
        }
        if self.fingerprint:
            record["fingerprint"] = self.fingerprint
        if self.ms is not None:
            record["ms"] = round(self.ms, 3)
        record.update(self.fields)
        return record

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True)


class Tracer:
    """Collects :class:`TraceEvent` records; optionally streams JSON lines.

    ``capacity`` bounds the in-memory buffer (oldest events fall off);
    the output stream, when given, sees *every* event regardless of the
    buffer.  The tracer never closes the stream it was handed.
    ``clock`` supplies event timestamps (seconds); inject a
    deterministic callable to make traces reproducible under test.
    """

    def __init__(
        self,
        stream: IO[str] | None = None,
        capacity: int = 4096,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self._stream = stream
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self._spans = itertools.count(1)
        self._emitted = 0
        self._clock = clock

    def new_span(self) -> str:
        """A fresh span id grouping the events of one service call."""
        return f"s{next(self._spans)}"

    def emit(
        self,
        phase: str,
        *,
        span: str = "",
        fingerprint: str = "",
        ms: float | None = None,
        **fields: Any,
    ) -> TraceEvent:
        event = TraceEvent(
            ts=self._clock(),
            span=span,
            phase=phase,
            fingerprint=fingerprint,
            ms=ms,
            fields=fields,
        )
        self._events.append(event)
        self._emitted += 1
        if self._stream is not None:
            self._stream.write(event.to_json() + "\n")
        return event

    @property
    def events(self) -> tuple[TraceEvent, ...]:
        """The buffered (most recent) events, oldest first."""
        return tuple(self._events)

    @property
    def emitted(self) -> int:
        """Total events emitted over the tracer's lifetime."""
        return self._emitted

    def phases(self) -> Iterator[str]:
        for event in self._events:
            yield event.phase

    def clear(self) -> None:
        self._events.clear()
