"""Structured JSON-lines tracing for the serving and cluster layers.

Every interesting moment in a query's life — parse/plan, verification,
cache hit or miss, execution, replan — becomes one :class:`TraceEvent`:
a flat, JSON-serializable record carrying a span id, the query
fingerprint, the phase name, a duration in milliseconds where one
applies, and free-form extra fields.

Since the sharded tier (PR 6) a request's life spans *processes*, so
events also carry distributed-trace coordinates:

- a **trace id** grouping every event of one front-door request,
- a **parent span id** wiring events into a tree (the front door's
  ``request`` span is the root; each shard's ``shard-execute`` span and
  the service phases underneath it are children),
- and a :class:`TraceContext` — ``(trace_id, parent_span, baggage)`` —
  the picklable capsule those coordinates travel in inside
  :mod:`repro.cluster.messages` wire records.

A :class:`Tracer` both buffers recent events in a bounded deque (for
tests and ``stats()``-style introspection) and, when given a stream,
appends each event as one JSON line the moment it is emitted — the
format ``repro serve-bench --trace-out`` and ``repro serve-sharded
--trace-out`` write and ``docs/OBSERVABILITY.md`` documents.  Tracers
are *named*: span and trace ids are prefixed with the tracer's name
(``shard1-s3``, ``fd-t17``), so ids minted by different processes can
never collide in a merged trace file.  Timestamps and span durations
come from the tracer's *injectable clock* — a zero-argument callable
handed to the constructor, defaulting to wall-clock ``time.time`` — so
tests replay traces byte-identically by injecting a fake clock.  The
default parameter below is the one allowlisted wall-clock site the
``DET002`` lint rule permits (``docs/LINTING.md``).

Concurrency note: the context stack behind :meth:`Tracer.span` assumes
single-owner synchronous use (one shard server, one service call at a
time).  Code that interleaves on an event loop — the front door — must
use :meth:`Tracer.start_span` / :meth:`Span.end` with explicit parents
instead of the context manager.
"""

from __future__ import annotations

import itertools
import json
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import IO, Any, Callable, Iterable, Iterator, Mapping

__all__ = ["TRACE_PHASES", "Span", "TraceContext", "TraceEvent", "Tracer"]

# The phase vocabulary emitted by AcquisitionalService and the sharded
# front door.  Tracers accept arbitrary phase strings (the schema is
# open), but these are the ones a dashboard can rely on.
# One shared encoder for the JSON-lines stream: ``json.dumps`` builds a
# fresh JSONEncoder per call, which is measurable at cluster event rates
# (the overhead benchmark holds distributed tracing to <10% of qps).
# Output bytes are identical to ``json.dumps(..., sort_keys=True)``.
_ENCODE = json.JSONEncoder(sort_keys=True).encode

TRACE_PHASES = (
    # service phases (single-process serving)
    "plan",
    "verify",
    "cache-hit",
    "cache-miss",
    "cache-reject",
    "execute",
    "execute-resilient",
    "replan",
    # distributed span taxonomy (sharded tier); routing and coalesce
    # bookkeeping ride as *fields* on the request root span (shard,
    # inflight, coalesced) rather than as zero-duration child events —
    # per-request emission cost is what the overhead benchmark bounds.
    "request",
    "coalesce-attach",
    "shard-coalesce",
    "shard-execute",
    "reroute",
    "outage-shed",
    "shed",
)


@dataclass(frozen=True)
class TraceContext:
    """The distributed-trace coordinates one request carries on the wire.

    ``baggage`` is a sorted tuple of ``(key, value)`` string pairs —
    immutable and picklable, so the context crosses ``multiprocessing``
    queues unchanged.  The front door stamps ``sent_ts`` baggage at
    dispatch time; the shard turns it into the ``queue_ms`` segment.
    """

    trace_id: str
    parent_span: str = ""
    baggage: tuple[tuple[str, str], ...] = ()

    def __reduce__(
        self,
    ) -> tuple[type["TraceContext"], tuple[object, ...]]:
        # Positional-args pickling: a context rides on every traced wire
        # record, and the dataclass default (__getstate__ dict) costs
        # measurably more per message on the process backend.
        return (TraceContext, (self.trace_id, self.parent_span, self.baggage))

    def child(self, parent_span: str) -> "TraceContext":
        """The same trace, re-parented under ``parent_span``."""
        return replace(self, parent_span=parent_span)

    def with_baggage(self, **items: str) -> "TraceContext":
        merged = dict(self.baggage)
        merged.update(items)
        return replace(self, baggage=tuple(sorted(merged.items())))

    def baggage_value(self, key: str, default: str = "") -> str:
        for name, value in self.baggage:
            if name == key:
                return value
        return default


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One structured trace record.

    ``trace`` and ``parent`` are the distributed-tree coordinates; both
    empty on flat (single-process) events, which keeps the PR 3 format a
    strict subset of the distributed one.
    """

    ts: float
    span: str
    phase: str
    fingerprint: str = ""
    ms: float | None = None
    trace: str = ""
    parent: str = ""
    fields: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {
            "ts": round(self.ts, 6),
            "span": self.span,
            "phase": self.phase,
        }
        if self.trace:
            record["trace"] = self.trace
        if self.parent:
            record["parent"] = self.parent
        if self.fingerprint:
            record["fingerprint"] = self.fingerprint
        if self.ms is not None:
            record["ms"] = round(self.ms, 3)
        record.update(self.fields)
        return record

    def to_json(self) -> str:
        return _ENCODE(self.as_dict())


def _parse_event(data: dict[str, Any]) -> TraceEvent:
    """Rebuild a :class:`TraceEvent` from an ``as_dict`` payload.

    The known keys are popped; whatever remains is the event's free-form
    ``fields`` mapping, so the round trip is lossless.
    """
    return TraceEvent(
        ts=float(data.pop("ts", 0.0)),
        span=str(data.pop("span", "")),
        phase=str(data.pop("phase", "")),
        fingerprint=str(data.pop("fingerprint", "")),
        ms=data.pop("ms", None),
        trace=str(data.pop("trace", "")),
        parent=str(data.pop("parent", "")),
        fields=data,
    )


class Span:
    """An open hierarchical span; :meth:`end` emits its closing event.

    The span's duration is measured on the owning tracer's injectable
    clock, so traces stay byte-reproducible under a fake clock.  A span
    is emitted exactly once — :meth:`end` is idempotent.
    """

    __slots__ = (
        "_tracer",
        "phase",
        "span_id",
        "trace_id",
        "parent_id",
        "fingerprint",
        "fields",
        "_start",
        "_closed",
    )

    def __init__(
        self,
        tracer: "Tracer",
        phase: str,
        span_id: str,
        trace_id: str,
        parent_id: str,
        fingerprint: str,
        fields: dict[str, Any],
        start: float,
    ) -> None:
        self._tracer = tracer
        self.phase = phase
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.fingerprint = fingerprint
        self.fields = fields
        self._start = start
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def context(self) -> TraceContext:
        """A wire context making remote spans children of this span."""
        return TraceContext(trace_id=self.trace_id, parent_span=self.span_id)

    def annotate(self, **fields: Any) -> None:
        """Attach extra fields to the closing event."""
        self.fields.update(fields)

    def end(self, **fields: Any) -> TraceEvent | None:
        """Close the span, emitting one event with its measured duration.

        The closing event is built directly rather than routed through
        :meth:`Tracer.emit` — span coordinates are already explicit, so
        the context-stack check and the keyword re-packing would be pure
        per-request overhead on the cluster's serving path.  One clock
        read supplies both the event timestamp and the duration.
        """
        if self._closed:
            return None
        self._closed = True
        if fields:
            self.fields.update(fields)
        tracer = self._tracer
        now = tracer.now()
        event = TraceEvent(
            ts=now,
            span=self.span_id,
            phase=self.phase,
            fingerprint=self.fingerprint,
            ms=max(0.0, (now - self._start) * 1e3),
            trace=self.trace_id,
            parent=self.parent_id,
            fields=self.fields,
        )
        tracer._record(event)
        return event


class Tracer:
    """Collects :class:`TraceEvent` records; optionally streams JSON lines.

    ``capacity`` bounds the in-memory buffer (oldest events fall off);
    the output stream, when given, sees *every* event regardless of the
    buffer.  The tracer never closes the stream it was handed.
    ``clock`` supplies event timestamps and span durations (seconds);
    inject a deterministic callable to make traces reproducible under
    test.  ``name`` prefixes every minted span/trace id — give each
    shard's tracer a distinct name (``shard0``, ``shard1``, …) so two
    processes can never both emit ``s1``.
    """

    def __init__(
        self,
        stream: IO[str] | None = None,
        capacity: int = 4096,
        clock: Callable[[], float] = time.time,
        name: str = "",
    ) -> None:
        self._stream = stream
        # Ingested JSON lines stay undecoded (`str`) until first access:
        # the front door ingests one line per reply on the serving hot
        # path, while the buffer is only read after the fact.
        self._events: deque[TraceEvent | str] = deque(maxlen=capacity)
        self._lazy = False
        self._spans = itertools.count(1)
        self._traces = itertools.count(1)
        self._emitted = 0
        self._clock = clock
        self._name = str(name)
        self._prefix = f"{self._name}-" if self._name else ""
        # (trace_id, span_id) stack behind the span() context manager;
        # synchronous single-owner use only (see module docstring).
        self._context: list[tuple[str, str]] = []
        self._collectors: list[list[TraceEvent]] = []

    @property
    def name(self) -> str:
        return self._name

    def new_span(self) -> str:
        """A fresh (tracer-name-prefixed) span id."""
        return f"{self._prefix}s{next(self._spans)}"

    def new_trace(self) -> str:
        """A fresh (tracer-name-prefixed) trace id."""
        return f"{self._prefix}t{next(self._traces)}"

    def now(self) -> float:
        """The tracer's clock reading (seconds)."""
        return float(self._clock())

    def emit(
        self,
        phase: str,
        *,
        span: str = "",
        fingerprint: str = "",
        ms: float | None = None,
        trace: str = "",
        parent: str = "",
        **fields: Any,
    ) -> TraceEvent:
        """Record one event.

        When neither ``trace`` nor ``parent`` is given and a
        :meth:`span` context is active, the event inherits the innermost
        open span's coordinates — this is how service-layer events nest
        under the shard's ``shard-execute`` span without the service
        knowing it runs inside a cluster.
        """
        if not trace and not parent and self._context:
            trace, parent = self._context[-1]
        event = TraceEvent(
            ts=self._clock(),
            span=span,
            phase=phase,
            fingerprint=fingerprint,
            ms=ms,
            trace=trace,
            parent=parent,
            fields=fields,
        )
        self._record(event)
        return event

    def start_span(
        self,
        phase: str,
        *,
        trace: str = "",
        parent: str = "",
        fingerprint: str = "",
        **fields: Any,
    ) -> Span:
        """Open a span (no context binding); close it with ``Span.end``.

        Without an explicit ``trace`` (or an active :meth:`span`
        context) a fresh trace id is minted — this is how the front door
        roots one trace per request.
        """
        if not trace and not parent and self._context:
            trace, parent = self._context[-1]
        if not trace:
            trace = self.new_trace()
        # ``fields`` is this call's own kwargs dict — safe to hand to the
        # span without a defensive copy.
        return Span(
            self,
            phase,
            self.new_span(),
            trace,
            parent,
            fingerprint,
            fields,
            self.now(),
        )

    @contextmanager
    def span(
        self,
        phase: str,
        *,
        trace: str = "",
        parent: str = "",
        fingerprint: str = "",
        **fields: Any,
    ) -> Iterator[Span]:
        """Open a span and bind it as the parent of nested emits.

        Synchronous code only: the binding is a plain stack, so
        interleaving open spans across event-loop tasks would corrupt
        parentage (use :meth:`start_span` there).
        """
        handle = self.start_span(
            phase, trace=trace, parent=parent, fingerprint=fingerprint, **fields
        )
        self._context.append((handle.trace_id, handle.span_id))
        try:
            yield handle
        finally:
            self._context.pop()
            handle.end()

    @contextmanager
    def collect(self) -> Iterator[list[TraceEvent]]:
        """Capture every event emitted while the context is open.

        The shard server wraps each traced execution in a collector and
        piggybacks the captured events on the reply — span export
        without sharing the tracer across the process boundary.
        """
        bucket: list[TraceEvent] = []
        self._collectors.append(bucket)
        try:
            yield bucket
        finally:
            self._collectors.remove(bucket)

    def ingest(self, records: Iterable[Mapping[str, Any] | str]) -> int:
        """Replay foreign event records (reply-piggybacked shard spans).

        Records pass through verbatim — timestamps, ids, and fields are
        the emitting tracer's — so the merged stream round-trips
        byte-identically.  A record is either an ``as_dict`` mapping or
        a pre-encoded ``to_json`` line; shards export the latter so the
        encode happens in the worker process and the front door's reply
        path (where every microsecond is serving overhead — see the
        observability overhead benchmark) only writes the line verbatim
        and parses it for the in-memory buffer.  Returns the number of
        records ingested.
        """
        stream = self._stream
        count = 0
        for record in records:
            if isinstance(record, str):
                if stream is not None:
                    stream.write(record + "\n")
                if self._collectors:
                    event = _parse_event(json.loads(record))
                    self._events.append(event)
                    for bucket in self._collectors:
                        bucket.append(event)
                else:
                    # Hot path: defer the decode until the buffer is read.
                    self._events.append(record)
                    self._lazy = True
            else:
                data = dict(record)
                if stream is not None:
                    stream.write(_ENCODE(data) + "\n")
                event = _parse_event(data)
                self._events.append(event)
                for bucket in self._collectors:
                    bucket.append(event)
            self._emitted += 1
            count += 1
        return count

    def _record(self, event: TraceEvent) -> None:
        self._emitted += 1
        for bucket in self._collectors:
            bucket.append(event)
        if self._stream is not None:
            line = event.to_json()
            self._stream.write(line + "\n")
            # Buffer the encoded line rather than the event object:
            # strings are not GC-tracked, so a full buffer of them adds
            # nothing to collector sweeps on the serving path (retained
            # event/dict objects churn through the GC generations and
            # measurably tax cluster throughput).  ``events`` decodes
            # lazily on first read.
            self._events.append(line)
            self._lazy = True
        else:
            self._events.append(event)

    @property
    def events(self) -> tuple[TraceEvent, ...]:
        """The buffered (most recent) events, oldest first."""
        if self._lazy:
            decoded = [
                _parse_event(json.loads(entry))
                if isinstance(entry, str)
                else entry
                for entry in self._events
            ]
            self._events = deque(decoded, maxlen=self._events.maxlen)
            self._lazy = False
        return tuple(
            entry for entry in self._events if isinstance(entry, TraceEvent)
        )

    @property
    def emitted(self) -> int:
        """Total events emitted over the tracer's lifetime."""
        return self._emitted

    def phases(self) -> Iterator[str]:
        for event in self.events:
            yield event.phase

    def clear(self) -> None:
        self._events.clear()
