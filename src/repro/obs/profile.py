"""Per-node plan profiles: the runtime ledger behind ``repro profile``.

A :class:`PlanProfile` accumulates, per plan-tree node, the counts a
postmortem needs: how many tuples visited the node, which way each
condition split sent them, how often each sequential step passed, and
which attributes were actually acquired (and therefore paid for) there.
Nodes are keyed by the verifier's stable path convention
(:mod:`repro.verify.paths`), so a profile row joins directly against
static diagnostics and against the planner's Eq. 3 predictions
(:mod:`repro.obs.drift`).

Collection is pluggable: everything that executes plans — the vectorized
walker (:func:`repro.core.cost.dataset_execution`), the per-tuple
:class:`~repro.execution.executor.PlanExecutor`, the streaming executor,
and the serving layer — takes an optional sink implementing
:class:`~repro.core.cost.ExecutionObserver`.  When the sink is ``None``
(the default) the hot paths skip all bookkeeping, so disabled profiling
costs nothing beyond one ``is not None`` test per node batch; enabled
profiling costs a handful of dictionary updates per node *batch* (not
per tuple), which keeps the overhead bounded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.attributes import Schema
from repro.core.cost import ExecutionObserver
from repro.core.plan import ConditionNode, PlanNode, SequentialNode, VerdictLeaf
from repro.exceptions import PlanError
from repro.verify.paths import ROOT_PATH

__all__ = [
    "StepCounters",
    "NodeCounters",
    "PlanProfile",
    "TeeSink",
    "profiled_evaluate",
]


@dataclass
class StepCounters:
    """Pass/fail tallies for one sequential step."""

    evaluated: int = 0
    passed: int = 0
    acquisitions: int = 0

    @property
    def pass_fraction(self) -> float:
        return self.passed / self.evaluated if self.evaluated else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "evaluated": self.evaluated,
            "passed": self.passed,
            "pass_fraction": round(self.pass_fraction, 6),
            "acquisitions": self.acquisitions,
        }


@dataclass
class NodeCounters:
    """Observed tallies for one plan node.

    ``acquisitions`` maps schema attribute index to the number of tuples
    for which this node was the *first* reader of that attribute on its
    root-to-leaf path — multiplying by the attribute cost recovers the
    node's share of the plan's acquisition bill.
    """

    kind: str = ""
    label: str = ""
    visits: int = 0
    below: int = 0
    above: int = 0
    steps: list[StepCounters] = field(default_factory=list)
    acquisitions: dict[int, int] = field(default_factory=dict)

    @property
    def below_fraction(self) -> float:
        return self.below / self.visits if self.visits else 0.0

    def observed_cost(self, schema: Schema) -> float:
        """Total acquisition cost charged at this node (schema flat costs)."""
        return sum(
            count * schema[index].cost
            for index, count in self.acquisitions.items()
        )

    def step(self, index: int) -> StepCounters:
        while len(self.steps) <= index:
            self.steps.append(StepCounters())
        return self.steps[index]

    def as_dict(self) -> dict[str, Any]:
        report: dict[str, Any] = {
            "kind": self.kind,
            "label": self.label,
            "visits": self.visits,
            "acquisitions": {
                str(index): count
                for index, count in sorted(self.acquisitions.items())
            },
        }
        if self.kind == "condition":
            report["below"] = self.below
            report["above"] = self.above
            report["below_fraction"] = round(self.below_fraction, 6)
        if self.steps:
            report["steps"] = [step.as_dict() for step in self.steps]
        return report


def _node_label(node: PlanNode) -> str:
    if isinstance(node, ConditionNode):
        return f"{node.attribute} < {node.split_value}"
    if isinstance(node, SequentialNode):
        chain = " -> ".join(step.predicate.describe() for step in node.steps)
        return f"seq: {chain}" if chain else "=> T"
    if isinstance(node, VerdictLeaf):
        return f"=> {'T' if node.verdict else 'F'}"
    return type(node).__name__


class PlanProfile:
    """Mutable per-node execution ledger for one plan.

    Implements the :class:`~repro.core.cost.ExecutionObserver` protocol,
    so an instance can be passed directly as the ``observer`` /
    ``profile_sink`` argument of any execution entry point.  Counts
    accumulate across calls until :meth:`reset`; profiles for the same
    plan can be :meth:`merge`-d (e.g. shard-per-thread collection).
    """

    def __init__(self, schema: Schema) -> None:
        self._schema = schema
        self._nodes: dict[str, NodeCounters] = {}
        self._tuples = 0

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def tuples(self) -> int:
        """Tuples that entered the plan root while this profile listened."""
        return self._tuples

    @property
    def nodes(self) -> dict[str, NodeCounters]:
        """Live view of the per-path counters (do not mutate)."""
        return self._nodes

    def counters(self, path: str) -> NodeCounters | None:
        return self._nodes.get(path)

    def _node(self, path: str, node: PlanNode, kind: str) -> NodeCounters:
        record = self._nodes.get(path)
        if record is None:
            record = self._nodes[path] = NodeCounters(
                kind=kind, label=_node_label(node)
            )
        return record

    # ------------------------------------------------------------------
    # ExecutionObserver protocol
    # ------------------------------------------------------------------

    def on_condition(
        self,
        path: str,
        node: ConditionNode,
        visits: int,
        below: int,
        acquired: bool,
    ) -> None:
        record = self._node(path, node, "condition")
        record.visits += visits
        record.below += below
        record.above += visits - below
        if acquired:
            index = node.attribute_index
            record.acquisitions[index] = (
                record.acquisitions.get(index, 0) + visits
            )
        if path == ROOT_PATH:
            self._tuples += visits

    def on_sequential(
        self, path: str, node: SequentialNode, visits: int
    ) -> None:
        record = self._node(path, node, "sequential")
        record.visits += visits
        if path == ROOT_PATH:
            self._tuples += visits

    def on_step(
        self,
        path: str,
        node: SequentialNode,
        step_index: int,
        evaluated: int,
        passed: int,
        acquired: bool,
    ) -> None:
        record = self._node(path, node, "sequential")
        step = record.step(step_index)
        step.evaluated += evaluated
        step.passed += passed
        if acquired:
            step.acquisitions += evaluated
            index = node.steps[step_index].attribute_index
            record.acquisitions[index] = (
                record.acquisitions.get(index, 0) + evaluated
            )

    def on_verdict(self, path: str, node: VerdictLeaf, visits: int) -> None:
        record = self._node(path, node, "verdict")
        record.visits += visits
        if path == ROOT_PATH:
            self._tuples += visits

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    def observed_cost(self) -> float:
        """Total acquisition cost metered across all recorded executions."""
        return sum(
            record.observed_cost(self._schema)
            for record in self._nodes.values()
        )

    def observed_mean_cost(self) -> float:
        """Equation 4 as actually observed: mean WHERE cost per tuple."""
        return self.observed_cost() / self._tuples if self._tuples else 0.0

    def attribute_acquisition_counts(self) -> dict[str, int]:
        """Tuples that acquired each attribute, summed over all nodes."""
        totals = {name: 0 for name in self._schema.names}
        for record in self._nodes.values():
            for index, count in record.acquisitions.items():
                totals[self._schema[index].name] += count
        return totals

    def merge(self, other: "PlanProfile") -> None:
        """Fold another profile of the same plan into this one."""
        self._tuples += other._tuples
        for path, record in other._nodes.items():
            mine = self._nodes.get(path)
            if mine is None:
                mine = self._nodes[path] = NodeCounters(
                    kind=record.kind, label=record.label
                )
            mine.visits += record.visits
            mine.below += record.below
            mine.above += record.above
            for position, step in enumerate(record.steps):
                target = mine.step(position)
                target.evaluated += step.evaluated
                target.passed += step.passed
                target.acquisitions += step.acquisitions
            for index, count in record.acquisitions.items():
                mine.acquisitions[index] = (
                    mine.acquisitions.get(index, 0) + count
                )

    def reset(self) -> None:
        self._nodes.clear()
        self._tuples = 0

    def as_dict(self) -> dict[str, Any]:
        return {
            "tuples": self._tuples,
            "observed_mean_cost": round(self.observed_mean_cost(), 6),
            "nodes": {
                path: record.as_dict()
                for path, record in sorted(self._nodes.items())
            },
        }


class TeeSink:
    """Forward every observer event to several sinks (e.g. a per-plan
    ledger plus a caller-supplied aggregate sink)."""

    __slots__ = ("_sinks",)

    def __init__(self, *sinks: ExecutionObserver) -> None:
        self._sinks = tuple(sinks)

    def on_condition(
        self,
        path: str,
        node: ConditionNode,
        visits: int,
        below: int,
        acquired: bool,
    ) -> None:
        for sink in self._sinks:
            sink.on_condition(path, node, visits, below, acquired)

    def on_sequential(
        self, path: str, node: SequentialNode, visits: int
    ) -> None:
        for sink in self._sinks:
            sink.on_sequential(path, node, visits)

    def on_step(
        self,
        path: str,
        node: SequentialNode,
        step_index: int,
        evaluated: int,
        passed: int,
        acquired: bool,
    ) -> None:
        for sink in self._sinks:
            sink.on_step(path, node, step_index, evaluated, passed, acquired)

    def on_verdict(self, path: str, node: VerdictLeaf, visits: int) -> None:
        for sink in self._sinks:
            sink.on_verdict(path, node, visits)


def profiled_evaluate(
    plan: PlanNode, values: Sequence[int], sink: ExecutionObserver
) -> bool:
    """Per-tuple plan evaluation that feeds ``sink`` node-by-node.

    Mirrors :meth:`repro.core.plan.PlanNode.evaluate` — same traversal,
    same first-read-per-tuple acquisition semantics — while emitting the
    same event stream the vectorized walker produces with batch size 1.
    ``values`` may be any indexable (including the executor's metered
    acquisition-source view).
    """
    acquired: set[int] = set()

    def walk(node: PlanNode, path: str) -> bool:
        if isinstance(node, ConditionNode):
            index = node.attribute_index
            newly = index not in acquired
            acquired.add(index)
            below = values[index] < node.split_value
            sink.on_condition(path, node, 1, 1 if below else 0, newly)
            if below:
                return walk(node.below, path + "/below")
            return walk(node.above, path + "/above")
        if isinstance(node, SequentialNode):
            sink.on_sequential(path, node, 1)
            for position, step in enumerate(node.steps):
                index = step.attribute_index
                newly = index not in acquired
                acquired.add(index)
                passed = step.predicate.satisfied_by(values[index])
                sink.on_step(path, node, position, 1, 1 if passed else 0, newly)
                if not passed:
                    return False
            return True
        if isinstance(node, VerdictLeaf):
            sink.on_verdict(path, node, 1)
            return node.verdict
        raise PlanError(f"unknown plan node type {type(node).__name__}")

    return walk(plan, ROOT_PATH)
