"""EXPLAIN-ANALYZE-style profile reports: the body of ``repro profile``.

Combines three sources into one annotated plan tree:

- the plan structure itself;
- the planner's per-node Eq. 3 predictions
  (:func:`repro.obs.drift.predict_plan`);
- a :class:`~repro.obs.profile.PlanProfile` of what actually happened.

Every line shows predicted-vs-observed side by side — reach and split
probabilities, step pass fractions, per-node cost per root tuple — and
cells whose chi-square drift term exceeds the monitor's threshold are
flagged ``<< DRIFT``.
"""

from __future__ import annotations

from typing import Any

from repro.core.plan import (
    ConditionNode,
    PlanNode,
    SequentialNode,
    VerdictLeaf,
)
from repro.exceptions import PlanError
from repro.obs.drift import DriftMonitor, NodePrediction
from repro.obs.profile import NodeCounters, PlanProfile
from repro.probability.base import Distribution
from repro.verify.paths import ROOT_PATH, step_path

__all__ = ["render_profile_report", "profile_report_dict"]


def _fraction(numerator: int, denominator: int) -> float | None:
    return numerator / denominator if denominator else None


def _fmt(value: float | None, digits: int = 3) -> str:
    return "-" if value is None else f"{value:.{digits}f}"


class _ReportBuilder:
    def __init__(
        self,
        plan: PlanNode,
        distribution: Distribution,
        profile: PlanProfile,
        monitor: DriftMonitor,
    ) -> None:
        self.plan = plan
        self.profile = profile
        self.monitor = monitor
        self.predictions = monitor.predictions
        self.schema = distribution.schema
        self.tuples = profile.tuples
        self.drift_terms = {
            cell.path: cell.term for cell in monitor.cell_drifts(profile)
        }
        self.report = monitor.assess(profile)

    def flag(self, path: str) -> str:
        term = self.drift_terms.get(path)
        if term is not None and term > self.monitor.threshold:
            return f"  << DRIFT (term {term:.1f})"
        return ""

    def counters(self, path: str) -> NodeCounters | None:
        return self.profile.counters(path)

    def prediction(self, path: str) -> NodePrediction | None:
        return self.predictions.get(path)

    def observed_reach(self, path: str) -> float | None:
        counters = self.counters(path)
        if counters is None:
            return 0.0 if self.tuples else None
        return _fraction(counters.visits, self.tuples)

    def node_costs(self, path: str) -> tuple[float | None, float | None]:
        """(predicted, observed) cost per root tuple at this node."""
        prediction = self.prediction(path)
        predicted = prediction.cost if prediction is not None else None
        counters = self.counters(path)
        if counters is None:
            observed = 0.0 if self.tuples else None
        else:
            observed = (
                counters.observed_cost(self.schema) / self.tuples
                if self.tuples
                else None
            )
        return predicted, observed

    # ------------------------------------------------------------------

    def header_lines(self) -> list[str]:
        report = self.report
        lines = [
            f"tuples profiled: {self.tuples}",
            (
                f"cost/tuple: predicted {report.predicted_cost:.3f} (Eq. 3)  "
                f"observed {report.observed_cost:.3f}  "
                f"ratio {_fmt(None if report.cost_ratio == float('inf') else report.cost_ratio, 3)}"
                + ("x" if report.cost_ratio != float("inf") else " (inf)")
            ),
            (
                f"drift score: {report.normalized:.2f} over {report.cells} "
                f"cells (threshold {self.monitor.threshold:g}) -> "
                + ("DRIFTED" if report.drifted else "ok")
            ),
        ]
        return lines

    def tree_lines(self) -> list[str]:
        lines: list[str] = []
        self._walk(self.plan, ROOT_PATH, "", lines)
        return lines

    def _walk(
        self, node: PlanNode, path: str, indent: str, lines: list[str]
    ) -> None:
        prediction = self.prediction(path)
        counters = self.counters(path)
        reach_pred = prediction.reach if prediction is not None else None
        reach_obs = self.observed_reach(path)
        visits = counters.visits if counters is not None else 0
        if isinstance(node, ConditionNode):
            p_pred = prediction.p_below if prediction is not None else None
            p_obs = (
                _fraction(counters.below, counters.visits)
                if counters is not None
                else None
            )
            cost_pred, cost_obs = self.node_costs(path)
            lines.append(
                f"{indent}if {node.attribute} < {node.split_value}:  "
                f"[n={visits}  p_below pred={_fmt(p_pred)} obs={_fmt(p_obs)}  "
                f"cost/t pred={_fmt(cost_pred)} obs={_fmt(cost_obs)}]"
                + self.flag(path)
            )
            self._walk(node.below, path + "/below", indent + "    ", lines)
            lines.append(
                f"{indent}else ({node.attribute} >= {node.split_value}):"
            )
            self._walk(node.above, path + "/above", indent + "    ", lines)
            return
        if isinstance(node, SequentialNode):
            if not node.steps:
                lines.append(
                    f"{indent}=> T  [n={visits}  reach pred={_fmt(reach_pred)} "
                    f"obs={_fmt(reach_obs)}]"
                )
                return
            cost_pred, cost_obs = self.node_costs(path)
            lines.append(
                f"{indent}seq  [n={visits}  reach pred={_fmt(reach_pred)} "
                f"obs={_fmt(reach_obs)}  cost/t pred={_fmt(cost_pred)} "
                f"obs={_fmt(cost_obs)}]"
            )
            for position, step in enumerate(node.steps):
                pass_pred = (
                    prediction.step_pass[position]
                    if prediction is not None
                    and position < len(prediction.step_pass)
                    else None
                )
                if counters is not None and position < len(counters.steps):
                    tallies = counters.steps[position]
                    evaluated = tallies.evaluated
                    pass_obs = (
                        _fraction(tallies.passed, tallies.evaluated)
                    )
                else:
                    evaluated = 0
                    pass_obs = None
                lines.append(
                    f"{indent}    {step.predicate.describe()}  "
                    f"[n={evaluated}  pass pred={_fmt(pass_pred)} "
                    f"obs={_fmt(pass_obs)}]" + self.flag(step_path(path, position))
                )
            return
        if isinstance(node, VerdictLeaf):
            verdict = "T" if node.verdict else "F"
            lines.append(
                f"{indent}=> {verdict}  [n={visits}  "
                f"reach pred={_fmt(reach_pred)} obs={_fmt(reach_obs)}]"
            )
            return
        raise PlanError(f"unknown plan node type {type(node).__name__}")


def render_profile_report(
    plan: PlanNode,
    distribution: Distribution,
    profile: PlanProfile,
    *,
    expected: float | None = None,
    monitor: DriftMonitor | None = None,
) -> str:
    """Annotated predicted-vs-observed plan tree as display text."""
    if monitor is None:
        monitor = DriftMonitor(plan, distribution, expected=expected)
    builder = _ReportBuilder(plan, distribution, profile, monitor)
    return "\n".join(builder.header_lines() + [""] + builder.tree_lines())


def profile_report_dict(
    plan: PlanNode,
    distribution: Distribution,
    profile: PlanProfile,
    *,
    expected: float | None = None,
    monitor: DriftMonitor | None = None,
) -> dict[str, Any]:
    """JSON-friendly variant of :func:`render_profile_report`."""
    if monitor is None:
        monitor = DriftMonitor(plan, distribution, expected=expected)
    builder = _ReportBuilder(plan, distribution, profile, monitor)
    nodes: dict[str, Any] = {}
    for path, prediction in monitor.predictions.items():
        counters = profile.counters(path)
        cost_pred, cost_obs = builder.node_costs(path)
        entry: dict[str, Any] = {
            "reach_predicted": round(prediction.reach, 6),
            "reach_observed": builder.observed_reach(path),
            "cost_predicted": (
                round(cost_pred, 6) if cost_pred is not None else None
            ),
            "cost_observed": (
                round(cost_obs, 6) if cost_obs is not None else None
            ),
        }
        if prediction.p_below is not None:
            entry["p_below_predicted"] = round(prediction.p_below, 6)
            entry["p_below_observed"] = (
                _fraction(counters.below, counters.visits)
                if counters is not None
                else None
            )
        if prediction.step_pass:
            entry["step_pass_predicted"] = [
                round(value, 6) for value in prediction.step_pass
            ]
            entry["step_pass_observed"] = [
                (
                    _fraction(tallies.passed, tallies.evaluated)
                    if counters is not None
                    else None
                )
                for tallies in (counters.steps if counters is not None else [])
            ]
        if counters is not None:
            entry["observed"] = counters.as_dict()
        nodes[path] = entry
    return {
        "drift": builder.report.as_dict(),
        "tuples": profile.tuples,
        "nodes": nodes,
    }
