"""SLO tracking: latency/error budgets with burn-rate counters.

An :class:`SLOPolicy` states the promises the serving tier makes —
"``latency_objective`` of requests answer within ``latency_target_ms``"
and "``error_objective`` of requests succeed".  An :class:`SLOTracker`
feeds per-request outcomes into a
:class:`~repro.service.metrics.MetricsRegistry` (cumulative counters,
refreshing burn-rate gauges on snapshot) so SLO state travels through
the same snapshot/merge/Prometheus machinery as every other metric.

Burn rate is the classic SRE ratio: the observed bad fraction divided
by the budgeted bad fraction (``1 - objective``).  1.0 means the error
budget is being consumed exactly at the sustainable rate; above 1.0 the
budget runs out before the window does.  Counters are cumulative over
the tracker's life (one serving run) and no wall clock is involved —
this module is on the lint's deterministic path, and snapshots must be
reproducible given the same request outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.exceptions import ServiceError

if TYPE_CHECKING:
    from repro.service.metrics import MetricsRegistry

__all__ = ["SLOPolicy", "SLOTracker"]


def _burn_rate(bad: float, total: float, budget: float) -> float:
    """Observed bad fraction over budgeted bad fraction (0 when idle)."""
    if total <= 0:
        return 0.0
    return round((bad / total) / budget, 4)


def _budget_remaining(bad: float, total: float, budget: float) -> float:
    """Fraction of the allowance still unspent (negative = blown)."""
    if total <= 0:
        return 1.0
    allowed = budget * total
    return round(1.0 - bad / allowed, 4)


@dataclass(frozen=True)
class SLOPolicy:
    """The serving tier's promises, as fractions of requests."""

    latency_target_ms: float = 250.0
    latency_objective: float = 0.99
    error_objective: float = 0.999

    def __post_init__(self) -> None:
        if self.latency_target_ms <= 0:
            raise ServiceError(
                f"latency_target_ms must be positive, "
                f"got {self.latency_target_ms}"
            )
        for name, value in (
            ("latency_objective", self.latency_objective),
            ("error_objective", self.error_objective),
        ):
            if not 0.0 < value < 1.0:
                raise ServiceError(
                    f"{name} must be strictly between 0 and 1, got {value}"
                )

    @property
    def latency_allowance(self) -> float:
        """Allowed fraction of slow requests (``1 - objective``)."""
        return 1.0 - self.latency_objective

    @property
    def error_allowance(self) -> float:
        """Allowed fraction of failed requests (``1 - objective``)."""
        return 1.0 - self.error_objective


class SLOTracker:
    """Feed request outcomes in; read burn rates out of the registry.

    ``record`` is O(1) counter work on the hot path; ``snapshot`` does
    the divisions and refreshes the ``slo_latency_burn_rate`` /
    ``slo_error_burn_rate`` gauges so Prometheus exposition shows them
    without a separate scrape path.  Shed requests count against the
    error objective (the client did not get an answer) under the
    ``shed`` outcome label, keeping honest degradation distinguishable
    from hard failures.
    """

    def __init__(
        self,
        registry: "MetricsRegistry",
        policy: SLOPolicy | None = None,
    ) -> None:
        self._registry = registry
        self.policy = policy if policy is not None else SLOPolicy()

    def record(
        self, latency_ms: float, ok: bool, shed: bool = False
    ) -> None:
        """Account one answered request against both objectives."""
        self._registry.counter("slo_requests").increment()
        if latency_ms > self.policy.latency_target_ms:
            self._registry.counter("slo_latency_violations").increment()
        if not ok:
            self._registry.counter("slo_errors").increment()
            outcome = "shed" if shed else "error"
            self._registry.labeled_counter(
                "slo_bad_outcomes", "outcome"
            ).labels(outcome=outcome).increment()

    def snapshot(self) -> dict[str, Any]:
        """Point-in-time SLO state; refreshes the burn-rate gauges."""
        requests = self._registry.counter("slo_requests").value
        slow = self._registry.counter("slo_latency_violations").value
        errors = self._registry.counter("slo_errors").value
        latency_burn = _burn_rate(
            slow, requests, self.policy.latency_allowance
        )
        error_burn = _burn_rate(errors, requests, self.policy.error_allowance)
        self._registry.gauge("slo_latency_burn_rate").set(latency_burn)
        self._registry.gauge("slo_error_burn_rate").set(error_burn)
        return {
            "requests": requests,
            "latency": {
                "target_ms": self.policy.latency_target_ms,
                "objective": self.policy.latency_objective,
                "violations": slow,
                "burn_rate": latency_burn,
                "budget_remaining": _budget_remaining(
                    slow, requests, self.policy.latency_allowance
                ),
            },
            "errors": {
                "objective": self.policy.error_objective,
                "violations": errors,
                "burn_rate": error_burn,
                "budget_remaining": _budget_remaining(
                    errors, requests, self.policy.error_allowance
                ),
            },
        }
