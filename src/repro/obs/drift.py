"""Predicted-vs-observed cost-drift accounting.

The planner optimizes Equation 3 — an expectation under the statistics it
was trained on.  When the live tuple distribution moves, the first
symptoms are per-node: a split that was supposed to send 80% of tuples
down the cheap branch starts sending 40%, a sequential step that used to
kill most tuples stops killing them.  This module turns a
:class:`~repro.obs.profile.PlanProfile` into exactly that comparison:

- :func:`predict_plan` decomposes the Eq. 3 expected cost into per-node
  predictions (reach probability, split probability, per-step pass
  probability, and the node's expected cost contribution) keyed by the
  verifier's node paths.  The per-node cost contributions sum to
  ``expected_cost(plan, distribution)`` — the decomposition is exact.
- :class:`DriftMonitor` scores the divergence between those predictions
  and a profile's observed frequencies with a chi-square-style statistic,
  and reports the observed-vs-predicted cost ratio.

The drift score: every decision cell (a split's below-fraction, a step's
pass-fraction) with at least ``min_visits`` observations contributes
``n * (obs - p)^2 / (p * (1 - p))`` where ``p`` is the predicted
probability clamped to ``[1e-3, 1 - 1e-3]`` — the one-cell chi-square
statistic for a binomial proportion.  Under no drift each term has
expectation ~1, so the *normalized* score (total / number of cells) sits
near 1; the default trigger threshold of 25 corresponds to a wildly
unlikely deviation and is deliberately conservative, since a replan costs
real planning work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.cost import cost_decomposition, expected_cost
from repro.core.plan import PlanNode
from repro.exceptions import PlanError
from repro.obs.profile import PlanProfile
from repro.probability.base import Distribution
from repro.verify.paths import step_path

__all__ = [
    "NodePrediction",
    "predict_plan",
    "CellDrift",
    "DriftReport",
    "DriftMonitor",
    "PROBABILITY_CLAMP",
    "DEFAULT_DRIFT_THRESHOLD",
]

PROBABILITY_CLAMP = 1e-3
DEFAULT_DRIFT_THRESHOLD = 25.0


@dataclass(frozen=True)
class NodePrediction:
    """What the planner's model expects of one plan node.

    ``reach`` is the probability a tuple entering the root reaches this
    node; ``cost`` is the node's expected acquisition-cost contribution
    per root tuple (so all nodes' costs sum to the plan's Eq. 3 cost).
    ``p_below`` is the split probability for condition nodes; for
    sequential nodes ``step_pass[i]`` is the conditional pass probability
    of step ``i`` given all earlier steps passed, and ``step_cost[i]``
    its share of ``cost``.
    """

    reach: float
    cost: float
    p_below: float | None = None
    step_pass: tuple[float, ...] = ()
    step_cost: tuple[float, ...] = ()


def predict_plan(
    plan: PlanNode, distribution: Distribution
) -> dict[str, NodePrediction]:
    """Per-node Eq. 3 decomposition of a plan under ``distribution``.

    A thin adapter over the shared
    :func:`repro.core.cost.cost_decomposition` helper (the same ledger
    the verifier's cost-conservation rules consume).  Returns
    predictions keyed by the verifier's node paths.  Subtrees with zero
    reach probability are recorded with zero reach/cost and no
    probability predictions (the model has nothing to say about them —
    but the *parent's* split probability still flags tuples arriving
    there as drift).  Raises :class:`~repro.exceptions.PlanError` for
    plans whose reachable nodes are structurally broken (infeasible
    splits, out-of-range indices).
    """
    predictions: dict[str, NodePrediction] = {}
    for path, record in cost_decomposition(plan, distribution).items():
        if not record.feasible and record.reach > 0.0:
            raise PlanError(record.detail)
        if record.kind == "sequential":
            predictions[path] = NodePrediction(
                reach=record.reach,
                cost=record.cost,
                step_pass=record.step_passes,
                step_cost=record.step_costs,
            )
        elif record.kind == "condition" and record.reach > 0.0:
            predictions[path] = NodePrediction(
                reach=record.reach,
                cost=record.cost,
                p_below=record.probability_below,
            )
        else:
            predictions[path] = NodePrediction(reach=record.reach, cost=record.cost)
    return predictions


@dataclass(frozen=True)
class CellDrift:
    """One decision cell's predicted-vs-observed divergence.

    ``kind`` is ``"split"`` (a condition's below-fraction) or ``"step"``
    (a sequential step's pass-fraction); ``term`` is the cell's
    chi-square contribution ``n * (obs - p)^2 / (p * (1 - p))``.
    """

    path: str
    kind: str
    predicted: float
    observed: float
    samples: int
    term: float

    def as_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "kind": self.kind,
            "predicted": round(self.predicted, 6),
            "observed": round(self.observed, 6),
            "samples": self.samples,
            "term": round(self.term, 4),
        }


@dataclass(frozen=True)
class DriftReport:
    """Outcome of one :meth:`DriftMonitor.assess` call."""

    score: float
    cells: int
    normalized: float
    predicted_cost: float
    observed_cost: float
    cost_ratio: float
    tuples: int
    drifted: bool
    worst: tuple[CellDrift, ...] = field(default=())
    debounced: bool = False

    def describe(self) -> str:
        if self.debounced:
            status = "debounced (already fired)"
        else:
            status = "DRIFTED" if self.drifted else "ok"
        return (
            f"drift {status}: score {self.normalized:.2f} over {self.cells} "
            f"cells ({self.tuples} tuples); cost/tuple predicted "
            f"{self.predicted_cost:.2f} observed {self.observed_cost:.2f} "
            f"({self.cost_ratio:.2f}x)"
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "score": round(self.score, 4),
            "cells": self.cells,
            "normalized": round(self.normalized, 4),
            "predicted_cost": round(self.predicted_cost, 6),
            "observed_cost": round(self.observed_cost, 6),
            "cost_ratio": (
                round(self.cost_ratio, 6)
                if self.cost_ratio != float("inf")
                else "inf"
            ),
            "tuples": self.tuples,
            "drifted": self.drifted,
            "debounced": self.debounced,
            "worst": [cell.as_dict() for cell in self.worst],
        }


def _clamp(probability: float) -> float:
    return min(max(probability, PROBABILITY_CLAMP), 1.0 - PROBABILITY_CLAMP)


class DriftMonitor:
    """Scores a plan's observed profile against its Eq. 3 predictions.

    Predictions are computed once at construction (against the statistics
    the plan was built from); :meth:`assess` may then be called as often
    as desired against a live profile.  ``min_visits`` suppresses cells
    with too few observations to be meaningful; ``threshold`` is compared
    against the *normalized* score (per-cell mean chi-square term, ~1
    under no drift).

    A threshold crossing is edge-triggered, not level-triggered: the
    first :meth:`assess` that crosses reports ``drifted=True`` and
    latches; until :meth:`rearm` is called (the replan landing), further
    crossings report ``drifted=False`` with ``debounced=True``.  Without
    the latch, a crossed threshold re-fires on every window between the
    alert and the replan, and every consumer double-counts the same
    drift.  ``debounce=False`` restores the raw level-triggered signal.
    """

    def __init__(
        self,
        plan: PlanNode,
        distribution: Distribution,
        expected: float | None = None,
        min_visits: int = 32,
        threshold: float = DEFAULT_DRIFT_THRESHOLD,
        debounce: bool = True,
    ) -> None:
        self._plan = plan
        self._predictions = predict_plan(plan, distribution)
        self._expected = (
            expected
            if expected is not None
            else expected_cost(plan, distribution)
        )
        self._min_visits = min_visits
        self._threshold = threshold
        self._debounce = debounce
        self._fired = False

    @property
    def plan(self) -> PlanNode:
        return self._plan

    @property
    def predictions(self) -> dict[str, NodePrediction]:
        return self._predictions

    @property
    def expected_cost(self) -> float:
        return self._expected

    @property
    def threshold(self) -> float:
        return self._threshold

    @property
    def fired(self) -> bool:
        """Has a crossing been reported and not yet re-armed?"""
        return self._fired

    def rearm(self) -> None:
        """Reset the debounce latch — call when the replan has landed."""
        self._fired = False

    def cell_drifts(self, profile: PlanProfile) -> list[CellDrift]:
        """Per-cell divergence terms for every sufficiently-visited cell."""
        cells: list[CellDrift] = []
        for path, prediction in self._predictions.items():
            counters = profile.counters(path)
            if counters is None:
                continue
            if (
                prediction.p_below is not None
                and counters.visits >= self._min_visits
            ):
                cells.append(
                    self._cell(
                        path,
                        "split",
                        prediction.p_below,
                        counters.below_fraction,
                        counters.visits,
                    )
                )
            for position, passed in enumerate(prediction.step_pass):
                if position >= len(counters.steps):
                    break
                step = counters.steps[position]
                if step.evaluated >= self._min_visits:
                    cells.append(
                        self._cell(
                            step_path(path, position),
                            "step",
                            passed,
                            step.pass_fraction,
                            step.evaluated,
                        )
                    )
        return cells

    def assess(self, profile: PlanProfile) -> DriftReport:
        """Score ``profile`` against the predictions."""
        cells = self.cell_drifts(profile)
        score = sum(cell.term for cell in cells)
        normalized = score / len(cells) if cells else 0.0
        observed = profile.observed_mean_cost()
        if self._expected > 0.0:
            ratio = observed / self._expected
        else:
            ratio = float("inf") if observed > 0.0 else 1.0
        worst = tuple(
            sorted(cells, key=lambda cell: cell.term, reverse=True)[:3]
        )
        crossed = bool(cells) and normalized > self._threshold
        debounced = crossed and self._debounce and self._fired
        drifted = crossed and not debounced
        if drifted:
            self._fired = True
        return DriftReport(
            score=score,
            cells=len(cells),
            normalized=normalized,
            predicted_cost=self._expected,
            observed_cost=observed,
            cost_ratio=ratio,
            tuples=profile.tuples,
            drifted=drifted,
            debounced=debounced,
            worst=worst,
        )

    @staticmethod
    def _cell(
        path: str, kind: str, predicted: float, observed: float, samples: int
    ) -> CellDrift:
        p = _clamp(predicted)
        term = samples * (observed - p) ** 2 / (p * (1.0 - p))
        return CellDrift(
            path=path,
            kind=kind,
            predicted=predicted,
            observed=observed,
            samples=samples,
            term=term,
        )
