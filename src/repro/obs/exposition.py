"""Prometheus text-format rendering of a metrics snapshot.

Turns the dict produced by
:meth:`repro.service.metrics.MetricsRegistry.snapshot` into the
Prometheus text exposition format (version 0.0.4):

- counters render as ``<prefix>_<name>_total`` with ``# TYPE ... counter``;
- labeled counter families render one sample per label combination;
- gauges render as ``<prefix>_<name>`` with ``# TYPE ... gauge``;
- histograms flatten to one gauge per snapshot field
  (``<prefix>_<name>_count``, ``..._mean_ms``, ``..._p50_ms_window``, ...)
  — the reservoir percentiles are already computed, so re-encoding them
  as native Prometheus histogram buckets would fabricate data we do not
  have.

:func:`parse_prometheus` is the matching reader used by tests and the CI
smoke job to assert the rendering round-trips.
"""

from __future__ import annotations

import re
from typing import Any, Mapping

__all__ = ["render_prometheus", "parse_prometheus"]

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_FIX = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r"\s+(?P<value>[^\s]+)$"
)


def _metric_name(prefix: str, *parts: str) -> str:
    name = "_".join(part for part in (prefix, *parts) if part)
    if not _NAME_OK.match(name):
        name = _NAME_FIX.sub("_", name)
        if not name or not _NAME_OK.match(name):
            name = "_" + name
    return name


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value: Any) -> str:
    number = float(value)
    if number == float("inf"):
        return "+Inf"
    if number == float("-inf"):
        return "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def render_prometheus(
    snapshot: Mapping[str, Any],
    prefix: str = "repro",
    labels: Mapping[str, str] | None = None,
) -> str:
    """Render a registry snapshot as Prometheus exposition text.

    ``labels`` are constant labels stamped onto *every* sample — the
    sharded serving tier uses this to render one worker's registry as
    ``repro_queries_total{shard="3"}`` so the front door can concatenate
    per-shard sections into a single scrape body.  Labeled-counter series
    merge the constant labels with their own (series labels win on
    collision, which cannot happen for the reserved ``shard`` label).
    """
    lines: list[str] = []
    constant = dict(labels) if labels else {}
    plain = _render_labels(constant)

    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = _metric_name(prefix, name, "total")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}{plain} {_format_value(value)}")

    for name, family in sorted(snapshot.get("labeled_counters", {}).items()):
        metric = _metric_name(prefix, name, "total")
        lines.append(f"# TYPE {metric} counter")
        for series in family.get("series", []):
            merged = {**constant, **series.get("labels", {})}
            rendered = _render_labels(merged)
            lines.append(f"{metric}{rendered} {_format_value(series['value'])}")

    for name, value in sorted(snapshot.get("gauges", {}).items()):
        metric = _metric_name(prefix, name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric}{plain} {_format_value(value)}")

    for name, fields in sorted(snapshot.get("histograms", {}).items()):
        for key, value in sorted(fields.items()):
            if not isinstance(value, (int, float)):
                continue
            metric = _metric_name(prefix, name, key)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric}{plain} {_format_value(value)}")

    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus(text: str) -> dict[str, float]:
    """Parse exposition text back into ``{sample: value}``.

    The sample key includes the label set verbatim
    (``repro_cache_events_total{event="hit"}``).  Raises
    :class:`ValueError` on any malformed non-comment line — this is the
    assertion the CI smoke job leans on.
    """
    samples: dict[str, float] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"malformed exposition line {lineno}: {raw!r}")
        value = match.group("value")
        try:
            if value == "+Inf":
                number = float("inf")
            elif value == "-Inf":
                number = float("-inf")
            else:
                number = float(value)
        except ValueError as error:
            raise ValueError(
                f"malformed sample value on line {lineno}: {raw!r}"
            ) from error
        key = match.group("name") + (match.group("labels") or "")
        samples[key] = number
    return samples
