"""Runtime observability: plan profiling, drift monitoring, tracing.

Static planning (PR 0) and serving (PR 1) optimize and cache plans
against Eq. 3 expected costs; verification (PR 2) checks plans before
they run.  This package watches what plans *actually do*:

- :mod:`repro.obs.profile` — per-node execution ledgers
  (:class:`PlanProfile`) keyed by the verifier's stable node paths,
  collected through the pluggable
  :class:`~repro.core.cost.ExecutionObserver` hook;
- :mod:`repro.obs.drift` — Eq. 3 decomposed per node
  (:func:`predict_plan`) and scored against observations
  (:class:`DriftMonitor`), the signal behind profile-drift replans;
- :mod:`repro.obs.trace` — JSON-lines trace events from the serving
  layer (:class:`Tracer`), plus the distributed-tracing primitives the
  sharded tier propagates across processes (:class:`TraceContext`,
  hierarchical :class:`Span` handles, span collection/ingestion);
- :mod:`repro.obs.waterfall` — trace-tree assembly, waterfall and
  critical-path analysis of merged distributed traces, and the
  trace-vs-ledger Eq. 3 conservation check behind ``repro obs-report``;
- :mod:`repro.obs.slo` — latency/error SLO budgets with burn-rate
  counters fed through the metrics registry;
- :mod:`repro.obs.exposition` — Prometheus text rendering of metrics
  snapshots (:func:`render_prometheus`);
- :mod:`repro.obs.report` — the EXPLAIN-ANALYZE-style
  predicted-vs-observed tree behind ``repro profile``.
"""

from repro.obs.drift import (
    DEFAULT_DRIFT_THRESHOLD,
    CellDrift,
    DriftMonitor,
    DriftReport,
    NodePrediction,
    predict_plan,
)
from repro.obs.exposition import parse_prometheus, render_prometheus
from repro.obs.profile import (
    NodeCounters,
    PlanProfile,
    StepCounters,
    TeeSink,
    profiled_evaluate,
)
from repro.obs.report import profile_report_dict, render_profile_report
from repro.obs.slo import SLOPolicy, SLOTracker
from repro.obs.trace import (
    TRACE_PHASES,
    Span,
    TraceContext,
    TraceEvent,
    Tracer,
)
from repro.obs.waterfall import (
    SEGMENTS,
    TraceTree,
    assemble_traces,
    attributed_costs,
    critical_paths,
    latency_decomposition,
    reconcile_costs,
    segments,
    shed_costs_avoided,
    trace_summary,
)

__all__ = [
    "DEFAULT_DRIFT_THRESHOLD",
    "CellDrift",
    "DriftMonitor",
    "DriftReport",
    "NodePrediction",
    "predict_plan",
    "parse_prometheus",
    "render_prometheus",
    "NodeCounters",
    "PlanProfile",
    "StepCounters",
    "TeeSink",
    "profiled_evaluate",
    "profile_report_dict",
    "render_profile_report",
    "TRACE_PHASES",
    "TraceEvent",
    "Tracer",
    "Span",
    "TraceContext",
    "SLOPolicy",
    "SLOTracker",
    "SEGMENTS",
    "TraceTree",
    "assemble_traces",
    "attributed_costs",
    "critical_paths",
    "latency_decomposition",
    "reconcile_costs",
    "segments",
    "shed_costs_avoided",
    "trace_summary",
]
