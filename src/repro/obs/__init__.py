"""Runtime observability: plan profiling, drift monitoring, tracing.

Static planning (PR 0) and serving (PR 1) optimize and cache plans
against Eq. 3 expected costs; verification (PR 2) checks plans before
they run.  This package watches what plans *actually do*:

- :mod:`repro.obs.profile` — per-node execution ledgers
  (:class:`PlanProfile`) keyed by the verifier's stable node paths,
  collected through the pluggable
  :class:`~repro.core.cost.ExecutionObserver` hook;
- :mod:`repro.obs.drift` — Eq. 3 decomposed per node
  (:func:`predict_plan`) and scored against observations
  (:class:`DriftMonitor`), the signal behind profile-drift replans;
- :mod:`repro.obs.trace` — JSON-lines trace events from the serving
  layer (:class:`Tracer`);
- :mod:`repro.obs.exposition` — Prometheus text rendering of metrics
  snapshots (:func:`render_prometheus`);
- :mod:`repro.obs.report` — the EXPLAIN-ANALYZE-style
  predicted-vs-observed tree behind ``repro profile``.
"""

from repro.obs.drift import (
    DEFAULT_DRIFT_THRESHOLD,
    CellDrift,
    DriftMonitor,
    DriftReport,
    NodePrediction,
    predict_plan,
)
from repro.obs.exposition import parse_prometheus, render_prometheus
from repro.obs.profile import (
    NodeCounters,
    PlanProfile,
    StepCounters,
    TeeSink,
    profiled_evaluate,
)
from repro.obs.report import profile_report_dict, render_profile_report
from repro.obs.trace import TRACE_PHASES, TraceEvent, Tracer

__all__ = [
    "DEFAULT_DRIFT_THRESHOLD",
    "CellDrift",
    "DriftMonitor",
    "DriftReport",
    "NodePrediction",
    "predict_plan",
    "parse_prometheus",
    "render_prometheus",
    "NodeCounters",
    "PlanProfile",
    "StepCounters",
    "TeeSink",
    "profiled_evaluate",
    "profile_report_dict",
    "render_profile_report",
    "TRACE_PHASES",
    "TraceEvent",
    "Tracer",
]
