"""Trace-tree assembly, waterfall/critical-path analysis, Eq. 3 audit.

This module is the read side of distributed tracing: it consumes the
merged JSON-lines trace a traced cluster run produces (front-door
events plus the shard spans piggybacked on replies) and answers three
questions.

**Where did the time go?**  :func:`segments` decomposes one request
tree's end-to-end latency into additive segments —

- ``route``: front-door work before/after the shard (fingerprinting,
  ring lookup, admission, reply fan-out) — the residual of the root
  span after the measured segments below;
- ``queue``: dispatch-to-execution wait, from the ``sent_ts`` baggage
  the front door stamps and the shard turns into ``queue_ms``;
- ``coalesce_wait``: a follower request's whole life is waiting on its
  leader's execution, so a coalesced root with no execution spans of
  its own attributes its full duration here;
- ``execute``: the shard's ``shard-execute`` span(s) —

plus two *nested* sub-segments reported alongside (inside ``execute``,
not additive with it): ``acquire`` (the service's engine execution
spans) and ``plan`` (planning + verification).
:func:`latency_decomposition` aggregates those per-request rows into
p50/p95 percentiles and tail shares; :func:`critical_paths` ranks the
slowest trees and names each one's dominant segment.

**Is every request accounted for?**  :func:`trace_summary` checks
*tree completeness*: every trace has exactly one root (a ``request``
span with no parent) and no orphaned parent references — the invariant
the ``obs-distributed`` CI job asserts even across an induced outage.

**Does the trace agree with the ledger?**  :func:`reconcile_costs` is a
conservation check in the spirit of the verifier's COST rules: the
acquisition cost attributed by ``shard-execute`` spans
(``where_cost + projection_cost``, summed per shard) must equal each
live shard's ``acquisition_cost_total`` gauge, and the ``cost_avoided``
carried on shed events must equal the admission controller's
``shed_cost_avoided`` ledger.  A shard that died mid-run has spans but
no ledger; it is reported as unreconcilable rather than failing the
check.

Determinism: pure functions of their inputs, no clocks, no RNG —
this module is on the lint's deterministic path and is an approved
ledger module (it re-derives Eq. 3 sums *to audit them*).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

__all__ = [
    "SEGMENTS",
    "TraceTree",
    "assemble_traces",
    "attributed_costs",
    "critical_paths",
    "latency_decomposition",
    "reconcile_costs",
    "segments",
    "shed_costs_avoided",
    "trace_summary",
]

#: Waterfall segment names, additive first, nested sub-segments last.
SEGMENTS = ("route", "queue", "coalesce_wait", "execute", "acquire", "plan")

_ADDITIVE = ("route", "queue", "coalesce_wait", "execute")
_EXECUTE_PHASES = ("shard-execute",)
_ACQUIRE_PHASES = ("execute", "execute-resilient")
_PLAN_PHASES = ("plan", "verify")
_COALESCE_PHASES = ("coalesce-attach", "shard-coalesce")
_SHED_PHASES = ("shed", "outage-shed")


@dataclass
class TraceTree:
    """Every event of one trace id, with tree-structure accessors."""

    trace_id: str
    events: list[dict[str, Any]] = field(default_factory=list)

    @property
    def roots(self) -> list[dict[str, Any]]:
        """Span events with no parent — exactly one in a complete tree."""
        return [
            event
            for event in self.events
            if event.get("span") and not event.get("parent")
        ]

    @property
    def root(self) -> dict[str, Any] | None:
        roots = self.roots
        return roots[0] if len(roots) == 1 else None

    @property
    def span_ids(self) -> set[str]:
        return {
            str(event["span"]) for event in self.events if event.get("span")
        }

    @property
    def orphans(self) -> list[dict[str, Any]]:
        """Events whose parent span never appears in this trace."""
        known = self.span_ids
        return [
            event
            for event in self.events
            if event.get("parent") and str(event["parent"]) not in known
        ]

    @property
    def complete(self) -> bool:
        """One root, no orphans: the whole request story is here."""
        return len(self.roots) == 1 and not self.orphans

    @property
    def total_ms(self) -> float:
        root = self.root
        if root is None:
            return 0.0
        return float(root.get("ms") or 0.0)

    def phase_events(self, *phases: str) -> list[dict[str, Any]]:
        return [
            event for event in self.events if event.get("phase") in phases
        ]

    def children_of(self, span_id: str) -> list[dict[str, Any]]:
        return [
            event
            for event in self.events
            if str(event.get("parent", "")) == span_id
        ]


def assemble_traces(
    records: Iterable[Mapping[str, Any]]
) -> dict[str, TraceTree]:
    """Group raw trace records into per-trace trees (insertion order).

    Records without a ``trace`` field (flat single-process events, e.g.
    from ``serve-bench``) are skipped — they belong to no tree.
    """
    trees: dict[str, TraceTree] = {}
    for record in records:
        trace_id = str(record.get("trace") or "")
        if not trace_id:
            continue
        tree = trees.get(trace_id)
        if tree is None:
            tree = TraceTree(trace_id=trace_id)
            trees[trace_id] = tree
        tree.events.append(dict(record))
    return trees


def segments(tree: TraceTree) -> dict[str, float]:
    """One request's waterfall decomposition (milliseconds).

    ``route + queue + coalesce_wait + execute`` sums to ``total`` (the
    root span's duration; ``route`` is the clamped residual).
    ``acquire`` and ``plan`` nest *inside* ``execute``.
    """
    total = tree.total_ms
    execute = sum(
        float(event.get("ms") or 0.0)
        for event in tree.phase_events(*_EXECUTE_PHASES)
    )
    queue = sum(
        float(event.get("queue_ms") or 0.0)
        for event in tree.phase_events(*_EXECUTE_PHASES)
    )
    acquire = sum(
        float(event.get("ms") or 0.0)
        for event in tree.phase_events(*_ACQUIRE_PHASES)
    )
    plan = sum(
        float(event.get("ms") or 0.0)
        for event in tree.phase_events(*_PLAN_PHASES)
    )
    root = tree.root or {}
    coalesce_wait = 0.0
    if execute == 0.0 and (
        root.get("coalesced") or tree.phase_events(*_COALESCE_PHASES)
    ):
        # A follower's entire life is waiting on the leader's execution.
        coalesce_wait = total
    route = max(0.0, total - queue - execute - coalesce_wait)
    return {
        "total": round(total, 3),
        "route": round(route, 3),
        "queue": round(queue, 3),
        "coalesce_wait": round(coalesce_wait, 3),
        "execute": round(execute, 3),
        "acquire": round(acquire, 3),
        "plan": round(plan, 3),
    }


def _percentile(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sequence."""
    if not ordered:
        return 0.0
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return float(ordered[min(rank, len(ordered)) - 1])


def latency_decomposition(
    trees: Sequence[TraceTree], percentile: float = 95.0
) -> dict[str, Any]:
    """Aggregate waterfall: where does the (tail) latency come from?

    For each segment: the p50 and p``percentile`` over all requests,
    the mean over the *tail* requests (those at or above the
    p``percentile`` total), and the tail share — the fraction of the
    tail's summed total the segment explains (nested sub-segments'
    shares are relative to the same denominator, so they overlap
    ``execute`` by construction).
    """
    rows = [segments(tree) for tree in trees if tree.root is not None]
    report: dict[str, Any] = {
        "requests": len(rows),
        "percentile": percentile,
        "segments": {},
    }
    if not rows:
        return report
    totals = sorted(row["total"] for row in rows)
    cut = _percentile(totals, percentile)
    tail = [row for row in rows if row["total"] >= cut] or rows
    tail_total = sum(row["total"] for row in tail)
    report["total_ms"] = {
        "p50": _percentile(totals, 50.0),
        f"p{percentile:g}": cut,
        "max": totals[-1],
    }
    for name in SEGMENTS:
        ordered = sorted(row[name] for row in rows)
        tail_sum = sum(row[name] for row in tail)
        report["segments"][name] = {
            "p50_ms": round(_percentile(ordered, 50.0), 3),
            f"p{percentile:g}_ms": round(
                _percentile(ordered, percentile), 3
            ),
            "tail_mean_ms": round(tail_sum / len(tail), 3),
            "tail_share": (
                round(tail_sum / tail_total, 4) if tail_total > 0 else 0.0
            ),
        }
    return report


def critical_paths(
    trees: Sequence[TraceTree], top: int = 5
) -> list[dict[str, Any]]:
    """The ``top`` slowest request trees, each with its dominant segment.

    Ties rank by trace id so the report is deterministic.
    """
    ranked = sorted(
        (tree for tree in trees if tree.root is not None),
        key=lambda tree: (-tree.total_ms, tree.trace_id),
    )
    paths: list[dict[str, Any]] = []
    for tree in ranked[: max(0, top)]:
        decomposed = segments(tree)
        dominant = "route"
        if decomposed["total"] > 0:
            dominant = max(_ADDITIVE, key=lambda name: decomposed[name])
        root = tree.root or {}
        paths.append(
            {
                "trace": tree.trace_id,
                "fingerprint": str(root.get("fingerprint", "")),
                "ok": bool(root.get("ok", False)),
                "shed": bool(root.get("shed", False)),
                "coalesced": bool(root.get("coalesced", False)),
                "rerouted": bool(tree.phase_events("reroute")),
                "dominant": dominant,
                "segments": decomposed,
            }
        )
    return paths


def trace_summary(trees: Sequence[TraceTree]) -> dict[str, Any]:
    """Completeness and outcome census over every assembled tree."""
    incomplete = sorted(
        tree.trace_id for tree in trees if not tree.complete
    )
    roots = [tree.root or {} for tree in trees]
    return {
        "traces": len(trees),
        "complete": sum(1 for tree in trees if tree.complete),
        "incomplete": incomplete[:20],
        "events": sum(len(tree.events) for tree in trees),
        "coalesced": sum(1 for root in roots if root.get("coalesced")),
        "shed": sum(1 for root in roots if root.get("shed")),
        "rerouted": sum(
            1 for tree in trees if tree.phase_events("reroute")
        ),
        "degraded": sum(
            1
            for tree in trees
            for event in tree.phase_events(*_EXECUTE_PHASES)
            if float(event.get("degraded", 0) or 0) > 0
        ),
    }


def attributed_costs(trees: Sequence[TraceTree]) -> dict[str, float]:
    """Per-shard acquisition cost as attributed by ``shard-execute`` spans.

    Sums ``where_cost + projection_cost`` over successful execution
    spans — the exact quantity each shard's ``acquisition_cost_total``
    gauge records per executed group (``retry_cost`` is a slice of
    ``where_cost``, annotated but never re-added).  Keys are shard ids
    as strings (JSON-stable).
    """
    per_shard: dict[str, float] = {}
    for tree in trees:
        for event in tree.phase_events(*_EXECUTE_PHASES):
            if not event.get("ok", False):
                continue
            shard = str(event.get("shard", ""))
            charge = float(event.get("where_cost", 0.0)) + float(
                event.get("projection_cost", 0.0)
            )
            per_shard[shard] = per_shard.get(shard, 0.0) + charge
    return per_shard


def shed_costs_avoided(trees: Sequence[TraceTree]) -> float:
    """Total ``cost_avoided`` attributed by shed / outage-shed events."""
    return sum(
        float(event.get("cost_avoided", 0.0) or 0.0)
        for tree in trees
        for event in tree.phase_events(*_SHED_PHASES)
    )


def reconcile_costs(
    trees: Sequence[TraceTree],
    shard_stats: Mapping[Any, Mapping[str, Any]],
    admission: Mapping[str, Any] | None = None,
    tolerance: float = 1e-6,
) -> dict[str, Any]:
    """Eq. 3 conservation check: span-attributed cost vs the ledgers.

    ``shard_stats`` maps shard id to that shard's ``service.stats()``
    dict (the ``shards`` section of ``ShardedServiceCluster.stats()``);
    the recorded side is each shard's ``acquisition_cost_total`` gauge.
    A shard appearing only on the attributed side (its process died
    before its ledger could be read) is reported with ``ok: None`` and
    excluded from the overall verdict — its spans are evidence, but
    there is no ledger left to check them against.  With ``admission``
    (the front door's admission snapshot) the shed ledger is checked
    the same way.  ``tolerance`` is relative to the recorded magnitude.
    """
    attributed = attributed_costs(trees)
    recorded: dict[str, float] = {}
    for shard_id, stats in shard_stats.items():
        gauges = stats.get("gauges", {})
        recorded[str(shard_id)] = float(
            gauges.get("acquisition_cost_total", 0.0)
        )
    shards: dict[str, Any] = {}
    overall = True
    for shard in sorted(set(attributed) | set(recorded)):
        span_side = attributed.get(shard, 0.0)
        ledger_side = recorded.get(shard)
        if ledger_side is None:
            shards[shard] = {
                "attributed": round(span_side, 6),
                "recorded": None,
                "ok": None,
                "note": "shard ledger unavailable (outage)",
            }
            continue
        bound = tolerance * max(1.0, abs(ledger_side))
        matched = abs(span_side - ledger_side) <= bound
        shards[shard] = {
            "attributed": round(span_side, 6),
            "recorded": round(ledger_side, 6),
            "ok": matched,
        }
        overall = overall and matched
    report: dict[str, Any] = {"shards": shards, "ok": overall}
    if admission is not None:
        shed_attributed = shed_costs_avoided(trees)
        shed_recorded = float(admission.get("shed_cost_avoided", 0.0))
        bound = tolerance * max(1.0, abs(shed_recorded))
        shed_ok = abs(shed_attributed - shed_recorded) <= bound
        report["shed"] = {
            "attributed": round(shed_attributed, 6),
            "recorded": round(shed_recorded, 6),
            "ok": shed_ok,
        }
        report["ok"] = overall and shed_ok
    return report
