"""Queries over acquisitional tables.

:class:`ConjunctiveQuery` is the paper's problem class: a conjunction of
unary predicates over *distinct* attributes (Section 2.1, Theorem 3.1).  The
Section 7 extensions :class:`ExistentialQuery` and :class:`LimitQuery` wrap a
conjunctive query and apply it across a fleet of tuples/sensors; they are
used by the sensor-network simulator to short-circuit acquisition across
motes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.attributes import Schema
from repro.core.predicates import Predicate, Truth
from repro.core.ranges import RangeVector
from repro.exceptions import QueryError

__all__ = ["ConjunctiveQuery", "ExistentialQuery", "LimitQuery"]


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunction of unary predicates over distinct schema attributes.

    Parameters
    ----------
    schema:
        The table schema the query is posed against.
    predicates:
        One :class:`~repro.core.predicates.Predicate` per referenced
        attribute.  Attributes must be distinct — the paper's problem class —
        and every referenced name must exist in the schema.
    """

    schema: Schema
    predicates: tuple[Predicate, ...]
    _indices: tuple[int, ...] = field(init=False, repr=False, compare=False)

    def __init__(self, schema: Schema, predicates: Iterable[Predicate]) -> None:
        preds = tuple(predicates)
        if not preds:
            raise QueryError("query must contain at least one predicate")
        indices = []
        seen: set[str] = set()
        for predicate in preds:
            if predicate.attribute in seen:
                raise QueryError(
                    f"duplicate predicate on attribute {predicate.attribute!r}; "
                    "the paper's problem class uses distinct attributes"
                )
            seen.add(predicate.attribute)
            index = schema.index_of(predicate.attribute)
            attribute = schema[index]
            if isinstance(getattr(predicate, "low", None), int):
                low = predicate.low  # type: ignore[attr-defined]
                high = predicate.high  # type: ignore[attr-defined]
                if low < 1 or high > attribute.domain_size:
                    raise QueryError(
                        f"predicate range [{low}, {high}] exceeds domain "
                        f"[1, {attribute.domain_size}] of {predicate.attribute!r}"
                    )
            indices.append(index)
        object.__setattr__(self, "schema", schema)
        object.__setattr__(self, "predicates", preds)
        object.__setattr__(self, "_indices", tuple(indices))

    @property
    def attribute_indices(self) -> tuple[int, ...]:
        """Schema index of each predicate's attribute, in predicate order."""
        return self._indices

    def __len__(self) -> int:
        return len(self.predicates)

    def evaluate(self, values: Sequence[int]) -> bool:
        """Ground-truth evaluation of the query on a complete tuple."""
        return all(
            predicate.satisfied_by(values[index])
            for predicate, index in zip(self.predicates, self._indices)
        )

    def truth_under(self, ranges: RangeVector) -> Truth:
        """Three-valued query truth given per-attribute range knowledge.

        The conjunction is FALSE as soon as one predicate is proven false,
        TRUE only when every predicate is proven true, UNDETERMINED
        otherwise.  This is the exhaustive planner's leaf test (Figure 5).
        """
        all_true = True
        for predicate, index in zip(self.predicates, self._indices):
            truth = predicate.truth_under(ranges[index])
            if truth is Truth.FALSE:
                return Truth.FALSE
            if truth is not Truth.TRUE:
                all_true = False
        return Truth.TRUE if all_true else Truth.UNDETERMINED

    def undetermined_predicates(
        self, ranges: RangeVector
    ) -> list[tuple[Predicate, int]]:
        """Predicates (with schema indices) still undecided under ``ranges``."""
        return [
            (predicate, index)
            for predicate, index in zip(self.predicates, self._indices)
            if predicate.truth_under(ranges[index]) is Truth.UNDETERMINED
        ]

    def describe(self) -> str:
        """SQL-ish rendering of the WHERE clause."""
        return " AND ".join(predicate.describe() for predicate in self.predicates)


@dataclass(frozen=True)
class ExistentialQuery:
    """``EXISTS`` over a fleet: is there any tuple satisfying ``inner``?

    Section 7 ("Generalization to other types of queries") motivates such
    queries for sensor networks — e.g. *is there a sensor recording high
    light and temperature?* — where acquisition can stop at the first match.
    """

    inner: ConjunctiveQuery

    def evaluate(self, rows: Iterable[Sequence[int]]) -> bool:
        return any(self.inner.evaluate(row) for row in rows)


@dataclass(frozen=True)
class LimitQuery:
    """``LIMIT k`` over a fleet: return at most ``k`` satisfying tuples."""

    inner: ConjunctiveQuery
    limit: int

    def __post_init__(self) -> None:
        if self.limit < 1:
            raise QueryError(f"limit must be >= 1, got {self.limit}")

    def evaluate(self, rows: Iterable[Sequence[int]]) -> list[tuple[int, ...]]:
        matches: list[tuple[int, ...]] = []
        for row in rows:
            if self.inner.evaluate(row):
                matches.append(tuple(row))
                if len(matches) == self.limit:
                    break
        return matches
