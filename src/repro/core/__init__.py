"""Core formal objects: schemas, predicates, queries, plans, cost models."""

from repro.core.analysis import (
    PlanComparison,
    PlanSummary,
    annotate_plan,
    attribute_acquisition_rates,
    compare_plans,
    plan_summary,
    plan_to_dot,
    validate_plan,
)
from repro.core.attributes import Attribute, Schema
from repro.core.boolean import And, BooleanQuery, Formula, Leaf, Or
from repro.core.cost_models import (
    AcquisitionCostModel,
    BoardAwareCostModel,
    SchemaCostModel,
)
from repro.core.cost import (
    DatasetExecution,
    combined_objective,
    dataset_execution,
    empirical_cost,
    expected_cost,
    traversal_cost,
)
from repro.core.plan import (
    ConditionNode,
    PlanNode,
    SequentialNode,
    SequentialStep,
    VerdictLeaf,
    plan_from_dict,
    simplify_plan,
)
from repro.core.predicates import (
    NotRangePredicate,
    Predicate,
    RangePredicate,
    Truth,
)
from repro.core.query import ConjunctiveQuery, ExistentialQuery, LimitQuery
from repro.core.ranges import Range, RangeVector

__all__ = [
    "Attribute",
    "Schema",
    "Range",
    "RangeVector",
    "Truth",
    "Predicate",
    "RangePredicate",
    "NotRangePredicate",
    "ConjunctiveQuery",
    "BooleanQuery",
    "Formula",
    "Leaf",
    "And",
    "Or",
    "ExistentialQuery",
    "LimitQuery",
    "PlanNode",
    "VerdictLeaf",
    "SequentialStep",
    "SequentialNode",
    "ConditionNode",
    "plan_from_dict",
    "simplify_plan",
    "traversal_cost",
    "dataset_execution",
    "empirical_cost",
    "expected_cost",
    "combined_objective",
    "DatasetExecution",
    "AcquisitionCostModel",
    "SchemaCostModel",
    "BoardAwareCostModel",
    "PlanSummary",
    "plan_summary",
    "annotate_plan",
    "attribute_acquisition_rates",
    "plan_to_dot",
    "PlanComparison",
    "compare_plans",
    "validate_plan",
]
