"""Acquisition cost models (Section 7, "Complex acquisition costs").

The paper's core cost model charges a fixed ``C_i`` per attribute, but
notes that real hardware is richer: "motes have sensor boards with
multiple sensors that are powered up simultaneously.  Thus, the cost of
acquiring a reading can be decomposed as the high cost of powering up the
board, plus a low cost for a reading of each sensor in the board.  This
can be simulated in our planning algorithms by making the costs of
acquiring attributes themselves conditional on the attributes acquired so
far."

:class:`AcquisitionCostModel` is that conditioning: the cost of an
attribute is a function of the set of attributes already acquired.  The
planners' dynamic programs stay exact under such models because their
states (subproblem ranges for ExhaustivePlan, satisfied-predicate sets for
OptSeq) determine the acquired set.

Two concrete models:

- :class:`SchemaCostModel` — the paper's flat per-attribute costs
  (the default everywhere);
- :class:`BoardAwareCostModel` — shared power-up per board plus a small
  per-read cost, matching the runtime
  :class:`~repro.execution.acquisition.SensorBoardSource`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import AbstractSet, Mapping

from repro.core.attributes import Schema
from repro.exceptions import SchemaError

__all__ = ["AcquisitionCostModel", "SchemaCostModel", "BoardAwareCostModel"]


class AcquisitionCostModel(ABC):
    """Cost of acquiring an attribute, conditional on prior acquisitions."""

    def __init__(self, schema: Schema) -> None:
        self._schema = schema

    @property
    def schema(self) -> Schema:
        return self._schema

    @abstractmethod
    def cost(self, attribute_index: int, acquired: AbstractSet[int]) -> float:
        """Cost of a first read of ``attribute_index`` after ``acquired``."""


class SchemaCostModel(AcquisitionCostModel):
    """The paper's base model: a constant ``C_i`` per attribute."""

    def cost(self, attribute_index: int, acquired: AbstractSet[int]) -> float:
        return self._schema[attribute_index].cost


class BoardAwareCostModel(AcquisitionCostModel):
    """Shared board power-up plus per-read cost.

    Parameters
    ----------
    schema:
        Table schema.  Attributes absent from ``boards`` keep their plain
        schema cost.
    boards:
        Maps attribute index to a board label.
    power_up_cost:
        One-time surcharge for the first acquisition on each board.
    per_read_cost:
        Cost of each board-resident read once the board is powered.
    """

    def __init__(
        self,
        schema: Schema,
        boards: Mapping[int, str],
        power_up_cost: float,
        per_read_cost: float = 1.0,
    ) -> None:
        super().__init__(schema)
        if power_up_cost < 0 or per_read_cost < 0:
            raise SchemaError("board costs must be >= 0")
        for index in boards:
            if not 0 <= index < len(schema):
                raise SchemaError(f"board attribute index {index} out of range")
        self._boards = dict(boards)
        self._power_up_cost = float(power_up_cost)
        self._per_read_cost = float(per_read_cost)

    def cost(self, attribute_index: int, acquired: AbstractSet[int]) -> float:
        board = self._boards.get(attribute_index)
        if board is None:
            return self._schema[attribute_index].cost
        powered = any(
            self._boards.get(other) == board for other in acquired
        )
        if powered:
            return self._per_read_cost
        return self._per_read_cost + self._power_up_cost

    @property
    def boards(self) -> dict[int, str]:
        return dict(self._boards)
