"""Range vectors: the planner's subproblem state.

The exhaustive dynamic program of Section 3.2 is defined over
``Subproblem(phi, R_1=[a_1,b_1], ..., R_n=[a_n,b_n])`` where each ``R_i`` is a
closed integer interval of values attribute ``X_i`` may still take.  A split
on a *conditioning predicate* ``T(X_i >= x)`` divides ``R_i = [a, b]`` into
``[a, x-1]`` and ``[x, b]``, producing two disjoint subproblems.

:class:`Range` models one interval; :class:`RangeVector` models the full
subproblem state, is hashable (the DP memo key), and knows which attributes
have been *acquired* — i.e. narrowed from their full domain — which is what
makes later tests on the same attribute free (Section 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.core.attributes import Schema
from repro.exceptions import PlanningError

__all__ = ["Range", "RangeVector"]


@dataclass(frozen=True, slots=True)
class Range:
    """A closed integer interval ``[low, high]`` with ``low <= high``."""

    low: int
    high: int

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise PlanningError(f"empty range [{self.low}, {self.high}]")

    def __len__(self) -> int:
        return self.high - self.low + 1

    def __contains__(self, value: object) -> bool:
        return isinstance(value, int) and self.low <= value <= self.high

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.low, self.high + 1))

    def split_at(self, value: int) -> tuple["Range", "Range"]:
        """Split into ``[low, value-1]`` and ``[value, high]``.

        ``value`` must satisfy ``low < value <= high`` so both halves are
        non-empty, mirroring the split candidates of Figure 5.
        """
        if not self.low < value <= self.high:
            raise PlanningError(
                f"split point {value} not interior to [{self.low}, {self.high}]"
            )
        return Range(self.low, value - 1), Range(value, self.high)

    def intersects(self, other: "Range") -> bool:
        """Whether the two intervals share at least one value."""
        return self.low <= other.high and other.low <= self.high

    def is_subset_of(self, other: "Range") -> bool:
        """Whether every value in this interval lies in ``other``."""
        return other.low <= self.low and self.high <= other.high

    def intersection(self, other: "Range") -> "Range | None":
        """The overlapping interval, or ``None`` when disjoint."""
        low = max(self.low, other.low)
        high = min(self.high, other.high)
        if low > high:
            return None
        return Range(low, high)


class RangeVector:
    """Immutable vector of per-attribute ranges — one DP subproblem.

    Equality and hashing are defined over the range tuple so a
    ``RangeVector`` can key the exhaustive planner's memoization cache
    directly.
    """

    __slots__ = ("_ranges", "_domain_sizes", "_hash")

    def __init__(self, ranges: Sequence[Range], domain_sizes: Sequence[int]) -> None:
        if len(ranges) != len(domain_sizes):
            raise PlanningError(
                f"{len(ranges)} ranges for {len(domain_sizes)} attributes"
            )
        for index, (interval, size) in enumerate(zip(ranges, domain_sizes)):
            if interval.low < 1 or interval.high > size:
                raise PlanningError(
                    f"range [{interval.low}, {interval.high}] exceeds domain "
                    f"[1, {size}] for attribute index {index}"
                )
        self._ranges = tuple(ranges)
        self._domain_sizes = tuple(int(size) for size in domain_sizes)
        self._hash = hash(self._ranges)

    @classmethod
    def full(cls, schema: Schema) -> "RangeVector":
        """The initial subproblem where every attribute spans its domain."""
        sizes = schema.domain_sizes
        return cls([Range(1, size) for size in sizes], sizes)

    @property
    def ranges(self) -> tuple[Range, ...]:
        return self._ranges

    @property
    def domain_sizes(self) -> tuple[int, ...]:
        return self._domain_sizes

    def __len__(self) -> int:
        return len(self._ranges)

    def __getitem__(self, index: int) -> Range:
        return self._ranges[index]

    def __iter__(self) -> Iterator[Range]:
        return iter(self._ranges)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RangeVector) and self._ranges == other._ranges

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        parts = ", ".join(f"[{r.low},{r.high}]" for r in self._ranges)
        return f"RangeVector({parts})"

    def is_acquired(self, index: int) -> bool:
        """Whether attribute ``index`` has been narrowed from its full domain.

        Acquired attributes incur zero cost for further conditioning
        (Section 2.2): the executor already holds their exact value.
        """
        interval = self._ranges[index]
        return not (interval.low == 1 and interval.high == self._domain_sizes[index])

    def acquired_indices(self) -> frozenset[int]:
        """Indices of all attributes narrowed from their full domain."""
        return frozenset(
            index for index in range(len(self._ranges)) if self.is_acquired(index)
        )

    def with_range(self, index: int, interval: Range) -> "RangeVector":
        """A copy with attribute ``index`` restricted to ``interval``."""
        ranges = list(self._ranges)
        ranges[index] = interval
        return RangeVector(ranges, self._domain_sizes)

    def split(self, index: int, value: int) -> tuple["RangeVector", "RangeVector"]:
        """Apply conditioning predicate ``T(X_index >= value)``.

        Returns the (below, at-or-above) subproblem pair produced by
        splitting ``R_index`` at ``value``.
        """
        below, above = self._ranges[index].split_at(value)
        return self.with_range(index, below), self.with_range(index, above)

    def split_candidates(self, index: int) -> range:
        """Interior split points ``a+1 .. b`` for attribute ``index``."""
        interval = self._ranges[index]
        return range(interval.low + 1, interval.high + 1)

    def contains_tuple(self, values: Sequence[int]) -> bool:
        """Whether a concrete tuple is consistent with every range."""
        if len(values) != len(self._ranges):
            raise PlanningError(
                f"tuple arity {len(values)} != {len(self._ranges)} ranges"
            )
        return all(value in interval for interval, value in zip(self._ranges, values))
