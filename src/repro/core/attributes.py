"""Attributes and schemas.

The paper models a query table of ``n`` attributes ``X_1 .. X_n`` where each
attribute takes values in a small discrete domain ``{1 .. K_i}`` and carries
an *acquisition cost* ``C_i`` — the energy/latency price of reading its value
for one tuple (Section 2.1).  :class:`Attribute` captures one such column and
:class:`Schema` an ordered collection of them.

Domains are 1-based to match the paper's notation; datasets handled by
:mod:`repro.probability.empirical` store values in ``1 .. K_i``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.exceptions import SchemaError

__all__ = ["Attribute", "Schema"]


@dataclass(frozen=True)
class Attribute:
    """A single named column with a discrete domain and an acquisition cost.

    Parameters
    ----------
    name:
        Unique attribute name within a schema (e.g. ``"light"``).
    domain_size:
        Number of discrete values the attribute can take; values range over
        ``1 .. domain_size`` inclusive.  Real-valued sensors are discretized
        onto this domain by :mod:`repro.data.discretize`.
    cost:
        Acquisition cost :math:`C_i` of reading one value.  The paper uses
        100 units for expensive sensors (light, temperature, humidity) and
        1 unit for cheap metadata (node id, hour, voltage).
    """

    name: str
    domain_size: int
    cost: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")
        if self.domain_size < 1:
            raise SchemaError(
                f"attribute {self.name!r}: domain_size must be >= 1, "
                f"got {self.domain_size}"
            )
        if self.cost < 0:
            raise SchemaError(
                f"attribute {self.name!r}: cost must be >= 0, got {self.cost}"
            )

    @property
    def values(self) -> range:
        """Iterable over the attribute's domain ``1 .. K_i``."""
        return range(1, self.domain_size + 1)


@dataclass(frozen=True)
class Schema:
    """An ordered, immutable collection of :class:`Attribute` objects.

    The schema fixes the attribute indexing used throughout the library:
    planners, distributions, and datasets all refer to attributes by their
    position in the schema.
    """

    attributes: tuple[Attribute, ...]
    _index: Mapping[str, int] = field(init=False, repr=False, compare=False)

    def __init__(self, attributes: Iterable[Attribute]) -> None:
        attrs = tuple(attributes)
        if not attrs:
            raise SchemaError("schema must contain at least one attribute")
        index: dict[str, int] = {}
        for position, attribute in enumerate(attrs):
            if attribute.name in index:
                raise SchemaError(f"duplicate attribute name {attribute.name!r}")
            index[attribute.name] = position
        object.__setattr__(self, "attributes", attrs)
        object.__setattr__(self, "_index", index)

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __getitem__(self, key: int | str) -> Attribute:
        if isinstance(key, str):
            return self.attributes[self.index_of(key)]
        return self.attributes[key]

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name in self._index

    def index_of(self, name: str) -> int:
        """Return the position of the attribute called ``name``.

        Raises :class:`~repro.exceptions.SchemaError` for unknown names so
        that typos surface immediately rather than as index errors later.
        """
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"unknown attribute {name!r}") from None

    @property
    def names(self) -> tuple[str, ...]:
        """Attribute names in schema order."""
        return tuple(attribute.name for attribute in self.attributes)

    @property
    def domain_sizes(self) -> tuple[int, ...]:
        """Domain sizes ``K_i`` in schema order."""
        return tuple(attribute.domain_size for attribute in self.attributes)

    @property
    def costs(self) -> tuple[float, ...]:
        """Acquisition costs ``C_i`` in schema order."""
        return tuple(attribute.cost for attribute in self.attributes)

    def validate_tuple(self, values: Iterable[int]) -> tuple[int, ...]:
        """Check a tuple of attribute values against the schema.

        Returns the values as a tuple; raises
        :class:`~repro.exceptions.SchemaError` when the arity is wrong or a
        value falls outside its attribute's domain.
        """
        row = tuple(int(value) for value in values)
        if len(row) != len(self.attributes):
            raise SchemaError(
                f"tuple has {len(row)} values but schema has "
                f"{len(self.attributes)} attributes"
            )
        for attribute, value in zip(self.attributes, row):
            if not 1 <= value <= attribute.domain_size:
                raise SchemaError(
                    f"value {value} out of domain [1, {attribute.domain_size}] "
                    f"for attribute {attribute.name!r}"
                )
        return row
